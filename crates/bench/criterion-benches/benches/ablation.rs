//! Ablation benches for the design choices DESIGN.md calls out: each runs
//! the same micro-scenario with one PrioPlus mechanism altered, so the cost
//! of the mechanism (and the regression if removed) is visible in the
//! timing and, more importantly, in the printed utilization assertions.

use criterion::{criterion_group, criterion_main, Criterion};
use experiments::micro::{Micro, MicroEnv};
use netsim::{FlowSpec, NoiseModel, Transport};
use prioplus::PrioPlusConfig;
use simcore::Time;
use transport::pp_transport::PrioPlusTransport;
use transport::sender::SenderBase;
use transport::swift::{SwiftCc, SwiftConfig};
use transport::PrioPlusPolicy;

fn run_variant(mutate: impl Fn(&mut PrioPlusConfig) + Copy) -> u64 {
    let mut m = Micro::build(&MicroEnv {
        senders: 16,
        end: Time::from_ms(3),
        trace: false,
        noise: NoiseModel::testbed(),
        ..Default::default()
    });
    let policy = PrioPlusPolicy::paper_default(8);
    for s in 1..=16usize {
        let prio = (s % 8) as u8;
        let spec = FlowSpec {
            src: s as u32,
            dst: 0,
            size: 1_000_000,
            start: Time::from_us(10 * s as u64),
            phys_prio: 0,
            virt_prio: prio,
            tag: prio as u64,
        };
        m.sim.add_flow(spec, |params| {
            let mut cfg = policy.flow_config(params);
            mutate(&mut cfg);
            let mut scfg = SwiftConfig::datacenter(
                params.base_rtt,
                cfg.d_target - params.base_rtt,
                params.mtu,
            );
            scfg.init_cwnd = cfg.w_ls;
            Box::new(PrioPlusTransport::new(
                SenderBase::new(params.clone()),
                cfg,
                SwiftCc::new(scfg),
            )) as Box<dyn Transport>
        });
    }
    m.sim.run().counters.events
}

fn ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("prioplus_ablations");
    g.sample_size(10);
    g.bench_function("full", |b| b.iter(|| run_variant(|_| {})));
    g.bench_function("no_dual_rtt", |b| {
        b.iter(|| run_variant(|cfg| cfg.dual_rtt = false))
    });
    g.bench_function("no_probe_before_start", |b| {
        b.iter(|| run_variant(|cfg| cfg.probe_before_start = false))
    });
    g.bench_function("line_rate_start", |b| {
        b.iter(|| {
            run_variant(|cfg| {
                // W_LS = full BDP everywhere: degenerate into line-rate-ish
                // starts (the Table 2 comparison point).
                cfg.w_ls = cfg.base_bdp();
            })
        })
    });
    g.bench_function("narrow_channels", |b| {
        b.iter(|| {
            run_variant(|cfg| {
                // Halve the gap between target and limit: more misreactions
                // under the same noise (Fig 10d's lever).
                let half = Time::from_ps((cfg.d_limit.as_ps() - cfg.d_target.as_ps()) / 2);
                cfg.d_limit = cfg.d_target + half;
            })
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = ablations
}
criterion_main!(benches);
