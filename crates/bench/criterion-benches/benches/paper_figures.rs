//! One Criterion bench per paper table/figure: each runs a reduced instance
//! of the corresponding experiment end-to-end (workload generation →
//! simulation → metric extraction), so regressions in any layer show up as
//! timing or panics here. The printed *results* of each figure come from
//! the `experiments` binaries; these benches keep the regeneration paths
//! exercised and measured.

use criterion::{criterion_group, criterion_main, Criterion};
use experiments::coflowsched::{self, CoflowConfig};
use experiments::flowsched::{self, FlowSchedConfig};
use experiments::micro::{Micro, MicroEnv};
use experiments::mltrain::{self, MlConfig};
use experiments::Scheme;
use netsim::NoiseModel;
use prioplus::linear_start::{bytes_delayed_bdp, max_extra_buffer_bdp, LinearStart};
use simcore::{SimRng, Time};
use transport::{CcSpec, PrioPlusPolicy};

/// Fig 3 (motivation): D2TCP pair on the bottleneck.
fn fig03(c: &mut Criterion) {
    c.bench_function("fig03_d2tcp_pair", |b| {
        b.iter(|| {
            let mut m = Micro::build(&MicroEnv {
                senders: 2,
                end: Time::from_ms(2),
                trace: false,
                ..Default::default()
            });
            for (s, f) in [(1, 1.0), (2, 2.0)] {
                m.add_flow(
                    s,
                    2_000_000,
                    Time::ZERO,
                    0,
                    0,
                    &CcSpec::D2tcp {
                        deadline_factor: Some(f),
                    },
                );
            }
            m.sim.run().counters.events
        })
    });
}

/// Table 2: start-strategy analysis.
fn tab02(c: &mut Criterion) {
    c.bench_function("tab02_linear_start_analysis", |b| {
        b.iter(|| {
            let s = LinearStart { n: 8 };
            (bytes_delayed_bdp(&s), max_extra_buffer_bdp(&s))
        })
    });
}

/// Fig 7: noise model sampling.
fn fig07(c: &mut Criterion) {
    c.bench_function("fig07_noise_sampling_100k", |b| {
        let model = NoiseModel::testbed();
        b.iter(|| {
            let mut rng = SimRng::new(7);
            let mut acc = 0u64;
            for _ in 0..100_000 {
                acc = acc.wrapping_add(model.sample(&mut rng).as_ps());
            }
            acc
        })
    });
}

/// Fig 8/9 (testbed): 4-priority PrioPlus staircase, reduced horizon.
fn fig08(c: &mut Criterion) {
    c.bench_function("fig08_testbed_staircase", |b| {
        b.iter(|| {
            let mut m = Micro::build(&experiments::micro::testbed_env());
            let cc = CcSpec::PrioPlusSwift {
                policy: PrioPlusPolicy::paper_default(7),
            };
            for (i, prio) in [3u8, 4, 5, 6].iter().enumerate() {
                m.add_flow(1 + i % 4, 1_000_000, Time::from_ms(i as u64), 0, *prio, &cc);
            }
            m.sim.run().counters.events
        })
    });
}

/// Fig 10b: incast with cardinality estimation (reduced).
fn fig10(c: &mut Criterion) {
    c.bench_function("fig10b_incast_64_flows", |b| {
        b.iter(|| {
            let mut m = Micro::build(&MicroEnv {
                senders: 64,
                end: Time::from_ms(2),
                trace: false,
                ..Default::default()
            });
            let cc = CcSpec::PrioPlusSwift {
                policy: PrioPlusPolicy::paper_default(8),
            };
            for s in 1..=64 {
                m.add_flow(s, 500_000, Time::ZERO, 0, 4, &cc);
            }
            m.sim.run().counters.events
        })
    });
}

/// Fig 11/14/16: the flow-scheduling scenario (one reduced cell).
fn fig11(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_flow_scheduling");
    g.sample_size(10);
    for scheme in [Scheme::PhysicalStarSwift, Scheme::PrioPlusSwift] {
        g.bench_function(scheme.label(), |b| {
            b.iter(|| {
                let mut cfg = FlowSchedConfig::new(scheme, 4);
                cfg.duration = Time::from_ms(1);
                cfg.load = 0.5;
                flowsched::run(&cfg).flows.len()
            })
        });
    }
    g.finish();
}

/// Fig 12/15/17/18: the coflow scenario (one reduced cell).
fn fig12(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12_coflow");
    g.sample_size(10);
    for scheme in [Scheme::BaselineSwift, Scheme::PrioPlusSwift] {
        g.bench_function(scheme.label(), |b| {
            b.iter(|| {
                let mut cfg = CoflowConfig::new(scheme, 0.4);
                cfg.duration = Time::from_ms(2);
                coflowsched::run(&cfg).coflows.len()
            })
        });
    }
    g.finish();
}

/// Fig 12c: the ML-training scenario (one reduced cell).
fn fig12c(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12c_mltrain");
    g.sample_size(10);
    g.bench_function("prioplus", |b| {
        b.iter(|| {
            let mut cfg = MlConfig::new(Scheme::PrioPlusSwift);
            cfg.duration = Time::from_ms(10);
            mltrain::run(&cfg).iterations("all")
        })
    });
    g.finish();
}

/// Fig 13: non-congestive delay tolerance (one cell).
fn fig13(c: &mut Criterion) {
    c.bench_function("fig13_nc_delay_cell", |b| {
        b.iter(|| {
            let mut env = experiments::micro::testbed_env();
            env.end = Time::from_ms(5);
            env.switch.nc_delay = Some(NoiseModel::Uniform {
                range_ps: Time::from_us(10).as_ps(),
            });
            let mut m = Micro::build(&env);
            let cc = CcSpec::PrioPlusSwift {
                policy: PrioPlusPolicy {
                    noise: Time::from_us(10),
                    ..PrioPlusPolicy::paper_default(7)
                },
            };
            for s in 1..=4 {
                m.add_flow(s, 1_000_000, Time::ZERO, 0, 3 + (s as u8 % 4), &cc);
            }
            m.sim.run().completion_rate()
        })
    });
}

/// Appendix D: fluctuation bound vs measurement (one cell).
fn appd(c: &mut Criterion) {
    c.bench_function("appd_swift_fluctuation_8_flows", |b| {
        b.iter(|| {
            let mut m = Micro::build(&MicroEnv {
                senders: 8,
                end: Time::from_ms(3),
                trace: false,
                ..Default::default()
            });
            m.monitor_bottleneck_queue(Time::from_us(5));
            let swift = CcSpec::Swift {
                queuing: Time::from_us(4),
                scaling: false,
            };
            for s in 1..=8 {
                m.add_flow(s, 20_000_000, Time::ZERO, 0, 0, &swift);
            }
            m.sim.run().counters.events
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = fig03, tab02, fig07, fig08, fig10, fig11, fig12, fig12c, fig13, appd
}
criterion_main!(benches);
