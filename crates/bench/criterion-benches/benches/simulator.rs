//! Simulator micro-benchmarks: event throughput and end-to-end packet cost
//! of the netsim substrate. These are engineering benches (not paper
//! figures): they establish the events/sec budget the figure benches rely
//! on.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use experiments::micro::{Micro, MicroEnv};
use simcore::{EventQueue, Time};
use transport::CcSpec;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_schedule_pop_10k", |b| {
        b.iter_batched(
            EventQueue::<u64>::new,
            |mut q| {
                for i in 0..10_000u64 {
                    q.schedule(Time::from_ns(i * 13 % 9_999), i);
                }
                let mut acc = 0u64;
                while let Some((_, v)) = q.pop() {
                    acc = acc.wrapping_add(v);
                }
                acc
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_single_flow(c: &mut Criterion) {
    c.bench_function("sim_single_swift_flow_1mb", |b| {
        b.iter(|| {
            let mut m = Micro::build(&MicroEnv {
                senders: 1,
                end: Time::from_ms(2),
                trace: false,
                ..Default::default()
            });
            let swift = CcSpec::Swift {
                queuing: Time::from_us(4),
                scaling: false,
            };
            m.add_flow(1, 1_000_000, Time::ZERO, 0, 0, &swift);
            let res = m.sim.run();
            assert_eq!(res.completion_rate(), 1.0);
            res.counters.events
        })
    });
}

fn bench_incast(c: &mut Criterion) {
    c.bench_function("sim_incast_32x200kb_prioplus", |b| {
        b.iter(|| {
            let mut m = Micro::build(&MicroEnv {
                senders: 32,
                end: Time::from_ms(3),
                trace: false,
                ..Default::default()
            });
            let cc = CcSpec::PrioPlusSwift {
                policy: transport::PrioPlusPolicy::paper_default(8),
            };
            for s in 1..=32 {
                m.add_flow(s, 200_000, Time::ZERO, 0, (s % 8) as u8, &cc);
            }
            m.sim.run().counters.events
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_event_queue, bench_single_flow, bench_incast
}
criterion_main!(benches);
