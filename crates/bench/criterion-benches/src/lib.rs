//! Criterion benchmark harness for the PrioPlus reproduction.
//!
//! This crate carries no library logic; its `benches/` directory holds one
//! Criterion bench per paper table/figure plus simulator micro-benchmarks.
//! It is **excluded** from the workspace because criterion lives on
//! crates.io, which the offline tier-1 build cannot reach. Build it
//! explicitly (with network access) via
//! `cargo bench --manifest-path crates/bench/criterion-benches/Cargo.toml`.
//! The dependency-free perf harness is `cargo run --release -p
//! prioplus-bench --bin simbench`.
