//! `simbench`: the dependency-free performance harness.
//!
//! Runs fixed seeded scenarios, reports wall-clock and events/sec per
//! scenario, and writes `BENCH_simbench.json` at the repo root so the perf
//! trajectory is tracked PR-over-PR. Scenarios:
//!
//! - `event_queue[_quad|_calendar]`: raw [`EventQueue`] schedule/pop churn,
//!   with a cancelled timer per slot — the simulator's innermost loop in
//!   isolation, once per scheduler backend;
//! - `event_dense[_quad|_calendar]`: the hold-model dense-timer bench —
//!   65536 pending timers, 1M pops, each pop rescheduling uniformly within
//!   a 100 µs horizon — the regime calendar queues are built for;
//! - `incast_swift`: a 64-flow Swift incast on the single-switch topology;
//! - `incast_prioplus[_quad|_calendar]`: the same incast under
//!   PrioPlus+Swift (probes, virt priorities), per backend;
//! - `arena_churn`: a 32-flow HPCC incast with INT enabled — maximum packet
//!   and `IntPath`-box churn through the arena. Asserts the zero
//!   steady-state-allocation contract (slab growth == peak live packets,
//!   INT boxes bounded by the in-flight population) and reports the arena
//!   counters in the JSON so drift checks see allocation regressions;
//! - `incast_faults`: the Swift incast with a fault schedule installed —
//!   bottleneck flaps, random sender-link flaps, periodic pause storms —
//!   timing the fault overlay on the hot dequeue/arrival paths (the JSON
//!   extras carry the fault counters);
//! - `flowsched_k4`: one quick-scale fat-tree flow-scheduling run;
//! - `hyperscale_incast`: the hyperscale open-loop scenario at bench scale
//!   (k=8 fat-tree, streamed WebSearch + incast arrivals, streaming
//!   sketches, slab-reclaimed flow state) — the JSON extras carry the
//!   memory-budget counters (peak live flows, slab slots, peak bytes);
//! - `incast_hybrid` / `websearch_hybrid`: the hybrid packet/fluid model
//!   at 50 % background load — the fluid run is timed, and the JSON extras
//!   carry the packet-reference comparison (`event_reduction`,
//!   `wall_reduction`, foreground-FCT delta);
//! - `sweep_flowsched`: N quick flow-scheduling configs serial (`jobs=1`)
//!   vs parallel (`--jobs`/`PRIOPLUS_JOBS`/cores) — wall-clock speedup of
//!   the sweep runner;
//! - `warmstart_sweep`: 8 prefix-sharing configs in 2 warmup groups, cold
//!   (every config re-simulates its warmup) vs warm
//!   (`experiments::sweep::run_warm`: one warmup per group, snapshot, fork)
//!   on 1 worker — the `warmstart_reduction` factor in the JSON.
//!
//! The incast rows also report `batch_avg` (events per scheduler pop — the
//! same-timestamp batch amortization of `EventQueue::pop_batch`), and the
//! JSON top level records `cores`/`jobs_effective` so single-core runs
//! (where `sweep.speedup` ≈ 1.0 by construction) are interpretable.
//!
//! Timed sections run `REPS` times and keep the best (fastest) wall clock,
//! the standard way to damp scheduler noise without statistics deps.

use std::time::Instant;

use experiments::flowsched::{run_many, FlowSchedConfig};
use experiments::hybrid::{paired_fg_fct_us, HybridMode, HybridScenario};
use experiments::hyperscale::{run as hyperscale_run, HyperScheme, HyperscaleConfig};
use experiments::micro::{Micro, MicroEnv};
use experiments::report::json_string;
use experiments::sweep::default_jobs;
use experiments::Scheme;
use netsim::{FaultSchedule, NoiseModel};
use simcore::{EventQueue, SchedKind, Time};
use transport::{CcSpec, PrioPlusPolicy};

const REPS: usize = 3;

struct Scenario {
    name: &'static str,
    wall_ms: f64,
    events: u64,
    events_per_sec: f64,
    /// Extra JSON fields (ready-rendered, leading comma) appended to this
    /// scenario's line — allocation counters for `arena_churn`.
    extra: String,
}

/// Best-of-`REPS` timing of `f`, which returns the number of events (or
/// operations) it processed.
fn time_best(f: impl Fn() -> u64) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut events = 0;
    for _ in 0..REPS {
        let t0 = Instant::now();
        events = f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (best, events)
}

fn scenario(name: &'static str, f: impl Fn() -> u64) -> Scenario {
    let (secs, events) = time_best(f);
    let s = Scenario {
        name,
        wall_ms: secs * 1e3,
        events,
        events_per_sec: events as f64 / secs,
        extra: String::new(),
    };
    println!(
        "{:<26} {:>10.1} ms  {:>12} events  {:>14.0} events/s",
        s.name, s.wall_ms, s.events, s.events_per_sec
    );
    s
}

/// Raw event-queue churn: a sliding window of scheduled events with one
/// cancellable timer per step that is always cancelled and replaced —
/// mirroring the transports' per-ACK RTO reschedule pattern.
fn bench_event_queue(kind: SchedKind) -> u64 {
    const OPS: u64 = 2_000_000;
    let mut q: EventQueue<u64> = EventQueue::with_sched(kind);
    let mut rto = None;
    // Keep ~64 events pending so pops always have heap work to do.
    for i in 0..64u64 {
        q.schedule(Time::from_ns(i * 7 + 1), i);
    }
    let mut popped = 0u64;
    while popped < OPS {
        let (now, v) = q.pop().expect("queue never drains");
        popped += 1;
        if let Some(id) = rto.take() {
            q.cancel(id);
        }
        rto = Some(q.schedule_cancellable(now + Time::from_us(100), v));
        q.schedule(now + Time::from_ns(400 + (v % 13) * 31), v.wrapping_add(1));
    }
    popped
}

/// Hold-model dense-timer bench (Brown's classic calendar-queue workload):
/// a steady population of 65536 pending timers, each pop immediately
/// replaced by a fresh timer uniform in a 100 µs horizon. Heaps pay
/// O(log 65536) per op here; the calendar queue amortizes to O(1).
fn bench_event_dense(kind: SchedKind) -> u64 {
    const PENDING: u64 = 65_536;
    const OPS: u64 = 1_000_000;
    const HORIZON_PS: u64 = Time::from_us(100).as_ps();
    let mut rng: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    let mut q: EventQueue<u64> = EventQueue::with_sched(kind);
    for i in 0..PENDING {
        q.schedule(Time::from_ps(next() % HORIZON_PS + 1), i);
    }
    let mut popped = 0u64;
    while popped < OPS {
        let (now, v) = q.pop().expect("population is steady");
        popped += 1;
        q.schedule(now + Time::from_ps(next() % HORIZON_PS + 1), v);
    }
    popped
}

/// Incast under a chosen transport and scheduler backend. Writes
/// `[events, sched_pops]` into `stats` so the caller can report the batch
/// amortization (`batch_avg` = events per scheduler pop — how many
/// same-timestamp events each `pop_batch` drains in one interaction).
fn bench_incast(prioplus: bool, kind: SchedKind, stats: &std::cell::RefCell<[u64; 2]>) -> u64 {
    let n = 64;
    let mut m = Micro::build(&MicroEnv {
        senders: n,
        end: Time::from_ms(8),
        trace: false,
        seed: 7,
        noise: NoiseModel::testbed(),
        sched: kind,
        ..Default::default()
    });
    let cc = if prioplus {
        CcSpec::PrioPlusSwift {
            policy: PrioPlusPolicy::paper_default(8),
        }
    } else {
        CcSpec::Swift {
            queuing: Time::from_us(4),
            scaling: false,
        }
    };
    for s in 1..=n {
        m.add_flow(s, 2_000_000, Time::ZERO, 0, 4, &cc);
    }
    let res = m.sim.run();
    *stats.borrow_mut() = [res.counters.events, res.counters.sched_pops];
    res.counters.events
}

/// Build one incast scenario row with the batch-dispatch extras
/// (`sched_pops`, `batch_avg`).
fn incast_scenario(
    name: &'static str,
    prioplus: bool,
    kind: SchedKind,
) -> Scenario {
    let stats = std::cell::RefCell::new([0u64; 2]);
    let mut s = scenario(name, || bench_incast(prioplus, kind, &stats));
    let [events, pops] = *stats.borrow();
    let batch_avg = events as f64 / pops.max(1) as f64;
    s.extra = format!(", \"sched_pops\": {pops}, \"batch_avg\": {batch_avg:.3}");
    s
}

/// Maximum arena churn: an HPCC incast with INT enabled, so every data
/// packet carries (and recycles) an `IntPath` box. Returns the events
/// processed and writes the run's arena counters into `stats`
/// `[allocs, slab_slots, peak_live, int_allocs, int_recycled]`, asserting
/// the zero steady-state-allocation contract along the way.
fn bench_arena_churn(stats: &std::cell::RefCell<[u64; 5]>) -> u64 {
    let n = 32;
    let mut env = MicroEnv {
        senders: n,
        end: Time::from_ms(8),
        trace: false,
        seed: 13,
        noise: NoiseModel::testbed(),
        sched: SchedKind::Binary,
        ..Default::default()
    };
    env.switch.int_enabled = true;
    let mut m = Micro::build(&env);
    let cc = CcSpec::Hpcc;
    for s in 1..=n {
        m.add_flow(s, 1_000_000, Time::ZERO, 0, 4, &cc);
    }
    let res = m.sim.run();
    let c = &res.counters;
    // Zero steady-state heap allocation per packet: the slab only grows
    // when the live population reaches a new peak, and `IntPath` boxes are
    // bounded by the in-flight population, never by the packet count.
    assert_eq!(
        c.arena_slab_slots, c.arena_peak_live,
        "arena slab grew without a new live peak"
    );
    assert!(
        c.arena_allocs > 10 * c.arena_slab_slots.max(1),
        "churn too low to demonstrate slot reuse \
         (allocs {} vs slots {})",
        c.arena_allocs,
        c.arena_slab_slots
    );
    assert!(
        c.arena_int_allocs <= c.arena_peak_live.max(1),
        "IntPath boxes ({}) exceeded the in-flight population ({})",
        c.arena_int_allocs,
        c.arena_peak_live
    );
    *stats.borrow_mut() = [
        c.arena_allocs,
        c.arena_slab_slots,
        c.arena_peak_live,
        c.arena_int_allocs,
        c.arena_int_recycled,
    ];
    c.events
}

/// The Swift incast under a busy fault schedule: three fixed bottleneck
/// flaps (the port is saturated, so each catches packets in flight),
/// seed-driven flaps over eight sender links, and a periodic pause storm
/// on the bottleneck egress. Times the fault overlay in the hot loop and
/// writes the run's fault counters into `stats`
/// `[fault_events, fault_link_drops, fault_ctrl_drops]`.
fn bench_incast_faults(stats: &std::cell::RefCell<[u64; 3]>) -> u64 {
    let n = 64;
    let switch = n as u32 + 1;
    let horizon = Time::from_ms(8);
    let links: Vec<(u32, u16)> = (1..=8).map(|p| (switch, p as u16)).collect();
    let mut faults =
        FaultSchedule::random_flaps(&links, 23, horizon, Time::from_us(500), Time::from_us(50));
    for ms in [1u64, 3, 5] {
        faults.link_flap(
            switch,
            0,
            Time::from_ms(ms),
            Time::from_ms(ms) + Time::from_us(100),
        );
        faults.pause_storm(
            switch,
            0,
            0,
            Time::from_ms(ms + 1),
            Time::from_ms(ms + 1) + Time::from_us(100),
        );
    }
    let mut m = Micro::build(&MicroEnv {
        senders: n,
        end: horizon,
        trace: false,
        seed: 7,
        noise: NoiseModel::testbed(),
        sched: SchedKind::Binary,
        faults: Some(faults),
        ..Default::default()
    });
    let cc = CcSpec::Swift {
        queuing: Time::from_us(4),
        scaling: false,
    };
    for s in 1..=n {
        m.add_flow(s, 2_000_000, Time::ZERO, 0, 4, &cc);
    }
    let res = m.sim.run();
    let c = &res.counters;
    assert!(c.fault_events > 0, "fault schedule must apply");
    assert!(
        c.fault_link_drops > 0,
        "bottleneck flaps must catch packets in flight"
    );
    *stats.borrow_mut() = [c.fault_events, c.fault_link_drops, c.fault_ctrl_drops];
    c.events
}

/// Hybrid packet/fluid scenario: the fluid run is the timed scenario; the
/// packet-level reference run of the same background trace provides the
/// `event_reduction` / `wall_reduction` factors and the foreground-FCT
/// delta reported in the JSON extras.
/// The hyperscale open-loop scenario at bench scale: k=8 fat-tree (128
/// hosts), PrioPlus on one physical queue, streamed WebSearch + periodic
/// incast arrivals, streaming sketches on. Reports the memory-budget
/// counters (peak live flow state + arena) alongside events/s — the point
/// of the scenario is that both stay bounded while total flow lifetimes
/// grow with the trace.
fn bench_hyperscale(stats: &std::cell::RefCell<[u64; 6]>) -> u64 {
    let cfg = HyperscaleConfig {
        duration: Time::from_ms(1),
        ..HyperscaleConfig::quick(HyperScheme::PrioPlus)
    };
    let r = hyperscale_run(&cfg);
    *stats.borrow_mut() = [
        r.flows_total,
        r.finished,
        r.flow_live_peak,
        r.flow_slab_slots,
        r.flows_reclaimed,
        r.mem_budget_bytes,
    ];
    r.events
}

fn bench_hybrid(name: &'static str, sc: &HybridScenario) -> Scenario {
    let mut packet_wall = f64::INFINITY;
    let mut fluid_wall = f64::INFINITY;
    let mut packet_events = 0u64;
    let mut fluid_events = 0u64;
    let mut fct = (f64::NAN, f64::NAN);
    for _ in 0..REPS {
        let p = sc.run(HybridMode::PacketRef, None);
        let f = sc.run(HybridMode::Fluid, None);
        packet_wall = packet_wall.min(p.wall);
        fluid_wall = fluid_wall.min(f.wall);
        packet_events = p.events();
        fluid_events = f.events();
        fct = paired_fg_fct_us(&p, &f);
    }
    let event_reduction = packet_events as f64 / fluid_events as f64;
    let wall_reduction = packet_wall / fluid_wall;
    let fct_delta_pct = (fct.1 - fct.0) / fct.0 * 100.0;
    let s = Scenario {
        name,
        wall_ms: fluid_wall * 1e3,
        events: fluid_events,
        events_per_sec: fluid_events as f64 / fluid_wall,
        extra: format!(
            ", \"packet_wall_ms\": {:.3}, \"packet_events\": {packet_events}, \
             \"event_reduction\": {event_reduction:.3}, \
             \"wall_reduction\": {wall_reduction:.3}, \
             \"fg_fct_delta_pct\": {fct_delta_pct:.3}",
            packet_wall * 1e3
        ),
    };
    println!(
        "{:<26} {:>10.1} ms  {:>12} events  {:>14.0} events/s",
        s.name, s.wall_ms, s.events, s.events_per_sec
    );
    println!(
        "  {name}: packet ref {:.1} ms / {packet_events} events -> \
         {:.2}x events, {:.2}x wall, fg FCT delta {:+.2}%",
        packet_wall * 1e3,
        event_reduction,
        wall_reduction,
        fct_delta_pct
    );
    s
}

/// One config of the prefix-sharing warm-start sweep: `seed` selects the
/// shared warmup prefix, the probe size varies per config.
struct WarmCfg {
    seed: u64,
    probe_size: u64,
}

/// Shared warmup prefix for the warm-start sweep: an 8-sender PrioPlus
/// ramp, a pure function of `seed`.
fn warm_prefix(seed: u64) -> Micro {
    let mut m = Micro::build(&MicroEnv {
        senders: 9,
        end: Time::from_ms(4),
        trace: false,
        seed,
        noise: NoiseModel::testbed(),
        sched: SchedKind::Binary,
        ..Default::default()
    });
    let cc = CcSpec::PrioPlusSwift {
        policy: PrioPlusPolicy::paper_default(4),
    };
    for s in 1..=8 {
        m.add_flow(s, 1_500_000, Time::from_us(10 * s as u64), 0, (s % 4) as u8, &cc);
    }
    m
}

/// Per-config continuation after the shared horizon: sender 9 probes the
/// warmed-up bottleneck. Added post-horizon in both paths so the cold and
/// warm runs are bit-identical (pinned by `e2e_snapshot`).
fn warm_probe(sim: &mut netsim::Sim, cfg: &WarmCfg) {
    let start = Time::from_ms(3) + Time::from_us(10);
    let spec = netsim::FlowSpec::new(9, 0, cfg.probe_size, start);
    let cc = CcSpec::PrioPlusSwift {
        policy: PrioPlusPolicy::paper_default(4),
    };
    sim.add_flow(spec, |p| cc.make(p, start));
}

/// Prefix-sharing sweep, cold vs warm on 1 worker: 8 configs in 2 warmup
/// groups. Cold simulates every config's warmup prefix from scratch; warm
/// (`run_warm`) simulates each prefix once, snapshots, and forks. Returns
/// `(cold_s, warm_s, cache)` — the acceptance gate is
/// `cold_s / warm_s > 1.3` on one core.
fn bench_warmstart() -> (f64, f64, experiments::sweep::WarmCache) {
    let horizon = Time::from_ms(3);
    let configs: Vec<WarmCfg> = [31u64, 32]
        .into_iter()
        .flat_map(|seed| {
            (0..4u64).map(move |i| WarmCfg {
                seed,
                probe_size: 100_000 + 50_000 * i,
            })
        })
        .collect();
    let (cold_s, _) = time_best(|| {
        let mut events = 0;
        for cfg in &configs {
            let mut m = warm_prefix(cfg.seed);
            m.sim.run_until(horizon);
            warm_probe(&mut m.sim, cfg);
            events += m.sim.run().counters.events;
        }
        events
    });
    let cache = std::cell::Cell::new(experiments::sweep::WarmCache::default());
    let (warm_s, _) = time_best(|| {
        let report = experiments::sweep::run_warm(
            &configs,
            1,
            |cfg| cfg.seed,
            |cfg| {
                let mut m = warm_prefix(cfg.seed);
                m.sim.run_until(horizon);
                m.sim.snapshot()
            },
            |cfg, mut sim| {
                warm_probe(&mut sim, cfg);
                sim.run().counters.events
            },
        );
        cache.set(report.cache);
        report.results.iter().sum()
    });
    (cold_s, warm_s, cache.get())
}

fn flowsched_cfg(seed: u64) -> FlowSchedConfig {
    let mut cfg = FlowSchedConfig::new(Scheme::PrioPlusSwift, 4);
    cfg.k = 4;
    cfg.duration = Time::from_ms(2);
    cfg.seed = seed;
    cfg
}

fn main() {
    println!("simbench: fixed seeded scenarios, best of {REPS} runs\n");
    let mut scenarios = vec![
        scenario("event_queue", || bench_event_queue(SchedKind::Binary)),
        scenario("event_queue_quad", || bench_event_queue(SchedKind::Quad)),
        scenario("event_queue_calendar", || {
            bench_event_queue(SchedKind::Calendar)
        }),
        scenario("event_dense", || bench_event_dense(SchedKind::Binary)),
        scenario("event_dense_quad", || bench_event_dense(SchedKind::Quad)),
        scenario("event_dense_calendar", || {
            bench_event_dense(SchedKind::Calendar)
        }),
        incast_scenario("incast_swift", false, SchedKind::Binary),
        incast_scenario("incast_prioplus", true, SchedKind::Binary),
        incast_scenario("incast_prioplus_quad", true, SchedKind::Quad),
        incast_scenario("incast_prioplus_calendar", true, SchedKind::Calendar),
        scenario("flowsched_k4", || {
            let r = run_many(&[flowsched_cfg(11)], 1);
            r[0].events
        }),
    ];
    let arena_stats = std::cell::RefCell::new([0u64; 5]);
    let mut churn = scenario("arena_churn", || bench_arena_churn(&arena_stats));
    let [allocs, slots, peak, int_allocs, int_recycled] = *arena_stats.borrow();
    churn.extra = format!(
        ", \"arena_allocs\": {allocs}, \"arena_slab_slots\": {slots}, \
         \"arena_peak_live\": {peak}, \"arena_int_allocs\": {int_allocs}, \
         \"arena_int_recycled\": {int_recycled}"
    );
    println!(
        "  arena_churn counters: {allocs} allocs over {slots} slab slots \
         (peak live {peak}), {int_allocs} INT boxes, {int_recycled} recycles"
    );
    scenarios.push(churn);
    let fault_stats = std::cell::RefCell::new([0u64; 3]);
    let mut faults = scenario("incast_faults", || bench_incast_faults(&fault_stats));
    let [fault_events, fault_link_drops, fault_ctrl_drops] = *fault_stats.borrow();
    faults.extra = format!(
        ", \"fault_events\": {fault_events}, \"fault_link_drops\": {fault_link_drops}, \
         \"fault_ctrl_drops\": {fault_ctrl_drops}"
    );
    println!(
        "  incast_faults counters: {fault_events} fault transitions, \
         {fault_link_drops} data drops, {fault_ctrl_drops} control drops"
    );
    scenarios.push(faults);
    let hyper_stats = std::cell::RefCell::new([0u64; 6]);
    let mut hyper = scenario("hyperscale_incast", || bench_hyperscale(&hyper_stats));
    let [hflows, hdone, hpeak, hslots, hreclaimed, hbudget] = *hyper_stats.borrow();
    hyper.extra = format!(
        ", \"flows_total\": {hflows}, \"flows_finished\": {hdone}, \
         \"flow_live_peak\": {hpeak}, \"flow_slab_slots\": {hslots}, \
         \"flows_reclaimed\": {hreclaimed}, \"mem_budget_bytes\": {hbudget}"
    );
    println!(
        "  hyperscale_incast counters: {hflows} flows ({hdone} finished), \
         peak live {hpeak} over {hslots} slab slots, {hreclaimed} reclaimed, \
         {:.2} MB peak budget",
        hbudget as f64 / 1e6
    );
    scenarios.push(hyper);
    scenarios.push(bench_hybrid("incast_hybrid", &HybridScenario::incast(0.5)));
    scenarios.push(bench_hybrid(
        "websearch_hybrid",
        &HybridScenario::websearch(0.5),
    ));

    // Sweep speedup: the same config list serial vs parallel.
    let jobs = default_jobs();
    let cfgs: Vec<FlowSchedConfig> = (0..8).map(|i| flowsched_cfg(100 + i)).collect();
    let (serial_s, _) = time_best(|| run_many(&cfgs, 1).len() as u64);
    let (parallel_s, _) = time_best(|| run_many(&cfgs, jobs).len() as u64);
    let speedup = serial_s / parallel_s;
    println!(
        "\nsweep_flowsched    {} configs: serial {:.1} ms, parallel ({} effective jobs) {:.1} ms, speedup {:.2}x",
        cfgs.len(),
        serial_s * 1e3,
        jobs,
        parallel_s * 1e3,
        speedup
    );

    // Warm-start sweep: prefix-sharing configs, cold vs snapshot-forked.
    let (cold_s, warm_s, cache) = bench_warmstart();
    let warmstart_reduction = cold_s / warm_s;
    println!(
        "warmstart_sweep    {} configs in {} groups: cold {:.1} ms, warm {:.1} ms \
         ({} hits / {} misses), reduction {:.2}x",
        cache.hits + cache.misses,
        cache.groups,
        cold_s * 1e3,
        warm_s * 1e3,
        cache.hits,
        cache.misses,
        warmstart_reduction
    );

    // Write BENCH_simbench.json at the repo root. `cores` records the
    // machine the numbers came from — on a 1-core container the
    // sweep speedup row reads ≈1.0 by construction, not by regression.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = std::path::Path::new(root).join("BENCH_simbench.json");
    let mut json = format!(
        "{{\n  \"bench\": \"simbench\",\n  \"cores\": {cores},\n  \
         \"jobs_effective\": {jobs},\n  \"scenarios\": [\n"
    );
    for (i, s) in scenarios.iter().enumerate() {
        let comma = if i + 1 < scenarios.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"name\": {}, \"wall_ms\": {:.3}, \"events\": {}, \"events_per_sec\": {:.0}{}}}{comma}\n",
            json_string(s.name),
            s.wall_ms,
            s.events,
            s.events_per_sec,
            s.extra
        ));
    }
    json.push_str("  ],\n");
    // `jobs_effective` is the worker count the "parallel" leg actually ran
    // with — when it resolves to 1 (single-core CI, PRIOPLUS_JOBS=1) the
    // runner takes its serial bypass and the speedup is pure noise, so the
    // field must not read like a parallelism claim.
    json.push_str(&format!(
        "  \"sweep\": {{\"configs\": {}, \"jobs_effective\": {}, \"serial_ms\": {:.3}, \"parallel_ms\": {:.3}, \"speedup\": {:.3}}},\n",
        cfgs.len(),
        jobs,
        serial_s * 1e3,
        parallel_s * 1e3,
        speedup
    ));
    // Warm-start runs on 1 worker by design: the reduction measures the
    // snapshot fork saving re-simulated warmup prefixes, not parallelism.
    json.push_str(&format!(
        "  \"warmstart\": {{\"configs\": {}, \"groups\": {}, \"hits\": {}, \"misses\": {}, \
         \"cold_ms\": {:.3}, \"warm_ms\": {:.3}, \"warmstart_reduction\": {:.3}}}\n",
        cache.hits + cache.misses,
        cache.groups,
        cache.hits,
        cache.misses,
        cold_s * 1e3,
        warm_s * 1e3,
        warmstart_reduction
    ));
    json.push_str("}\n");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\nwarning: cannot write {}: {e}", path.display()),
    }
}
