//! Performance harness for the PrioPlus reproduction.
//!
//! The `simbench` binary (`cargo run --release -p prioplus-bench --bin
//! simbench`) runs fixed seeded scenarios with no external dependencies and
//! writes `BENCH_simbench.json` at the repo root. The criterion benches live
//! in the excluded `crates/bench/criterion-benches` crate (they need
//! crates.io, which tier-1 verify must not require).
