//! Criterion benchmark harness for the PrioPlus reproduction.
//!
//! This crate carries no library logic; its `benches/` directory holds one
//! Criterion bench per paper table/figure plus simulator micro-benchmarks.
