//! The PrioPlus state machine (Algorithm 1).
//!
//! The algorithm is expressed as a pure state machine so it can be unit- and
//! property-tested in isolation and bound to any transport. Inputs are delay
//! measurements (data ACKs and probe echoes); outputs are [`Action`]s the
//! transport executes (suspend + schedule probe, resume). Window and
//! additive-increase mutations are applied directly to the wrapped
//! [`DelayCc`].
//!
//! Mapping to Algorithm 1 in the paper:
//!
//! | Lines | Mechanism | Here |
//! |---|---|---|
//! | 2–6 | RTT rounds, dual-RTT toggle, end-of-adaptive-increase | [`PrioPlus::on_data_ack`] |
//! | 7–10 | 2-consecutive filter, cardinality estimate, stop + probe | same |
//! | 12–16 | linear start + countdown | same |
//! | 17–19 | dual-RTT adaptive increase | same |
//! | 21 | `OriginalCC(delay)` | [`DelayCc::on_ack`] |
//! | 22–24 | probe with collision avoidance | [`PrioPlus::schedule_probe`] |
//! | 25–34 | probe echo handling, resume | [`PrioPlus::on_probe_ack`] |
//!
//! One documented deviation: line 15 of the printed pseudocode reads
//! `#flow ← #flow · 2`, but §4.3.1's prose states the estimate is *halved*
//! when the countdown expires while the queue stays empty (and the probe
//! path, line 30, halves). Doubling would make flows *less* aggressive
//! exactly when the estimate is known to be too high, so we implement the
//! halving described in the prose.

use simcore::{Rate, SimRng, Time};

use crate::cc::DelayCc;

/// Static configuration of one PrioPlus flow.
#[derive(Clone, Copy, Debug)]
pub struct PrioPlusConfig {
    /// `D_target` of the flow's channel.
    pub d_target: Time,
    /// `D_limit` of the flow's channel.
    pub d_limit: Time,
    /// Base (no-queue) RTT.
    pub base_rtt: Time,
    /// Tolerance for the `delay == BaseRtt` comparison: the queue is deemed
    /// empty when `delay <= base_rtt + near_base_eps`. Operators set this to
    /// the same noise percentile used for the channel-width `B` allowance.
    pub near_base_eps: Time,
    /// Linear-start window step `W_LS` in bytes per RTT (§4.2.2, §4.4).
    pub w_ls: f64,
    /// Line rate of the contended path (for cardinality estimation).
    pub line_rate: Rate,
    /// Whether to probe before the first data transmission (recommended for
    /// middle/low priorities; high priorities start sending directly, §4.4).
    pub probe_before_start: bool,
    /// MTU in bytes (probe-resume conservative window = 1 packet, §4.4).
    pub mtu: u32,
    /// Seed for the collision-avoidance jitter.
    pub seed: u64,
    /// Run the adaptive increase every *two* RTTs (§4.2.3). `false` is the
    /// Fig 10c ablation: adaptive increase every RTT, which double-applies
    /// the step before its effect is observable and overshoots.
    pub dual_rtt: bool,
}

impl PrioPlusConfig {
    /// Base bandwidth-delay product in bytes.
    pub fn base_bdp(&self) -> f64 {
        self.line_rate.bdp_bytes(self.base_rtt) as f64
    }
}

/// What the transport must do after feeding a measurement to the algorithm.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    /// Keep going (window changes, if any, were applied to the CC).
    Continue,
    /// Higher-priority traffic detected: stop transmitting data and send one
    /// probe after the given delay (relative to now).
    StopAndProbe {
        /// Wait this long before sending the probe.
        probe_in: Time,
    },
    /// Still contended: send the next probe after the given delay.
    ProbeAgain {
        /// Wait this long before sending the probe.
        probe_in: Time,
    },
    /// Contention is over: resume data transmission (the window has been
    /// set appropriately).
    Resume,
}

/// The PrioPlus enhancement wrapped around a delay-based CC.
#[derive(Clone, Debug)]
pub struct PrioPlus<C: DelayCc> {
    cfg: PrioPlusConfig,
    cc: C,
    rng: SimRng,
    /// Estimated number of active same-priority flows (`#flow`), ≥ 1.
    nflow: f64,
    /// RTTs of observed-empty queue before the cardinality estimate is
    /// halved.
    countdown: u64,
    /// Consecutive above-`D_limit` measurements (the noise filter, §4.3.1).
    consec: u32,
    /// Sequence marking the end of the current RTT round.
    rtt_end_seq: u64,
    /// An RTT round boundary passed since the last window adjustment.
    rtt_pass: bool,
    /// Toggles every RTT; adaptive increase runs only when `true` (§4.2.3).
    dual_rtt_pass: bool,
    /// Data transmission is suspended (probing).
    suspended: bool,
    started: bool,
}

impl<C: DelayCc> PrioPlus<C> {
    /// Wrap `cc` (already configured with `D_target` as its target delay and
    /// target scaling disabled) with PrioPlus behavior.
    pub fn new(cfg: PrioPlusConfig, cc: C) -> Self {
        assert!(cfg.d_target > cfg.base_rtt, "D_target must exceed base RTT");
        assert!(cfg.d_limit > cfg.d_target, "D_limit must exceed D_target");
        assert!(cfg.w_ls > 0.0);
        let rng = SimRng::new(cfg.seed);
        PrioPlus {
            cfg,
            cc,
            rng,
            nflow: 1.0,
            countdown: 0,
            consec: 0,
            rtt_end_seq: 0,
            rtt_pass: false,
            dual_rtt_pass: false,
            suspended: false,
            started: false,
        }
    }

    /// Access the wrapped CC.
    pub fn cc(&self) -> &C {
        &self.cc
    }

    /// Mutable access to the wrapped CC (transport-layer integration).
    pub fn cc_mut(&mut self) -> &mut C {
        &mut self.cc
    }

    /// Configuration.
    pub fn config(&self) -> &PrioPlusConfig {
        &self.cfg
    }

    /// Estimated flow cardinality (diagnostics).
    pub fn nflow(&self) -> f64 {
        self.nflow
    }

    /// True while data transmission is suspended (probing).
    pub fn suspended(&self) -> bool {
        self.suspended
    }

    /// Current congestion window in bytes.
    pub fn cwnd(&self) -> f64 {
        self.cc.cwnd()
    }

    /// Flow start (§4.4): high-priority / latency-sensitive flows linear-
    /// start immediately; others probe first.
    pub fn on_flow_start(&mut self) -> Action {
        self.started = true;
        if self.cfg.probe_before_start {
            self.suspended = true;
            // First probe goes out immediately (no backlog estimate yet).
            Action::StopAndProbe {
                probe_in: Time::ZERO,
            }
        } else {
            self.cc.set_cwnd(self.cfg.w_ls);
            Action::Continue
        }
    }

    /// True when `delay` is indistinguishable from the base RTT (empty
    /// queue).
    fn near_base(&self, delay: Time) -> bool {
        delay <= self.cfg.base_rtt + self.cfg.near_base_eps
    }

    /// Probe scheduling with collision avoidance (Algorithm 1 lines 22–24):
    /// wait `(delay - D_target) + random(0..BaseRtt)`.
    fn schedule_probe(&mut self, delay: Time) -> Time {
        let backlog = delay.saturating_sub(self.cfg.d_target);
        let jitter = Time::from_ps(self.rng.below(self.cfg.base_rtt.as_ps().max(1)));
        backlog + jitter
    }

    /// Process the ACK of a data packet (Algorithm 1, `NewAck`).
    ///
    /// * `delay` — measured delay, normalized to the data base RTT;
    /// * `acked_seq` — sequence of the acknowledged packet;
    /// * `snd_nxt` — the transport's next-to-send sequence;
    /// * `acked_bytes` — payload bytes acknowledged;
    /// * `now` — current time.
    pub fn on_data_ack(
        &mut self,
        delay: Time,
        acked_seq: u64,
        snd_nxt: u64,
        acked_bytes: u32,
        now: Time,
    ) -> Action {
        if self.suspended {
            // Residual ACKs of data that was in flight when we stopped keep
            // flowing through lines 7–10: they carry the *largest* delays of
            // the backlog we created, so they are the best cardinality
            // samples, and they push the pending probe out to when the
            // queue can actually have drained (ScheduleProbe(delay)).
            // Resumption itself is owned by the probe path.
            if delay >= self.cfg.d_limit {
                self.consec += 1;
                if self.consec >= 2 {
                    self.consec = 0;
                    if self.cc.cwnd() >= 2.0 * self.cfg.mtu as f64 {
                        let inflight = self.cfg.line_rate.bytes_in(delay) as f64;
                        let est = inflight / self.cc.cwnd().max(1.0);
                        self.nflow = self.nflow.max(est).max(1.0);
                    }
                    self.cc.set_ai(self.cc.ai_origin() / self.nflow);
                    self.countdown = (self.cfg.base_bdp() / self.cfg.w_ls).ceil() as u64;
                    return Action::ProbeAgain {
                        probe_in: self.schedule_probe(delay),
                    };
                }
            } else {
                self.consec = 0;
            }
            return Action::Continue;
        }
        // Lines 2–6: RTT round bookkeeping.
        if acked_seq >= self.rtt_end_seq {
            self.rtt_pass = true;
            self.rtt_end_seq = snd_nxt;
            self.dual_rtt_pass = !self.dual_rtt_pass;
            if !self.dual_rtt_pass || !self.cfg.dual_rtt {
                // End of an adaptive-increase round: restore the AI step.
                // (In the per-RTT ablation every round ends immediately.)
                self.cc.set_ai(self.cc.ai_origin() / self.nflow);
            }
        }
        // Lines 7–10: the 2-consecutive filter and suspension.
        if delay >= self.cfg.d_limit {
            self.consec += 1;
            if self.consec >= 2 {
                self.consec = 0;
                // Delay-based flow cardinality estimation (§4.3.1):
                // inflight = delay * LineRate; #flow ~= inflight / cwnd.
                // The formula assumes this flow's window approximates the
                // per-flow fair share; a flow squeezed to a sub-MTU window
                // has no information about the peer count and would produce
                // a runaway overestimate (and with the `max` ratchet, a
                // permanently crippled AI step), so such samples are
                // skipped.
                if self.cc.cwnd() >= 2.0 * self.cfg.mtu as f64 {
                    let inflight = self.cfg.line_rate.bytes_in(delay) as f64;
                    let est = inflight / self.cc.cwnd().max(1.0);
                    self.nflow = self.nflow.max(est).max(1.0);
                }
                self.cc.set_ai(self.cc.ai_origin() / self.nflow);
                self.countdown = (self.cfg.base_bdp() / self.cfg.w_ls).ceil() as u64;
                self.suspended = true;
                return Action::StopAndProbe {
                    probe_in: self.schedule_probe(delay),
                };
            }
        } else {
            self.consec = 0;
        }
        // Lines 12–19: once per RTT, below-target window management.
        if delay <= self.cfg.d_target && self.rtt_pass {
            self.rtt_pass = false;
            if self.near_base(delay) {
                // Linear start (§4.2.2): accelerate by W_LS/#flow per RTT.
                self.cc
                    .set_cwnd(self.cc.cwnd() + self.cfg.w_ls / self.nflow);
                self.tick_countdown();
            } else if self.dual_rtt_pass || !self.cfg.dual_rtt {
                // Dual-RTT adaptive increase (§4.2.3): raise delay to
                // D_target within one RTT, capped at cwnd/2.
                let cwnd = self.cc.cwnd();
                let gap = (self.cfg.d_target.as_ps() as f64 - delay.as_ps() as f64)
                    / delay.as_ps() as f64;
                let step = (gap * cwnd).min(cwnd / 2.0).max(0.0);
                self.cc.set_ai(self.cc.ai() + step);
            }
        }
        // Line 21: the original CC processes the sample.
        self.cc.on_ack(delay, acked_bytes, now);
        Action::Continue
    }

    /// Countdown mechanism (§4.3.1): one empty-queue RTT consumes one tick;
    /// at zero, the cardinality estimate is halved (stale overestimate).
    fn tick_countdown(&mut self) {
        if self.countdown == 0 {
            self.nflow = (self.nflow / 2.0).max(1.0);
        } else {
            self.countdown -= 1;
        }
    }

    /// Process a probe echo (Algorithm 1, `NewProbeAck`).
    ///
    /// `snd_nxt` is the transport's next-to-send sequence, used to restart
    /// RTT-round tracking on resume.
    pub fn on_probe_ack(&mut self, delay: Time, snd_nxt: u64) -> Action {
        if delay >= self.cfg.d_limit {
            // Still contended: keep probing (line 27).
            return Action::ProbeAgain {
                probe_in: self.schedule_probe(delay),
            };
        }
        if self.near_base(delay) {
            // Empty path: linear start (lines 28–31).
            self.cc.set_cwnd(self.cfg.w_ls / self.nflow);
            if self.countdown == 0 {
                self.nflow = (self.nflow / 2.0).max(1.0);
            } else {
                self.countdown -= 1;
            }
        } else {
            // Delay in (BaseRtt, D_limit): same-priority (or lower) traffic
            // at work; resume conservatively with one packet (§4.4) and let
            // the dual-RTT adaptive increase raise the delay.
            self.cc.set_cwnd(self.cfg.mtu as f64);
        }
        self.suspended = false;
        self.consec = 0;
        self.rtt_end_seq = snd_nxt;
        self.rtt_pass = false;
        self.dual_rtt_pass = false;
        Action::Resume
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::SimpleAimd;

    fn cfg() -> PrioPlusConfig {
        PrioPlusConfig {
            d_target: Time::from_us(16),
            d_limit: Time::from_us_f64(18.4),
            base_rtt: Time::from_us(12),
            near_base_eps: Time::from_us_f64(0.8),
            w_ls: 150_000.0, // 1 base BDP at 100G/12us
            line_rate: Rate::from_gbps(100),
            probe_before_start: true,
            mtu: 1000,
            seed: 7,
            dual_rtt: true,
        }
    }

    fn pp(probe_start: bool) -> PrioPlus<SimpleAimd> {
        let c = cfg();
        let cc = SimpleAimd::new(c.d_target, 1000.0, 10_000.0, 1e9);
        PrioPlus::new(
            PrioPlusConfig {
                probe_before_start: probe_start,
                ..c
            },
            cc,
        )
    }

    #[test]
    fn start_with_probe_suspends() {
        let mut p = pp(true);
        assert_eq!(
            p.on_flow_start(),
            Action::StopAndProbe {
                probe_in: Time::ZERO
            }
        );
        assert!(p.suspended());
    }

    #[test]
    fn start_without_probe_linear_starts() {
        let mut p = pp(false);
        assert_eq!(p.on_flow_start(), Action::Continue);
        assert!(!p.suspended());
        assert_eq!(p.cwnd(), 150_000.0);
    }

    #[test]
    fn filter_requires_two_consecutive_over_limit() {
        let mut p = pp(false);
        p.on_flow_start();
        let over = Time::from_us(25);
        let under = Time::from_us(14);
        // One over-limit sample: no suspension (noise filter).
        assert_eq!(
            p.on_data_ack(over, 0, 10_000, 1000, Time::from_us(1)),
            Action::Continue
        );
        assert!(!p.suspended());
        // An under-limit sample resets the filter.
        p.on_data_ack(under, 1000, 11_000, 1000, Time::from_us(2));
        p.on_data_ack(over, 2000, 12_000, 1000, Time::from_us(3));
        assert!(!p.suspended());
        // Two consecutive over-limit samples: suspend.
        let a = p.on_data_ack(over, 3000, 13_000, 1000, Time::from_us(4));
        assert!(matches!(a, Action::StopAndProbe { .. }));
        assert!(p.suspended());
    }

    #[test]
    fn probe_delay_within_collision_avoidance_bounds() {
        let c = cfg();
        for seed in 0..50 {
            let mut p = PrioPlus::new(
                PrioPlusConfig { seed, ..c },
                SimpleAimd::new(c.d_target, 1000.0, 10_000.0, 1e9),
            );
            p.on_flow_start(); // suspended
            let delay = Time::from_us(30);
            let Action::ProbeAgain { probe_in } = p.on_probe_ack(delay, 0) else {
                panic!("expected ProbeAgain");
            };
            // (delay - D_target) <= probe_in < (delay - D_target) + BaseRtt
            let lo = Time::from_us(14);
            let hi = Time::from_us(26);
            assert!(probe_in >= lo && probe_in < hi, "probe_in {probe_in}");
        }
    }

    #[test]
    fn cardinality_estimated_from_inflight() {
        let mut p = pp(false);
        p.on_flow_start();
        p.cc_mut().set_cwnd(10_000.0);
        let over = Time::from_us(24); // inflight = 24us * 100G = 300 KB
        p.on_data_ack(over, 0, 10_000, 1000, Time::from_us(1));
        p.on_data_ack(over, 1000, 11_000, 1000, Time::from_us(2));
        assert!(p.suspended());
        // #flow ~= 300000/10000 = 30.
        assert!((p.nflow() - 30.0).abs() < 2.0, "nflow {}", p.nflow());
        // AI scaled down accordingly.
        assert!((p.cc().ai() - 1000.0 / p.nflow()).abs() < 1.0);
    }

    #[test]
    fn probe_ack_near_base_resumes_with_linear_start() {
        let mut p = pp(true);
        p.on_flow_start();
        let a = p.on_probe_ack(Time::from_us(12), 0);
        assert_eq!(a, Action::Resume);
        assert!(!p.suspended());
        assert_eq!(p.cwnd(), 150_000.0); // W_LS / #flow(=1)
    }

    #[test]
    fn probe_ack_mid_channel_resumes_with_one_packet() {
        let mut p = pp(true);
        p.on_flow_start();
        let a = p.on_probe_ack(Time::from_us(14), 0);
        assert_eq!(a, Action::Resume);
        assert_eq!(p.cwnd(), 1000.0);
    }

    #[test]
    fn probe_ack_over_limit_keeps_probing() {
        let mut p = pp(true);
        p.on_flow_start();
        let a = p.on_probe_ack(Time::from_us(30), 0);
        assert!(matches!(a, Action::ProbeAgain { .. }));
        assert!(p.suspended());
    }

    #[test]
    fn linear_start_increments_once_per_rtt() {
        let mut p = pp(false);
        p.on_flow_start();
        let base = Time::from_us(12);
        let w0 = p.cwnd();
        // First ack of a new RTT round: +W_LS.
        p.on_data_ack(base, 0, 150_000, 1000, Time::from_us(13));
        let w1 = p.cwnd();
        assert!(w1 >= w0 + 150_000.0, "w1 {w1}");
        // Subsequent acks in the same round do not add W_LS again (only the
        // original CC's AI applies).
        p.on_data_ack(base, 1000, 150_000, 1000, Time::from_us(14));
        let w2 = p.cwnd();
        assert!(w2 - w1 < 10_000.0, "w2-w1 {}", w2 - w1);
    }

    #[test]
    fn adaptive_increase_caps_at_half_cwnd() {
        let mut p = pp(false);
        p.on_flow_start();
        p.cc_mut().set_cwnd(100_000.0);
        // delay 13us, target 16us: gap factor = 3/13 = 0.23 < 0.5: full step.
        // Force dual_rtt_pass true by crossing one RTT boundary.
        let d = Time::from_us(13);
        p.on_data_ack(d, 0, 100_000, 1000, Time::from_us(13));
        let ai_after = p.cc().ai();
        // step = min(cwnd/2, 0.2308*cwnd) ~= 23077.
        assert!(
            (ai_after - (1000.0 + 23_076.9)).abs() < 100.0,
            "ai {ai_after}"
        );
    }

    #[test]
    fn adaptive_increase_every_other_rtt() {
        let mut p = pp(false);
        p.on_flow_start();
        p.cc_mut().set_cwnd(100_000.0);
        let d = Time::from_us(13);
        // RTT 1: dual_rtt_pass flips to true -> adaptive increase.
        p.on_data_ack(d, 0, 100_000, 1000, Time::from_us(13));
        assert!(p.cc().ai() > 20_000.0);
        // RTT 2: flips to false -> AI restored to origin/#flow.
        p.on_data_ack(d, 100_000, 200_000, 1000, Time::from_us(26));
        assert!((p.cc().ai() - 1000.0).abs() < 1.0, "ai {}", p.cc().ai());
    }

    #[test]
    fn countdown_halves_cardinality_after_expiry() {
        let mut p = pp(false);
        p.on_flow_start();
        p.cc_mut().set_cwnd(2_000.0);
        let over = Time::from_us(24);
        p.on_data_ack(over, 0, 2_000, 1000, Time::from_us(1));
        p.on_data_ack(over, 1000, 2_000, 1000, Time::from_us(2));
        let n0 = p.nflow();
        assert!(n0 > 100.0);
        // countdown = ceil(BaseBdp / W_LS) = 1 (W_LS = 1 BDP).
        // Resume via probe at base RTT (consumes one tick), then empty-queue
        // RTTs halve the estimate.
        p.on_probe_ack(Time::from_us(12), 2_000);
        let base = Time::from_us(12);
        let mut seq = 2_000u64;
        for i in 0..6 {
            p.on_data_ack(base, seq, seq + 1_000, 1000, Time::from_us(20 + i));
            seq += 1_000;
        }
        assert!(
            p.nflow() < n0 / 4.0,
            "cardinality should decay: {} -> {}",
            n0,
            p.nflow()
        );
    }

    #[test]
    fn suspended_ignores_below_limit_data_acks() {
        let mut p = pp(true);
        p.on_flow_start();
        let a = p.on_data_ack(Time::from_us(12), 0, 0, 1000, Time::from_us(1));
        assert_eq!(a, Action::Continue);
        assert!(p.suspended());
    }

    #[test]
    fn suspended_residual_acks_update_cardinality_and_reprobe() {
        let mut p = pp(false);
        p.on_flow_start();
        p.cc_mut().set_cwnd(75_000.0);
        // Suspend via two over-limit acks at a moderate delay.
        let over = Time::from_us(24);
        p.on_data_ack(over, 0, 75_000, 1000, Time::from_us(1));
        p.on_data_ack(over, 1000, 75_000, 1000, Time::from_us(2));
        assert!(p.suspended());
        let n_before = p.nflow();
        // Residual backlog acks arrive with far larger delays: the estimate
        // must ratchet up and the probe must be pushed out accordingly.
        let huge = Time::from_us(240); // inflight = 3 MB at 100G
        p.on_data_ack(huge, 2000, 75_000, 1000, Time::from_us(3));
        let a = p.on_data_ack(huge, 3000, 75_000, 1000, Time::from_us(4));
        assert!(matches!(a, Action::ProbeAgain { .. }), "{a:?}");
        assert!(
            p.nflow() > n_before * 2.0,
            "residual acks must improve the estimate: {} -> {}",
            n_before,
            p.nflow()
        );
        assert!(p.suspended());
    }

    #[test]
    #[should_panic(expected = "D_target must exceed base RTT")]
    fn rejects_target_below_base() {
        let c = PrioPlusConfig {
            d_target: Time::from_us(10),
            ..cfg()
        };
        PrioPlus::new(c, SimpleAimd::new(Time::from_us(10), 1.0, 1.0, 1.0));
    }
}
