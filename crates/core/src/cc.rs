//! The contract between PrioPlus and its underlying delay-based CC.
//!
//! PrioPlus "can integrate with most delay-based CCs that set a target delay
//! for flows and adjust their windows or rates to maintain the delay close
//! to this target" (§4.1). The integration points are exactly the ones the
//! paper modifies in its Swift DPDK implementation:
//!
//! 1. the CC's **target delay** is set to the channel's `D_target` (and any
//!    target-scaling is disabled);
//! 2. PrioPlus may **overwrite the congestion window** (linear start, probe
//!    resume);
//! 3. PrioPlus may **tune the additive-increase step** `W_AI` (cardinality
//!    scaling, dual-RTT adaptive increase).

use simcore::Time;

/// A window-based delay-targeting congestion controller, as seen by
/// PrioPlus.
///
/// All windows are in **bytes** and may be fractional (sub-MTU windows are
/// realized by pacing in the transport layer).
pub trait DelayCc {
    /// Process one delay sample (a data ACK) and update the window. This is
    /// the `OriginalCC(delay)` call of Algorithm 1 line 21.
    fn on_ack(&mut self, delay: Time, acked_bytes: u32, now: Time);

    /// Current congestion window in bytes.
    fn cwnd(&self) -> f64;

    /// Overwrite the congestion window (clamped to the CC's own bounds).
    fn set_cwnd(&mut self, bytes: f64);

    /// Current additive-increase step in bytes per RTT.
    fn ai(&self) -> f64;

    /// Overwrite the additive-increase step in bytes per RTT.
    fn set_ai(&mut self, bytes_per_rtt: f64);

    /// The CC's *original* (configured) additive-increase step,
    /// `W_AIorigin` in Algorithm 1.
    fn ai_origin(&self) -> f64;

    /// The CC's target delay (= the channel's `D_target` after
    /// integration).
    fn target_delay(&self) -> Time;

    /// Audit hook: verify the controller's internal invariants (window
    /// within its clamp bounds, finite values). Returns a description of
    /// the first violated invariant. Default: no checks.
    fn check_invariants(&self) -> Result<(), String> {
        Ok(())
    }
}

/// A minimal reference [`DelayCc`] used in unit tests and documentation: an
/// AIMD controller with target delay, mirroring the fragment of Swift that
/// PrioPlus interacts with.
#[derive(Clone, Debug)]
pub struct SimpleAimd {
    cwnd: f64,
    ai: f64,
    ai_origin: f64,
    target: Time,
    min_cwnd: f64,
    max_cwnd: f64,
    /// Multiplicative-decrease factor per above-target sample.
    pub beta: f64,
    /// Maximum fractional decrease per decision.
    pub max_mdf: f64,
    last_decrease: Time,
    rtt_hint: Time,
}

impl SimpleAimd {
    /// New controller with the given target and AI step.
    pub fn new(target: Time, ai_bytes: f64, init_cwnd: f64, max_cwnd: f64) -> Self {
        SimpleAimd {
            cwnd: init_cwnd,
            ai: ai_bytes,
            ai_origin: ai_bytes,
            target,
            min_cwnd: 64.0,
            max_cwnd,
            beta: 0.8,
            max_mdf: 0.5,
            last_decrease: Time::ZERO,
            rtt_hint: Time::from_us(12),
        }
    }
}

impl DelayCc for SimpleAimd {
    fn on_ack(&mut self, delay: Time, acked_bytes: u32, now: Time) {
        if delay < self.target {
            // Additive increase, spread per-ACK: ai * acked/cwnd.
            let inc = self.ai * acked_bytes as f64 / self.cwnd.max(1.0);
            self.cwnd += inc;
        } else if now.saturating_sub(self.last_decrease) >= self.rtt_hint {
            let over = (delay.as_ps() - self.target.as_ps()) as f64 / delay.as_ps() as f64;
            let factor = (1.0 - self.beta * over).max(1.0 - self.max_mdf);
            self.cwnd *= factor;
            self.last_decrease = now;
        }
        self.cwnd = self.cwnd.clamp(self.min_cwnd, self.max_cwnd);
    }

    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn set_cwnd(&mut self, bytes: f64) {
        self.cwnd = bytes.clamp(self.min_cwnd, self.max_cwnd);
    }

    fn ai(&self) -> f64 {
        self.ai
    }

    fn set_ai(&mut self, bytes_per_rtt: f64) {
        self.ai = bytes_per_rtt;
    }

    fn ai_origin(&self) -> f64 {
        self.ai_origin
    }

    fn target_delay(&self) -> Time {
        self.target
    }

    fn check_invariants(&self) -> Result<(), String> {
        if !self.cwnd.is_finite() {
            return Err(format!("cwnd {} is not finite", self.cwnd));
        }
        if self.cwnd < self.min_cwnd || self.cwnd > self.max_cwnd {
            return Err(format!(
                "cwnd {} outside [{}, {}]",
                self.cwnd, self.min_cwnd, self.max_cwnd
            ));
        }
        if !self.ai.is_finite() || self.ai < 0.0 {
            return Err(format!("ai step {} invalid", self.ai));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aimd_increases_below_target() {
        let mut cc = SimpleAimd::new(Time::from_us(16), 1000.0, 10_000.0, 1e9);
        let before = cc.cwnd();
        cc.on_ack(Time::from_us(12), 1000, Time::from_us(1));
        assert!(cc.cwnd() > before);
    }

    #[test]
    fn aimd_decreases_above_target_once_per_rtt() {
        let mut cc = SimpleAimd::new(Time::from_us(16), 1000.0, 10_000.0, 1e9);
        cc.on_ack(Time::from_us(32), 1000, Time::from_us(20));
        let after_first = cc.cwnd();
        assert!(after_first < 10_000.0);
        // Second decrease within the same RTT is suppressed.
        cc.on_ack(Time::from_us(32), 1000, Time::from_us(21));
        assert_eq!(cc.cwnd(), after_first);
    }

    #[test]
    fn decrease_bounded_by_max_mdf() {
        let mut cc = SimpleAimd::new(Time::from_us(10), 1000.0, 10_000.0, 1e9);
        cc.on_ack(Time::from_ms(10), 1000, Time::from_us(20));
        assert!(cc.cwnd() >= 5_000.0 - 1e-9);
    }

    #[test]
    fn set_cwnd_clamps() {
        let mut cc = SimpleAimd::new(Time::from_us(10), 1000.0, 10_000.0, 100_000.0);
        cc.set_cwnd(0.0);
        assert_eq!(cc.cwnd(), 64.0);
        cc.set_cwnd(1e12);
        assert_eq!(cc.cwnd(), 100_000.0);
    }
}
