//! Delay-channel configuration (§4.3.2) and the Swift fluctuation model
//! (Appendix D).
//!
//! A channel for priority `i` is the delay range `[D_target^i, D_limit^i]`.
//! Channel width must accommodate (a) the CC's normal delay fluctuation `A`
//! and (b) the tolerable delay-measurement noise `B`:
//!
//! ```text
//! D_target^i = BaseRtt + (i + 1) * (A + B)
//! D_limit^i  = D_target^i + A/2 + B
//! ```
//!
//! With the paper's values (A = 3.2 µs for 150 Swift flows, B = 0.8 µs at
//! the 99.85th noise percentile) each channel spans 4 µs and
//! `D_limit - D_target = 2.4 µs`, exactly the thresholds used throughout
//! the evaluation.

use simcore::{Rate, Time};

/// Channel thresholds generator for a ladder of virtual priorities.
#[derive(Clone, Copy, Debug)]
pub struct ChannelConfig {
    /// Base (no-queue) RTT of the environment.
    pub base_rtt: Time,
    /// `A`: allowance for the CC's normal delay fluctuation.
    pub fluct: Time,
    /// `B`: allowance for delay-measurement noise (a high percentile of the
    /// measured noise distribution).
    pub noise: Time,
}

impl ChannelConfig {
    /// New configuration from base RTT, fluctuation allowance `A` and noise
    /// allowance `B`.
    pub fn new(base_rtt: Time, fluct: Time, noise: Time) -> Self {
        ChannelConfig {
            base_rtt,
            fluct,
            noise,
        }
    }

    /// The paper's evaluation configuration: 4 µs channels
    /// (A = 3.2 µs, B = 0.8 µs).
    pub fn paper_default(base_rtt: Time) -> Self {
        ChannelConfig::new(base_rtt, Time::from_us_f64(3.2), Time::from_us_f64(0.8))
    }

    /// Channel width `A + B`.
    pub fn width(&self) -> Time {
        self.fluct + self.noise
    }

    /// Target delay of priority `prio` (0 = lowest).
    pub fn d_target(&self, prio: u8) -> Time {
        self.base_rtt + Time::from_ps(self.width().as_ps() * (prio as u64 + 1))
    }

    /// Limit delay of priority `prio`: `D_target + A/2 + B`.
    pub fn d_limit(&self, prio: u8) -> Time {
        self.d_target(prio) + Time::from_ps(self.fluct.as_ps() / 2) + self.noise
    }

    /// Verify the strict-ordering invariant of §4.1:
    /// `D_limit^{i-1} < D_target^i < D_limit^i` for every adjacent pair in
    /// `0..n`.
    pub fn is_well_ordered(&self, n: u8) -> bool {
        (1..n).all(|i| self.d_limit(i - 1) < self.d_target(i) && self.d_target(i) < self.d_limit(i))
    }
}

/// Worst-case delay fluctuation of `n` synchronized Swift flows
/// (Appendix D):
///
/// ```text
/// fluct = n*W_AI/LineRate + max(n*beta*W_AI/(LineRate*Target), max_mdf) * Target
/// ```
///
/// Operators size `A` with this bound for the expected flow count; the
/// flow-cardinality estimator handles excursions beyond it (§4.3.2).
pub fn swift_fluctuation(
    n: usize,
    w_ai_bytes: f64,
    line_rate: Rate,
    target: Time,
    beta: f64,
    max_mdf: f64,
) -> Time {
    let line_bytes_per_ps = line_rate.as_bps() as f64 / 8.0 / 1e12;
    let up = n as f64 * w_ai_bytes / line_bytes_per_ps; // ps
    let down_frac =
        (n as f64 * beta * w_ai_bytes / (line_bytes_per_ps * target.as_ps() as f64)).max(max_mdf);
    let down = down_frac * target.as_ps() as f64;
    Time::from_ps((up + down).round() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper() -> ChannelConfig {
        ChannelConfig::paper_default(Time::from_us(12))
    }

    #[test]
    fn paper_thresholds_match_section_4_3_2() {
        let c = paper();
        // Channel width 4us; D_target^i = base + 4*(i+1); D_limit = +2.4us.
        assert_eq!(c.width(), Time::from_us(4));
        assert_eq!(c.d_target(0), Time::from_us(16));
        assert_eq!(c.d_limit(0), Time::from_us_f64(18.4));
        assert_eq!(c.d_target(4), Time::from_us(32)); // Fig 10b: 20us + base
        assert_eq!(c.d_limit(4), Time::from_us_f64(34.4));
    }

    #[test]
    fn ladder_is_well_ordered() {
        assert!(paper().is_well_ordered(12));
    }

    #[test]
    fn degenerate_zero_noise_still_ordered() {
        let c = ChannelConfig::new(Time::from_us(12), Time::from_us(2), Time::ZERO);
        assert!(c.is_well_ordered(8));
    }

    #[test]
    fn overlapping_channels_detected() {
        // A/2 + B > A + B can't happen with the formula, so force a
        // contradiction: zero width but positive limit offset.
        let c = ChannelConfig::new(Time::from_us(12), Time::ZERO, Time::ZERO);
        // Zero-width channels collapse: d_limit(i-1) == d_target(i).
        assert!(!c.is_well_ordered(2));
    }

    #[test]
    fn swift_fluctuation_monotone_in_n() {
        let t = Time::from_us(16);
        let r = Rate::from_gbps(100);
        let f10 = swift_fluctuation(10, 150.0, r, t, 0.8, 0.5);
        let f150 = swift_fluctuation(150, 150.0, r, t, 0.8, 0.5);
        assert!(f150 > f10);
    }

    #[test]
    fn swift_fluctuation_150_flows_near_paper_allowance() {
        // The paper allocates A = 3.2us for "fluctuations of 150 swift
        // flows". With W_AI sized so the bound lands near that allowance,
        // the formula should be in the low-microsecond range.
        let t = Time::from_us(16);
        let r = Rate::from_gbps(100);
        let f = swift_fluctuation(150, 150.0, r, t, 0.8, 0.5);
        let us = f.as_us_f64();
        assert!((1.0..10.0).contains(&us), "fluctuation {us}us");
    }

    #[test]
    fn max_mdf_floor_applies_for_small_n() {
        let t = Time::from_us(16);
        let r = Rate::from_gbps(100);
        // One flow: the decrease term is dominated by max_mdf * target.
        let f = swift_fluctuation(1, 150.0, r, t, 0.8, 0.5);
        assert!(f >= Time::from_us(8), "{f}");
    }
}
