//! # PrioPlus — virtual priority for data center congestion control
//!
//! This crate implements the core contribution of *"Enabling Virtual
//! Priority in Data Center Congestion Control"* (EuroSys '25): **PrioPlus**,
//! a congestion-control *enhancement* that emulates an arbitrary number of
//! strict priorities inside a single physical switch queue.
//!
//! ## How it works
//!
//! Every virtual priority `i` is assigned a *delay channel*
//! `[D_target^i, D_limit^i]`, with larger thresholds for higher priorities
//! (see [`channel::ChannelConfig`]). A flow of priority `i`:
//!
//! - steers the path delay toward `D_target^i` using its underlying
//!   delay-based congestion controller (any implementation of
//!   [`cc::DelayCc`], e.g. Swift or LEDBAT);
//! - **suspends transmission** when the measured delay exceeds `D_limit^i`
//!   in two consecutive samples — higher-priority flows are present — and
//!   switches to *probing with collision avoidance* (§4.2.1);
//! - **linear-starts** when the delay equals the base RTT, accelerating by
//!   `W_LS` per RTT, the provably backlog-minimal ramp ([`linear_start`],
//!   Theorem 4.1);
//! - raises the delay into its channel with the **dual-RTT adaptive
//!   increase** when only lower-priority traffic is present (§4.2.3);
//! - bounds delay fluctuation under many flows with **delay-based flow
//!   cardinality estimation** (§4.3.1).
//!
//! The algorithm itself ([`algorithm::PrioPlus`]) is a pure, deterministic
//! state machine: delays in, actions out. It is independent of any
//! simulator or network stack — the `transport` crate binds it to the
//! `netsim` simulator exactly the way the paper's 79-line DPDK patch binds
//! it to a Swift implementation.
//!
//! ## Quick example
//!
//! ```
//! use prioplus::channel::ChannelConfig;
//! use simcore::Time;
//!
//! // Channels per the paper (§4.3.2): A = 3.2us CC fluctuation allowance,
//! // B = 0.8us tolerable delay noise, base RTT 12us.
//! let chan = ChannelConfig::new(Time::from_us(12), Time::from_us_f64(3.2),
//!                               Time::from_us_f64(0.8));
//! // Priority 7 (8 priorities, highest): D_target = 12 + 8*4 = 44us.
//! assert_eq!(chan.d_target(7), Time::from_us(44));
//! assert_eq!(chan.d_limit(7), Time::from_us_f64(46.4));
//! ```

#![warn(missing_docs)]

pub mod algorithm;
pub mod cc;
pub mod channel;
pub mod linear_start;
pub mod weighted;

pub use algorithm::{Action, PrioPlus, PrioPlusConfig};
pub use cc::DelayCc;
pub use channel::ChannelConfig;
pub use weighted::WeightedCc;
