//! Start-strategy analysis (§4.2.2, Table 2, Theorem 4.1).
//!
//! A flow ramping from rate 0 to the line rate over `n` RTTs trades off
//! *bytes delayed* (area between the line-rate start and its ramp) against
//! *worst-case extra buffer* (data over-sent during the one-RTT detection
//! lag after the link saturates). The paper proves (Appendix C, variational
//! method) that the **linear** ramp minimizes the worst-case backlog for a
//! given ramp duration; this module provides both the closed-form Table 2
//! values and a numerical evaluator that reproduces them (and verifies the
//! theorem against arbitrary ramp shapes).
//!
//! All quantities are normalized: rate in units of line rate, time in units
//! of RTT, data in units of BDP.

/// A start strategy as a normalized rate curve `r(t)`: `t` in RTTs,
/// result in `[0, 1]` line-rate units.
pub trait StartStrategy {
    /// Normalized rate at time `t` (RTTs). Must be non-decreasing with
    /// `r(0) = start` and `r(t) = 1` for `t >= duration`.
    fn rate(&self, t: f64) -> f64;
    /// RTTs until line rate.
    fn duration(&self) -> f64;
    /// Name for reporting.
    fn name(&self) -> &'static str;
}

/// Start at the line rate immediately (RDMA-style blind start).
pub struct LineRateStart;

impl StartStrategy for LineRateStart {
    fn rate(&self, _t: f64) -> f64 {
        1.0
    }
    fn duration(&self) -> f64 {
        0.0
    }
    fn name(&self) -> &'static str {
        "line-rate"
    }
}

/// TCP-style exponential start: rate doubles each RTT from `1/2^(n-1)` so
/// that line rate is reached after `n` RTTs.
pub struct ExponentialStart {
    /// RTTs to reach line rate.
    pub n: u32,
}

impl StartStrategy for ExponentialStart {
    fn rate(&self, t: f64) -> f64 {
        if t >= self.n as f64 {
            return 1.0;
        }
        // Piecewise-constant doubling per RTT: at t in [k, k+1) the rate is
        // 2^(k-n), so the last ramp RTT [n-1, n) runs at 1/2 and line rate
        // is reached at t = n.
        let k = t.floor() as i32;
        (2f64).powi(k - self.n as i32).min(1.0)
    }
    fn duration(&self) -> f64 {
        self.n as f64
    }
    fn name(&self) -> &'static str {
        "exponential"
    }
}

/// PrioPlus linear start: rate grows by `1/n` line rate per RTT.
pub struct LinearStart {
    /// RTTs to reach line rate.
    pub n: u32,
}

impl StartStrategy for LinearStart {
    fn rate(&self, t: f64) -> f64 {
        (t / self.n as f64).min(1.0)
    }
    fn duration(&self) -> f64 {
        self.n as f64
    }
    fn name(&self) -> &'static str {
        "linear"
    }
}

/// Bytes (in BDP) delayed relative to a line-rate start over the ramp:
/// `integral of (1 - r(t)) dt` from 0 to the ramp duration.
pub fn bytes_delayed_bdp(s: &dyn StartStrategy) -> f64 {
    integrate(|t| 1.0 - s.rate(t), 0.0, s.duration().max(1e-9), 20_000)
}

/// Worst-case extra buffer (in BDP): the residual path capacity is some
/// unknown `c` in `[0, 1]` line-rate units; the link saturates at the first
/// time `a` with `r(a) >= c`, and the flow only observes the build-up one
/// RTT later, so it over-sends `integral from a to a+1 of (r(t) - c)+ dt`
/// (Appendix C). The worst case maximizes over `c`.
pub fn max_extra_buffer_bdp(s: &dyn StartStrategy) -> f64 {
    let dur = s.duration();
    let steps = 2_000;
    let mut worst: f64 = 0.0;
    for i in 0..=steps {
        let c = i as f64 / steps as f64;
        // First time the ramp meets the residual capacity.
        let mut a = 0.0;
        let scan = 4_000;
        for j in 0..=scan {
            let t = dur * j as f64 / scan as f64;
            a = t;
            if s.rate(t) >= c {
                break;
            }
        }
        let b = integrate(|t| (s.rate(t) - c).max(0.0), a, a + 1.0, 2_000);
        worst = worst.max(b);
    }
    worst
}

fn integrate(f: impl Fn(f64) -> f64, lo: f64, hi: f64, steps: usize) -> f64 {
    let h = (hi - lo) / steps as f64;
    let mut acc = 0.0;
    for i in 0..steps {
        let t = lo + (i as f64 + 0.5) * h;
        acc += f(t);
    }
    acc * h
}

/// The closed-form Table 2 entries for a ramp of `n` RTTs:
/// `(bytes_delayed_bdp, max_extra_buffer_bdp)`.
pub fn table2_closed_form(strategy: &str, n: u32) -> (f64, f64) {
    let nf = n as f64;
    match strategy {
        "line-rate" => (0.0, 1.0),
        // Exponential (per-RTT steps 2^(k-n)): delayed = sum over k of
        // (1 - 2^(k-n)) = n - 1 + 2^{-n}. The paper quotes n - 3/2 using a
        // mid-step convention; both are "n minus a constant". Worst buffer:
        // residual just above 1/2, the last step jumps to line rate -> 1/2
        // BDP over-sent.
        "exponential" => (nf - 1.0 + (2f64).powi(-(n as i32)), 0.5),
        // Linear: delayed = n/2; worst buffer = 1/(2n).
        "linear" => (nf / 2.0, 1.0 / (2.0 * nf)),
        other => panic!("unknown strategy {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_matches_closed_form() {
        for n in [2u32, 4, 8, 16] {
            let s = LinearStart { n };
            let (d, b) = table2_closed_form("linear", n);
            assert!((bytes_delayed_bdp(&s) - d).abs() < 0.01, "n={n}");
            assert!((max_extra_buffer_bdp(&s) - b).abs() < 0.01, "n={n}");
        }
    }

    #[test]
    fn exponential_matches_closed_form() {
        for n in [3u32, 5, 8] {
            let s = ExponentialStart { n };
            let (d, b) = table2_closed_form("exponential", n);
            assert!(
                (bytes_delayed_bdp(&s) - d).abs() < 0.02,
                "n={n}: {} vs {}",
                bytes_delayed_bdp(&s),
                d
            );
            assert!((max_extra_buffer_bdp(&s) - b).abs() < 0.02, "n={n}");
        }
    }

    #[test]
    fn line_rate_start_is_instant_but_buffers_a_bdp() {
        let s = LineRateStart;
        assert!(bytes_delayed_bdp(&s) < 1e-6);
        assert!((max_extra_buffer_bdp(&s) - 1.0).abs() < 0.01);
    }

    #[test]
    fn theorem_4_1_linear_beats_other_ramps_of_same_duration() {
        // Among ramps reaching line rate in n RTTs, linear minimizes the
        // worst-case backlog (Theorem 4.1). Check against exponential and a
        // couple of convex/concave power ramps.
        struct PowerRamp {
            n: u32,
            p: f64,
        }
        impl StartStrategy for PowerRamp {
            fn rate(&self, t: f64) -> f64 {
                (t / self.n as f64).clamp(0.0, 1.0).powf(self.p)
            }
            fn duration(&self) -> f64 {
                self.n as f64
            }
            fn name(&self) -> &'static str {
                "power"
            }
        }
        let n = 8;
        let linear = max_extra_buffer_bdp(&LinearStart { n });
        for p in [0.5, 2.0, 3.0] {
            let other = max_extra_buffer_bdp(&PowerRamp { n, p });
            assert!(
                linear <= other + 1e-6,
                "linear {linear} must beat power({p}) {other}"
            );
        }
        let exp = max_extra_buffer_bdp(&ExponentialStart { n });
        assert!(linear < exp);
    }

    #[test]
    fn tradeoff_direction_matches_table2() {
        // line-rate: no delay, max buffer; linear: some delay, minimal
        // buffer; exponential: most delay, large buffer.
        let n = 8;
        let (d_line, b_line) = table2_closed_form("line-rate", n);
        let (d_exp, b_exp) = table2_closed_form("exponential", n);
        let (d_lin, b_lin) = table2_closed_form("linear", n);
        assert!(d_line < d_lin && d_lin < d_exp);
        assert!(b_lin < b_exp && b_exp < b_line);
    }
}
