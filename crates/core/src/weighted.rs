//! Weighted virtual priority (§7, future work).
//!
//! The paper's PrioPlus provides *strict* priority: higher channels preempt
//! all bandwidth. Its §7 discusses the weighted variant — groups sharing
//! bandwidth in proportion to weights — and notes the classic approach
//! (weight-scaled AIMD, Crowcroft & Oechslin [32]) plus its failure mode:
//! *priority inversion*, where enough low-weight flows collectively out-
//! compete a high-weight group.
//!
//! This module implements the weighted-AIMD building block as a [`DelayCc`]
//! adaptor so it can be studied inside the same harness:
//!
//! - additive increase is scaled **up** by the weight (`ai' = w * ai`);
//! - multiplicative decrease is scaled **down** (`cut' = cut / w`);
//!
//! which converges to per-flow bandwidth shares proportional to `w` under
//! a shared congestion signal. The priority-inversion caveat follows
//! directly: shares are per *flow*, so `n` weight-1 flows get `n/(n + w)`
//! of the link against one weight-`w` flow — exactly the effect the paper
//! flags as future work (see `tests/` and the `ablation` bench).

use simcore::Time;

use crate::cc::DelayCc;

/// Weight-scaled AIMD wrapper around any [`DelayCc`].
#[derive(Clone, Debug)]
pub struct WeightedCc<C: DelayCc> {
    inner: C,
    weight: f64,
}

impl<C: DelayCc> WeightedCc<C> {
    /// Wrap `inner` with weight `w > 0`. The inner CC's AI step is scaled
    /// immediately.
    pub fn new(mut inner: C, weight: f64) -> Self {
        assert!(weight > 0.0, "weight must be positive");
        let ai = inner.ai_origin() * weight;
        inner.set_ai(ai);
        WeightedCc { inner, weight }
    }

    /// The flow's weight.
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// Borrow the wrapped CC.
    pub fn inner(&self) -> &C {
        &self.inner
    }
}

impl<C: DelayCc> DelayCc for WeightedCc<C> {
    fn on_ack(&mut self, delay: Time, acked_bytes: u32, now: Time) {
        if delay < self.inner.target_delay() {
            self.inner.on_ack(delay, acked_bytes, now);
        } else {
            // Dampen the decrease: let the inner CC cut, then restore a
            // (1 - 1/w) fraction of the loss, which realizes cut/w for any
            // inner multiplicative-decrease rule.
            let before = self.inner.cwnd();
            self.inner.on_ack(delay, acked_bytes, now);
            let after = self.inner.cwnd();
            if after < before && self.weight > 1.0 {
                let cut = before - after;
                let damped = cut / self.weight;
                self.inner.set_cwnd(before - damped);
            }
        }
    }

    fn cwnd(&self) -> f64 {
        self.inner.cwnd()
    }

    fn set_cwnd(&mut self, bytes: f64) {
        self.inner.set_cwnd(bytes);
    }

    fn ai(&self) -> f64 {
        self.inner.ai()
    }

    fn set_ai(&mut self, bytes_per_rtt: f64) {
        // External AI overrides (e.g. PrioPlus cardinality scaling) are
        // themselves weight-scaled so the relative aggressiveness holds.
        self.inner.set_ai(bytes_per_rtt * self.weight);
    }

    fn ai_origin(&self) -> f64 {
        self.inner.ai_origin() * self.weight
    }

    fn target_delay(&self) -> Time {
        self.inner.target_delay()
    }
}

/// Expected steady-state bandwidth share of a flow with weight `w` against
/// `n_others` unit-weight flows under weighted AIMD (per-flow shares are
/// proportional to weights — the priority-inversion formula from §7).
pub fn expected_share(w: f64, n_others: usize) -> f64 {
    w / (w + n_others as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::SimpleAimd;

    fn mk(weight: f64) -> WeightedCc<SimpleAimd> {
        WeightedCc::new(
            SimpleAimd::new(Time::from_us(16), 1000.0, 10_000.0, 1e9),
            weight,
        )
    }

    #[test]
    fn ai_scaled_by_weight() {
        let c = mk(4.0);
        assert_eq!(c.ai(), 4_000.0);
        assert_eq!(c.ai_origin(), 4_000.0);
    }

    #[test]
    fn increase_is_faster_for_heavier_flows() {
        let mut a = mk(1.0);
        let mut b = mk(4.0);
        for i in 0..10 {
            a.on_ack(Time::from_us(12), 1000, Time::from_us(i));
            b.on_ack(Time::from_us(12), 1000, Time::from_us(i));
        }
        let ga = a.cwnd() - 10_000.0;
        let gb = b.cwnd() - 10_000.0;
        // Slightly below 4x because the AI increment is ai*acked/cwnd and
        // the heavier flow's window compounds faster within the burst.
        assert!(
            (3.2..4.2).contains(&(gb / ga)),
            "gain ratio {} should be ~weight ratio",
            gb / ga
        );
    }

    #[test]
    fn decrease_is_damped_for_heavier_flows() {
        let mut a = mk(1.0);
        let mut b = mk(4.0);
        let over = Time::from_us(32);
        a.on_ack(over, 1000, Time::from_us(100));
        b.on_ack(over, 1000, Time::from_us(100));
        let cut_a = 10_000.0 - a.cwnd();
        let cut_b = 10_000.0 - b.cwnd();
        assert!(
            (cut_a / cut_b - 4.0).abs() < 0.2,
            "cut ratio {} should be ~weight ratio",
            cut_a / cut_b
        );
    }

    #[test]
    fn unit_weight_is_transparent() {
        let mut w = mk(1.0);
        let mut plain = SimpleAimd::new(Time::from_us(16), 1000.0, 10_000.0, 1e9);
        for i in 0..20 {
            let d = if i % 3 == 0 {
                Time::from_us(30)
            } else {
                Time::from_us(13)
            };
            w.on_ack(d, 1000, Time::from_us(i * 20));
            plain.on_ack(d, 1000, Time::from_us(i * 20));
        }
        assert!((w.cwnd() - plain.cwnd()).abs() < 1e-6);
    }

    #[test]
    fn inversion_formula() {
        // One weight-8 flow against 32 unit flows: 8/40 = 20% — inverted
        // despite the 8x weight (the §7 caveat).
        assert!((expected_share(8.0, 32) - 0.2).abs() < 1e-9);
        assert!(expected_share(8.0, 1) > 0.88);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_rejected() {
        mk(0.0);
    }
}
