//! Property-based tests of the PrioPlus state machine: structural
//! invariants must hold under arbitrary delay-measurement sequences.

use prioplus::cc::SimpleAimd;
use prioplus::{Action, PrioPlus, PrioPlusConfig};
use proptest::prelude::*;
use simcore::{Rate, Time};

fn cfg(probe_start: bool, seed: u64) -> PrioPlusConfig {
    PrioPlusConfig {
        d_target: Time::from_us(32),
        d_limit: Time::from_us_f64(34.4),
        base_rtt: Time::from_us(12),
        near_base_eps: Time::from_us_f64(0.8),
        w_ls: 37_500.0,
        line_rate: Rate::from_gbps(100),
        probe_before_start: probe_start,
        mtu: 1000,
        seed,
        dual_rtt: true,
    }
}

fn machine(probe_start: bool, seed: u64) -> PrioPlus<SimpleAimd> {
    let c = cfg(probe_start, seed);
    PrioPlus::new(c, SimpleAimd::new(c.d_target, 1000.0, c.w_ls, 10_000_000.0))
}

/// Replays a delay sequence through the machine, alternating data and probe
/// paths according to suspension state, and checks invariants after every
/// step.
fn replay(delays: Vec<u32>, probe_start: bool, seed: u64) -> Result<(), TestCaseError> {
    let mut m = machine(probe_start, seed);
    m.on_flow_start();
    let mut seq = 0u64;
    for (i, &d_us10) in delays.iter().enumerate() {
        // delays in tenth-microseconds over [12us, 100us].
        let delay = Time::from_ps(Time::from_us(12).as_ps() + d_us10 as u64 * 100_000);
        let now = Time::from_us(13 * (i as u64 + 1));
        let action = if m.suspended() {
            m.on_probe_ack(delay, seq)
        } else {
            seq += 1000;
            m.on_data_ack(delay, seq - 1000, seq, 1000, now)
        };
        // Invariants.
        prop_assert!(m.nflow() >= 1.0, "nflow {}", m.nflow());
        prop_assert!(m.nflow() <= 1e6, "nflow exploded: {}", m.nflow());
        prop_assert!(m.cwnd() > 0.0);
        match action {
            Action::StopAndProbe { probe_in } | Action::ProbeAgain { probe_in } => {
                prop_assert!(m.suspended());
                // Collision avoidance bound: backlog + at most one base RTT.
                let max = delay.saturating_sub(m.config().d_target)
                    + m.config().base_rtt
                    + Time::from_ns(1);
                prop_assert!(probe_in <= max, "probe_in {probe_in} > {max}");
            }
            Action::Resume => {
                prop_assert!(!m.suspended());
            }
            Action::Continue => {}
        }
        // Suspension discipline: data path never runs while suspended
        // (enforced here by construction), and a suspended machine must be
        // waiting on a probe (cannot be reached through Continue from the
        // probe path).
        if m.suspended() {
            prop_assert!(!matches!(action, Action::Resume));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256 })]

    #[test]
    fn invariants_hold_for_arbitrary_delay_sequences(
        delays in proptest::collection::vec(0u32..880, 1..200),
        probe_start in any::<bool>(),
        seed in 0u64..1_000,
    ) {
        replay(delays, probe_start, seed)?;
    }

    /// Below-limit delays never suspend the flow.
    #[test]
    fn no_suspension_below_limit(
        delays in proptest::collection::vec(0u32..220, 1..100), // <= 34us < D_limit
        seed in 0u64..100,
    ) {
        let mut m = machine(false, seed);
        m.on_flow_start();
        let mut seq = 0;
        for (i, &d) in delays.iter().enumerate() {
            let delay = Time::from_ps(Time::from_us(12).as_ps() + d as u64 * 100_000);
            prop_assert!(delay < m.config().d_limit);
            seq += 1000;
            m.on_data_ack(delay, seq - 1000, seq, 1000, Time::from_us(13 * (i as u64 + 1)));
            prop_assert!(!m.suspended());
        }
    }

    /// One isolated over-limit spike (noise) never suspends — the two-
    /// consecutive filter must absorb it.
    #[test]
    fn single_spikes_filtered(
        good in 1u32..200,
        spike in 300u32..800,
        seed in 0u64..100,
    ) {
        let mut m = machine(false, seed);
        m.on_flow_start();
        let base = Time::from_us(12).as_ps();
        let mut seq = 0u64;
        for i in 0..40 {
            let d = if i % 4 == 3 { spike } else { good };
            let delay = Time::from_ps(base + d as u64 * 100_000);
            seq += 1000;
            m.on_data_ack(delay, seq - 1000, seq, 1000, Time::from_us(13 * (i + 1)));
            prop_assert!(!m.suspended(), "suspended by isolated spike at step {i}");
        }
    }

    /// Two consecutive over-limit measurements always suspend.
    #[test]
    fn double_over_limit_always_suspends(
        over in 230u32..880,
        seed in 0u64..100,
    ) {
        let mut m = machine(false, seed);
        m.on_flow_start();
        let base = Time::from_us(12).as_ps();
        let delay = Time::from_ps(base + over as u64 * 100_000);
        prop_assert!(delay >= m.config().d_limit);
        m.on_data_ack(delay, 0, 1000, 1000, Time::from_us(13));
        let a = m.on_data_ack(delay, 1000, 2000, 1000, Time::from_us(26));
        prop_assert!(matches!(a, Action::StopAndProbe { .. }), "{a:?}");
        prop_assert!(m.suspended());
    }

    /// The machine always recovers: after suspension, a near-base probe echo
    /// resumes with a positive window.
    #[test]
    fn near_base_probe_always_resumes(
        pre in proptest::collection::vec(0u32..880, 0..50),
        seed in 0u64..100,
    ) {
        let mut m = machine(true, seed);
        m.on_flow_start();
        let mut seq = 0u64;
        for (i, &d) in pre.iter().enumerate() {
            let delay = Time::from_ps(Time::from_us(12).as_ps() + d as u64 * 100_000);
            if m.suspended() {
                m.on_probe_ack(delay, seq);
            } else {
                seq += 1000;
                m.on_data_ack(delay, seq - 1000, seq, 1000, Time::from_us(13 * (i as u64 + 1)));
            }
        }
        // Force suspension, then a clean probe.
        let over = Time::from_us(50);
        if !m.suspended() {
            m.on_data_ack(over, seq, seq + 1000, 1000, Time::from_ms(2));
            m.on_data_ack(over, seq, seq + 1000, 1000, Time::from_ms(3));
        }
        prop_assert!(m.suspended());
        let a = m.on_probe_ack(Time::from_us(12), seq);
        prop_assert_eq!(a, Action::Resume);
        prop_assert!(!m.suspended());
        prop_assert!(m.cwnd() >= 64.0);
    }
}
