//! Appendix B: extending virtual priority to ECN-based CCs by scaling the
//! switch's marking threshold with the packet's (DSCP-carried) virtual
//! priority — lower priorities see marks first and yield.
//!
//! Two DCTCP flows share one physical queue. Without the extension, ECN's
//! single-bit signal slows both (the §3.1 failure); with priority-scaled
//! marking, the low-priority flow backs off first and the high-priority
//! flow keeps (most of) the link. As the paper notes, this needs a switch
//! change, so it is a direction, not a deployable PrioPlus feature.

use experiments::micro::{Micro, MicroEnv};
use experiments::report::f3;
use experiments::Table;
use netsim::SwitchConfig;
use simcore::Time;
use transport::CcSpec;

fn run(scaled: bool) -> (f64, f64) {
    let mut m = Micro::build(&MicroEnv {
        senders: 2,
        end: Time::from_ms(6),
        trace: true,
        switch: SwitchConfig {
            ecn_kmin: 30_000,
            ecn_kmax: 90_000,
            ecn_pmax: 1.0,
            ecn_prio_scaled: scaled,
            ..Default::default()
        },
        ..Default::default()
    });
    let cc = CcSpec::D2tcp {
        deadline_factor: None, // plain DCTCP
    };
    // virt_prio rides in the DSCP field; both flows share phys queue 0.
    let hi = m.add_flow(1, 60_000_000, Time::ZERO, 0, 6, &cc);
    let lo = m.add_flow(2, 60_000_000, Time::ZERO, 0, 0, &cc);
    let res = m.sim.run();
    let g = |id: u32| {
        res.traces[&id]
            .throughput
            .as_ref()
            .unwrap()
            .series_gbps()
            .window_mean(2_000.0, 6_000.0)
            .unwrap_or(0.0)
    };
    (g(hi), g(lo))
}

fn main() {
    let mut t = Table::new(
        "Appendix B: DCTCP pair in one queue — plain vs priority-scaled ECN marking",
        &["marking", "high-prio Gbps", "low-prio Gbps", "high share"],
    );
    for scaled in [false, true] {
        let (hi, lo) = run(scaled);
        t.row(vec![
            if scaled { "prio-scaled" } else { "plain" }.into(),
            f3(hi),
            f3(lo),
            f3(hi / (hi + lo).max(1e-9)),
        ]);
    }
    t.emit("appb_ecn");
    println!(
        "Expected: plain marking gives ~fair sharing (the §3.1 failure);\n\
         priority-scaled marking pushes most of the link to the high priority."
    );
}
