//! Appendix D / Figure 19: Swift's worst-case delay fluctuation under
//! synchronized flows, analytic bound vs simulation.
//!
//! The bound: `n*W_AI/LineRate + max(n*beta*W_AI/(LineRate*Target),
//! max_mdf) * Target`. We run n synchronized Swift flows on the
//! micro-benchmark bottleneck, measure the peak-to-trough delay swing in
//! steady state, and check it stays within the analytic bound (which is a
//! worst case, so measured <= bound).

use experiments::micro::{Micro, MicroEnv};
use experiments::report::f3;
use experiments::Table;
use prioplus::channel::swift_fluctuation;
use simcore::{Rate, Time};
use transport::CcSpec;

fn measure(n: usize) -> f64 {
    let mut m = Micro::build(&MicroEnv {
        senders: n,
        end: Time::from_ms(10),
        trace: false,
        ..Default::default()
    });
    m.monitor_bottleneck_queue(Time::from_us(2));
    let swift = CcSpec::Swift {
        queuing: Time::from_us(4),
        scaling: false,
    };
    for s in 1..=n {
        m.add_flow(s, 100_000_000, Time::ZERO, 0, 0, &swift);
    }
    let res = m.sim.run();
    let (_, q) = &res.monitors[0];
    // Steady-state swing (5..10ms) in delay-microseconds at 100 Gbps.
    let max = q.window_max(5_000.0, 10_000.0).unwrap();
    let min = q
        .t_us
        .iter()
        .zip(&q.v)
        .filter(|(t, _)| **t >= 5_000.0)
        .map(|(_, v)| *v)
        .fold(f64::INFINITY, f64::min);
    (max - min) * 8.0 / 100e9 * 1e6
}

fn main() {
    let rate = Rate::from_gbps(100);
    let target = Time::from_us(16);
    let mut t = Table::new(
        "Appendix D (Fig 19): Swift delay fluctuation — measured vs analytic bound",
        &[
            "flows",
            "measured swing (us)",
            "analytic bound (us)",
            "within bound",
        ],
    );
    for n in [2usize, 4, 8, 16, 32] {
        let measured = measure(n);
        let bound = swift_fluctuation(n, 1000.0, rate, target, 0.8, 0.5).as_us_f64();
        t.row(vec![
            n.to_string(),
            f3(measured),
            f3(bound),
            (measured <= bound * 1.05).to_string(),
        ]);
    }
    t.emit("appd_fluctuation");
    println!(
        "The bound assumes fully synchronized worst-case flows; measured swings\n\
         should sit below it and grow with n (the trend §4.3.2 sizes channels by)."
    );
}
