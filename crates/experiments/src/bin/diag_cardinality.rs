//! Diagnostic (not a paper figure): cardinality-estimate and suspension
//! dynamics of low-priority PrioPlus elephants under bursty higher-priority
//! interruptions — used to validate the stability of the #flow ratchet.

use experiments::micro::{Micro, MicroEnv};
use netsim::{FlowSpec, NoiseModel, Transport};
use prioplus::PrioPlusConfig;
use simcore::{SimRng, Time};
use transport::pp_transport::PrioPlusTransport;
use transport::sender::SenderBase;
use transport::swift::{SwiftCc, SwiftConfig};
use transport::{CcSpec, PrioPlusPolicy};

fn main() {
    let mut m = Micro::build(&MicroEnv {
        senders: 12,
        end: Time::from_ms(20),
        trace: true,
        noise: NoiseModel::testbed(),
        ..Default::default()
    });
    let policy = PrioPlusPolicy {
        probe: false,
        ..PrioPlusPolicy::paper_default(8)
    };
    // 4 class-0 elephants from senders 1..4.
    let mut elephants = Vec::new();
    for s in 1..=4usize {
        let spec = FlowSpec {
            src: s as u32,
            dst: 0,
            size: 100_000_000,
            start: Time::ZERO,
            phys_prio: 0,
            virt_prio: 0,
            tag: 0,
        };
        let id = m.sim.add_flow(spec, |params| {
            let pp_cfg: PrioPlusConfig = policy.flow_config(params);
            let mut scfg = SwiftConfig::datacenter(
                params.base_rtt,
                pp_cfg.d_target - params.base_rtt,
                params.mtu,
            );
            scfg.init_cwnd = pp_cfg.w_ls;
            Box::new(PrioPlusTransport::new(
                SenderBase::new(params.clone()),
                pp_cfg,
                SwiftCc::new(scfg),
            )) as Box<dyn Transport>
        });
        elephants.push(id);
    }
    // Poisson bursts of higher-priority flows (class 1-7), ~40% of link.
    let cc = CcSpec::PrioPlusSwift { policy };
    let mut rng = SimRng::new(9);
    let mut t = Time::ZERO;
    let mut count = 0;
    while t < Time::from_ms(18) {
        t += Time::from_ps_f64(rng.exponential(Time::from_us(420).as_ps() as f64));
        let prio = 1 + (rng.below(7) as u8);
        let size = 100_000 + rng.below(4_000_000);
        let sender = 5 + (count % 8);
        m.add_flow(sender, size, t, 0, prio, &cc);
        count += 1;
    }
    eprintln!("interrupting flows: {count}");
    let res = m.sim.run();
    for &id in &elephants {
        let r = &res.records[id as usize];
        let tput = res.traces[&id].throughput.as_ref().unwrap().series_gbps();
        println!(
            "elephant {id}: delivered {:.1} MB  goodput[5-10ms] {:.1} Gbps  [10-20ms] {:.1} Gbps",
            r.delivered as f64 / 1e6,
            tput.window_mean(5_000.0, 10_000.0).unwrap_or(0.0),
            tput.window_mean(10_000.0, 20_000.0).unwrap_or(0.0),
        );
    }
    let hi_bytes: u64 = res
        .records
        .iter()
        .filter(|r| r.virt_prio > 0)
        .map(|r| r.delivered)
        .sum();
    let lo_bytes: u64 = elephants
        .iter()
        .map(|&id| res.records[id as usize].delivered)
        .sum();
    let total = (hi_bytes + lo_bytes) as f64 * 8.0 / 0.02 / 1e9;
    println!("aggregate utilization: {total:.1} Gbps (hi {hi_bytes} B, lo {lo_bytes} B)");
    println!("probes: {}", res.counters.probes);
}
