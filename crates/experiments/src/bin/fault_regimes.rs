//! Fault-regime comparison: PrioPlus vs DCTCP under link flaps and PFC
//! pause storms on the incast bottleneck.
//!
//! Emits the EXPERIMENTS.md "Fault regimes" table: completion, mean/max
//! FCT slowdown, priority-inversion counts and fault-loss counters per
//! (scheme, regime) cell.
//!
//! Usage: `fault_regimes` (seeds fixed; the run is deterministic).

use experiments::faults::{run_cell, FaultCc, FaultRegime};
use experiments::report::f3;
use experiments::Table;

fn main() {
    let mut t = Table::new(
        "Fault regimes: 8-sender incast, 4 virtual priorities, 2 MB flows",
        &[
            "cc",
            "regime",
            "done",
            "mean sld",
            "max sld",
            "inversions",
            "pairs",
            "fault ev",
            "fault drops",
        ],
    );
    for cc in FaultCc::ALL {
        for regime in FaultRegime::ALL {
            let out = run_cell(cc, regime, 1);
            t.row(vec![
                cc.name().to_string(),
                regime.name().to_string(),
                format!("{:.0}%", out.completion * 100.0),
                f3(out.mean_slowdown),
                f3(out.max_slowdown),
                out.inversions.to_string(),
                out.pairs.to_string(),
                out.fault_events.to_string(),
                out.fault_drops.to_string(),
            ]);
        }
    }
    t.emit("fault_regimes");
}
