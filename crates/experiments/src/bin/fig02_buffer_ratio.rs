//! Figure 2: buffer-to-bandwidth ratios of representative switch chips
//! across generations. Static public data (chip datasheets), reproduced as
//! the paper's motivation table: the ratio declines ~2x per generation,
//! squeezing PFC headroom and hence the number of lossless priorities.

use experiments::Table;

fn main() {
    // (chip, year, buffer MB, bandwidth Tbps)
    let chips: &[(&str, u32, f64, f64)] = &[
        ("Trident+ (BCM56840)", 2010, 9.0, 0.64),
        ("Trident2 (BCM56850)", 2013, 12.0, 1.28),
        ("Tomahawk (BCM56960)", 2014, 16.0, 3.2),
        ("Tomahawk2 (BCM56970)", 2016, 42.0, 6.4),
        ("Tomahawk3 (BCM56980)", 2018, 64.0, 12.8),
        ("Tomahawk4 (BCM56990)", 2020, 113.0, 25.6),
    ];
    let mut t = Table::new(
        "Figure 2: switch buffer/bandwidth ratio by chip generation",
        &["chip", "year", "buffer (MB)", "bandwidth (Tbps)", "MB/Tbps"],
    );
    for &(chip, year, mb, tbps) in chips {
        t.row(vec![
            chip.into(),
            year.to_string(),
            format!("{mb:.0}"),
            format!("{tbps:.2}"),
            format!("{:.1}", mb / tbps),
        ]);
    }
    t.emit("fig02");
    println!(
        "Paper's anchors: Trident2 = 9.4 MB/Tbps, Tomahawk4 = 4.4 MB/Tbps (2.1x smaller);\n\
         Microsoft fit only two lossless priorities on Trident2 (§2.2)."
    );
}
