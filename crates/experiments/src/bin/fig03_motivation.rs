//! Figure 3: why existing CCs cannot provide virtual priority.
//!
//! - `a`: two D2TCP flows with deadlines 1x and 2x the ideal FCT — ECN
//!   slows both, the urgent flow is not strictly prioritized (O1 violated).
//! - `b`: Swift *with* target scaling, 2 high-target + 2 low-target flows —
//!   scaling converges to weighted sharing, not strict priority.
//! - `c`: Swift *without* scaling, many low-priority flows + 1 high — queue
//!   fluctuations both under-utilize (O2) and push past the high-priority
//!   target (O1).
//! - `d`: Swift without scaling, 2 high then 2 low at 100 µs — shows the
//!   line-rate-start buffer spike and the min-rate signal-frequency
//!   trade-offs (Observation 3).
//!
//! Usage: `fig03_motivation [a|b|c|d]` (default: all).

use experiments::micro::{Micro, MicroEnv};
use experiments::report::f3;
use experiments::Table;
use simcore::Time;
use transport::CcSpec;

fn goodput_share(res: &netsim::SimResult, flows: &[u32], from_us: f64, to_us: f64) -> f64 {
    flows
        .iter()
        .map(|f| {
            res.traces[f]
                .throughput
                .as_ref()
                .unwrap()
                .series_gbps()
                .window_mean(from_us, to_us)
                .unwrap_or(0.0)
        })
        .sum()
}

/// Fig 3a: D2TCP cannot strictly prioritize the urgent flow.
fn sub_a() {
    let mut m = Micro::build(&MicroEnv {
        senders: 2,
        end: Time::from_ms(3),
        trace: true,
        ..Default::default()
    });
    // 6.25 MB each => ideal FCT 512us alone. Urgent: DDL = 1x ideal;
    // relaxed: DDL = 2x ideal.
    let size = 6_250_000u64;
    let urgent = m.add_flow(
        1,
        size,
        Time::ZERO,
        0,
        1,
        &CcSpec::D2tcp {
            deadline_factor: Some(1.0),
        },
    );
    let relaxed = m.add_flow(
        2,
        size,
        Time::ZERO,
        0,
        0,
        &CcSpec::D2tcp {
            deadline_factor: Some(2.0),
        },
    );
    let res = m.sim.run();
    let ideal_us = size as f64 * 8.0 / 100e9 * 1e6 + 12.0;

    let mut t = Table::new(
        "Figure 3a: D2TCP, urgent (DDL=1x ideal) vs relaxed (DDL=2x) flow",
        &["t (us)", "urgent Gbps", "relaxed Gbps"],
    );
    for w in 0..14 {
        let (f, to) = (w as f64 * 100.0, w as f64 * 100.0 + 100.0);
        t.row(vec![
            format!("{:.0}", f),
            f3(goodput_share(&res, &[urgent], f, to)),
            f3(goodput_share(&res, &[relaxed], f, to)),
        ]);
    }
    t.emit("fig03a");
    let fu = res.records[urgent as usize].fct().unwrap().as_us_f64();
    let fr = res.records[relaxed as usize].fct().unwrap().as_us_f64();
    println!(
        "ideal FCT: {ideal_us:.0}us; urgent FCT {fu:.0}us (DDL {ideal_us:.0}us, met: {});",
        fu <= ideal_us * 1.05
    );
    println!("relaxed FCT {fr:.0}us (DDL {:.0}us)", 2.0 * ideal_us);
    println!("Expected (paper): both flows slow on ECN; urgent misses strict priority.\n");
}

/// Fig 3b: Swift with target scaling converges to weighted sharing.
fn sub_b() {
    let mut m = Micro::build(&MicroEnv {
        senders: 4,
        end: Time::from_ms(6),
        trace: true,
        ..Default::default()
    });
    let hi_cc = CcSpec::Swift {
        queuing: Time::from_us(15),
        scaling: true,
    };
    let lo_cc = CcSpec::Swift {
        queuing: Time::from_us(5),
        scaling: true,
    };
    let hi: Vec<u32> = (1..=2)
        .map(|s| m.add_flow(s, 60_000_000, Time::ZERO, 0, 1, &hi_cc))
        .collect();
    let lo: Vec<u32> = (3..=4)
        .map(|s| m.add_flow(s, 60_000_000, Time::ZERO, 0, 0, &lo_cc))
        .collect();
    let res = m.sim.run();
    let mut t = Table::new(
        "Figure 3b: Swift WITH target scaling — 2 high (target +15us) vs 2 low (+5us)",
        &["t (ms)", "high total Gbps", "low total Gbps"],
    );
    for w in 0..6 {
        let (f, to) = (w as f64 * 1000.0, w as f64 * 1000.0 + 1000.0);
        t.row(vec![
            format!("{w}"),
            f3(goodput_share(&res, &hi, f, to)),
            f3(goodput_share(&res, &lo, f, to)),
        ]);
    }
    t.emit("fig03b");
    let hi_ss = goodput_share(&res, &hi, 3_000.0, 6_000.0);
    let lo_ss = goodput_share(&res, &lo, 3_000.0, 6_000.0);
    println!(
        "steady state: high {hi_ss:.1} Gbps vs low {lo_ss:.1} Gbps — weighted sharing,\n\
         NOT strict priority (low keeps a large share; O1 violated).\n"
    );
}

/// Fig 3c: Swift without scaling under many low-priority flows.
fn sub_c() {
    let full = std::env::args().any(|a| a == "--full");
    let n_low = if full { 300 } else { 100 };
    let mut m = Micro::build(&MicroEnv {
        senders: n_low + 1,
        end: Time::from_ms(6),
        trace: true,
        ..Default::default()
    });
    m.monitor_bottleneck_queue(Time::from_us(10));
    m.monitor_bottleneck_throughput(Time::from_us(100));
    let lo_cc = CcSpec::Swift {
        queuing: Time::from_us(5),
        scaling: false,
    };
    let hi_cc = CcSpec::Swift {
        queuing: Time::from_us(15),
        scaling: false,
    };
    for s in 1..=n_low {
        m.add_flow(s, 50_000_000, Time::ZERO, 0, 0, &lo_cc);
    }
    let hi = m.add_flow(n_low + 1, 50_000_000, Time::from_ms(2), 0, 1, &hi_cc);
    let res = m.sim.run();
    let (_, q) = &res.monitors[0];
    let (_, tput) = &res.monitors[1];
    let mut t = Table::new(
        format!("Figure 3c: Swift w/o scaling — {n_low} low flows + 1 high at 2ms"),
        &[
            "t (ms)",
            "bottleneck Gbps",
            "queue mean (KB)",
            "queue max (KB)",
            "high Gbps",
        ],
    );
    for w in 0..6 {
        let (f, to) = (w as f64 * 1000.0, w as f64 * 1000.0 + 1000.0);
        t.row(vec![
            format!("{w}"),
            f3(tput.window_mean(f, to).unwrap_or(0.0)),
            f3(q.window_mean(f, to).unwrap_or(0.0) / 1000.0),
            f3(q.window_max(f, to).unwrap_or(0.0) / 1000.0),
            f3(goodput_share(&res, &[hi], f, to)),
        ]);
    }
    t.emit("fig03c");
    let util = tput.window_mean(500.0, 2_000.0).unwrap_or(0.0);
    let hi_share = goodput_share(&res, &[hi], 3_000.0, 6_000.0);
    println!(
        "utilization before the high flow: {util:.1}/100 Gbps; high flow's share after\n\
         joining: {hi_share:.1} Gbps. Expected (paper, 300 flows): queue fluctuations of\n\
         many flows swamp the high flow's higher target, so it decelerates (O1\n\
         violated) and the queue cannot be held near the low-priority target (O2).\n"
    );
}

/// Fig 3d: start-rate and min-rate trade-offs.
fn sub_d() {
    let mut m = Micro::build(&MicroEnv {
        senders: 4,
        end: Time::from_ms(4),
        trace: true,
        ..Default::default()
    });
    m.monitor_bottleneck_queue(Time::from_us(5));
    let hi_cc = CcSpec::Swift {
        queuing: Time::from_us(15),
        scaling: false,
    };
    let lo_cc = CcSpec::Swift {
        queuing: Time::from_us(5),
        scaling: false,
    };
    // Two high flows converge first; highs are finite so the lows' slow
    // reclaim is visible; lows start (line-rate!) at 100us.
    let hi: Vec<u32> = (1..=2)
        .map(|s| m.add_flow(s, 12_500_000, Time::ZERO, 0, 1, &hi_cc))
        .collect();
    let lo: Vec<u32> = (3..=4)
        .map(|s| m.add_flow(s, 40_000_000, Time::from_us(100), 0, 0, &lo_cc))
        .collect();
    let res = m.sim.run();
    let (_, q) = &res.monitors[0];
    let mut t = Table::new(
        "Figure 3d: Swift w/o scaling — 2 high converged, 2 low line-rate start at 100us",
        &[
            "t (us)",
            "high total Gbps",
            "low total Gbps",
            "queue max (KB)",
        ],
    );
    for (f, to) in [
        (0.0, 100.0),
        (100.0, 200.0),
        (200.0, 400.0),
        (400.0, 800.0),
        (800.0, 1600.0),
        (1600.0, 2400.0),
        (2400.0, 3200.0),
        (3200.0, 4000.0),
    ] {
        t.row(vec![
            format!("{f:.0}-{to:.0}"),
            f3(goodput_share(&res, &hi, f, to)),
            f3(goodput_share(&res, &lo, f, to)),
            f3(q.window_max(f, to).unwrap_or(0.0) / 1000.0),
        ]);
    }
    t.emit("fig03d");
    let spike = q.window_max(100.0, 160.0).unwrap_or(0.0);
    println!(
        "line-rate start of low flows spikes the queue to {:.0} KB (hurts high prio);\n\
         low flows then idle at the min-rate floor — slow signal, slow reclaim (Obs. 3).\n",
        spike / 1000.0
    );
}

fn main() {
    let which = experiments::sweep::positional_args()
        .into_iter()
        .next()
        .unwrap_or_else(|| "all".into());
    match which.as_str() {
        "a" => sub_a(),
        "b" => sub_b(),
        "c" => sub_c(),
        "d" => sub_d(),
        _ => {
            sub_a();
            sub_b();
            sub_c();
            sub_d();
        }
    }
}
