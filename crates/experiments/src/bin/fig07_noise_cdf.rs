//! Figure 7: CDF of delay-measurement noise.
//!
//! The paper measures NIC-hardware-timestamp noise on its testbed (TSO on
//! and off): mean ≈ 0.3 µs, < 0.1 % of samples above 1 µs, long tail. We
//! sample our fitted model and print its CDF plus the statistics the paper
//! quotes, including the 99.85th percentile (0.8 µs) used as the channel
//! noise allowance B.

use experiments::report::f3;
use experiments::Table;
use netsim::NoiseModel;
use simcore::stats::Summary;
use simcore::SimRng;

fn main() {
    let model = NoiseModel::testbed();
    let mut rng = SimRng::new(0xF16);
    let mut summary = Summary::new();
    let n = 500_000;
    for _ in 0..n {
        summary.add(model.sample(&mut rng).as_us_f64());
    }

    let mut t = Table::new(
        "Figure 7: delay noise CDF (fitted to testbed HW timestamping)",
        &["noise (us)", "CDF"],
    );
    for (v, f) in summary.cdf_points(25) {
        t.row(vec![f3(v), f3(f)]);
    }
    t.emit("fig07");

    let mean = summary.mean().unwrap();
    let p9985 = summary.percentile(99.85).unwrap();
    let over_1us = summary.samples().iter().filter(|&&s| s > 1.0).count() as f64 / n as f64;
    println!("mean noise: {mean:.3} us   (paper: ~0.3 us)");
    println!("P(noise > 1us): {:.4}%   (paper: < 0.1%)", over_1us * 100.0);
    println!("p99.85: {p9985:.3} us   (paper picks 0.8 us as allowance B)");
}
