//! Figure 8: the (simulated) testbed experiment — four adjacent virtual
//! priorities (3, 4, 5, 6), two flows each, on the 10 Gbps / ≈13 µs tree.
//! Flows start lowest-priority-first at 4 ms intervals and finish at 4 ms
//! intervals; PrioPlus must show immediate yielding on each start (O1) and
//! quick takeover on each finish (O2). Compared against Swift with the
//! same per-priority targets (no PrioPlus mechanisms).

use experiments::micro::{testbed_env, Micro};
use experiments::report::f3;
use experiments::Table;
use simcore::Time;
use transport::{CcSpec, PrioPlusPolicy};

/// Flow sizes so that each priority pair finishes ~4 ms after the next
/// higher one once priorities stack up. At 10 Gbps the pair shares
/// 1.25 GB/s; per-flow size for ~16/12/8/4 ms of exclusive+shared life.
fn run(cc_name: &str, use_prioplus: bool) -> Table {
    let mut env = testbed_env();
    env.end = Time::from_ms(36);
    env.num_prios = 1;
    let mut m = Micro::build(&env);

    // Priorities 3..6 as in the paper; start staggered 4ms apart from low
    // to high; sizes chosen so they end staggered 4ms apart (high first).
    // Each priority level: 2 flows; both flows of a level share one sender
    // pair (senders 1..4 map to levels).
    let policy = PrioPlusPolicy {
        num_prios: 7,
        ..PrioPlusPolicy::paper_default(7)
    };
    let mut flows = Vec::new();
    for (i, prio) in [3u8, 4, 5, 6].iter().enumerate() {
        let start = Time::from_ms(4 * i as u64);
        // Active window: from its start until (16 - 4*i) ms mark + drain.
        // Exclusive bandwidth happens only while it is the top priority.
        // Sizes tuned so each level transmits ~4ms at full rate.
        let size_each = match prio {
            6 => 2_400_000u64, // top: ~4ms at 5 Gbps per flow
            5 => 4_400_000,
            4 => 6_400_000,
            _ => 8_400_000,
        };
        for f in 0..2 {
            let sender = 1 + ((i * 2 + f) % 4);
            let cc = if use_prioplus {
                CcSpec::PrioPlusSwift { policy }
            } else {
                // Swift with targets aligned to the PrioPlus D_targets,
                // scaling disabled (§5's comparison).
                CcSpec::Swift {
                    queuing: Time::from_us(4 * (*prio as u64 + 1)),
                    scaling: false,
                }
            };
            let id = m.add_flow(sender, size_each, start, 0, *prio, &cc);
            flows.push((*prio, id));
        }
    }
    let res = m.sim.run();

    let mut t = Table::new(
        format!(
            "Figure 8{}: per-priority goodput over time ({cc_name}, 10G testbed)",
            if use_prioplus { "a" } else { "b" }
        ),
        &[
            "t (ms)",
            "prio3 Gbps",
            "prio4 Gbps",
            "prio5 Gbps",
            "prio6 Gbps",
        ],
    );
    for w in 0..36 {
        let (lo, hi) = (w as f64 * 1000.0, w as f64 * 1000.0 + 1000.0);
        let mut cells = vec![w.to_string()];
        for p in [3u8, 4, 5, 6] {
            let g: f64 = flows
                .iter()
                .filter(|(fp, _)| *fp == p)
                .map(|(_, id)| {
                    res.traces[id]
                        .throughput
                        .as_ref()
                        .unwrap()
                        .series_gbps()
                        .window_mean(lo, hi)
                        .unwrap_or(0.0)
                })
                .sum();
            cells.push(f3(g));
        }
        t.row(cells);
    }
    t
}

fn main() {
    let a = run("PrioPlus+Swift", true);
    a.emit("fig08a");
    let b = run("Swift w/ per-prio targets", false);
    b.emit("fig08b");
    println!(
        "Expected shape (paper): with PrioPlus, each newly started higher priority\n\
         takes the full 10 Gbps almost immediately and lower priorities drop to ~0;\n\
         on each finish the next priority reclaims the link within ~a few hundred us.\n\
         Plain Swift with per-priority targets yields/reclaims in ~2-3 ms instead."
    );
}
