//! Figure 9: delay-fluctuation management on the testbed environment.
//!
//! Four flows with deliberately inflated step sizes emulate the
//! fluctuations of numerous flows: Swift runs with W_AI = 0.75 KB (~5x its
//! recommended value) and PrioPlus with W_LS = 75 KB (half the base BDP).
//! PrioPlus's flow-cardinality estimation reins the aggressiveness in and
//! keeps the observed delay near D_target = 37 µs (priority 6); Swift's
//! delay repeatedly overshoots the same target.

use experiments::micro::{testbed_env, Micro};
use experiments::report::f3;
use experiments::Table;
use netsim::{FlowSpec, Transport};
use prioplus::PrioPlusConfig;
use simcore::Time;
use transport::plain::CcTransport;
use transport::pp_transport::PrioPlusTransport;
use transport::sender::SenderBase;
use transport::swift::{SwiftCc, SwiftConfig};

const D_TARGET_US: f64 = 37.0;
const D_LIMIT_US: f64 = 39.4;

fn run(prioplus: bool) -> (Table, f64, f64) {
    let mut env = testbed_env();
    env.end = Time::from_ms(30);
    env.trace = true;
    let mut m = Micro::build(&env);
    for s in 1..=4u32 {
        let spec = FlowSpec {
            src: s,
            dst: 0,
            size: 200_000_000,
            start: Time::ZERO,
            phys_prio: 0,
            virt_prio: 6,
            tag: 6,
        };
        m.sim.add_flow(spec, |params| {
            // Swift target = 37us absolute (base ~13us + 24us), the paper's
            // priority-6 channel on the testbed.
            let queuing = Time::from_us_f64(D_TARGET_US) - params.base_rtt;
            let mut scfg = SwiftConfig::datacenter(params.base_rtt, queuing, params.mtu);
            scfg.ai = 750.0; // 0.75 KB, ~5x recommended
            scfg.init_cwnd = params.base_bdp().max(scfg.min_cwnd);
            if prioplus {
                let pp_cfg = PrioPlusConfig {
                    d_target: Time::from_us_f64(D_TARGET_US),
                    d_limit: Time::from_us_f64(D_LIMIT_US),
                    base_rtt: params.base_rtt,
                    near_base_eps: Time::from_us_f64(0.8),
                    // "Half of the base BDP" (§5). The paper quotes 75 KB,
                    // which matches the 100G/12us simulation BDP rather
                    // than the 10G testbed BDP (16.25 KB); we apply the
                    // stated *ratio* to this environment.
                    w_ls: params.base_bdp() / 2.0,
                    line_rate: params.line_rate,
                    probe_before_start: false,
                    mtu: params.mtu,
                    seed: params.seed,
                    dual_rtt: true,
                };
                scfg.init_cwnd = pp_cfg.w_ls;
                Box::new(PrioPlusTransport::new(
                    SenderBase::new(params.clone()),
                    pp_cfg,
                    SwiftCc::new(scfg),
                )) as Box<dyn Transport>
            } else {
                Box::new(CcTransport::new(
                    SenderBase::new(params.clone()),
                    SwiftCc::new(scfg),
                ))
            }
        });
    }
    let res = m.sim.run();
    // Observed delay of flow 0 over time.
    let trace = &res.traces[&0];
    let name = if prioplus { "PrioPlus+Swift" } else { "Swift" };
    let mut t = Table::new(
        format!("Figure 9 ({name}): delay observed by one flow (W_AI=0.75KB / W_LS=BDP/2)"),
        &[
            "t (ms)",
            "mean delay (us)",
            "max delay (us)",
            "> D_limit (%)",
        ],
    );
    let mut over_total = 0usize;
    let mut n_total = 0usize;
    for w in 0..30 {
        let (lo, hi) = (w as f64 * 1000.0, w as f64 * 1000.0 + 1000.0);
        let in_win: Vec<f64> = trace
            .delay
            .t_us
            .iter()
            .zip(&trace.delay.v)
            .filter(|(ts, _)| **ts >= lo && **ts < hi)
            .map(|(_, v)| *v)
            .collect();
        if in_win.is_empty() {
            continue;
        }
        let mean = in_win.iter().sum::<f64>() / in_win.len() as f64;
        let max = in_win.iter().copied().fold(0.0, f64::max);
        let over = in_win.iter().filter(|&&d| d > D_LIMIT_US).count();
        if w >= 5 {
            over_total += over;
            n_total += in_win.len();
        }
        if w % 3 == 0 {
            t.row(vec![
                w.to_string(),
                f3(mean),
                f3(max),
                f3(over as f64 / in_win.len() as f64 * 100.0),
            ]);
        }
    }
    let over_frac = over_total as f64 / n_total.max(1) as f64 * 100.0;
    // Steady-state mean delay (5ms onward).
    let ss: Vec<f64> = trace
        .delay
        .t_us
        .iter()
        .zip(&trace.delay.v)
        .filter(|(ts, _)| **ts >= 5_000.0)
        .map(|(_, v)| *v)
        .collect();
    let ss_mean = ss.iter().sum::<f64>() / ss.len().max(1) as f64;
    (t, ss_mean, over_frac)
}

fn main() {
    let (tp, pp_mean, pp_over) = run(true);
    tp.emit("fig09_prioplus");
    let (ts, sw_mean, sw_over) = run(false);
    ts.emit("fig09_swift");
    println!(
        "steady-state (>=5ms): PrioPlus mean delay {pp_mean:.1} us, {pp_over:.2}% above D_limit"
    );
    println!(
        "                      Swift    mean delay {sw_mean:.1} us, {sw_over:.2}% above D_limit"
    );
    println!(
        "Expected (paper): PrioPlus estimates cardinality after the first\n\
         over-limit excursion and then holds the delay near D_target = {D_TARGET_US} us;\n\
         Swift keeps overshooting {D_LIMIT_US} us."
    );
}
