//! Figure 10: PrioPlus micro-benchmarks at 100 Gbps / 12 µs RTT.
//!
//! - `a`: 8 priorities × 30 flows, staggered starts/ends at 5 ms — strict
//!   yielding and instant takeover across the whole ladder;
//! - `b`: 300-flow incast at one priority — cardinality estimation holds
//!   the delay near D_target;
//! - `c`: dual-RTT adaptive increase vs the per-RTT ablation — the per-RTT
//!   variant overshoots badly;
//! - `d`: noise tolerance — channel width needed for ≥ 98 % utilization
//!   grows linearly with the noise scale.
//!
//! Usage: `fig10_micro [a|b|c|d]` (default: all; `--full` for paper scale).

use experiments::micro::{Micro, MicroEnv};
use experiments::report::f3;
use experiments::{Scale, Table};
use netsim::{FlowSpec, NoiseModel, Transport};
use prioplus::PrioPlusConfig;
use simcore::Time;
use transport::pp_transport::PrioPlusTransport;
use transport::sender::SenderBase;
use transport::swift::{SwiftCc, SwiftConfig};
use transport::{CcSpec, PrioPlusPolicy};

/// Fig 10a: the 8-priority staircase.
fn sub_a(scale: Scale) {
    let per_prio = scale.pick(6, 30);
    let mut m = Micro::build(&MicroEnv {
        senders: 8 * per_prio,
        end: Time::from_ms(85),
        trace: true,
        noise: NoiseModel::testbed(),
        ..Default::default()
    });
    let cc = CcSpec::PrioPlusSwift {
        policy: PrioPlusPolicy::paper_default(8),
    };
    // Priority p starts at p*5ms. Sizes chosen so that priority p finishes
    // ~(40 + (7-p)*5)ms: while top, each level gets the full link.
    let mut flows: Vec<(u8, u32)> = Vec::new();
    for p in 0..8u8 {
        let start = Time::from_ms(5 * p as u64);
        // Exclusive window of each priority is 5ms at 100 Gbps shared by
        // per_prio flows.
        let size_each =
            (100e9 / 8.0 * 0.005 * (1.0 + (7 - p) as f64 * 0.04)) as u64 / per_prio as u64;
        for f in 0..per_prio {
            let sender = 1 + (p as usize * per_prio + f);
            let id = m.add_flow(sender, size_each, start, 0, p, &cc);
            flows.push((p, id));
        }
    }
    let res = m.sim.run();
    let mut t = Table::new(
        format!("Figure 10a: 8 virtual priorities x {per_prio} flows, 5 ms staggered"),
        &["t (ms)", "p0", "p1", "p2", "p3", "p4", "p5", "p6", "p7"],
    );
    for w in (0..80).step_by(2) {
        let (lo, hi) = (w as f64 * 1000.0, (w + 2) as f64 * 1000.0);
        let mut cells = vec![w.to_string()];
        for p in 0..8u8 {
            let g: f64 = flows
                .iter()
                .filter(|(fp, _)| *fp == p)
                .map(|(_, id)| {
                    res.traces[id]
                        .throughput
                        .as_ref()
                        .unwrap()
                        .series_gbps()
                        .window_mean(lo, hi)
                        .unwrap_or(0.0)
                })
                .sum();
            cells.push(format!("{g:.0}"));
        }
        t.row(cells);
    }
    t.emit("fig10a");
    println!(
        "Expected (paper): a diagonal staircase — at any time only the highest\n\
         live priority carries ~full bandwidth (O1 + O2).\n"
    );
}

/// Fig 10b: 300-flow incast, delay held near D_target = 32 µs.
fn sub_b(scale: Scale) {
    let n = scale.pick(150, 300);
    let mut m = Micro::build(&MicroEnv {
        senders: n,
        end: Time::from_ms(10),
        trace: false,
        noise: NoiseModel::testbed(),
        ..Default::default()
    });
    m.monitor_bottleneck_queue(Time::from_us(10));
    m.monitor_bottleneck_throughput(Time::from_us(100));
    let cc = CcSpec::PrioPlusSwift {
        policy: PrioPlusPolicy::paper_default(8),
    };
    for s in 1..=n {
        // Priority 4: D_target = 32us (20us + 12us base), D_limit = 34.4us.
        m.add_flow(s, 5_000_000, Time::ZERO, 0, 4, &cc);
    }
    let res = m.sim.run();
    let (_, q) = &res.monitors[0];
    let (_, tput) = &res.monitors[1];
    let mut t = Table::new(
        format!("Figure 10b: {n}-flow incast at priority 4 (D_target 32us, D_limit 34.4us)"),
        &[
            "t (ms)",
            "queue-implied delay mean (us)",
            "max (us)",
            "goodput Gbps",
        ],
    );
    for w in 0..10 {
        let (lo, hi) = (w as f64 * 1000.0, (w + 1) as f64 * 1000.0);
        let to_us = |b: f64| 12.0 + b * 8.0 / 100e9 * 1e6;
        t.row(vec![
            w.to_string(),
            f3(to_us(q.window_mean(lo, hi).unwrap_or(0.0))),
            f3(to_us(q.window_max(lo, hi).unwrap_or(0.0))),
            f3(tput.window_mean(lo, hi).unwrap_or(0.0)),
        ]);
    }
    t.emit("fig10b");
    println!(
        "Expected (paper): after the initial excursion past D_limit, cardinality\n\
         estimation pins the delay near 32 us with full goodput.\n"
    );
}

/// Fig 10c: dual-RTT vs per-RTT adaptive increase.
fn sub_c() {
    for (label, dual) in [
        ("dual-RTT (PrioPlus)", true),
        ("every-RTT (ablation)", false),
    ] {
        let mut m = Micro::build(&MicroEnv {
            senders: 20,
            end: Time::from_ms(4),
            trace: true,
            noise: NoiseModel::testbed(),
            ..Default::default()
        });
        m.monitor_bottleneck_queue(Time::from_us(5));
        let policy = PrioPlusPolicy::paper_default(8);
        // 10 low-priority flows converged, then 10 high-priority at 1 ms.
        let mk = |m: &mut Micro, s: usize, prio: u8, start: Time| {
            let spec = FlowSpec {
                src: s as u32,
                dst: 0,
                size: 60_000_000,
                start,
                phys_prio: 0,
                virt_prio: prio,
                tag: prio as u64,
            };
            m.sim.add_flow(spec, |params| {
                let mut pp_cfg: PrioPlusConfig = policy.flow_config(params);
                pp_cfg.dual_rtt = dual;
                let mut scfg = SwiftConfig::datacenter(
                    params.base_rtt,
                    pp_cfg.d_target - params.base_rtt,
                    params.mtu,
                );
                scfg.init_cwnd = pp_cfg.w_ls;
                Box::new(PrioPlusTransport::new(
                    SenderBase::new(params.clone()),
                    pp_cfg,
                    SwiftCc::new(scfg),
                )) as Box<dyn Transport>
            })
        };
        for s in 1..=10 {
            mk(&mut m, s, 2, Time::ZERO);
        }
        for s in 11..=20 {
            mk(&mut m, s, 6, Time::from_ms(1));
        }
        let res = m.sim.run();
        let (_, q) = &res.monitors[0];
        let mut t = Table::new(
            format!("Figure 10c ({label}): 10 high preempt 10 low at 1 ms"),
            &["t (us)", "queue delay mean (us)", "queue delay max (us)"],
        );
        let to_us = |b: f64| b * 8.0 / 100e9 * 1e6;
        for w in 0..16 {
            let (lo, hi) = (w as f64 * 250.0, (w + 1) as f64 * 250.0);
            t.row(vec![
                format!("{:.0}", lo),
                f3(to_us(q.window_mean(lo, hi).unwrap_or(0.0))),
                f3(to_us(q.window_max(lo, hi).unwrap_or(0.0))),
            ]);
        }
        t.emit(if dual { "fig10c_dual" } else { "fig10c_every" });
        // High-priority channel: D_target 28us queuing (40us abs - 12us).
        let overshoot = to_us(q.window_max(1_000.0, 2_500.0).unwrap_or(0.0));
        println!("{label}: max queuing delay during takeover = {overshoot:.1} us (target 28 us)\n");
    }
    println!(
        "Expected (paper): the dual-RTT variant raises the delay to the high\n\
         priority's D_target without overshoot; the every-RTT ablation double-\n\
         applies the increase and overshoots severely.\n"
    );
}

/// Fig 10d: channel width needed for ≥98 % utilization vs noise scale.
fn sub_d() {
    let mut t = Table::new(
        "Figure 10d: channel width for >=98% utilization vs delay-noise scale",
        &[
            "noise scale",
            "width 1x ok?",
            "width 2x",
            "width 4x",
            "width 8x",
            "min width (us)",
        ],
    );
    // The 4x4 (noise scale, channel width) grid is 16 independent runs;
    // sweep them across threads, results in grid order.
    let scales = [1.0, 2.0, 4.0, 8.0];
    let widths = [1.0, 2.0, 4.0, 8.0];
    let grid: Vec<(f64, f64)> = scales
        .iter()
        .flat_map(|&s| widths.iter().map(move |&w| (s, w)))
        .collect();
    let utils = experiments::sweep::run_ordered(
        &grid,
        experiments::sweep::default_jobs(),
        &|&(s, w)| run_noise_case(s, w),
    );
    let mut utils = utils.into_iter();
    for scale in scales {
        let mut row = vec![format!("{scale}x")];
        let mut min_width = None;
        for wmul in widths {
            let util = utils.next().expect("one result per grid cell");
            let ok = util >= 0.98;
            row.push(format!("{:.3}{}", util, if ok { "*" } else { "" }));
            if ok && min_width.is_none() {
                min_width = Some(4.0 * wmul);
            }
        }
        row.push(
            min_width
                .map(|w| format!("{w:.0}"))
                .unwrap_or_else(|| ">32".into()),
        );
        t.row(row);
    }
    t.emit("fig10d");
    println!(
        "(cells are achieved utilization; * marks >=98%.)\n\
         Expected (paper): the required channel width grows linearly with the\n\
         noise magnitude."
    );
}

/// Utilization of 5 same-priority PrioPlus flows under `noise_scale`-scaled
/// measurement noise with channels `width_mul`x the default.
fn run_noise_case(noise_scale: f64, width_mul: f64) -> f64 {
    let mut m = Micro::build(&MicroEnv {
        senders: 5,
        end: Time::from_ms(8),
        trace: false,
        noise: NoiseModel::Fitted { scale: noise_scale },
        ..Default::default()
    });
    m.monitor_bottleneck_throughput(Time::from_us(100));
    let policy = PrioPlusPolicy {
        fluct: Time::from_us_f64(3.2 * width_mul),
        noise: Time::from_us_f64(0.8 * width_mul),
        ..PrioPlusPolicy::paper_default(8)
    };
    let cc = CcSpec::PrioPlusSwift { policy };
    for s in 1..=5 {
        m.add_flow(s, 100_000_000, Time::ZERO, 0, 4, &cc);
    }
    let res = m.sim.run();
    let (_, tput) = &res.monitors[0];
    tput.window_mean(2_000.0, 8_000.0).unwrap_or(0.0) / 100.0
}

fn main() {
    let scale = Scale::from_args();
    let which = experiments::sweep::positional_args()
        .into_iter()
        .next()
        .unwrap_or_else(|| "all".into());
    match which.as_str() {
        "a" => sub_a(scale),
        "b" => sub_b(scale),
        "c" => sub_c(),
        "d" => sub_d(),
        _ => {
            sub_a(scale);
            sub_b(scale);
            sub_c();
            sub_d();
        }
    }
}
