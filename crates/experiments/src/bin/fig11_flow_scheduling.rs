//! Figure 11: the flow-scheduling scenario — average FCT slowdown vs the
//! number of priorities, for Physical+Swift (real PFC headroom costs),
//! Physical*+Swift (ideal), PrioPlus+Swift, and Physical* w/o CC, broken
//! down by flow-size bucket (total / small / middle / large).
//!
//! WebSearch workload at 70 % load on a fat-tree; buffer sized at
//! 4.4 MB/Tbps (Tomahawk4). `--full` runs k = 6 at the paper's duration.
//! Runs fan out across threads (`--jobs N`); output is identical to serial.

use experiments::flowsched::{bucket_of, run_many, FlowSchedConfig};
use experiments::report::opt3;
use experiments::sweep::default_jobs;
use experiments::{Scale, Scheme, Table};
use simcore::Time;

fn main() {
    let scale = Scale::from_args();
    let prio_counts: Vec<u8> = scale.pick(vec![1, 2, 4, 8, 12], (1..=12).collect());
    let schemes = [
        Scheme::PhysicalSwift,
        Scheme::PhysicalStarSwift,
        Scheme::PrioPlusSwift,
        Scheme::PhysicalStarNoCc,
    ];

    // Physical (real) supports at most 8 priorities (§2.2); those cells stay
    // empty. Every other (classes, scheme) cell is one independent run.
    let runnable = |scheme: Scheme, classes: u8| !(scheme == Scheme::PhysicalSwift && classes > 8);
    let mut cfgs = Vec::new();
    for &classes in &prio_counts {
        for scheme in schemes {
            if !runnable(scheme, classes) {
                continue;
            }
            let mut cfg = FlowSchedConfig::new(scheme, classes);
            cfg.k = scale.pick(4, 6);
            cfg.duration = scale.pick(Time::from_ms(3), Time::from_ms(20));
            cfg.seed = 20 + classes as u64; // same workload across schemes
            cfgs.push(cfg);
        }
    }
    let results = run_many(&cfgs, default_jobs());
    let mut results = results.iter();

    let mut tables: Vec<Table> = ["total", "small", "middle", "large"]
        .iter()
        .map(|bucket| {
            Table::new(
                format!("Figure 11 ({bucket}): avg FCT (us) vs #priorities (WebSearch, 70% load)"),
                &[
                    "prios",
                    "Physical+Swift",
                    "Physical*+Swift",
                    "PrioPlus+Swift",
                    "Physical* w/o CC",
                ],
            )
        })
        .collect();
    let mut tail = Table::new(
        "Figure 11 (p99, total): p99 FCT (us) vs #priorities",
        &[
            "prios",
            "Physical+Swift",
            "Physical*+Swift",
            "PrioPlus+Swift",
            "Physical* w/o CC",
        ],
    );
    let mut pfc = Table::new(
        "Figure 11 (diagnostic): PFC pause frames per run",
        &[
            "prios",
            "Physical+Swift",
            "Physical*+Swift",
            "PrioPlus+Swift",
            "Physical* w/o CC",
        ],
    );

    for &classes in &prio_counts {
        let mut rows: Vec<Vec<Option<f64>>> = vec![Vec::new(); 4];
        let mut tail_row = Vec::new();
        let mut pfc_row = Vec::new();
        for scheme in schemes {
            if !runnable(scheme, classes) {
                for r in rows.iter_mut() {
                    r.push(None);
                }
                tail_row.push(None);
                pfc_row.push(None);
                continue;
            }
            let r = results.next().expect("one result per config");
            rows[0].push(r.mean_fct_us(|_| true));
            rows[1].push(r.mean_fct_us(|f| bucket_of(f.size) == "small"));
            rows[2].push(r.mean_fct_us(|f| bucket_of(f.size) == "middle"));
            rows[3].push(r.mean_fct_us(|f| bucket_of(f.size) == "large"));
            tail_row.push(r.p99_fct_us(|_| true));
            pfc_row.push(Some(r.pfc_pauses as f64));
            eprintln!(
                "  [{} prios={classes}] completion {:.2} pfc {}",
                scheme.label(),
                r.completion,
                r.pfc_pauses
            );
        }
        for (t, row) in tables.iter_mut().zip(rows) {
            let mut cells = vec![classes.to_string()];
            cells.extend(row.into_iter().map(opt3));
            t.row(cells);
        }
        let mut cells = vec![classes.to_string()];
        cells.extend(tail_row.into_iter().map(opt3));
        tail.row(cells);
        let mut cells = vec![classes.to_string()];
        cells.extend(
            pfc_row
                .into_iter()
                .map(|v| v.map(|x| format!("{x:.0}")).unwrap_or("-".into())),
        );
        pfc.row(cells);
    }

    for (t, slug) in tables.iter().zip(["fig11a", "fig11b", "fig11c", "fig11d"]) {
        t.emit(slug);
    }
    tail.emit("fig11_p99");
    pfc.emit("fig11_pfc");
    println!(
        "Expected shapes (paper): PrioPlus within ~8-9% of Physical* on total/small/\n\
         middle; 25-41% BETTER on large flows; Physical degrades sharply past 6\n\
         priorities as PFC headroom exhausts the shared buffer."
    );
}
