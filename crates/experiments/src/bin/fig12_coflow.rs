//! Figure 12 (and 15): coflow scheduling and ML training.
//!
//! - `40` / `70`: coflow CCT speedups vs the no-priority Swift baseline at
//!   40 % / 70 % load, for Physical+Swift, PrioPlus+Swift and
//!   PrioPlus+LEDBAT, split into high-4 / low-4 priority bands + overall
//!   (Fig 12a,b), plus the p99 tail speedups (Fig 15).
//! - `ml`: ResNet/VGG training speedups (Fig 12c).
//!
//! Usage: `fig12_coflow [40|70|ml]` (default: all; `--full` for paper scale).

use experiments::coflowsched::{self, mean_speedup, tail_speedup, CoflowConfig};
use experiments::mltrain::{self, MlConfig};
use experiments::{Scale, Scheme, Table};
use simcore::Time;

fn coflow_at(load: f64, scale: Scale) {
    let schemes = [
        Scheme::PhysicalSwift,
        Scheme::PrioPlusSwift,
        Scheme::PrioPlusLedbat,
    ];
    let mk = |scheme| {
        let mut cfg = CoflowConfig::new(scheme, load);
        if scale == Scale::Full {
            cfg.leaves = 16;
            cfg.hosts_per_leaf = 20;
            cfg.spines = 8;
            cfg.duration = Time::from_ms(30);
            cfg.fanin = 20;
        }
        cfg
    };
    // Baseline + the three schemes are independent runs; sweep them all.
    let mut all_schemes = vec![Scheme::BaselineSwift];
    all_schemes.extend(schemes);
    let cfgs: Vec<CoflowConfig> = all_schemes.iter().map(|&s| mk(s)).collect();
    eprintln!("  running baseline + {} schemes...", schemes.len());
    let mut outs = coflowsched::run_many(&cfgs, experiments::sweep::default_jobs());
    let base = outs.remove(0);
    let mut t = Table::new(
        format!(
            "Figure 12 ({:.0}% load): mean CCT speedup vs Swift baseline",
            load * 100.0
        ),
        &["scheme", "high prios (4-7)", "low prios (0-3)", "overall"],
    );
    let mut tail = Table::new(
        format!(
            "Figure 15 ({:.0}% load): p99 CCT speedup vs Swift baseline",
            load * 100.0
        ),
        &["scheme", "high prios (4-7)", "low prios (0-3)", "overall"],
    );
    let results: Vec<(Scheme, coflowsched::CoflowResult)> =
        schemes.into_iter().zip(outs).collect();
    // Compare on the coflows completed in EVERY run, otherwise schemes that
    // starve (and censor) their slowest coflows look better than they are.
    let mut all: Vec<&coflowsched::CoflowResult> = vec![&base];
    all.extend(results.iter().map(|(_, r)| r));
    let common = coflowsched::common_ids(&all);
    eprintln!("  common completed coflows: {}", common.len());
    for (scheme, r) in &results {
        let cell = |v: Option<f64>| v.map(|x| format!("{x:.2}x")).unwrap_or("-".into());
        t.row(vec![
            scheme.label().into(),
            cell(mean_speedup(r, &base, |c| {
                common.contains(&c.id) && c.class >= 4
            })),
            cell(mean_speedup(r, &base, |c| {
                common.contains(&c.id) && c.class < 4
            })),
            cell(mean_speedup(r, &base, |c| common.contains(&c.id))),
        ]);
        tail.row(vec![
            scheme.label().into(),
            cell(tail_speedup(r, &base, |c| {
                common.contains(&c.id) && c.class >= 4
            })),
            cell(tail_speedup(r, &base, |c| {
                common.contains(&c.id) && c.class < 4
            })),
            cell(tail_speedup(r, &base, |c| common.contains(&c.id))),
        ]);
    }
    let slug = format!("fig12_load{:.0}", load * 100.0);
    t.emit(&slug);
    tail.emit(&format!("fig15_load{:.0}", load * 100.0));
    println!(
        "Expected (paper, 70%): PrioPlus overall speedup ~21% above Physical's;\n\
         the gap is largest on the low priorities (bandwidth reclaim).\n"
    );
}

fn ml(scale: Scale) {
    let mk = |scheme| {
        let mut cfg = MlConfig::new(scheme);
        if scale == Scale::Full {
            cfg.model_scale = 0.1;
            cfg.duration = Time::from_ms(300);
        }
        cfg
    };
    let schemes = [Scheme::PhysicalSwift, Scheme::PrioPlusSwift];
    let mut cases = vec![Scheme::BaselineSwift];
    cases.extend(schemes);
    let cfgs: Vec<MlConfig> = cases.iter().map(|&s| mk(s)).collect();
    eprintln!("  running ML baseline + {} schemes...", schemes.len());
    let mut outs = experiments::sweep::run_ordered(
        &cfgs,
        experiments::sweep::default_jobs(),
        &mltrain::run,
    );
    let base = outs.remove(0);
    let mut t = Table::new(
        "Figure 12c: training speedup vs Swift baseline (4 ResNet + 4 VGG)",
        &["scheme", "ResNet", "VGG", "overall"],
    );
    for (scheme, r) in schemes.into_iter().zip(outs) {
        let speed = |fam: &str| {
            let b = base.iterations(fam).max(1) as f64;
            format!("{:.2}x", r.iterations(fam) as f64 / b)
        };
        t.row(vec![
            scheme.label().into(),
            speed("resnet"),
            speed("vgg"),
            speed("all"),
        ]);
    }
    t.emit("fig12c");
    println!(
        "Expected (paper): PrioPlus ~1.12x/1.15x (ResNet/VGG), total 1.13x;\n\
         Physical speeds ResNet 1.16x but SLOWS VGG to 0.82x (total 1.09x)."
    );
}

fn main() {
    let scale = Scale::from_args();
    let which = experiments::sweep::positional_args()
        .into_iter()
        .next()
        .unwrap_or_else(|| "all".into());
    match which.as_str() {
        "40" => coflow_at(0.4, scale),
        "70" => coflow_at(0.7, scale),
        "ml" => ml(scale),
        _ => {
            coflow_at(0.4, scale);
            coflow_at(0.7, scale);
            ml(scale);
        }
    }
}
