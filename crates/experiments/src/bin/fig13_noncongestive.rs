//! Figure 13: operating under non-congestive delay.
//!
//! The Fig 8a testbed experiment is replayed with uniform non-congestive
//! delay injected at the bottleneck, for tolerable-noise settings B = 10,
//! 20, 30 µs. The metric is the Normalized FCT Gap vs Physical+Swift:
//! `sum(|FCT_pp - FCT_phys| / FCT_phys)` over the flows. Performance should
//! hold until the non-congestive range exceeds the configured tolerance.
//!
//! The (range × B × seed) grid is a sweep of independent cases; `--jobs N`
//! fans it across threads with output identical to a serial run.

use experiments::micro::{testbed_env, Micro, MicroEnv};
use experiments::report::f3;
use experiments::Table;
use netsim::NoiseModel;
use simcore::Time;
use transport::{CcSpec, PrioPlusPolicy};

/// The Fig 8 flow set (4 priorities x 2 flows, staggered), returning FCTs.
fn run_flows(env: &MicroEnv, cc_of: &dyn Fn(u8) -> CcSpec, phys: bool, seed: u64) -> Vec<f64> {
    let mut env = env.clone();
    env.trace = false;
    env.end = Time::from_ms(40);
    env.seed = seed;
    env.num_prios = if phys { 7 } else { 1 };
    let mut m = Micro::build(&env);
    let mut ids = Vec::new();
    for (i, prio) in [3u8, 4, 5, 6].iter().enumerate() {
        let start = Time::from_ms(4 * i as u64);
        let size_each = match prio {
            6 => 2_400_000u64,
            5 => 4_400_000,
            4 => 6_400_000,
            _ => 8_400_000,
        };
        for f in 0..2 {
            let sender = 1 + ((i * 2 + f) % 4);
            let pp = if phys { *prio } else { 0 };
            ids.push(m.add_flow(sender, size_each, start, pp, *prio, &cc_of(*prio)));
        }
    }
    let res = m.sim.run();
    ids.iter()
        .map(|&id| {
            res.records[id as usize]
                .fct()
                .map(|t| t.as_us_f64())
                .unwrap_or(40_000.0)
        })
        .collect()
}

/// One grid cell sample: the FCT gap between the Physical+Swift reference
/// and PrioPlus with noise allowance `B = tol_us`, under `range` µs of
/// uniform non-congestive delay, for one seed.
fn gap_case(range: u64, tol_us: u64, seed: u64) -> f64 {
    let mut env = testbed_env();
    env.switch.nc_delay = if range == 0 {
        None
    } else {
        Some(NoiseModel::Uniform {
            range_ps: Time::from_us(range).as_ps(),
        })
    };
    // Physical reference: Swift in physical priority queues, same in-path nc
    // delay (physical scheduling is unaffected by delay-measurement
    // confusion).
    let phys_fcts = run_flows(
        &env,
        &|prio| CcSpec::Swift {
            queuing: Time::from_us(4 * (prio as u64 + 1)),
            scaling: false,
        },
        true,
        seed,
    );
    // PrioPlus with widened channels: noise allowance B = tol.
    let policy = PrioPlusPolicy {
        noise: Time::from_us(tol_us),
        ..PrioPlusPolicy::paper_default(7)
    };
    let pp_fcts = run_flows(&env, &|_| CcSpec::PrioPlusSwift { policy }, false, seed);
    phys_fcts
        .iter()
        .zip(&pp_fcts)
        .map(|(p, q)| (q - p).abs() / p)
        .sum::<f64>()
}

fn main() {
    let mut t = Table::new(
        "Figure 13: Normalized FCT Gap vs non-congestive delay range",
        &["nc range (us)", "B=10us", "B=20us", "B=30us"],
    );
    let ranges: Vec<u64> = vec![0, 6, 10, 14, 18, 24, 28, 32, 40];
    let tols = [10u64, 20, 30];
    // Average the gap over several seeds: the nc-delay draws are random and
    // a single staggered-8-flow run is noisy.
    let seeds = [1u64, 2, 3, 4];
    let mut cases: Vec<(u64, u64, u64)> = Vec::new();
    for &range in &ranges {
        for &tol in &tols {
            for &seed in &seeds {
                cases.push((range, tol, seed));
            }
        }
    }
    let gaps = experiments::sweep::run_ordered(
        &cases,
        experiments::sweep::default_jobs(),
        &|&(range, tol, seed)| gap_case(range, tol, seed),
    );
    let mut gaps = gaps.into_iter();
    for &range in &ranges {
        let mut cells = vec![range.to_string()];
        for _tol in tols {
            let gap_sum: f64 = (0..seeds.len())
                .map(|_| gaps.next().expect("one gap per case"))
                .sum();
            cells.push(f3(gap_sum / seeds.len() as f64));
        }
        t.row(cells);
    }
    t.emit("fig13");
    println!(
        "Expected (paper): the gap stays flat until the nc-delay range passes the\n\
         tolerance setting (impact thresholds ~14/24/32 us for B = 10/20/30 us),\n\
         then grows — incorporating nc variation into B restores operation."
    );
}
