//! Figure 14: FCT by priority band and flow size when *every* priority
//! carries a complete WebSearch workload (no size-based scheduling),
//! 12 priorities at 50 % total load. FCTs are normalized by
//! Physical*+Swift per (band, size) cell.
//!
//! Shows: higher delay thresholds do NOT mean higher experienced delay
//! (§6.3), probe-before-start costs little, and PrioPlus stays within
//! ~21 % of ideal physical priorities everywhere.

use experiments::report::opt3;
use experiments::{Scale, Scheme, Table};
use netsim::{FlowSpec, NoiseModel, Sim, SimConfig, SwitchConfig, Topology};
use simcore::{Rate, Time};
use transport::{CcSpec, PrioPlusPolicy};
use workloads::{PoissonArrivals, SizeDist};

const CLASSES: u8 = 12;

struct Out {
    size: u64,
    prio: u8,
    fct_us: Option<f64>,
}

fn run(scheme: Scheme, scale: Scale) -> Vec<Out> {
    let k = scale.pick(4, 6);
    let duration = scale.pick(Time::from_ms(3), Time::from_ms(20));
    let rate = Rate::from_gbps(100);
    let topo = Topology::fat_tree(k, rate, Time::from_us(1));
    let hosts = topo.hosts.clone();
    let nq = if scheme.single_queue() { 1 } else { CLASSES };
    let sim_cfg = SimConfig {
        num_prios: nq,
        end_time: duration + duration,
        seed: 77,
        meas_noise: NoiseModel::testbed(),
        ..Default::default()
    };
    let sw_cfg = SwitchConfig {
        // simlint::allow(lossy-time-cast, buffer sizing heuristic in bytes; value is far below u64::MAX and truncation is intended)
        buffer_bytes: (4.4e6 * k as f64 * rate.as_gbps_f64() / 1000.0) as u64,
        pfc_lossless_prios: 0, // Physical* (ideal) comparison baseline
        int_enabled: false,
        ..Default::default()
    };
    let mut sim = Sim::new(&topo, sim_cfg, sw_cfg);

    // Each priority carries a full WebSearch workload at 50%/12 load.
    let mut meta = Vec::new();
    for prio in 0..CLASSES {
        let mut arr = PoissonArrivals::new(
            SizeDist::websearch(),
            hosts.len(),
            rate,
            0.5 / CLASSES as f64,
            Time::ZERO,
            1000 + prio as u64,
        );
        for a in arr.generate_until(duration) {
            let cc = match scheme {
                Scheme::PhysicalStarSwift => CcSpec::Swift {
                    queuing: Time::from_us(4),
                    scaling: false,
                },
                Scheme::PrioPlusSwift => CcSpec::PrioPlusSwift {
                    policy: PrioPlusPolicy::paper_default(CLASSES),
                },
                Scheme::PhysicalStarNoCc => CcSpec::Blast,
                Scheme::D2tcp => CcSpec::D2tcp {
                    deadline_factor: Some(
                        1.5 + (12.0 - 1.5) * (CLASSES - 1 - prio) as f64 / (CLASSES - 1) as f64,
                    ),
                },
                _ => unreachable!(),
            };
            let spec = FlowSpec {
                src: hosts[a.src],
                dst: hosts[a.dst],
                size: a.size,
                start: a.start,
                phys_prio: if scheme.single_queue() { 0 } else { prio },
                virt_prio: prio,
                tag: prio as u64,
            };
            sim.add_flow(spec, |p| cc.make(p, a.start));
            meta.push((a.size, prio));
        }
    }
    let res = sim.run();
    res.records
        .iter()
        .zip(meta)
        .map(|(r, (size, prio))| Out {
            size,
            prio,
            fct_us: r.fct().map(|t| t.as_us_f64()),
        })
        .collect()
}

fn band(prio: u8) -> &'static str {
    match prio {
        11 => "high",
        6..=10 => "middle",
        _ => "low",
    }
}

fn size_class(size: u64) -> &'static str {
    if size <= 12_000 {
        "sub-RTT"
    } else if size < 300_000 {
        "small"
    } else if size < 6_000_000 {
        "middle"
    } else {
        "large"
    }
}

fn mean_fct(outs: &[Out], b: &str, s: &str) -> Option<f64> {
    let v: Vec<f64> = outs
        .iter()
        .filter(|o| band(o.prio) == b && size_class(o.size) == s)
        .filter_map(|o| o.fct_us)
        .collect();
    if v.is_empty() {
        None
    } else {
        Some(v.iter().sum::<f64>() / v.len() as f64)
    }
}

fn main() {
    let scale = Scale::from_args();
    let schemes = [
        Scheme::PrioPlusSwift,
        Scheme::PhysicalStarNoCc,
        Scheme::D2tcp,
    ];
    // The reference and the three schemes are independent runs; fan all
    // four out together (`--jobs N`), results in input order.
    let mut cases = vec![Scheme::PhysicalStarSwift];
    cases.extend(schemes);
    let mut all = experiments::sweep::run_ordered(
        &cases,
        experiments::sweep::default_jobs(),
        &|&scheme| run(scheme, scale),
    );
    let reference = all.remove(0);
    for (scheme, outs) in schemes.into_iter().zip(all) {
        eprintln!("ran {}...", scheme.label());
        let mut t = Table::new(
            format!(
                "Figure 14 ({}): mean FCT normalized by Physical*+Swift",
                scheme.label()
            ),
            &["priority band", "sub-RTT", "small", "middle", "large"],
        );
        for b in ["high", "middle", "low"] {
            let mut cells = vec![b.to_string()];
            for s in ["sub-RTT", "small", "middle", "large"] {
                let norm = match (mean_fct(&outs, b, s), mean_fct(&reference, b, s)) {
                    (Some(x), Some(r)) => Some(x / r),
                    _ => None,
                };
                cells.push(opt3(norm));
            }
            t.row(cells);
        }
        t.emit(&format!(
            "fig14_{}",
            scheme.label().replace(['*', '+', ' ', '/'], "_")
        ));
    }
    // §6.3 check: absolute FCT of sub-RTT flows at the highest priority.
    let hi_subrtt = mean_fct(&reference, "high", "sub-RTT");
    println!(
        "Physical*+Swift high-priority sub-RTT mean FCT: {} us.\n\
         Expected (paper): PrioPlus sub-RTT high-priority FCT ~20.9 us even though\n\
         D_target is 60 us — thresholds don't set experienced delay; PrioPlus within\n\
         ~21% of Physical* across cells; w/o-CC wrecks small flows at low bands.",
        opt3(hi_subrtt)
    );
}
