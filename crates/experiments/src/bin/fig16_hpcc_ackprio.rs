//! Figure 16 (Appendix A.3): flow scheduling with HPCC and with PrioPlus*
//! (ACKs sharing the data priority instead of a dedicated control queue).
//!
//! Expected: PrioPlus* within ~10 % of PrioPlus; both beat HPCC (≥15 % on
//! average FCT); HPCC protects small flows at the cost of medium/large.

use experiments::flowsched::{bucket_of, run_many, FlowSchedConfig};
use experiments::report::opt3;
use experiments::{Scale, Scheme, Table};
use simcore::Time;

fn main() {
    let scale = Scale::from_args();
    let classes = 8u8;
    let schemes = [
        Scheme::PrioPlusSwift,
        Scheme::PrioPlusSwiftAckData,
        Scheme::PhysicalStarHpcc,
    ];
    let mut t = Table::new(
        "Figure 16: avg FCT (us) — PrioPlus vs PrioPlus* (in-band ACKs) vs HPCC",
        &["scheme", "total", "small", "middle", "large", "p99 total"],
    );
    let cfgs: Vec<FlowSchedConfig> = schemes
        .iter()
        .map(|&scheme| {
            let mut cfg = FlowSchedConfig::new(scheme, classes);
            cfg.k = scale.pick(4, 6);
            cfg.duration = scale.pick(Time::from_ms(3), Time::from_ms(20));
            cfg.seed = 16;
            cfg
        })
        .collect();
    let results = run_many(&cfgs, experiments::sweep::default_jobs());
    for (scheme, r) in schemes.into_iter().zip(results) {
        t.row(vec![
            scheme.label().into(),
            opt3(r.mean_fct_us(|_| true)),
            opt3(r.mean_fct_us(|f| bucket_of(f.size) == "small")),
            opt3(r.mean_fct_us(|f| bucket_of(f.size) == "middle")),
            opt3(r.mean_fct_us(|f| bucket_of(f.size) == "large")),
            opt3(r.p99_fct_us(|_| true)),
        ]);
    }
    t.emit("fig16");
    println!(
        "Expected (paper): PrioPlus* <10% worse than PrioPlus; HPCC >=15% worse on\n\
         average and >=11% on p99, with medium/large flows paying for its small-flow\n\
         protection."
    );
}
