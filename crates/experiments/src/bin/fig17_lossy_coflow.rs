//! Figure 17 (Appendix A.5): the coflow scenario under a LOSSY fabric —
//! PFC off, drops recovered with IRN-style selective retransmission.
//!
//! Expected: PrioPlus's behavior is nearly identical to the lossless run
//! because its buffer management keeps queues small enough to avoid loss.

use experiments::coflowsched::{self, mean_speedup, CoflowConfig};
use experiments::{Scale, Scheme, Table};
use simcore::Time;

fn main() {
    let scale = Scale::from_args();
    let load = 0.7;
    let mk = |scheme, lossless| {
        let mut cfg = CoflowConfig::new(scheme, load);
        cfg.lossless = lossless;
        if scale == Scale::Full {
            cfg.leaves = 16;
            cfg.hosts_per_leaf = 20;
            cfg.spines = 8;
            cfg.duration = Time::from_ms(30);
            cfg.fanin = 20;
        }
        cfg
    };
    let mut t = Table::new(
        "Figure 17: coflow speedups at 70% load, lossy (PFC off + IRN) vs lossless",
        &[
            "scheme",
            "env",
            "high (4-7)",
            "low (0-3)",
            "overall",
            "drops",
            "rtx",
        ],
    );
    // All six (scheme × env) runs are independent: sweep them together.
    let schemes = [Scheme::PhysicalSwift, Scheme::PrioPlusSwift];
    let mut cfgs = Vec::new();
    for lossless in [true, false] {
        cfgs.push(mk(Scheme::BaselineSwift, lossless));
        for scheme in schemes {
            cfgs.push(mk(scheme, lossless));
        }
    }
    eprintln!("running {} coflow configs...", cfgs.len());
    let outs = coflowsched::run_many(&cfgs, experiments::sweep::default_jobs());
    let mut outs = outs.into_iter();
    for lossless in [true, false] {
        let env = if lossless { "lossless" } else { "lossy" };
        let base = outs.next().expect("baseline result");
        let results: Vec<(Scheme, coflowsched::CoflowResult)> = schemes
            .iter()
            .map(|&s| (s, outs.next().expect("scheme result")))
            .collect();
        let mut all: Vec<&coflowsched::CoflowResult> = vec![&base];
        all.extend(results.iter().map(|(_, r)| r));
        let common = coflowsched::common_ids(&all);
        for (scheme, r) in &results {
            let cell = |v: Option<f64>| v.map(|x| format!("{x:.2}x")).unwrap_or("-".into());
            t.row(vec![
                scheme.label().into(),
                env.into(),
                cell(mean_speedup(r, &base, |c| {
                    common.contains(&c.id) && c.class >= 4
                })),
                cell(mean_speedup(r, &base, |c| {
                    common.contains(&c.id) && c.class < 4
                })),
                cell(mean_speedup(r, &base, |c| common.contains(&c.id))),
                r.drops.to_string(),
                r.retransmits.to_string(),
            ]);
        }
    }
    t.emit("fig17");
    println!(
        "Expected (paper): PrioPlus's speedups in the lossy environment are nearly\n\
         the same as lossless — good buffer management avoids packet loss."
    );
}
