//! Figure 18 (Appendix A.4): the coflow scenario at 70 % load with HPCC
//! and with raw physical priorities without any congestion control.
//!
//! Expected: HPCC ~24 % worse than PrioPlus on average CCT (~15 % on p99);
//! physical-without-CC collapses entirely under the congested fabric.

use experiments::coflowsched::{self, mean_speedup, tail_speedup, CoflowConfig};
use experiments::{Scale, Scheme, Table};
use simcore::Time;

fn main() {
    let scale = Scale::from_args();
    let mk = |scheme| {
        let mut cfg = CoflowConfig::new(scheme, 0.7);
        if scale == Scale::Full {
            cfg.leaves = 16;
            cfg.hosts_per_leaf = 20;
            cfg.spines = 8;
            cfg.duration = Time::from_ms(30);
            cfg.fanin = 20;
        }
        cfg
    };
    let mut t = Table::new(
        "Figure 18: coflow speedups at 70% load — HPCC and physical w/o CC",
        &["scheme", "mean speedup", "p99 speedup", "completion"],
    );
    let schemes = [
        Scheme::PrioPlusSwift,
        Scheme::PhysicalStarHpcc,
        Scheme::PhysicalStarNoCc,
    ];
    let mut cases = vec![Scheme::BaselineSwift];
    cases.extend(schemes);
    let cfgs: Vec<CoflowConfig> = cases.iter().map(|&s| mk(s)).collect();
    eprintln!("running baseline + {} schemes...", schemes.len());
    let mut outs = coflowsched::run_many(&cfgs, experiments::sweep::default_jobs());
    let base = outs.remove(0);
    let results: Vec<(Scheme, coflowsched::CoflowResult)> =
        schemes.into_iter().zip(outs).collect();
    let mut all: Vec<&coflowsched::CoflowResult> = vec![&base];
    all.extend(results.iter().map(|(_, r)| r));
    let common = coflowsched::common_ids(&all);
    for (scheme, r) in &results {
        let cell = |v: Option<f64>| v.map(|x| format!("{x:.2}x")).unwrap_or("-".into());
        t.row(vec![
            scheme.label().into(),
            cell(mean_speedup(r, &base, |c| common.contains(&c.id))),
            cell(tail_speedup(r, &base, |c| common.contains(&c.id))),
            format!("{:.2}", r.completion),
        ]);
    }
    t.emit("fig18");
    println!(
        "Expected (paper): HPCC's average CCT ~24% worse than PrioPlus (p99 ~15%);\n\
         physical w/o CC performs extremely poorly with no control under congestion."
    );
}
