//! Hyperscale scenario: PrioPlus vs DCTCP tail FCT on large fabrics with
//! open-loop streamed arrivals and streaming-sketch statistics.
//!
//! Quick (default): k=8 fat-tree (128 hosts), 2 ms trace. `--full`: k=16
//! fat-tree (1024 hosts) plus the 3-tier+WAN fabric, 20 ms trace. Both
//! schemes share one physical queue — the comparison isolates what virtual
//! priority buys at scale — and every quantile comes from the streaming
//! sketches; no per-flow record vectors are kept.
//!
//! Also reports the memory-scaling counters: peak live flows vs total flow
//! lifetimes, and the peak resident budget (flow slab + packet arena).
//!
//! Usage: `fig_hyperscale [--full]`

use experiments::hyperscale::{run_many, HyperScheme, HyperTopo, HyperscaleConfig};
use experiments::report::f3;
use experiments::{Scale, Table};
use netsim::ThreeTierWanSpec;
use simcore::Time;

fn main() {
    let scale = Scale::from_args();
    let jobs = experiments::sweep::default_jobs();
    let mut cfgs = Vec::new();
    let mut labels = Vec::new();
    for scheme in [HyperScheme::PrioPlus, HyperScheme::Dctcp] {
        let base = match scale {
            Scale::Quick => HyperscaleConfig::quick(scheme),
            Scale::Full => HyperscaleConfig::full(scheme),
        };
        labels.push(base.topo.name());
        cfgs.push(base);
        if scale == Scale::Full {
            // Second fabric: a small multi-DC 3-tier+WAN slice (2 DCs,
            // 1024 hosts) exercising the compressed routing mode and the
            // WAN hierarchy with the same trace parameters.
            let spec = ThreeTierWanSpec {
                dcs: 2,
                pods_per_dc: 4,
                tors_per_pod: 8,
                hosts_per_tor: 16,
                aggs_per_pod: 4,
                cores_per_dc: 8,
                wan_routers: 4,
                ..Default::default()
            };
            let cfg = HyperscaleConfig {
                topo: HyperTopo::ThreeTierWan(spec),
                duration: Time::from_ms(5),
                ..HyperscaleConfig::full(scheme)
            };
            labels.push(cfg.topo.name());
            cfgs.push(cfg);
        }
    }
    let results = run_many(&cfgs, jobs);
    let mut t = Table::new(
        "Hyperscale: PrioPlus vs DCTCP, single physical queue, open-loop WebSearch + incast",
        &[
            "cc",
            "topo",
            "flows",
            "done",
            "fct p50us",
            "fct p99us",
            "top-class p99us",
            "sld p99",
            "peak live",
            "peak MB",
        ],
    );
    for ((cfg, label), r) in cfgs.iter().zip(&labels).zip(&results) {
        t.row(vec![
            cfg.scheme.name().to_string(),
            label.clone(),
            r.flows_total.to_string(),
            format!("{:.0}%", r.finished as f64 / r.flows_total.max(1) as f64 * 100.0),
            f3(r.fct_us.p50),
            f3(r.fct_us.p99),
            f3(r.fct_top_class_us.p99),
            f3(r.slowdown.p99),
            r.flow_live_peak.to_string(),
            f3(r.mem_budget_bytes as f64 / 1e6),
        ]);
    }
    t.emit("fig_hyperscale");
}
