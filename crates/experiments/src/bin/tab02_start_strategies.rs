//! Table 2 / Figure 5 / Theorem 4.1: start-strategy trade-off between bytes
//! delayed and worst-case extra buffer, for line-rate, exponential, and
//! linear starts — both closed-form and numerically evaluated, plus a
//! verification that the linear ramp minimizes worst-case backlog among a
//! family of alternative ramps (the variational-method theorem).

use experiments::report::f3;
use experiments::Table;
use prioplus::linear_start::{
    bytes_delayed_bdp, max_extra_buffer_bdp, table2_closed_form, ExponentialStart, LineRateStart,
    LinearStart, StartStrategy,
};

fn main() {
    let n = 8;
    let mut t = Table::new(
        format!("Table 2: start strategies (ramp of n = {n} RTTs; units of BDP)"),
        &[
            "strategy",
            "bytes delayed (sim)",
            "bytes delayed (closed)",
            "max extra buffer (sim)",
            "max extra buffer (closed)",
        ],
    );
    let strategies: Vec<(&str, Box<dyn StartStrategy>)> = vec![
        ("line-rate", Box::new(LineRateStart)),
        ("exponential", Box::new(ExponentialStart { n })),
        ("linear", Box::new(LinearStart { n })),
    ];
    for (name, s) in &strategies {
        let (d_cf, b_cf) = table2_closed_form(name, n);
        t.row(vec![
            name.to_string(),
            f3(bytes_delayed_bdp(s.as_ref())),
            f3(d_cf),
            f3(max_extra_buffer_bdp(s.as_ref())),
            f3(b_cf),
        ]);
    }
    t.emit("tab02");
    println!(
        "Paper: line-rate = (0, 1 BDP); exponential = (n-3/2, 0.5 BDP);\n\
         linear = (n/2, 1/(2n) BDP)  [Theorem 4.1: linear is backlog-optimal]"
    );

    // Theorem 4.1 spot check: linear beats power-law ramps of equal length.
    struct Power {
        n: u32,
        p: f64,
    }
    impl StartStrategy for Power {
        fn rate(&self, t: f64) -> f64 {
            (t / self.n as f64).clamp(0.0, 1.0).powf(self.p)
        }
        fn duration(&self) -> f64 {
            self.n as f64
        }
        fn name(&self) -> &'static str {
            "power"
        }
    }
    let mut v = Table::new(
        "Theorem 4.1 verification: worst-case backlog by ramp shape (n = 8)",
        &["ramp", "max extra buffer (BDP)"],
    );
    v.row(vec![
        "linear".into(),
        f3(max_extra_buffer_bdp(&LinearStart { n })),
    ]);
    for p in [0.5, 2.0, 4.0] {
        v.row(vec![
            format!("power p={p}"),
            f3(max_extra_buffer_bdp(&Power { n, p })),
        ]);
    }
    v.row(vec![
        "exponential".into(),
        f3(max_extra_buffer_bdp(&ExponentialStart { n })),
    ]);
    v.emit("tab02_theorem");
}
