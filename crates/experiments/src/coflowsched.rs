//! The coflow-scheduling scenario (Fig 12ab, 15, 17, 18): Facebook-like
//! coflows plus file-request incasts at a 1:1 load ratio on a non-blocking
//! leaf–spine fabric; coflows grouped into 8 priority classes by total size
//! (smaller → higher priority). The metric is the per-coflow CCT *speedup
//! ratio* against the scenario baseline (Swift, single queue, no
//! priorities).

use std::collections::HashMap;

use netsim::{FlowSpec, NoiseModel, Sim, SimConfig, SwitchConfig, Topology};
use simcore::{Rate, Time};
use transport::{CcSpec, PrioPlusPolicy};
use workloads::{Coflow, CoflowGen, SizeClassifier};

use crate::Scheme;

/// Coflow scenario parameters.
#[derive(Clone, Debug)]
pub struct CoflowConfig {
    /// Scheme under test.
    pub scheme: Scheme,
    /// Total offered load (coflows + file requests, split 1:1).
    pub load: f64,
    /// Leaf switches.
    pub leaves: usize,
    /// Spine switches.
    pub spines: usize,
    /// Hosts per leaf.
    pub hosts_per_leaf: usize,
    /// Host link rate.
    pub host_rate: Rate,
    /// Leaf–spine link rate.
    pub fabric_rate: Rate,
    /// Arrival window; the simulation runs 2× to drain.
    pub duration: Time,
    /// Number of coflow priority groups.
    pub classes: u8,
    /// Seed (same seed ⇒ identical workload across schemes).
    pub seed: u64,
    /// File-request fan-in (paper: 20).
    pub fanin: usize,
    /// Bytes per file-request piece.
    pub piece_bytes: u64,
    /// Lossless (PFC) or lossy (drops + IRN, Fig 17).
    pub lossless: bool,
}

impl CoflowConfig {
    /// Reduced-scale defaults (paper: 16 leaves × 20 hosts, 5 pods,
    /// 100G/400G).
    pub fn new(scheme: Scheme, load: f64) -> Self {
        CoflowConfig {
            scheme,
            load,
            leaves: 4,
            spines: 4,
            hosts_per_leaf: 8,
            host_rate: Rate::from_gbps(100),
            fabric_rate: Rate::from_gbps(400),
            duration: Time::from_ms(16),
            classes: 8,
            seed: 7,
            fanin: 8,
            // A distributed-storage read ships block-sized stripes; the
            // aggregate request (fanin x piece) is elephant-class, which
            // keeps the high priority groups for genuinely small coflows.
            piece_bytes: 2_000_000,
            lossless: true,
        }
    }
}

/// Per-coflow outcome.
#[derive(Clone, Copy, Debug)]
pub struct CoflowOut {
    /// Coflow id.
    pub id: u64,
    /// Priority class (0 = lowest).
    pub class: u8,
    /// Coflow completion time (µs), when all member flows finished.
    pub cct_us: Option<f64>,
}

/// Scenario result.
#[derive(Clone, Debug)]
pub struct CoflowResult {
    /// Per-coflow outcomes.
    pub coflows: Vec<CoflowOut>,
    /// Completion fraction (coflows fully finished).
    pub completion: f64,
    /// Drops (lossy mode).
    pub drops: u64,
    /// Retransmissions (lossy mode).
    pub retransmits: u64,
}

impl CoflowResult {
    /// Map id → CCT for speedup computation.
    pub fn cct_by_id(&self) -> HashMap<u64, f64> {
        self.coflows
            .iter()
            .filter_map(|c| c.cct_us.map(|v| (c.id, v)))
            .collect()
    }
}

/// Ids of coflows that completed in every given result — scheme comparisons
/// must be computed over this common set, otherwise schemes that starve
/// (and censor) their slowest coflows get a survivorship advantage.
pub fn common_ids(results: &[&CoflowResult]) -> std::collections::HashSet<u64> {
    let mut iter = results.iter();
    let Some(first) = iter.next() else {
        return Default::default();
    };
    let mut set: std::collections::HashSet<u64> = first
        .coflows
        .iter()
        .filter(|c| c.cct_us.is_some())
        .map(|c| c.id)
        .collect();
    for r in iter {
        let ids: std::collections::HashSet<u64> = r
            .coflows
            .iter()
            .filter(|c| c.cct_us.is_some())
            .map(|c| c.id)
            .collect();
        set.retain(|id| ids.contains(id));
    }
    set
}

/// Average CCT speedup of `result` vs `baseline` over coflows matching
/// `pred` (both runs must share the workload seed). Speedup ratio =
/// `CCT_baseline / CCT_scheme` per coflow, averaged.
pub fn mean_speedup(
    result: &CoflowResult,
    baseline: &CoflowResult,
    pred: impl Fn(&CoflowOut) -> bool,
) -> Option<f64> {
    let base = baseline.cct_by_id();
    let v: Vec<f64> = result
        .coflows
        .iter()
        .filter(|c| pred(c))
        .filter_map(|c| {
            let mine = c.cct_us?;
            let b = base.get(&c.id)?;
            Some(b / mine)
        })
        .collect();
    if v.is_empty() {
        None
    } else {
        Some(v.iter().sum::<f64>() / v.len() as f64)
    }
}

/// Tail (p99) CCT speedup: ratio of the p99 CCTs over matching coflows
/// (Fig 15 reports tail speedups per priority band).
pub fn tail_speedup(
    result: &CoflowResult,
    baseline: &CoflowResult,
    pred: impl Fn(&CoflowOut) -> bool,
) -> Option<f64> {
    let p99 = |r: &CoflowResult| -> Option<f64> {
        let mut v: Vec<f64> = r
            .coflows
            .iter()
            .filter(|c| pred(c))
            .filter_map(|c| c.cct_us)
            .collect();
        if v.is_empty() {
            return None;
        }
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = ((0.99 * v.len() as f64).ceil() as usize).clamp(1, v.len());
        Some(v[rank - 1])
    };
    Some(p99(baseline)? / p99(result)?)
}

fn cc_for(cfg: &CoflowConfig) -> CcSpec {
    match cfg.scheme {
        Scheme::PhysicalSwift | Scheme::PhysicalStarSwift | Scheme::BaselineSwift => {
            CcSpec::Swift {
                queuing: Time::from_us(4),
                scaling: false,
            }
        }
        Scheme::PrioPlusSwift | Scheme::PrioPlusSwiftAckData => CcSpec::PrioPlusSwift {
            // Coflow scheduling is CCT-sensitive in every class: use the
            // §4.4 latency-sensitive exemption (tiered linear start, no
            // probe-before-start).
            policy: PrioPlusPolicy {
                probe: false,
                ..PrioPlusPolicy::paper_default(cfg.classes)
            },
        },
        Scheme::PrioPlusLedbat => CcSpec::PrioPlusLedbat {
            policy: PrioPlusPolicy {
                probe: false,
                ..PrioPlusPolicy::paper_default(cfg.classes)
            },
        },
        Scheme::PhysicalStarNoCc => CcSpec::Blast,
        Scheme::PhysicalStarHpcc => CcSpec::Hpcc,
        Scheme::D2tcp => CcSpec::D2tcp {
            deadline_factor: Some(2.0),
        },
    }
}

/// Run the scenario.
pub fn run(cfg: &CoflowConfig) -> CoflowResult {
    let topo = Topology::leaf_spine(
        cfg.leaves,
        cfg.spines,
        cfg.hosts_per_leaf,
        cfg.host_rate,
        cfg.fabric_rate,
        Time::from_us(1),
    );
    let hosts = topo.hosts.clone();
    let n_hosts = hosts.len();

    // Workload: coflows at load/2 + file requests at load/2 (1:1, §6.2).
    let mut gen = CoflowGen::new(n_hosts, cfg.seed ^ 0xC0F);
    let mut all: Vec<Coflow> = gen.generate_poisson(cfg.host_rate, cfg.load / 2.0, cfg.duration);
    all.extend(gen.generate_file_requests(
        cfg.host_rate,
        cfg.load / 2.0,
        cfg.fanin,
        cfg.piece_bytes,
        cfg.duration,
    ));
    all.sort_by_key(|c| c.start);

    // Classify coflows into groups by total size. Quantiles can coincide
    // (file requests share one size), so nudge duplicates up to keep the
    // full ladder of `classes` strictly-ascending boundaries.
    let mut sizes: Vec<u64> = all.iter().map(|c| c.total_bytes()).collect();
    sizes.sort_unstable();
    let mut bounds: Vec<u64> = (1..cfg.classes as usize)
        .map(|i| sizes[(i * sizes.len() / cfg.classes as usize).min(sizes.len() - 1)])
        .collect();
    for i in 1..bounds.len() {
        if bounds[i] <= bounds[i - 1] {
            bounds[i] = bounds[i - 1] + 1;
        }
    }
    let classifier = SizeClassifier::from_bounds(bounds);

    let nq = if cfg.scheme.single_queue() {
        1
    } else {
        match cfg.scheme {
            Scheme::PhysicalSwift => cfg.classes.min(8),
            _ => cfg.classes,
        }
    };
    let sim_cfg = SimConfig {
        num_prios: nq,
        end_time: cfg.duration + cfg.duration,
        seed: cfg.seed,
        meas_noise: NoiseModel::testbed(),
        ..Default::default()
    };
    // Paper: 32 MB shared buffer in this scenario to avoid buffer effects.
    let ports = cfg.hosts_per_leaf + cfg.spines;
    let sw_cfg = SwitchConfig {
        buffer_bytes: 32 * 1024 * 1024,
        pfc_enabled: cfg.lossless,
        pfc_lossless_prios: if cfg.scheme == Scheme::PhysicalSwift {
            nq
        } else {
            0
        },
        int_enabled: cfg.scheme == Scheme::PhysicalStarHpcc,
        ..Default::default()
    };
    let _ = ports;
    let mut sim = Sim::new(&topo, sim_cfg, sw_cfg);

    let cc = cc_for(cfg);
    let mut meta: Vec<(u64, u8, Time, usize)> = Vec::new(); // id, class, start, flows
    for c in &all {
        let class = classifier.priority(c.total_bytes()).min(cfg.classes - 1);
        let phys = if cfg.scheme.single_queue() {
            0
        } else {
            class.min(nq - 1)
        };
        for f in &c.flows {
            let spec = FlowSpec {
                src: hosts[f.src],
                dst: hosts[f.dst],
                size: f.size,
                start: f.start,
                phys_prio: phys,
                virt_prio: class,
                tag: c.id,
            };
            sim.add_flow(spec, |p| cc.make(p, f.start));
        }
        meta.push((c.id, class, c.start, c.flows.len()));
    }

    let result = sim.run();
    // CCT per coflow: max member finish − coflow start; None if any member
    // was censored.
    let mut finish: HashMap<u64, (Time, bool)> = HashMap::new();
    for r in &result.records {
        let entry = finish.entry(r.tag).or_insert((Time::ZERO, true));
        match r.finish {
            Some(t) => entry.0 = entry.0.max(t),
            None => entry.1 = false,
        }
    }
    let retransmits = result.records.iter().map(|r| r.retransmits).sum();
    let coflows: Vec<CoflowOut> = meta
        .iter()
        .map(|&(id, class, start, _)| {
            let cct = finish.get(&id).and_then(|&(t, complete)| {
                if complete {
                    Some((t - start).as_us_f64())
                } else {
                    None
                }
            });
            CoflowOut {
                id,
                class,
                cct_us: cct,
            }
        })
        .collect();
    let done = coflows.iter().filter(|c| c.cct_us.is_some()).count();
    CoflowResult {
        completion: done as f64 / coflows.len().max(1) as f64,
        drops: result.counters.drops,
        retransmits,
        coflows,
    }
}

/// Run many independent configs across `jobs` threads; results are returned
/// in input order, identical to calling [`run`] on each config serially.
pub fn run_many(cfgs: &[CoflowConfig], jobs: usize) -> Vec<CoflowResult> {
    crate::sweep::run_ordered(cfgs, jobs, &run)
}
