//! Fault-regime comparison scenario: how congestion-control schemes hold
//! virtual-priority ordering when the fabric misbehaves.
//!
//! An 8-sender incast over four virtual priorities runs under three
//! regimes — fault-free, seed-driven bottleneck link flaps
//! ([`workloads::FaultPlanSpec`] windows turned into a
//! [`netsim::FaultSchedule`]), and periodic PFC pause storms on the
//! bottleneck egress. The scenario reports completion, FCT slowdowns and
//! the number of *priority inversions* (pairs where the higher
//! virtual-priority flow ends up with the larger slowdown) so
//! EXPERIMENTS.md can table PrioPlus against priority-blind baselines
//! under failure.

use netsim::{FaultSchedule, SimResult};
use simcore::Time;
use transport::{CcSpec, PrioPlusPolicy};
use workloads::FaultPlanSpec;

use crate::micro::{Micro, MicroEnv};

/// Virtual priorities used by the scenario (flow `i` gets `i % PRIOS`).
pub const PRIOS: u8 = 4;
/// Sender hosts (the switch is node `SENDERS + 1`, its port 0 faces the
/// receiver).
pub const SENDERS: usize = 8;

/// Which fault regime to apply to the incast.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultRegime {
    /// Fault-free reference.
    None,
    /// Seed-driven flaps of the bottleneck link (MTBF 600 µs, MTTR
    /// 60 µs): in-flight loss plus repeated blackout epochs.
    Flap,
    /// Periodic 100 µs pause storms pinning the bottleneck egress every
    /// 400 µs: lossless stalls without packet loss.
    Storm,
}

impl FaultRegime {
    /// All regimes, table order.
    pub const ALL: [FaultRegime; 3] = [FaultRegime::None, FaultRegime::Flap, FaultRegime::Storm];

    /// Row label.
    pub fn name(self) -> &'static str {
        match self {
            FaultRegime::None => "none",
            FaultRegime::Flap => "flap",
            FaultRegime::Storm => "storm",
        }
    }

    /// The fault schedule for this regime on `switch` node's port 0
    /// (the bottleneck) over `[0, horizon)`.
    pub fn schedule(self, switch: u32, horizon: Time, seed: u64) -> Option<FaultSchedule> {
        match self {
            FaultRegime::None => None,
            FaultRegime::Flap => {
                let plan = FaultPlanSpec::new(Time::from_us(600), Time::from_us(60), seed);
                let mut sched = FaultSchedule::new();
                for (down, up) in plan.sample_link(0, horizon) {
                    sched.link_flap(switch, 0, down, up);
                }
                Some(sched)
            }
            FaultRegime::Storm => {
                let mut sched = FaultSchedule::new();
                let mut t = Time::from_us(100);
                while t < horizon {
                    sched.pause_storm(switch, 0, 0, t, t + Time::from_us(100));
                    t += Time::from_us(400);
                }
                Some(sched)
            }
        }
    }
}

/// Congestion-control schemes compared by the scenario.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultCc {
    /// PrioPlus over Swift (virtual priorities active).
    PrioPlus,
    /// DCTCP (priority-blind ECN baseline).
    Dctcp,
}

impl FaultCc {
    /// All schemes, table order.
    pub const ALL: [FaultCc; 2] = [FaultCc::PrioPlus, FaultCc::Dctcp];

    /// Row label.
    pub fn name(self) -> &'static str {
        match self {
            FaultCc::PrioPlus => "prioplus-swift",
            FaultCc::Dctcp => "dctcp",
        }
    }

    /// The transport spec.
    pub fn spec(self) -> CcSpec {
        match self {
            FaultCc::PrioPlus => CcSpec::PrioPlusSwift {
                policy: PrioPlusPolicy::paper_default(PRIOS),
            },
            FaultCc::Dctcp => CcSpec::D2tcp {
                deadline_factor: None,
            },
        }
    }
}

/// Aggregated outcome of one (scheme, regime) cell.
#[derive(Clone, Debug)]
pub struct FaultOutcome {
    /// Fraction of flows that finished within the horizon.
    pub completion: f64,
    /// Mean FCT slowdown over finished flows.
    pub mean_slowdown: f64,
    /// Worst FCT slowdown over finished flows.
    pub max_slowdown: f64,
    /// Priority inversions: finished pairs where the strictly higher
    /// virtual-priority flow has the strictly larger slowdown.
    pub inversions: usize,
    /// Pairs compared (finished pairs with distinct virtual priorities).
    pub pairs: usize,
    /// Fault transitions applied.
    pub fault_events: u64,
    /// Data + control packets dropped on dead links.
    pub fault_drops: u64,
}

/// Count priority inversions over the finished flows of `res`: for every
/// pair with distinct virtual priorities, the higher-priority flow
/// should not have the strictly larger slowdown.
pub fn count_inversions(res: &SimResult) -> (usize, usize) {
    let done: Vec<(u8, f64)> = res
        .finished()
        .filter_map(|r| Some((r.virt_prio, r.slowdown_auto()?)))
        .collect();
    let mut inversions = 0;
    let mut pairs = 0;
    for (i, &(pi, si)) in done.iter().enumerate() {
        for &(pj, sj) in &done[i + 1..] {
            if pi == pj {
                continue;
            }
            pairs += 1;
            let (hi, lo) = if pi > pj { (si, sj) } else { (sj, si) };
            if hi > lo {
                inversions += 1;
            }
        }
    }
    (inversions, pairs)
}

/// Run one (scheme, regime) cell: an 8-sender, four-virtual-priority
/// incast of 2 MB flows (≈ 1.3 ms of bottleneck work, so the incast
/// stays active across several fault cycles) with the regime's schedule
/// installed.
pub fn run_cell(cc: FaultCc, regime: FaultRegime, seed: u64) -> FaultOutcome {
    let horizon = Time::from_ms(10);
    let switch = SENDERS as u32 + 1;
    let mut m = Micro::build(&MicroEnv {
        senders: SENDERS,
        end: horizon,
        seed,
        trace: false,
        faults: regime.schedule(switch, Time::from_ms(4), seed),
        ..Default::default()
    });
    let spec = cc.spec();
    for s in 1..=SENDERS {
        let virt = ((s - 1) % PRIOS as usize) as u8;
        m.add_flow(s, 2_000_000, Time::ZERO, 0, virt, &spec);
    }
    let res = m.sim.run();
    let slowdowns: Vec<f64> = res.finished().filter_map(|r| r.slowdown_auto()).collect();
    let (inversions, pairs) = count_inversions(&res);
    FaultOutcome {
        completion: res.completion_rate(),
        mean_slowdown: slowdowns.iter().sum::<f64>() / slowdowns.len().max(1) as f64,
        max_slowdown: slowdowns.iter().copied().fold(0.0, f64::max),
        inversions,
        pairs,
        fault_events: res.counters.fault_events,
        fault_drops: res.counters.fault_link_drops + res.counters.fault_ctrl_drops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regimes_produce_schedules_with_matched_transitions() {
        let horizon = Time::from_ms(4);
        assert!(FaultRegime::None.schedule(9, horizon, 1).is_none());
        for regime in [FaultRegime::Flap, FaultRegime::Storm] {
            let sched = regime.schedule(9, horizon, 1).expect("schedule");
            assert!(!sched.is_empty(), "{}: empty schedule", regime.name());
            assert_eq!(sched.len() % 2, 0, "{}: unpaired transitions", regime.name());
        }
    }

    #[test]
    fn fault_free_cell_completes_without_inversions_blowing_up() {
        let out = run_cell(FaultCc::PrioPlus, FaultRegime::None, 1);
        assert_eq!(out.completion, 1.0);
        assert_eq!(out.fault_events, 0);
        assert!(out.pairs > 0, "distinct-priority pairs must exist");
    }

    #[test]
    fn flap_cell_applies_faults_and_still_completes() {
        let out = run_cell(FaultCc::Dctcp, FaultRegime::Flap, 1);
        assert!(out.fault_events > 0, "flap regime must apply transitions");
        assert!(out.fault_drops > 0, "flap regime must drop in-flight data");
        assert_eq!(out.completion, 1.0, "retransmission must recover");
    }
}
