//! The generic flow-scheduling scenario (Fig 11, 14, 16): WebSearch traffic
//! on a fat-tree, flows classified by size into priority groups (smaller →
//! higher priority), compared across queueing/CC schemes.

use netsim::{AckPriority, FlowSpec, NoiseModel, SchedKind, Sim, SimConfig, SwitchConfig, Topology};
use simcore::{Rate, Time};
use transport::{CcSpec, PrioPlusPolicy};
use workloads::{PoissonArrivals, SizeClassifier, SizeDist};

use crate::Scheme;

/// Flow-scheduling scenario parameters.
#[derive(Clone, Debug)]
pub struct FlowSchedConfig {
    /// Scheme under test.
    pub scheme: Scheme,
    /// Number of size-based priority classes.
    pub classes: u8,
    /// Offered load (fraction of aggregate host capacity).
    pub load: f64,
    /// Fat-tree arity.
    pub k: usize,
    /// Link rate.
    pub rate: Rate,
    /// Arrivals are generated over this window; the simulation runs twice
    /// as long to drain.
    pub duration: Time,
    /// Seed.
    pub seed: u64,
    /// Buffer per switch = `buffer_mb_per_tbps` MB/Tbps × port bandwidth
    /// (Fig 11 uses 4.4 MB/Tbps, the Tomahawk4 ratio).
    pub buffer_mb_per_tbps: f64,
    /// Delay-measurement noise.
    pub noise: NoiseModel,
    /// Per-flow D2TCP deadline span (lowest..highest priority factor).
    pub d2tcp_factors: (f64, f64),
    /// Event-scheduler backend (results are identical across backends).
    pub sched: SchedKind,
}

impl FlowSchedConfig {
    /// Defaults matching §6.2 at reduced scale.
    pub fn new(scheme: Scheme, classes: u8) -> Self {
        FlowSchedConfig {
            scheme,
            classes,
            load: 0.7,
            k: 4,
            rate: Rate::from_gbps(100),
            duration: Time::from_ms(4),
            seed: 1,
            buffer_mb_per_tbps: 4.4,
            noise: NoiseModel::testbed(),
            d2tcp_factors: (12.0, 1.5),
            sched: SchedKind::from_env(),
        }
    }
}

/// Outcome of one flow in the scenario.
#[derive(Clone, Copy, Debug)]
pub struct FlowOut {
    /// Flow size, bytes.
    pub size: u64,
    /// Priority class (0 = lowest).
    pub class: u8,
    /// FCT slowdown vs ideal, when finished.
    pub slowdown: Option<f64>,
    /// Raw FCT in µs, when finished.
    pub fct_us: Option<f64>,
}

/// Scenario result.
#[derive(Clone, Debug)]
pub struct FlowSchedResult {
    /// Per-flow outcomes.
    pub flows: Vec<FlowOut>,
    /// PFC pause frames observed.
    pub pfc_pauses: u64,
    /// Packet drops (lossy runs).
    pub drops: u64,
    /// Fraction of flows finished.
    pub completion: f64,
    /// Simulator events processed (event-queue pops), for perf reporting.
    pub events: u64,
}

impl FlowSchedResult {
    /// Mean slowdown over finished flows matching `pred`.
    pub fn mean_slowdown(&self, pred: impl Fn(&FlowOut) -> bool) -> Option<f64> {
        let v: Vec<f64> = self
            .flows
            .iter()
            .filter(|f| pred(f))
            .filter_map(|f| f.slowdown)
            .collect();
        if v.is_empty() {
            None
        } else {
            Some(v.iter().sum::<f64>() / v.len() as f64)
        }
    }

    /// Mean raw FCT (µs) over finished flows matching `pred` — the paper's
    /// Fig 11/14/16 metric.
    pub fn mean_fct_us(&self, pred: impl Fn(&FlowOut) -> bool) -> Option<f64> {
        let v: Vec<f64> = self
            .flows
            .iter()
            .filter(|f| pred(f))
            .filter_map(|f| f.fct_us)
            .collect();
        if v.is_empty() {
            None
        } else {
            Some(v.iter().sum::<f64>() / v.len() as f64)
        }
    }

    /// p99 raw FCT (µs) over finished flows matching `pred`.
    pub fn p99_fct_us(&self, pred: impl Fn(&FlowOut) -> bool) -> Option<f64> {
        let mut v: Vec<f64> = self
            .flows
            .iter()
            .filter(|f| pred(f))
            .filter_map(|f| f.fct_us)
            .collect();
        if v.is_empty() {
            return None;
        }
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = ((0.99 * v.len() as f64).ceil() as usize).clamp(1, v.len());
        Some(v[rank - 1])
    }

    /// p99 slowdown over finished flows matching `pred`.
    pub fn p99_slowdown(&self, pred: impl Fn(&FlowOut) -> bool) -> Option<f64> {
        let mut v: Vec<f64> = self
            .flows
            .iter()
            .filter(|f| pred(f))
            .filter_map(|f| f.slowdown)
            .collect();
        if v.is_empty() {
            return None;
        }
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = ((0.99 * v.len() as f64).ceil() as usize).clamp(1, v.len());
        Some(v[rank - 1])
    }
}

/// Size buckets of Fig 11: small `< 300 KB`, middle `< 6 MB`, large rest.
pub fn bucket_of(size: u64) -> &'static str {
    if size < 300_000 {
        "small"
    } else if size < 6_000_000 {
        "middle"
    } else {
        "large"
    }
}

/// How many physical data queues the scheme uses for `classes` classes.
fn phys_queues(scheme: Scheme, classes: u8) -> u8 {
    if scheme.single_queue() {
        1
    } else {
        match scheme {
            Scheme::PhysicalSwift => classes.min(8),
            _ => classes, // ideal physical priorities
        }
    }
}

/// Build the switch configuration for a scheme.
fn switch_config(cfg: &FlowSchedConfig, ports_per_switch: usize) -> SwitchConfig {
    let port_tbps = ports_per_switch as f64 * cfg.rate.as_gbps_f64() / 1000.0;
    let buffer = (cfg.buffer_mb_per_tbps * port_tbps * 1e6) as u64;
    let mut sw = SwitchConfig {
        buffer_bytes: buffer,
        ..Default::default()
    };
    match cfg.scheme {
        Scheme::PhysicalSwift => {
            // Real PFC headroom cost: one headroom chunk per (port,
            // lossless priority).
            sw.pfc_lossless_prios = phys_queues(cfg.scheme, cfg.classes);
            sw.pfc_headroom_bytes = 50_000;
        }
        _ => {
            // Ideal physical priorities / single queue: headroom-free.
            sw.pfc_lossless_prios = 0;
        }
    }
    if cfg.scheme == Scheme::PhysicalStarHpcc {
        sw.int_enabled = true;
    }
    sw
}

/// Per-flow transport spec for a scheme.
fn cc_for(cfg: &FlowSchedConfig, class: u8) -> CcSpec {
    let queuing = Time::from_us(4);
    match cfg.scheme {
        Scheme::PhysicalSwift | Scheme::PhysicalStarSwift | Scheme::BaselineSwift => {
            CcSpec::Swift {
                queuing,
                scaling: false,
            }
        }
        Scheme::PrioPlusSwift | Scheme::PrioPlusSwiftAckData => CcSpec::PrioPlusSwift {
            // Flow scheduling: every class is FCT-sensitive, so skip the
            // probe-before-start (§4.4's latency-sensitive exemption) and
            // rely on tiered linear starts.
            policy: PrioPlusPolicy {
                probe: false,
                ..PrioPlusPolicy::paper_default(cfg.classes)
            },
        },
        Scheme::PrioPlusLedbat => CcSpec::PrioPlusLedbat {
            policy: PrioPlusPolicy {
                probe: false,
                ..PrioPlusPolicy::paper_default(cfg.classes)
            },
        },
        Scheme::PhysicalStarNoCc => CcSpec::Blast,
        Scheme::PhysicalStarHpcc => CcSpec::Hpcc,
        Scheme::D2tcp => {
            let (lo, hi) = cfg.d2tcp_factors;
            let t = if cfg.classes <= 1 {
                1.0
            } else {
                class as f64 / (cfg.classes - 1) as f64
            };
            CcSpec::D2tcp {
                deadline_factor: Some(lo + (hi - lo) * t),
            }
        }
    }
}

/// Run the scenario.
pub fn run(cfg: &FlowSchedConfig) -> FlowSchedResult {
    let topo = Topology::fat_tree(cfg.k, cfg.rate, Time::from_us(1));
    let hosts = topo.hosts.clone();
    let nq = phys_queues(cfg.scheme, cfg.classes);
    let sim_cfg = SimConfig {
        num_prios: nq,
        end_time: cfg.duration + cfg.duration,
        seed: cfg.seed,
        meas_noise: cfg.noise,
        ack_prio: if cfg.scheme == Scheme::PrioPlusSwiftAckData {
            AckPriority::SameAsData
        } else {
            AckPriority::Control
        },
        sched: cfg.sched,
        ..Default::default()
    };
    // Every switch in a k-ary fat-tree has k ports.
    let sw_cfg = switch_config(cfg, cfg.k);
    let mut sim = Sim::new(&topo, sim_cfg, sw_cfg);

    let dist = SizeDist::websearch();
    let classifier = SizeClassifier::from_dist(&dist, cfg.classes);
    let mut arrivals = PoissonArrivals::new(
        dist,
        hosts.len(),
        cfg.rate,
        cfg.load,
        Time::ZERO,
        cfg.seed ^ 0xA221,
    );
    let mut metas = Vec::new();
    for a in arrivals.generate_until(cfg.duration) {
        let class = classifier.priority(a.size);
        let phys = if cfg.scheme.single_queue() {
            0
        } else {
            class.min(nq - 1)
        };
        let spec = FlowSpec {
            src: hosts[a.src],
            dst: hosts[a.dst],
            size: a.size,
            start: a.start,
            phys_prio: phys,
            virt_prio: class,
            tag: class as u64,
        };
        let cc = cc_for(cfg, class);
        sim.add_flow(spec, |p| cc.make(p, a.start));
        metas.push((a.size, class));
    }

    let result = sim.run();
    let flows = result
        .records
        .iter()
        .zip(metas)
        .map(|(r, (size, class))| FlowOut {
            size,
            class,
            slowdown: r.slowdown_auto(),
            fct_us: r.fct().map(|t| t.as_us_f64()),
        })
        .collect::<Vec<_>>();
    FlowSchedResult {
        completion: result.completion_rate(),
        pfc_pauses: result.counters.pfc_pauses,
        drops: result.counters.drops,
        events: result.counters.events,
        flows,
    }
}

/// Run many independent configs across `jobs` threads; results are returned
/// in input order, identical to calling [`run`] on each config serially.
pub fn run_many(cfgs: &[FlowSchedConfig], jobs: usize) -> Vec<FlowSchedResult> {
    crate::sweep::run_ordered(cfgs, jobs, &run)
}
