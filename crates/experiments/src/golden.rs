//! Golden-trace pinning: small deterministic scenarios whose integer
//! summaries (per-flow finish times, delivered bytes, retransmits, global
//! counters) are checked into `tests/golden/` and diffed by the tier-1
//! tests.
//!
//! The summaries are pure integers — no floats — so the files are stable
//! across platforms and rustc versions; any diff is a behavioral change of
//! the simulator, not formatting noise. Regenerate intentionally with
//! `GOLDEN_BLESS=1 cargo test -p experiments --test golden_traces`.

use crate::micro::{testbed_env, Micro, MicroEnv};
use netsim::{NoiseModel, SchedKind, Sim, SimResult, SwitchConfig};
use simcore::Time;
use transport::{CcSpec, PrioPlusPolicy};

/// 64-bit FNV-1a digest, used to headline each golden file.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Per-run switches for a pinned scenario. None may change the summary:
/// the audit is observational, scheduler backends are order-identical, and
/// snapshot/resume is bit-exact — exactly what the golden suite pins.
#[derive(Clone, Copy, Debug, Default)]
pub struct GoldenOpts {
    /// Enable the invariant audit.
    pub audit: bool,
    /// Event-scheduler backend.
    pub sched: SchedKind,
    /// Interrupt the run at this horizon, snapshot, restore, and finish on
    /// the restored simulator ([`netsim::Sim::snapshot`] round-trip) —
    /// instead of running straight through.
    pub resume_at: Option<Time>,
}

impl GoldenOpts {
    /// Audit-only toggle on the default backend.
    pub fn audited(audit: bool) -> Self {
        GoldenOpts {
            audit,
            ..Default::default()
        }
    }

    /// Backend selection without the audit.
    pub fn on(sched: SchedKind) -> Self {
        GoldenOpts {
            sched,
            ..Default::default()
        }
    }

    /// Snapshot/resume round-trip at `at` on the default backend.
    pub fn resumed(at: Time) -> Self {
        GoldenOpts {
            resume_at: Some(at),
            ..Default::default()
        }
    }
}

/// Finish a fully-registered scenario according to `opts`: either run
/// straight through, or — when [`GoldenOpts::resume_at`] is set — advance
/// to the horizon, snapshot, rebuild from the snapshot, and run the
/// restored simulator to completion. Golden cases route every run through
/// this helper so the snapshot round-trip is pinned against the exact
/// scenarios the suite already pins across backends.
pub fn finish(mut sim: Sim, opts: GoldenOpts) -> SimResult {
    match opts.resume_at {
        None => sim.run(),
        Some(at) => {
            sim.run_until(at);
            let snap = sim.snapshot();
            drop(sim);
            Sim::restore(&snap).run()
        }
    }
}

/// One pinned scenario: a name (the golden file stem) and a runner.
pub struct Golden {
    /// Golden file stem under `tests/golden/`.
    pub name: &'static str,
    /// Build and run the scenario.
    pub run: fn(opts: GoldenOpts) -> SimResult,
}

/// All pinned scenarios.
pub fn cases() -> Vec<Golden> {
    vec![
        Golden {
            name: "fig10_staircase",
            run: staircase,
        },
        Golden {
            name: "fig13_nc_delay",
            run: nc_delay,
        },
        Golden {
            name: "lossy_dt_incast",
            run: lossy_incast,
        },
    ]
}

/// Fig 10a in miniature: 4 virtual priorities x 2 flows with staggered
/// starts over one PrioPlus+Swift bottleneck, testbed noise.
fn staircase(opts: GoldenOpts) -> SimResult {
    let mut m = Micro::build(&MicroEnv {
        senders: 8,
        end: Time::from_ms(10),
        trace: false,
        noise: NoiseModel::testbed(),
        seed: 3,
        sched: opts.sched,
        ..Default::default()
    });
    if opts.audit {
        m.sim.enable_audit();
    }
    let cc = CcSpec::PrioPlusSwift {
        policy: PrioPlusPolicy::paper_default(4),
    };
    for p in 0..4u8 {
        let start = Time::from_ms(p as u64);
        for f in 0..2usize {
            let sender = 1 + (p as usize * 2 + f);
            m.add_flow(sender, 400_000 * (p as u64 + 1), start, 0, p, &cc);
        }
    }
    finish(m.sim, opts)
}

/// Fig 13 in miniature: the testbed environment with 10 µs of uniform
/// non-congestive delay at the bottleneck; PrioPlus widened to tolerate it.
fn nc_delay(opts: GoldenOpts) -> SimResult {
    let mut env = testbed_env();
    env.end = Time::from_ms(8);
    env.trace = false;
    env.seed = 5;
    env.sched = opts.sched;
    env.switch.nc_delay = Some(NoiseModel::Uniform {
        range_ps: Time::from_us(10).as_ps(),
    });
    let mut m = Micro::build(&env);
    if opts.audit {
        m.sim.enable_audit();
    }
    let policy = PrioPlusPolicy {
        noise: Time::from_us(10),
        ..PrioPlusPolicy::paper_default(4)
    };
    let cc = CcSpec::PrioPlusSwift { policy };
    for (i, prio) in [1u8, 3].iter().enumerate() {
        for f in 0..2usize {
            let sender = 1 + (i * 2 + f);
            m.add_flow(
                sender,
                500_000,
                Time::from_ms(i as u64),
                0,
                *prio,
                &cc,
            );
        }
    }
    finish(m.sim, opts)
}

/// Lossy-mode incast: a small shared buffer forces Dynamic-Threshold drops
/// and Swift retransmissions, pinning the DT/drop/RTO paths.
fn lossy_incast(opts: GoldenOpts) -> SimResult {
    let mut m = Micro::build(&MicroEnv {
        senders: 8,
        end: Time::from_ms(10),
        trace: false,
        seed: 9,
        switch: SwitchConfig {
            pfc_enabled: false,
            buffer_bytes: 200_000,
            ..Default::default()
        },
        sched: opts.sched,
        ..Default::default()
    });
    if opts.audit {
        m.sim.enable_audit();
    }
    let cc = CcSpec::Swift {
        queuing: Time::from_us(4),
        scaling: false,
    };
    for s in 1..=8 {
        m.add_flow(s, 500_000, Time::ZERO, 0, 0, &cc);
    }
    finish(m.sim, opts)
}

/// Render the integer summary that gets pinned: one line per flow plus the
/// global counters, digest in the header.
pub fn summarize(res: &SimResult) -> String {
    let mut body = String::new();
    for r in &res.records {
        body.push_str(&format!(
            "flow {} src={} dst={} size={} prio={}/{} finish_ps={} delivered={} rtx={}\n",
            r.flow,
            r.src,
            r.dst,
            r.size,
            r.phys_prio,
            r.virt_prio,
            // simlint::allow(lossy-time-cast, ps counts fit i64 for any sim horizon; -1 is the censored-flow sentinel)
            r.finish.map(|t| t.as_ps() as i64).unwrap_or(-1),
            r.delivered,
            r.retransmits,
        ));
    }
    let c = &res.counters;
    body.push_str(&format!(
        "counters events={} data_delivered={} pfc_pauses={} pfc_resumes={} \
         drops={} ecn_marks={} probes={} max_buffer_used={}\n",
        c.events,
        c.data_delivered,
        c.pfc_pauses,
        c.pfc_resumes,
        c.drops,
        c.ecn_marks,
        c.probes,
        c.max_buffer_used,
    ));
    format!("digest fnv1a64={:016x}\n{}", fnv1a64(body.as_bytes()), body)
}
