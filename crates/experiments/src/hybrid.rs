//! Hybrid packet/fluid scenario runner.
//!
//! Runs the same single-bottleneck scenario two ways from one shared
//! background arrival trace:
//!
//! - [`HybridMode::PacketRef`] — every background flow is a packet-level
//!   blast sender from a dedicated host, sharing the bottleneck queue with
//!   the foreground (the reference the hybrid model is validated against);
//! - [`HybridMode::Fluid`] — background flows become piecewise-constant
//!   fluid injectors at the bottleneck port ([`netsim::fluid`]); only the
//!   foreground is simulated packet-by-packet.
//!
//! Both modes build identical topologies (foreground *and* background
//! hosts exist in both, so per-flow path parameters match) and add
//! foreground flows first, so foreground flow ids — and therefore records —
//! line up index-for-index across modes. The acceptance comparisons
//! (`event_reduction`, foreground-FCT delta) read straight off the two
//! [`HybridOutcome`]s.

use netsim::fluid::BackgroundLoad;
use netsim::{
    AuditConfig, FlowRecord, FlowSpec, NoiseModel, SchedKind, Sim, SimConfig, SimResult,
    SwitchConfig, Topology,
};
use simcore::{Rate, Time};
use transport::CcSpec;
use workloads::background::BackgroundSpec;
use workloads::websearch::SizeDist;

/// How background traffic is modeled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HybridMode {
    /// Packet-level blast senders (reference).
    PacketRef,
    /// Fluid injectors at the bottleneck (hybrid).
    Fluid,
}

/// Foreground traffic pattern on the shared bottleneck.
#[derive(Clone, Copy, Debug)]
pub enum Foreground {
    /// Synchronized incast: every foreground sender starts one flow of
    /// `size` bytes at `start`.
    Incast {
        /// Flow size per sender.
        size: u64,
        /// Common start time.
        start: Time,
    },
    /// Open-loop WebSearch arrivals at `load` utilization of the
    /// bottleneck, round-robin over the foreground senders.
    WebSearch {
        /// Target foreground utilization (0..1).
        load: f64,
        /// Arrival-trace seed (independent of the background seed).
        seed: u64,
    },
}

/// One hybrid scenario: topology, foreground pattern, background load.
#[derive(Clone, Debug)]
pub struct HybridScenario {
    /// Foreground sender hosts (receiver is host 0).
    pub fg_senders: usize,
    /// Background sender hosts (packet reference only sends from them; the
    /// fluid run keeps them idle so both topologies are identical).
    pub bg_hosts: usize,
    /// Link rate everywhere.
    pub rate: Rate,
    /// One-way link latency.
    pub prop: Time,
    /// Simulation horizon.
    pub end: Time,
    /// Simulator seed.
    pub seed: u64,
    /// Background utilization of the bottleneck (0..1).
    pub bg_load: f64,
    /// Background arrival-trace seed.
    pub bg_seed: u64,
    /// Foreground pattern.
    pub foreground: Foreground,
    /// Foreground congestion control.
    pub cc: CcSpec,
    /// Event-scheduler backend.
    pub sched: SchedKind,
    /// Switch overrides.
    pub switch: SwitchConfig,
}

impl HybridScenario {
    /// Incast preset: 8 foreground senders × 1 MB Swift flows starting at
    /// 100 µs over `bg_load` background, 100 Gbps, 8 ms horizon.
    ///
    /// Eight synchronized senders keep the packet reference dynamically
    /// stable: at 16+ senders the per-flow fair share drops to a
    /// few-packet congestion window where delay-based Swift is bistable —
    /// the reference's foreground FCT swings ~5× under microscopic
    /// background-seed perturbations, so no network model can be
    /// meaningfully validated against it there.
    pub fn incast(bg_load: f64) -> Self {
        HybridScenario {
            fg_senders: 8,
            bg_hosts: 4,
            rate: Rate::from_gbps(100),
            prop: Time::from_us(3),
            end: Time::from_ms(8),
            seed: 21,
            bg_load,
            bg_seed: 91,
            foreground: Foreground::Incast {
                size: 1_000_000,
                start: Time::from_us(100),
            },
            cc: CcSpec::Swift {
                queuing: Time::from_us(4),
                scaling: true,
            },
            sched: SchedKind::from_env(),
            switch: SwitchConfig::default(),
        }
    }

    /// WebSearch preset: open-loop foreground at 20 % load over `bg_load`
    /// background, 100 Gbps, 8 ms horizon.
    pub fn websearch(bg_load: f64) -> Self {
        HybridScenario {
            foreground: Foreground::WebSearch { load: 0.2, seed: 55 },
            ..HybridScenario::incast(bg_load)
        }
    }

    /// Background flow-size distribution: bounded 20 KB–500 KB (mean
    /// 180 KB). The WebSearch distribution's 30 MB tail needs seconds of
    /// trace for the offered load to concentrate at its target; over a
    /// millisecond horizon one elephant draw doubles the realized load
    /// and saturates both modes. A bounded distribution keeps the
    /// realized load within a few percent of `bg_load` so the
    /// acceptance comparison measures the model, not sampling noise.
    fn bg_dist() -> SizeDist {
        SizeDist::new(&[(20_000, 0.0), (100_000, 0.5), (500_000, 1.0)])
    }

    /// The shared background arrival trace, `(start, payload_bytes)`
    /// sorted by start. Both modes consume exactly this list.
    pub fn bg_trace(&self) -> Vec<(Time, u64)> {
        BackgroundSpec::new(Self::bg_dist(), self.bg_load, self.bg_seed).sample_port(
            0,
            self.rate,
            self.end,
        )
    }

    fn fg_flows(&self) -> Vec<FlowSpec> {
        match self.foreground {
            Foreground::Incast { size, start } => (1..=self.fg_senders)
                .map(|s| FlowSpec {
                    src: s as u32,
                    dst: 0,
                    size,
                    start,
                    phys_prio: 0,
                    virt_prio: 0,
                    tag: 0,
                })
                .collect(),
            Foreground::WebSearch { load, seed } => {
                // Reuse the background generator (it is just "Poisson
                // arrivals at a load") on an independent stream, then
                // round-robin the arrivals over the foreground senders.
                let trace = BackgroundSpec::new(SizeDist::websearch(), load, seed)
                    .sample_port(1, self.rate, self.end);
                trace
                    .into_iter()
                    .enumerate()
                    .map(|(i, (start, size))| FlowSpec {
                        src: (i % self.fg_senders) as u32 + 1,
                        dst: 0,
                        size,
                        start,
                        phys_prio: 0,
                        virt_prio: 0,
                        tag: 0,
                    })
                    .collect()
            }
        }
    }

    /// Build and run one mode. `audit` enables the invariant audit layer
    /// (including the fluid mass-conservation deep scan) with the given
    /// deep-scan period.
    pub fn run(&self, mode: HybridMode, audit: Option<AuditConfig>) -> HybridOutcome {
        let hosts = self.fg_senders + self.bg_hosts;
        let topo = Topology::single_switch(hosts, self.rate, self.prop);
        let switch = hosts as u32 + 1; // hosts 0..=hosts, then the switch
        let bottleneck: u16 = 0; // switch port toward host 0 (the receiver)
        let trace = self.bg_trace();
        let background = match mode {
            HybridMode::PacketRef => None,
            // Fluid arrivals mirror what the reference blast hosts put on
            // the wire: per-MTU header overhead and one flow per access
            // link at a time.
            HybridMode::Fluid => Some(BackgroundLoad::from_shared_hosts(
                (switch, bottleneck),
                &trace,
                self.bg_hosts,
                self.rate.as_bps(),
                SimConfig::default().mtu,
            )),
        };
        let cfg = SimConfig {
            num_prios: 1,
            end_time: self.end,
            seed: self.seed,
            meas_noise: NoiseModel::None,
            trace_flows: false,
            sched: self.sched,
            background,
            ..Default::default()
        };
        let mut sim = Sim::new(&topo, cfg, self.switch.clone());
        if let Some(acfg) = audit {
            sim.enable_audit_with(acfg);
        }
        // Foreground first: ids 0..fg_flows match across modes.
        let fg = self.fg_flows();
        let fg_flows = fg.len();
        for spec in fg {
            let start = spec.start;
            sim.add_flow(spec, |p| self.cc.make(p, start));
        }
        if mode == HybridMode::PacketRef {
            // Background blast senders, round-robin over the dedicated
            // background hosts — same (start, bytes) list the fluid run
            // injects at the bottleneck.
            for (i, &(start, size)) in trace.iter().enumerate() {
                let spec = FlowSpec {
                    src: (self.fg_senders + 1 + i % self.bg_hosts) as u32,
                    dst: 0,
                    size,
                    start,
                    phys_prio: 0,
                    virt_prio: 0,
                    tag: 1,
                };
                sim.add_flow(spec, |p| CcSpec::Blast.make(p, start));
            }
        }
        // simlint::allow(wall-clock, measures host wall time of the run for the hybrid speedup report; never feeds sim state)
        let t0 = std::time::Instant::now();
        let result = sim.run();
        let wall = t0.elapsed().as_secs_f64();
        HybridOutcome {
            result,
            fg_flows,
            wall,
        }
    }
}

/// One mode's run: full result plus the foreground-record split and wall
/// clock.
pub struct HybridOutcome {
    /// The full simulation result (foreground records first).
    pub result: SimResult,
    /// Number of foreground flows (records `0..fg_flows`).
    pub fg_flows: usize,
    /// Wall-clock seconds for `Sim::run`.
    pub wall: f64,
}

impl HybridOutcome {
    /// Foreground flow records (ids line up across modes).
    pub fn fg_records(&self) -> &[FlowRecord] {
        &self.result.records[..self.fg_flows]
    }

    /// Mean foreground FCT in µs over flows finished in this run.
    pub fn fg_mean_fct_us(&self) -> f64 {
        let fcts: Vec<f64> = self
            .fg_records()
            .iter()
            .filter_map(|r| r.fct())
            .map(|t| t.as_us_f64())
            .collect();
        if fcts.is_empty() {
            return f64::NAN;
        }
        fcts.iter().sum::<f64>() / fcts.len() as f64
    }

    /// Events processed.
    pub fn events(&self) -> u64 {
        self.result.counters.events
    }
}

/// Mean foreground FCT over flows that finished in *both* runs (µs for
/// each run). Censored flows are excluded pairwise so the comparison is
/// apples-to-apples.
pub fn paired_fg_fct_us(a: &HybridOutcome, b: &HybridOutcome) -> (f64, f64) {
    let mut sa = 0.0;
    let mut sb = 0.0;
    let mut n = 0usize;
    for (ra, rb) in a.fg_records().iter().zip(b.fg_records()) {
        if let (Some(fa), Some(fb)) = (ra.fct(), rb.fct()) {
            sa += fa.as_us_f64();
            sb += fb.as_us_f64();
            n += 1;
        }
    }
    if n == 0 {
        return (f64::NAN, f64::NAN);
    }
    (sa / n as f64, sb / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bg_trace_is_shared_and_deterministic() {
        let sc = HybridScenario::incast(0.5);
        let a = sc.bg_trace();
        assert!(!a.is_empty());
        assert_eq!(a, sc.bg_trace());
    }

    #[test]
    fn zero_background_runs_pure_packet() {
        let mut sc = HybridScenario::incast(0.0);
        sc.end = Time::from_ms(2);
        sc.fg_senders = 4;
        let out = sc.run(HybridMode::Fluid, None);
        assert_eq!(out.result.counters.fluid_epochs, 0);
        assert_eq!(out.result.counters.fluid_bytes_injected, 0);
        assert_eq!(out.fg_records().len(), 4);
    }

    #[test]
    fn fluid_mode_injects_the_trace() {
        let mut sc = HybridScenario::incast(0.3);
        sc.end = Time::from_ms(2);
        sc.fg_senders = 4;
        let payload: u64 = sc.bg_trace().iter().map(|&(_, b)| b).sum();
        // The fluid queue carries wire bytes (payload + per-MTU headers);
        // bound loosely from above by payload + 10 %.
        let wire_cap = payload + payload / 10;
        let out = sc.run(HybridMode::Fluid, None);
        // Mass injected by the horizon: positive, bounded by the trace
        // (tail flows are still injecting when the sim ends).
        let injected = out.result.counters.fluid_bytes_injected;
        assert!(injected > 0 && injected <= wire_cap, "{injected} vs {wire_cap}");
        assert!(out.result.counters.fluid_flows_started > 0);
        assert!(out.result.counters.fluid_epochs > 0);
    }

    #[test]
    fn fifo_coupling_matches_packet_reference_without_cc() {
        // With blast foreground (no congestion control) the comparison is
        // pure FIFO bandwidth sharing — no feedback loop to amplify model
        // error — so the hybrid run must track the packet reference
        // tightly. This pins the stamp/charge coupling itself.
        let mut sc = HybridScenario::incast(0.5);
        sc.fg_senders = 4;
        sc.end = Time::from_ms(3);
        sc.cc = CcSpec::Blast;
        let p = sc.run(HybridMode::PacketRef, None);
        let f = sc.run(HybridMode::Fluid, None);
        let (pf, ff) = paired_fg_fct_us(&p, &f);
        assert!(pf.is_finite() && ff.is_finite(), "no paired finished flows");
        let delta = (ff - pf).abs() / pf;
        assert!(
            delta < 0.02,
            "blast-foreground FCT delta {:.2}% exceeds 2% (pkt {pf:.1}us, fluid {ff:.1}us)",
            delta * 100.0
        );
        assert!(f.events() * 2 < p.events(), "hybrid run must cut events");
    }
}

#[cfg(test)]
mod probe {
    use super::*;

    #[test]
    #[ignore]
    fn probe_acceptance() {
        for load in [0.3, 0.5, 0.7] {
            let sc = HybridScenario::incast(load);
            let p = sc.run(HybridMode::PacketRef, None);
            let f = sc.run(HybridMode::Fluid, None);
            let (pf, ff) = paired_fg_fct_us(&p, &f);
            eprintln!(
                "incast load={load}: events {} -> {} ({:.2}x), wall {:.1}ms -> {:.1}ms ({:.2}x), fct {pf:.1}us vs {ff:.1}us (delta {:.2}%)",
                p.events(), f.events(), p.events() as f64 / f.events() as f64,
                p.wall*1e3, f.wall*1e3, p.wall / f.wall,
                (ff - pf) / pf * 100.0
            );
        }
    }
}

#[cfg(test)]
mod probe_ws {
    use super::*;

    #[test]
    #[ignore]
    fn probe_websearch() {
        for load in [0.3, 0.5, 0.7] {
            let sc = HybridScenario::websearch(load);
            let p = sc.run(HybridMode::PacketRef, None);
            let f = sc.run(HybridMode::Fluid, None);
            let (pf, ff) = paired_fg_fct_us(&p, &f);
            eprintln!(
                "websearch load={load}: events {} -> {} ({:.2}x), wall {:.1}ms -> {:.1}ms ({:.2}x), fct {pf:.1}us vs {ff:.1}us (delta {:.2}%)",
                p.events(), f.events(), p.events() as f64 / f.events() as f64,
                p.wall*1e3, f.wall*1e3, p.wall / f.wall,
                (ff - pf) / pf * 100.0
            );
        }
    }
}
