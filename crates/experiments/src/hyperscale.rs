//! The hyperscale scenario: tens of thousands of hosts, an open-loop
//! trace-driven arrival stream sustaining up to millions of flow lifetimes,
//! and streaming statistics instead of per-flow sample vectors.
//!
//! Three memory-scaling mechanisms make this run in a bounded footprint:
//!
//! - arrivals stream through `netsim`'s [`ArrivalSource`] hook, so resident
//!   flow registrations track the look-ahead window, not the trace;
//! - per-flow transport/reassembly state lives in the simulator's flow slab
//!   and is reclaimed at completion (memory ∝ concurrent flows);
//! - FCT/slowdown quantiles come from integer-bucketed streaming sketches
//!   ([`netsim::StreamingStats`]) folded at completion — `SimResult.records`
//!   stays empty.
//!
//! The comparison of interest (fig_hyperscale) is PrioPlus sharing one
//! physical queue against DCTCP on the same topology and trace: virtual
//! priority should cut high-class tail FCT without extra switch queues.

use netsim::{
    ArrivalSource, FlowSpec, NodeId, Sim, SimConfig, SwitchConfig, ThreeTierWanSpec, Topology,
};
use simcore::{Rate, SchedKind, Time};
use transport::{CcSpec, PrioPlusPolicy};
use workloads::{FlowArrival, IncastMix, OpenLoopGen, SizeClassifier, SizeDist};

/// Congestion-control scheme under test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HyperScheme {
    /// PrioPlus over Swift delay signals, single physical queue.
    PrioPlus,
    /// DCTCP (the D2TCP transport with no deadline factor), single queue.
    Dctcp,
}

impl HyperScheme {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            HyperScheme::PrioPlus => "PrioPlus",
            HyperScheme::Dctcp => "DCTCP",
        }
    }
}

/// Topology under test.
#[derive(Clone, Debug)]
pub enum HyperTopo {
    /// k-ary fat-tree (k³/4 hosts).
    FatTree {
        /// Arity (even).
        k: usize,
    },
    /// Multi-datacenter 3-tier + WAN fabric.
    ThreeTierWan(ThreeTierWanSpec),
}

impl HyperTopo {
    fn build(&self, rate: Rate) -> Topology {
        match self {
            HyperTopo::FatTree { k } => Topology::fat_tree(*k, rate, Time::from_us(1)),
            HyperTopo::ThreeTierWan(spec) => Topology::three_tier_wan(spec),
        }
    }

    /// Display name.
    pub fn name(&self) -> String {
        match self {
            HyperTopo::FatTree { k } => format!("fat-tree(k={k})"),
            HyperTopo::ThreeTierWan(s) => format!(
                "3tier+wan({}dc x {} hosts)",
                s.dcs,
                s.pods_per_dc * s.tors_per_pod * s.hosts_per_tor
            ),
        }
    }
}

/// Hyperscale scenario parameters.
#[derive(Clone, Debug)]
pub struct HyperscaleConfig {
    /// Scheme under test.
    pub scheme: HyperScheme,
    /// Topology.
    pub topo: HyperTopo,
    /// Host NIC rate (fat-tree; the WAN spec carries its own rates).
    pub rate: Rate,
    /// Poisson offered load (fraction of aggregate host capacity).
    pub load: f64,
    /// Periodic incast mix on top of the Poisson load.
    pub incast: Option<IncastMix>,
    /// Virtual-priority classes (smaller flows → higher class).
    pub classes: u8,
    /// Arrival window; the run drains for another half window.
    pub duration: Time,
    /// Look-ahead window per [`ArrivalSource`] injection chunk.
    pub chunk: Time,
    /// Seed.
    pub seed: u64,
    /// Scheduler backend.
    pub sched: SchedKind,
}

impl HyperscaleConfig {
    /// Downscaled defaults (k=8 fat-tree, 128 hosts) that run in seconds.
    pub fn quick(scheme: HyperScheme) -> Self {
        HyperscaleConfig {
            scheme,
            topo: HyperTopo::FatTree { k: 8 },
            rate: Rate::from_gbps(100),
            load: 0.4,
            incast: Some(IncastMix {
                period: Time::from_us(100),
                fanin: 16,
                bytes: 20_000,
            }),
            classes: 4,
            duration: Time::from_ms(2),
            chunk: Time::from_us(200),
            seed: 1,
            sched: SchedKind::from_env(),
        }
    }

    /// Full scale: k=16 fat-tree (1024 hosts) with a longer trace.
    pub fn full(scheme: HyperScheme) -> Self {
        HyperscaleConfig {
            topo: HyperTopo::FatTree { k: 16 },
            load: 0.5,
            duration: Time::from_ms(20),
            ..Self::quick(scheme)
        }
    }
}

/// Scenario result — everything comes from counters and streaming sketches;
/// no per-flow vectors survive the run.
#[derive(Clone, Debug)]
pub struct HyperscaleResult {
    /// Flows registered over the run.
    pub flows_total: u64,
    /// Flows completed.
    pub finished: u64,
    /// Payload bytes delivered by completed flows.
    pub finished_bytes: u64,
    /// Events processed.
    pub events: u64,
    /// FCT quantiles over all completed flows, µs.
    pub fct_us: Quantiles,
    /// FCT quantiles of the highest virtual-priority class, µs.
    pub fct_top_class_us: Quantiles,
    /// Slowdown quantiles (×, from milli-unit sketches).
    pub slowdown: Quantiles,
    /// Peak concurrent flows holding live slab state.
    pub flow_live_peak: u64,
    /// Flow-slab slots ever allocated.
    pub flow_slab_slots: u64,
    /// Flows whose live state was reclaimed at completion.
    pub flows_reclaimed: u64,
    /// Peak resident bytes of live flow state.
    pub flow_live_bytes_peak: u64,
    /// Peak resident memory budget: live flow state + packet-arena slots.
    pub mem_budget_bytes: u64,
    /// Order-independent fingerprint of the full streaming state (pinned
    /// bit-identical across scheduler backends).
    pub streaming_fingerprint: u64,
}

/// p50/p90/p99 triple.
#[derive(Clone, Copy, Debug, Default)]
pub struct Quantiles {
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
}

/// Open-loop arrival source: drains the lazy generator chunk-by-chunk into
/// `Sim::add_flow` during the run.
struct OpenLoopSource {
    gen: OpenLoopGen,
    hosts: Vec<NodeId>,
    classifier: SizeClassifier,
    scheme: HyperScheme,
    classes: u8,
    chunk: Time,
    buf: Vec<FlowArrival>,
}

impl OpenLoopSource {
    fn cc_for(&self) -> CcSpec {
        match self.scheme {
            HyperScheme::PrioPlus => CcSpec::PrioPlusSwift {
                policy: PrioPlusPolicy {
                    probe: false,
                    ..PrioPlusPolicy::paper_default(self.classes)
                },
            },
            HyperScheme::Dctcp => CcSpec::D2tcp {
                deadline_factor: None,
            },
        }
    }
}

impl ArrivalSource for OpenLoopSource {
    fn inject(&mut self, sim: &mut Sim, now: Time) -> Option<Time> {
        let until = now + self.chunk;
        self.buf.clear();
        self.gen.take_until(until, &mut self.buf);
        // simlint::allow(hot-path-alloc, chunked flow registration reuses one buffer; add_flow itself allocates per flow by design)
        let arrivals = std::mem::take(&mut self.buf);
        for a in &arrivals {
            let class = self.classifier.priority(a.size);
            let spec = FlowSpec {
                src: self.hosts[a.src],
                dst: self.hosts[a.dst],
                size: a.size,
                start: a.start,
                phys_prio: 0, // single physical queue: priority is virtual
                virt_prio: class,
                tag: class as u64,
            };
            let cc = self.cc_for();
            sim.add_flow(spec, |p| cc.make(p, a.start));
        }
        self.buf = arrivals;
        // take_until consumed everything before `until`, so the next
        // pending arrival (if any) is at or after it — wake exactly then.
        self.gen.peek_start()
    }
}

/// Run the scenario.
pub fn run(cfg: &HyperscaleConfig) -> HyperscaleResult {
    let topo = cfg.topo.build(cfg.rate);
    let hosts = topo.hosts.clone();
    let host_rate = match &cfg.topo {
        HyperTopo::FatTree { .. } => cfg.rate,
        HyperTopo::ThreeTierWan(s) => s.host_rate,
    };
    let sim_cfg = SimConfig {
        num_prios: 1,
        end_time: cfg.duration + Time::from_ps(cfg.duration.as_ps() / 2),
        seed: cfg.seed,
        sched: cfg.sched,
        streaming_stats: true,
        ..Default::default()
    };
    let mut sim = Sim::new(&topo, sim_cfg, SwitchConfig::default());
    let dist = SizeDist::websearch();
    let classifier = SizeClassifier::from_dist(&dist, cfg.classes);
    let gen = OpenLoopGen::new(
        dist,
        hosts.len(),
        host_rate,
        cfg.load,
        Time::ZERO,
        cfg.duration,
        cfg.incast,
        cfg.seed ^ 0x09E1,
    );
    sim.set_arrivals(Box::new(OpenLoopSource {
        gen,
        hosts,
        classifier,
        scheme: cfg.scheme,
        classes: cfg.classes,
        chunk: cfg.chunk,
        buf: Vec::new(),
    }));
    let result = sim.run();
    summarize(&result)
}

/// Fold a streaming-mode [`netsim::SimResult`] into the scenario summary.
fn summarize(result: &netsim::SimResult) -> HyperscaleResult {
    let st = result
        .streaming
        .as_deref()
        .expect("hyperscale runs use streaming_stats");
    let q = |s: &simcore::QuantileSketch, scale: f64| Quantiles {
        p50: s.quantile(50.0).unwrap_or(0) as f64 / scale,
        p90: s.quantile(90.0).unwrap_or(0) as f64 / scale,
        p99: s.quantile(99.0).unwrap_or(0) as f64 / scale,
    };
    let top = st
        .fct_ps_by_virt
        .iter()
        .rev()
        .find(|s| !s.is_empty())
        .cloned()
        .unwrap_or_default();
    let c = &result.counters;
    let arena_bytes = c.arena_slab_slots * std::mem::size_of::<netsim::Packet>() as u64;
    HyperscaleResult {
        flows_total: c.flows_total,
        finished: st.finished,
        finished_bytes: st.finished_bytes,
        events: c.events,
        fct_us: q(&st.fct_ps, 1e6),
        fct_top_class_us: q(&top, 1e6),
        slowdown: q(&st.slowdown_milli, 1e3),
        flow_live_peak: c.flow_live_peak,
        flow_slab_slots: c.flow_slab_slots,
        flows_reclaimed: c.flows_reclaimed,
        flow_live_bytes_peak: c.flow_live_bytes_peak,
        mem_budget_bytes: c.flow_live_bytes_peak + arena_bytes,
        streaming_fingerprint: st.fingerprint(),
    }
}

/// Run many configs across threads (input-order results).
pub fn run_many(cfgs: &[HyperscaleConfig], jobs: usize) -> Vec<HyperscaleResult> {
    crate::sweep::run_ordered(cfgs, jobs, &run)
}
