//! Experiment harness for the PrioPlus reproduction.
//!
//! One binary per paper figure/table lives in `src/bin/`; this library
//! provides the shared scenario runners:
//!
//! - [`micro`]: single-bottleneck micro-benchmarks (§3 motivation, §5
//!   testbed, §6.1);
//! - [`flowsched`]: the fat-tree WebSearch flow-scheduling scenario
//!   (Fig 11, 14, 16);
//! - [`coflowsched`]: the coflow + file-request scenario (Fig 12ab, 15,
//!   17, 18);
//! - [`mltrain`]: the ring all-reduce ML-cluster scenario (Fig 12c);
//! - [`hybrid`]: the hybrid packet/fluid runner — fluid background
//!   traffic against a packet-level reference from one shared trace;
//! - [`faults`]: the fault-regime comparison (link flaps and PFC pause
//!   storms vs the fault-free reference, FCT + priority inversions);
//! - [`hyperscale`]: the hyperscale scenario — large fat-tree / 3-tier+WAN
//!   fabrics, open-loop streamed arrivals, slab-reclaimed flow state, and
//!   streaming quantile sketches instead of per-flow records;
//! - [`report`]: plain-text table + JSON emission so EXPERIMENTS.md entries
//!   can be regenerated and diffed;
//! - [`sweep`]: the parallel sweep runner (`--jobs N` / `PRIOPLUS_JOBS`)
//!   that fans independent runs across threads with input-order results.
//!
//! Every runner accepts a [`Scale`] so the default invocation finishes in
//! seconds while `--full` reproduces the paper-scale parameters.

#![forbid(unsafe_code)]

#![warn(missing_docs)]

pub mod coflowsched;
pub mod faults;
pub mod flowsched;
pub mod golden;
pub mod hybrid;
pub mod hyperscale;
pub mod micro;
pub mod mltrain;
pub mod report;
pub mod sweep;

pub use netsim::SchedKind;
pub use report::Table;
pub use sweep::Sweep;

/// Run scale selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Reduced topology/duration: every figure regenerates in seconds.
    Quick,
    /// Paper-scale parameters (minutes to hours of wall time).
    Full,
}

impl Scale {
    /// Parse from argv: any argument equal to `--full` selects
    /// [`Scale::Full`].
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--full") {
            Scale::Full
        } else {
            Scale::Quick
        }
    }

    /// Pick a value by scale.
    pub fn pick<T>(self, quick: T, full: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

/// The congestion-control + queueing scheme under test, shared by the
/// large-scale scenarios. Names follow the paper's legends.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Swift in real physical priority queues (≤ 8, PFC headroom per
    /// lossless priority eats shared buffer).
    PhysicalSwift,
    /// Swift in *ideal* physical priorities ("Physical*": unlimited count,
    /// headroom-free).
    PhysicalStarSwift,
    /// PrioPlus+Swift in a single physical queue (the paper's system).
    PrioPlusSwift,
    /// PrioPlus+Swift with ACKs sharing the data queue ("PrioPlus*",
    /// Fig 16).
    PrioPlusSwiftAckData,
    /// PrioPlus+LEDBAT in a single physical queue (§6.2).
    PrioPlusLedbat,
    /// Blind line-rate senders in ideal physical priorities
    /// ("Physical* w/o CC").
    PhysicalStarNoCc,
    /// HPCC in ideal physical priorities.
    PhysicalStarHpcc,
    /// D2TCP in a single queue, deadlines assigned by priority.
    D2tcp,
    /// Plain Swift, single queue, no priorities (scenario baselines).
    BaselineSwift,
}

impl Scheme {
    /// Legend label.
    pub fn label(&self) -> &'static str {
        match self {
            Scheme::PhysicalSwift => "Physical+Swift",
            Scheme::PhysicalStarSwift => "Physical*+Swift",
            Scheme::PrioPlusSwift => "PrioPlus+Swift",
            Scheme::PrioPlusSwiftAckData => "PrioPlus*+Swift",
            Scheme::PrioPlusLedbat => "PrioPlus+LEDBAT",
            Scheme::PhysicalStarNoCc => "Physical* w/o CC",
            Scheme::PhysicalStarHpcc => "Physical*+HPCC",
            Scheme::D2tcp => "D2TCP",
            Scheme::BaselineSwift => "Swift (no prio)",
        }
    }

    /// True when the scheme multiplexes all priorities in one physical
    /// queue.
    pub fn single_queue(&self) -> bool {
        matches!(
            self,
            Scheme::PrioPlusSwift
                | Scheme::PrioPlusSwiftAckData
                | Scheme::PrioPlusLedbat
                | Scheme::D2tcp
                | Scheme::BaselineSwift
        )
    }
}
