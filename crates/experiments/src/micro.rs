//! Single-bottleneck micro-benchmark environment (§3, §5, §6.1).
//!
//! N sender hosts and one receiver hang off a single switch; the
//! switch→receiver port is the bottleneck. 100 Gbps links with 3 µs latency
//! give the paper's ≈ 12 µs data-packet RTT.

use netsim::monitor::MonitorKind;
use netsim::{FaultSchedule, FlowSpec, NoiseModel, SchedKind, Sim, SimConfig, SwitchConfig, Topology};
use simcore::{Rate, Time};
use transport::CcSpec;

/// Micro-benchmark environment configuration.
#[derive(Clone, Debug)]
pub struct MicroEnv {
    /// Number of sender hosts (receiver is host 0).
    pub senders: usize,
    /// Link rate everywhere.
    pub rate: Rate,
    /// One-way link latency.
    pub prop: Time,
    /// Physical data priorities.
    pub num_prios: u8,
    /// Simulation horizon.
    pub end: Time,
    /// Seed.
    pub seed: u64,
    /// Measurement-noise model.
    pub noise: NoiseModel,
    /// Enable per-flow traces (throughput/delay/cwnd).
    pub trace: bool,
    /// Switch overrides.
    pub switch: SwitchConfig,
    /// Event-scheduler backend (results are identical across backends).
    pub sched: SchedKind,
    /// Deterministic fault schedule (link flaps, degradation, PFC pause
    /// storms); `None` runs fault-free.
    pub faults: Option<FaultSchedule>,
}

impl Default for MicroEnv {
    fn default() -> Self {
        MicroEnv {
            senders: 4,
            rate: Rate::from_gbps(100),
            prop: Time::from_us(3),
            num_prios: 1,
            end: Time::from_ms(10),
            seed: 1,
            noise: NoiseModel::None,
            trace: true,
            switch: SwitchConfig::default(),
            sched: SchedKind::from_env(),
            faults: None,
        }
    }
}

/// A built micro-benchmark simulation plus the ids needed to add flows and
/// monitors.
pub struct Micro {
    /// The simulator (receiver is host 0; senders are hosts `1..=senders`).
    pub sim: Sim,
    /// Receiver host id.
    pub receiver: u32,
    /// Switch node id.
    pub switch: u32,
    /// Bottleneck egress port (switch → receiver).
    pub bottleneck_port: u16,
}

impl Micro {
    /// Build the environment.
    pub fn build(env: &MicroEnv) -> Micro {
        let topo = Topology::single_switch(env.senders, env.rate, env.prop);
        let switch = env.senders as u32 + 1; // hosts 0..=senders, then switch
        let cfg = SimConfig {
            num_prios: env.num_prios,
            end_time: env.end,
            seed: env.seed,
            meas_noise: env.noise,
            trace_flows: env.trace,
            sched: env.sched,
            faults: env.faults.clone(),
            ..Default::default()
        };
        let sim = Sim::new(&topo, cfg, env.switch.clone());
        // The switch's port toward host 0 is its port index 0 (links are
        // added host-by-host in order).
        Micro {
            sim,
            receiver: 0,
            switch,
            bottleneck_port: 0,
        }
    }

    /// Add a flow from sender `idx` (1-based among senders) to the receiver.
    pub fn add_flow(
        &mut self,
        sender: usize,
        size: u64,
        start: Time,
        phys_prio: u8,
        virt_prio: u8,
        cc: &CcSpec,
    ) -> u32 {
        assert!(sender >= 1, "sender hosts start at 1 (0 is the receiver)");
        let spec = FlowSpec {
            src: sender as u32,
            dst: self.receiver,
            size,
            start,
            phys_prio,
            virt_prio,
            tag: virt_prio as u64,
        };
        self.sim.add_flow(spec, |p| cc.make(p, start))
    }

    /// Monitor the bottleneck queue length.
    pub fn monitor_bottleneck_queue(&mut self, period: Time) -> usize {
        self.sim.add_monitor(
            "bottleneck-queue",
            MonitorKind::QueueBytes {
                node: self.switch,
                port: self.bottleneck_port,
            },
            period,
        )
    }

    /// Monitor bottleneck throughput (Gbps per sample period).
    pub fn monitor_bottleneck_throughput(&mut self, period: Time) -> usize {
        self.sim.add_monitor(
            "bottleneck-throughput",
            MonitorKind::PortThroughput {
                node: self.switch,
                port: self.bottleneck_port,
            },
            period,
        )
    }
}

/// The paper's testbed environment (§5): 4 senders, 10 Gbps, ≈ 13 µs RTT.
pub fn testbed_env() -> MicroEnv {
    MicroEnv {
        senders: 4,
        rate: Rate::from_gbps(10),
        prop: Time::from_ns(2_800),
        end: Time::from_ms(40),
        noise: NoiseModel::testbed(),
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_base_rtt_is_about_12us() {
        let mut m = Micro::build(&MicroEnv::default());
        let spec = FlowSpec::new(1, 0, 1_000_000, Time::ZERO);
        let params = m.sim.flow_params(&spec, 0);
        let us = params.base_rtt.as_us_f64();
        assert!(
            (12.0..12.5).contains(&us),
            "base RTT {us}us should be ~12us"
        );
        let _ = &mut m;
    }

    #[test]
    fn testbed_base_rtt_is_about_13us() {
        let mut m = Micro::build(&testbed_env());
        let spec = FlowSpec::new(1, 0, 1_000_000, Time::ZERO);
        let params = m.sim.flow_params(&spec, 0);
        let us = params.base_rtt.as_us_f64();
        assert!(
            (12.5..13.5).contains(&us),
            "testbed base RTT {us}us should be ~13us"
        );
        let _ = &mut m;
    }
}
