//! The ML-cluster training scenario (Fig 12c): eight data-parallel jobs
//! (4 ResNet-class + 4 VGG-class) on a CASSINI-style 2:1 oversubscribed
//! leaf–spine fabric, communicating with ring all-reduce. Assigning each
//! model's traffic its own priority interleaves communication phases; the
//! metric is training speed (iterations completed in a fixed period)
//! relative to the no-priority Swift baseline.

use std::collections::HashMap;

use netsim::sim::App;
use netsim::{FlowId, FlowSpec, NoiseModel, Sim, SimConfig, SwitchConfig, Topology};
use simcore::{Rate, Time};
use transport::{CcSpec, PrioPlusPolicy};
use workloads::RingJob;

use crate::Scheme;

/// ML-training scenario parameters.
#[derive(Clone, Debug)]
pub struct MlConfig {
    /// Scheme under test.
    pub scheme: Scheme,
    /// Leaf switches.
    pub leaves: usize,
    /// Spine switches.
    pub spines: usize,
    /// Hosts per leaf.
    pub hosts_per_leaf: usize,
    /// Host link rate.
    pub host_rate: Rate,
    /// Leaf–spine link rate (2:1 oversubscription in the paper).
    pub fabric_rate: Rate,
    /// Measurement horizon.
    pub duration: Time,
    /// Gradient-size scale factor (1.0 = full ResNet/VGG sizes).
    pub model_scale: f64,
    /// Seed.
    pub seed: u64,
}

impl MlConfig {
    /// CASSINI-like cluster (24 servers, 2:1) at reduced model scale.
    pub fn new(scheme: Scheme) -> Self {
        MlConfig {
            scheme,
            leaves: 4,
            spines: 2,
            hosts_per_leaf: 6,
            host_rate: Rate::from_gbps(100),
            fabric_rate: Rate::from_gbps(150),
            duration: Time::from_ms(30),
            model_scale: 0.01,
            seed: 5,
        }
    }
}

/// Per-job outcome.
#[derive(Clone, Debug)]
pub struct JobOut {
    /// Job name.
    pub name: String,
    /// Model family ("resnet" / "vgg").
    pub family: String,
    /// Completed iterations within the horizon.
    pub iterations: u64,
}

/// Scenario result.
#[derive(Clone, Debug)]
pub struct MlResult {
    /// Per-job outcomes.
    pub jobs: Vec<JobOut>,
}

impl MlResult {
    /// Total iterations across jobs whose family matches.
    pub fn iterations(&self, family: &str) -> u64 {
        self.jobs
            .iter()
            .filter(|j| family == "all" || j.family == family)
            .map(|j| j.iterations)
            .sum()
    }
}

struct JobState {
    job: RingJob,
    pending: usize,
    iterations: u64,
}

/// Closed-loop driver: when a communication phase completes, count an
/// iteration and schedule the next phase after the compute time.
struct AllReduceApp {
    jobs: Vec<JobState>,
    flow_to_job: HashMap<FlowId, usize>,
    cc: CcSpec,
    single_queue: bool,
    horizon: Time,
    hosts: Vec<u32>,
}

impl AllReduceApp {
    fn launch_phase(&mut self, j: usize, start: Time, sim: &mut Sim) {
        let bytes = self.jobs[j].job.bytes_per_worker();
        let pairs = self.jobs[j].job.ring_pairs();
        let prio = self.jobs[j].job.prio;
        self.jobs[j].pending = pairs.len();
        for (src, dst) in pairs {
            let spec = FlowSpec {
                src: self.hosts[src],
                dst: self.hosts[dst],
                size: bytes.max(1),
                start,
                phys_prio: if self.single_queue { 0 } else { prio },
                virt_prio: prio,
                tag: j as u64,
            };
            let cc = self.cc;
            let id = sim.add_flow(spec, |p| cc.make(p, start));
            self.flow_to_job.insert(id, j);
        }
    }
}

impl App for AllReduceApp {
    fn on_flow_complete(&mut self, flow: FlowId, sim: &mut Sim) {
        let Some(&j) = self.flow_to_job.get(&flow) else {
            return;
        };
        self.flow_to_job.remove(&flow);
        let state = &mut self.jobs[j];
        state.pending -= 1;
        if state.pending == 0 {
            state.iterations += 1;
            let next = sim.now() + state.job.compute;
            if next < self.horizon {
                self.launch_phase(j, next, sim);
            }
        }
    }
}

fn cc_for(cfg: &MlConfig, classes: u8) -> CcSpec {
    match cfg.scheme {
        Scheme::PhysicalSwift | Scheme::PhysicalStarSwift | Scheme::BaselineSwift => {
            CcSpec::Swift {
                queuing: Time::from_us(4),
                scaling: false,
            }
        }
        Scheme::PrioPlusSwift | Scheme::PrioPlusSwiftAckData => CcSpec::PrioPlusSwift {
            policy: PrioPlusPolicy::paper_default(classes),
        },
        Scheme::PrioPlusLedbat => CcSpec::PrioPlusLedbat {
            policy: PrioPlusPolicy::paper_default(classes),
        },
        Scheme::PhysicalStarNoCc => CcSpec::Blast,
        Scheme::PhysicalStarHpcc => CcSpec::Hpcc,
        Scheme::D2tcp => CcSpec::D2tcp {
            deadline_factor: Some(2.0),
        },
    }
}

/// Run the scenario: 4 ResNet jobs on the four highest priorities, 4 VGG
/// jobs on the four lowest (§6.2).
pub fn run(cfg: &MlConfig) -> MlResult {
    let topo = Topology::leaf_spine(
        cfg.leaves,
        cfg.spines,
        cfg.hosts_per_leaf,
        cfg.host_rate,
        cfg.fabric_rate,
        Time::from_us(1),
    );
    let hosts = topo.hosts.clone();
    let n_hosts = hosts.len();
    let classes = 8u8;
    let workers_per_job = n_hosts / 8;
    assert!(workers_per_job >= 2, "need ≥2 workers per job");

    // Spread each job's workers across leaves (stride assignment) so rings
    // traverse the oversubscribed fabric, as in CASSINI's setup.
    let mut jobs = Vec::new();
    for i in 0..8usize {
        let workers: Vec<usize> = (0..workers_per_job).map(|w| w * 8 + i).collect();
        // ResNet jobs take the 4 highest priorities (7..4), VGG the rest.
        let job = if i < 4 {
            RingJob::resnet(
                format!("resnet-{i}"),
                workers,
                (7 - i) as u8,
                cfg.model_scale,
            )
        } else {
            RingJob::vgg(
                format!("vgg-{}", i - 4),
                workers,
                (7 - i) as u8,
                cfg.model_scale,
            )
        };
        jobs.push(job);
    }

    let single_queue = cfg.scheme.single_queue();
    let nq = if single_queue { 1 } else { classes };
    let sim_cfg = SimConfig {
        num_prios: nq,
        end_time: cfg.duration,
        seed: cfg.seed,
        meas_noise: NoiseModel::testbed(),
        ..Default::default()
    };
    let sw_cfg = SwitchConfig {
        buffer_bytes: 32 * 1024 * 1024,
        pfc_lossless_prios: if cfg.scheme == Scheme::PhysicalSwift {
            nq
        } else {
            0
        },
        int_enabled: cfg.scheme == Scheme::PhysicalStarHpcc,
        ..Default::default()
    };
    let mut sim = Sim::new(&topo, sim_cfg, sw_cfg);

    let mut app = AllReduceApp {
        jobs: jobs
            .into_iter()
            .map(|job| JobState {
                job,
                pending: 0,
                iterations: 0,
            })
            .collect(),
        flow_to_job: HashMap::new(),
        cc: cc_for(cfg, classes),
        single_queue,
        horizon: cfg.duration,
        hosts,
    };
    for j in 0..app.jobs.len() {
        app.launch_phase(j, Time::ZERO, &mut sim);
    }
    // Move the app into the sim; retrieve job stats via a channel-free trick:
    // the app is owned by the sim, so collect stats through a shared cell.
    struct Shared(std::rc::Rc<std::cell::RefCell<AllReduceApp>>);
    impl App for Shared {
        fn on_flow_complete(&mut self, flow: FlowId, sim: &mut Sim) {
            self.0.borrow_mut().on_flow_complete(flow, sim);
        }
    }
    let shared = std::rc::Rc::new(std::cell::RefCell::new(app));
    sim.set_app(Box::new(Shared(shared.clone())));
    let _ = sim.run();

    let app = shared.borrow();
    MlResult {
        jobs: app
            .jobs
            .iter()
            .map(|s| JobOut {
                name: s.job.name.clone(),
                family: if s.job.name.starts_with("resnet") {
                    "resnet".into()
                } else {
                    "vgg".into()
                },
                iterations: s.iterations,
            })
            .collect(),
    }
}
