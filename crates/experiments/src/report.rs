//! Result tables: aligned plain text for the terminal plus JSON rows for
//! machine diffing (written next to the binary's stdout when
//! `REPRO_JSON_DIR` is set).

use std::fmt::Write as _;
use std::path::Path;

/// A simple result table.
#[derive(Clone, Debug)]
pub struct Table {
    /// Title printed above the table (figure/table reference).
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of stringified cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// New empty table.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the column count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render as aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let hdr: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect();
        let _ = writeln!(out, "{}", hdr.join("  "));
        let _ = writeln!(
            out,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect();
            let _ = writeln!(out, "{}", cells.join("  "));
        }
        out
    }

    /// Print to stdout and, when `REPRO_JSON_DIR` is set, also write
    /// `<dir>/<slug>.json` with the structured rows.
    pub fn emit(&self, slug: &str) {
        println!("{}", self.render());
        if let Ok(dir) = std::env::var("REPRO_JSON_DIR") {
            let path = Path::new(&dir).join(format!("{slug}.json"));
            if let Err(e) = std::fs::write(&path, self.to_json()) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            }
        }
    }

    /// Structured JSON form (`{"title", "columns", "rows"}`), pretty-printed
    /// with 2-space indentation. Hand-rolled so the workspace carries no JSON
    /// dependency.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"title\": {},", json_string(&self.title));
        out.push_str("  \"columns\": [\n");
        for (i, c) in self.columns.iter().enumerate() {
            let comma = if i + 1 < self.columns.len() { "," } else { "" };
            let _ = writeln!(out, "    {}{comma}", json_string(c));
        }
        out.push_str("  ],\n");
        out.push_str("  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            let cells: Vec<String> = row.iter().map(|c| json_string(c)).collect();
            let comma = if i + 1 < self.rows.len() { "," } else { "" };
            let _ = writeln!(out, "    [{}]{comma}", cells.join(", "));
        }
        out.push_str("  ]\n}");
        out
    }
}

/// Quote and escape a string as a JSON string literal.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format a float with 3 significant decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Format an optional float ("-" when absent).
pub fn opt3(v: Option<f64>) -> String {
    v.map(f3).unwrap_or_else(|| "-".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("Demo", &["a", "bbbb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["100".into(), "20000".into()]);
        let r = t.render();
        assert!(r.contains("# Demo"));
        let lines: Vec<&str> = r.lines().collect();
        // header, separator, 2 rows (+title)
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn json_escapes_and_shape() {
        let mut t = Table::new("Quote \"q\"\n", &["a"]);
        t.row(vec!["x\\y".into()]);
        let j = t.to_json();
        assert!(j.contains("\"title\": \"Quote \\\"q\\\"\\n\""));
        assert!(j.contains("[\"x\\\\y\"]"));
        assert!(j.starts_with("{\n"));
        assert!(j.ends_with('}'));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(opt3(None), "-");
        assert_eq!(opt3(Some(2.0)), "2.000");
    }
}
