//! Parallel sweep runner for experiment binaries.
//!
//! Every paper figure is a sweep of *independent* `(scheme × load × seed)`
//! simulations: each run is a pure function of its config, so the runs can
//! fan out across threads without changing any result. [`Sweep`] does
//! exactly that — it executes a list of configs on `std::thread::scope`
//! workers and returns the results **in input order**, which keeps every
//! output table byte-identical to a serial run.
//!
//! Worker count resolution, highest priority first:
//!
//! 1. `--jobs N` (or `--jobs=N`) on the command line;
//! 2. the `PRIOPLUS_JOBS` environment variable;
//! 3. [`std::thread::available_parallelism`].

use std::marker::PhantomData;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Default worker count: `--jobs` / `PRIOPLUS_JOBS` / available cores.
pub fn default_jobs() -> usize {
    jobs_from(std::env::args().skip(1), std::env::var("PRIOPLUS_JOBS").ok())
}

/// Resolution logic behind [`default_jobs`], testable without touching the
/// process environment.
fn jobs_from(args: impl Iterator<Item = String>, env: Option<String>) -> usize {
    if let Some(n) = parse_jobs_flag(args) {
        return n.max(1);
    }
    if let Some(n) = env.and_then(|v| v.trim().parse::<usize>().ok()) {
        return n.max(1);
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Extract `--jobs N` / `--jobs=N` from an argument list.
fn parse_jobs_flag(mut args: impl Iterator<Item = String>) -> Option<usize> {
    while let Some(a) = args.next() {
        if a == "--jobs" {
            return args.next()?.parse().ok();
        }
        if let Some(v) = a.strip_prefix("--jobs=") {
            return v.parse().ok();
        }
    }
    None
}

/// Positional (non-flag) command-line arguments, with `--jobs` and its value
/// stripped. Figure binaries use this for subcommand parsing so `fig10
/// sub_d --jobs 4` and `fig10 --jobs 4 sub_d` both work.
pub fn positional_args() -> Vec<String> {
    let mut out = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--jobs" {
            let _ = args.next();
            continue;
        }
        if a.starts_with("--") {
            continue;
        }
        out.push(a);
    }
    out
}

/// A sweep of independent run configs, executed in parallel, with results
/// returned in input order.
pub struct Sweep<C, R> {
    configs: Vec<C>,
    jobs: usize,
    _result: PhantomData<R>,
}

impl<C: Sync, R: Send> Sweep<C, R> {
    /// Sweep over `configs` with the default worker count
    /// ([`default_jobs`]).
    pub fn new(configs: Vec<C>) -> Self {
        Sweep {
            configs,
            jobs: default_jobs(),
            _result: PhantomData,
        }
    }

    /// Override the worker count (0 is clamped to 1).
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Execute `run` on every config and collect results in input order.
    pub fn run<F>(self, run: F) -> Vec<R>
    where
        F: Fn(&C) -> R + Sync,
    {
        run_ordered(&self.configs, self.jobs, &run)
    }
}

/// Fan `configs` out over `jobs` scoped worker threads; results come back in
/// input order. `jobs <= 1` (or a single config) runs inline on the calling
/// thread — the parallel and serial paths invoke the exact same `run`
/// closure per config, so outputs are identical by construction.
pub fn run_ordered<C, R, F>(configs: &[C], jobs: usize, run: &F) -> Vec<R>
where
    C: Sync,
    R: Send,
    F: Fn(&C) -> R + Sync,
{
    let jobs = jobs.max(1).min(configs.len().max(1));
    if jobs == 1 {
        return configs.iter().map(run).collect();
    }
    // Work-stealing by atomic index; each result lands in its input slot.
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..configs.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(cfg) = configs.get(i) else { break };
                let result = run(cfg);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every claimed slot")
        })
        .collect()
}

/// Warm-start cache accounting for [`run_warm`]: how many configs forked
/// from a shared snapshot (`hits`) vs. simulated their own warmup prefix
/// (`misses`, one per distinct prefix group).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WarmCache {
    /// Distinct warmup-prefix groups (`== misses`).
    pub groups: usize,
    /// Configs that restored from an already-simulated prefix snapshot.
    pub hits: usize,
    /// Warmup prefixes simulated from scratch (one per group).
    pub misses: usize,
}

/// Results plus cache accounting from a [`run_warm`] sweep.
pub struct WarmReport<R> {
    /// Per-config results, in input order.
    pub results: Vec<R>,
    /// Snapshot-cache accounting.
    pub cache: WarmCache,
}

/// Prefix-sharing parallel sweep: configs whose `key` matches share one
/// warmup prefix. Per distinct key, `warm` runs once on a representative
/// config (building a simulator and advancing it to the shared horizon,
/// typically `Sim::run_until`), the result is snapshotted, and **every**
/// config in the group — representative included — restores from the
/// snapshot and finishes via `finish`. Running the representative through
/// the same restore path keeps all group members on a bit-identical code
/// path (the snapshot/resume-identity e2e suite makes restore-vs-straight
/// equivalence a non-issue, but uniformity means a regression there cannot
/// split a group).
///
/// `key` must capture *everything* the warmup depends on — topology,
/// seed, switch config, warmup flows, horizon. Two configs with equal keys
/// but different warmup behavior would silently share the wrong prefix;
/// the warm-start differential test in `e2e_snapshot` pins the honest-key
/// contract for the shipped experiment configs.
///
/// Both phases fan out over [`run_ordered`] with `jobs` workers; results
/// come back in input order.
pub fn run_warm<C, R, K, W, F>(
    configs: &[C],
    jobs: usize,
    key: K,
    warm: W,
    finish: F,
) -> WarmReport<R>
where
    C: Sync,
    R: Send,
    K: Fn(&C) -> u64,
    W: Fn(&C) -> netsim::SimSnapshot + Sync,
    F: Fn(&C, netsim::Sim) -> R + Sync,
{
    // Group configs by key, preserving first-appearance order.
    let mut group_of = Vec::with_capacity(configs.len());
    let mut reps: Vec<usize> = Vec::new();
    let mut keys: Vec<u64> = Vec::new();
    for (i, c) in configs.iter().enumerate() {
        let k = key(c);
        match keys.iter().position(|&seen| seen == k) {
            Some(g) => group_of.push(g),
            None => {
                group_of.push(keys.len());
                keys.push(k);
                reps.push(i);
            }
        }
    }
    // Phase 1: one warmup simulation per group, in parallel.
    let snaps: Vec<netsim::SimSnapshot> =
        run_ordered(&reps, jobs, &|&rep| warm(&configs[rep]));
    // Phase 2: every config forks from its group's snapshot.
    let indexed: Vec<usize> = (0..configs.len()).collect();
    let results = run_ordered(&indexed, jobs, &|&i| {
        let sim = netsim::Sim::restore(&snaps[group_of[i]]);
        finish(&configs[i], sim)
    });
    WarmReport {
        results,
        cache: WarmCache {
            groups: reps.len(),
            hits: configs.len() - reps.len(),
            misses: reps.len(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_input_order() {
        let configs: Vec<u64> = (0..40).collect();
        for jobs in [1, 2, 4, 7] {
            let out = run_ordered(&configs, jobs, &|&c| c * 3);
            assert_eq!(out, configs.iter().map(|c| c * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_matches_serial_under_skew() {
        // Uneven per-item cost exercises out-of-order completion.
        let configs: Vec<u64> = (0..24).collect();
        let work = |&c: &u64| {
            let mut acc = c;
            for _ in 0..(c % 7) * 10_000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (c, acc)
        };
        let serial = run_ordered(&configs, 1, &work);
        let parallel = run_ordered(&configs, 4, &work);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_single_configs() {
        let empty: Vec<u32> = Vec::new();
        assert!(run_ordered(&empty, 4, &|&c| c).is_empty());
        assert_eq!(run_ordered(&[9u32], 4, &|&c| c + 1), vec![10]);
    }

    #[test]
    fn serial_path_bypasses_thread_machinery() {
        // Regression: `jobs <= 1` — and a single config regardless of the
        // requested job count — must run inline on the calling thread, not
        // pay thread/channel setup (measured 0.964x vs serial before the
        // bypass). Thread identity is the observable proof.
        let caller = std::thread::current().id();
        for (configs, jobs) in [((0..16u64).collect::<Vec<_>>(), 1), (vec![42u64], 8)] {
            let out = run_ordered(&configs, jobs, &|&c| {
                assert_eq!(
                    std::thread::current().id(),
                    caller,
                    "effective jobs == 1 must not spawn workers"
                );
                c + 1
            });
            assert_eq!(out, configs.iter().map(|c| c + 1).collect::<Vec<_>>());
        }
    }

    #[test]
    fn sweep_builder_runs() {
        let out = Sweep::new((0..10u32).collect()).jobs(3).run(|&c| c * c);
        assert_eq!(out, (0..10u32).map(|c| c * c).collect::<Vec<_>>());
    }

    #[test]
    fn jobs_flag_parsing() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(parse_jobs_flag(args(&["--jobs", "5"]).into_iter()), Some(5));
        assert_eq!(parse_jobs_flag(args(&["--jobs=3"]).into_iter()), Some(3));
        assert_eq!(
            parse_jobs_flag(args(&["sub_d", "--full", "--jobs", "2"]).into_iter()),
            Some(2)
        );
        assert_eq!(parse_jobs_flag(args(&["--full"]).into_iter()), None);
        assert_eq!(jobs_from(args(&["--jobs", "0"]).into_iter(), None), 1);
        assert_eq!(jobs_from(args(&[]).into_iter(), Some("6".into())), 6);
    }
}
