//! Invariant auditing: conservation and state-machine checks at event
//! boundaries.
//!
//! The audit layer is the simulator's deterministic-simulation-testing
//! harness. When enabled (the `audit` cargo feature, plus a runtime toggle:
//! [`crate::Sim::enable_audit`], the `PRIOPLUS_AUDIT` environment variable,
//! or a `--audit` CLI flag), the event loop verifies after every event that
//! the simulation state still satisfies the invariants the paper's switch
//! mechanisms guarantee in hardware:
//!
//! - **packet conservation** — data packets injected = delivered + dropped +
//!   in flight; receiver-delivered bytes never exceed the flow size;
//!   [`crate::record::SimCounters`] agree with independently tallied counts;
//! - **buffer accounting** — per-queue/per-port/per-switch byte counters
//!   match a recount of the actual queued packets, occupancy never exceeds
//!   the physical buffer, and lossy-mode admissions respect the
//!   Dynamic-Threshold limit;
//! - **PFC legality** — Xoff fires whenever an ingress counter crosses the
//!   pause threshold, pause/resume transitions alternate, and no more than
//!   the reserved headroom arrives for a paused (port, priority);
//! - **ECN bounds** — RED marking never marks below `kmin` and always marks
//!   above `kmax` (per-DSCP-scaled where configured);
//! - **transport sanity** — per-CC invariants (cwnd clamps, sequence-state
//!   consistency) via [`crate::transport_api::Transport::check_invariants`];
//! - **event queue** — the scheduler's internal bookkeeping
//!   ([`simcore::EventQueue::check_invariants`]);
//! - **arena accounting** — every live packet-arena slot is referenced by
//!   exactly one queue position or pending arrival, free slots by none, and
//!   the arena's free-list/live bookkeeping is internally consistent
//!   ([`crate::packet::PacketArena::check`]);
//! - **fluid mass conservation** — with hybrid background traffic
//!   ([`crate::fluid`]), every fluid-loaded port's cumulative injected mass
//!   equals drained plus backlog, in exact integer units (no mass is ever
//!   created or destroyed by the piecewise-constant rate solver).
//!
//! Violations become structured [`Violation`] records pinpointing the event,
//! node, port, queue, and flow, alongside a ring buffer of the most recent
//! events ([`EventRecord`]) so a failure is debuggable after the fact. The
//! whole layer compiles out with `--no-default-features` and costs one
//! `Option` check per event when compiled in but disabled.

use std::collections::{BTreeMap, BTreeSet};

use simcore::{RingLog, Time};

use crate::node::Switch;
use crate::packet::{FlowId, NodeId, PacketArena};
use crate::counters::SimCounters;

/// Configuration of the audit layer.
#[derive(Clone, Debug)]
pub struct AuditConfig {
    /// Number of trailing events retained for violation context.
    pub ring_capacity: usize,
    /// Violations stored verbatim; excess violations are only counted.
    pub max_violations: usize,
    /// Panic with a full dump on the first violation (fail-fast debugging).
    pub panic_on_violation: bool,
    /// Run the O(state) deep scan every N events (1 = every event). The
    /// focused per-event checks always run.
    pub deep_every: u64,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            ring_capacity: 64,
            max_violations: 64,
            panic_on_violation: false,
            deep_every: 1,
        }
    }
}

/// Class of invariant violated.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ViolationKind {
    /// A byte counter disagrees with a recount of the queued packets.
    BufferAccounting,
    /// Occupancy exceeded the physical buffer or a DT admission limit.
    BufferOverflow,
    /// More bytes than the reserved PFC headroom arrived for a paused
    /// (ingress port, priority).
    HeadroomOverdraw,
    /// An ingress counter sits above the pause threshold right after an
    /// admission, but no Xoff was sent.
    PfcXoffMissed,
    /// A pause arrived while paused, or a resume while not paused.
    PfcIllegalTransition,
    /// A packet was ECN-marked below `kmin` or left unmarked above `kmax`.
    EcnBounds,
    /// Delivered + dropped packets exceed injected, or a receiver delivered
    /// more bytes than the flow size.
    PacketConservation,
    /// [`SimCounters`] disagree with the audit's independent tallies.
    CounterMismatch,
    /// A transport's internal invariants failed
    /// ([`crate::transport_api::Transport::check_invariants`]).
    TransportSanity,
    /// The event queue's internal bookkeeping failed
    /// ([`simcore::EventQueue::check_invariants`]).
    EventQueue,
    /// The packet arena's live/free accounting failed: a live slot is not
    /// referenced by exactly one queue position or pending arrival, a free
    /// slot is still referenced, or the arena's internal consistency check
    /// ([`crate::packet::PacketArena::check`]) found corruption.
    ArenaAccounting,
    /// The fluid background solver's mass accounting failed: cumulative
    /// injected units no longer equal drained plus backlog on some port
    /// (hybrid model, [`crate::fluid`]).
    FluidConservation,
    /// The PFC wait-for graph over paused ports contains a cycle — a
    /// circular buffer dependency that cannot drain
    /// ([`detect_pause_cycle`]). Reported once per deadlock
    /// episode; re-armed when the cycle clears.
    PfcDeadlock,
    /// A completed, deactivated flow still holds a live slot in the
    /// flow-state slab: reclamation was skipped, so transport + reassembly
    /// state is leaking. Checked by the deep scan's flow sweep — the sweep
    /// is O(flows) by design (deep scans are periodic), while the per-event
    /// audit state stays O(ports).
    FlowStateLeak,
}

/// One recorded invariant violation.
#[derive(Clone, Debug)]
pub struct Violation {
    /// What class of invariant failed.
    pub kind: ViolationKind,
    /// Simulated time of the event that exposed it.
    pub time: Time,
    /// Node involved, when applicable.
    pub node: Option<NodeId>,
    /// Port involved, when applicable.
    pub port: Option<u16>,
    /// Queue / priority involved, when applicable.
    pub queue: Option<u8>,
    /// Flow involved, when applicable.
    pub flow: Option<FlowId>,
    /// Human-readable description with the offending values.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{:?}] t={}", self.kind, self.time)?;
        if let Some(n) = self.node {
            write!(f, " node={n}")?;
        }
        if let Some(p) = self.port {
            write!(f, " port={p}")?;
        }
        if let Some(q) = self.queue {
            write!(f, " queue={q}")?;
        }
        if let Some(fl) = self.flow {
            write!(f, " flow={fl}")?;
        }
        write!(f, ": {}", self.detail)
    }
}

/// Compact record of one processed event, kept in the trailing ring buffer.
#[derive(Clone, Copy, Debug)]
pub struct EventRecord {
    /// Position in the event stream (0-based).
    pub seq: u64,
    /// Event timestamp.
    pub time: Time,
    /// Event kind (static label).
    pub kind: &'static str,
    /// Primary id of the event (node, flow, or monitor index).
    pub id: u32,
}

/// Final audit output, attached to [`crate::record::SimResult`].
#[derive(Clone, Debug)]
pub struct AuditReport {
    /// Stored violations (capped at [`AuditConfig::max_violations`]).
    pub violations: Vec<Violation>,
    /// Total violations detected, including ones beyond the storage cap.
    pub total_violations: u64,
    /// Events the audit layer observed.
    pub events_audited: u64,
    /// Deep scans performed.
    pub deep_scans: u64,
    /// The most recent events, oldest first.
    pub recent_events: Vec<EventRecord>,
}

impl AuditReport {
    /// True when no violation was detected.
    pub fn is_clean(&self) -> bool {
        self.total_violations == 0
    }

    /// Multi-line human-readable dump: every stored violation plus the
    /// trailing event ring.
    pub fn dump(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "audit: {} violation(s) over {} events ({} deep scans)",
            self.total_violations, self.events_audited, self.deep_scans
        );
        for v in &self.violations {
            let _ = writeln!(out, "  {v}");
        }
        if !self.recent_events.is_empty() {
            let _ = writeln!(out, "  recent events (oldest first):");
            for e in &self.recent_events {
                let _ = writeln!(out, "    #{} t={} {} id={}", e.seq, e.time, e.kind, e.id);
            }
        }
        out
    }
}

/// PFC pause-state mirror for one (node, ingress port, priority).
#[cfg_attr(not(feature = "audit"), allow(dead_code))]
#[derive(Clone, Copy, Debug, Default)]
struct PfcMirror {
    paused: bool,
    /// Bytes that arrived for this (port, priority) since the pause was
    /// emitted; must stay within the reserved headroom.
    since_pause_bytes: u64,
}

/// Details of a packet that just went through switch admission, handed to
/// [`Audit::note_switch_arrive`] by the event loop.
#[cfg_attr(not(feature = "audit"), allow(dead_code))]
pub(crate) struct SwitchArrive {
    pub(crate) node: NodeId,
    pub(crate) in_port: u16,
    pub(crate) egress: u16,
    pub(crate) queue: u8,
    pub(crate) wire: u64,
    pub(crate) is_data: bool,
    pub(crate) dropped: bool,
    /// For data packets: (egress queue bytes before enqueue, dscp, marked).
    /// With fluid background load the first element already includes the
    /// projected fluid occupancy — the value `ecn_mark` actually compared.
    pub(crate) ecn: Option<(u64, u8, bool)>,
    /// Projected fluid background occupancy at the egress port when the
    /// switch made its admission/ECN decisions (0 without fluid load).
    pub(crate) fluid_occ: u64,
}

/// The (switch, ingress port, queue) an admission in the current event
/// touched; checked against the Xoff invariant at the event boundary.
#[cfg_attr(not(feature = "audit"), allow(dead_code))]
#[derive(Clone, Debug)]
pub(crate) struct Focus {
    pub(crate) node: NodeId,
    pub(crate) in_port: u16,
    pub(crate) queue: u8,
    /// Fluid occupancy at admission time, for recomputing the pause
    /// threshold the switch actually used.
    pub(crate) fluid_occ: u64,
}

/// Live audit state held by the simulator while auditing is enabled.
#[cfg_attr(not(feature = "audit"), allow(dead_code))]
#[derive(Clone, Debug)]
pub struct Audit {
    cfg: AuditConfig,
    ring: RingLog<EventRecord>,
    violations: Vec<Violation>,
    total_violations: u64,
    events_audited: u64,
    deep_scans: u64,
    injected_pkts: u64,
    injected_wire: u64,
    delivered_pkts: u64,
    delivered_wire: u64,
    dropped_pkts: u64,
    dropped_wire: u64,
    pfc: BTreeMap<(NodeId, u16, u8), PfcMirror>,
    focus: Option<Focus>,
    touched: Vec<FlowId>,
    /// A PFC deadlock cycle is currently present (latch: one violation per
    /// episode, re-armed when the cycle clears).
    deadlock_active: bool,
}

#[cfg_attr(not(feature = "audit"), allow(dead_code))]
impl Audit {
    /// New audit state.
    pub fn new(cfg: AuditConfig) -> Self {
        let ring = RingLog::new(cfg.ring_capacity.max(1));
        Audit {
            cfg,
            ring,
            violations: Vec::new(),
            total_violations: 0,
            events_audited: 0,
            deep_scans: 0,
            injected_pkts: 0,
            injected_wire: 0,
            delivered_pkts: 0,
            delivered_wire: 0,
            dropped_pkts: 0,
            dropped_wire: 0,
            pfc: BTreeMap::new(),
            focus: None,
            touched: Vec::new(),
            deadlock_active: false,
        }
    }

    /// Record one violation (central sink; applies the storage cap and the
    /// panic-on-violation policy).
    pub(crate) fn violate(&mut self, v: Violation) {
        self.total_violations += 1;
        if self.cfg.panic_on_violation {
            let mut dump = String::from("audit violation: ");
            dump.push_str(&v.to_string());
            dump.push('\n');
            dump.push_str(&self.snapshot_report().dump());
            panic!("{dump}");
        }
        if self.violations.len() < self.cfg.max_violations {
            self.violations.push(v);
        }
    }

    // One violation record carries every dimension a rule can report on;
    // splitting the argument list into a struct would just rename it.
    #[allow(clippy::too_many_arguments)]
    fn report(
        &mut self,
        kind: ViolationKind,
        time: Time,
        node: Option<NodeId>,
        port: Option<u16>,
        queue: Option<u8>,
        flow: Option<FlowId>,
        detail: String,
    ) {
        self.violate(Violation {
            kind,
            time,
            node,
            port,
            queue,
            flow,
            detail,
        });
    }

    /// Ring-log one event about to be processed.
    pub(crate) fn on_event(&mut self, time: Time, kind: &'static str, id: u32) {
        self.ring.push(EventRecord {
            seq: self.events_audited,
            time,
            kind,
            id,
        });
        self.events_audited += 1;
    }

    /// A data packet left a sender NIC (includes retransmissions).
    pub(crate) fn on_data_injected(&mut self, flow: FlowId, wire: u64) {
        self.injected_pkts += 1;
        self.injected_wire += wire;
        self.touch_flow(flow);
    }

    /// A data packet arrived at its destination host.
    pub(crate) fn on_data_delivered(&mut self, time: Time, flow: FlowId, wire: u64) {
        self.delivered_pkts += 1;
        self.delivered_wire += wire;
        self.touch_flow(flow);
        if self.delivered_pkts + self.dropped_pkts > self.injected_pkts {
            let (d, dr, i) = (self.delivered_pkts, self.dropped_pkts, self.injected_pkts);
            self.report(
                ViolationKind::PacketConservation,
                time,
                None,
                None,
                None,
                Some(flow),
                format!("delivered {d} + dropped {dr} > injected {i}"),
            );
        }
    }

    /// A data packet was dropped because its link was down at arrival
    /// ([`crate::faults`]): it joins the dropped tallies so packet
    /// conservation stays exact under link flaps. Control-packet losses are
    /// not tallied — they were never counted as injected.
    pub(crate) fn on_link_drop(&mut self, wire: u64) {
        self.dropped_pkts += 1;
        self.dropped_wire += wire;
    }

    /// Outcome of the PFC deadlock monitor for this deep scan: report a
    /// fresh cycle once, stay quiet while it persists, re-arm when it
    /// clears.
    pub(crate) fn check_deadlock(&mut self, time: Time, cycle: Option<&[(NodeId, u16, u8)]>) {
        match cycle {
            Some(c) => {
                if self.deadlock_active {
                    return;
                }
                self.deadlock_active = true;
                let mut desc = String::from("PFC wait-for cycle:");
                for &(n, p, q) in c {
                    use std::fmt::Write;
                    let _ = write!(desc, " ({n},{p},q{q})");
                }
                let &(node, port, queue) = c.first().expect("a cycle has vertices");
                self.report(
                    ViolationKind::PfcDeadlock,
                    time,
                    Some(node),
                    Some(port),
                    Some(queue),
                    None,
                    desc,
                );
            }
            None => self.deadlock_active = false,
        }
    }

    /// Mark a flow's transport state as touched by the current event; its
    /// invariants are verified at the boundary.
    pub(crate) fn touch_flow(&mut self, flow: FlowId) {
        if self.touched.last() != Some(&flow) {
            self.touched.push(flow);
        }
    }

    /// Pop one touched flow (boundary drain).
    pub(crate) fn pop_touched(&mut self) -> Option<FlowId> {
        self.touched.pop()
    }

    /// A PFC pause/resume frame was emitted by `node` toward ingress
    /// `in_port`'s upstream peer: verify the transition is legal and update
    /// the pause mirror.
    pub(crate) fn on_pfc_frame(
        &mut self,
        time: Time,
        node: NodeId,
        in_port: u16,
        prio: u8,
        pause: bool,
    ) {
        let m = self.pfc.entry((node, in_port, prio)).or_default();
        let illegal = m.paused == pause;
        m.paused = pause;
        m.since_pause_bytes = 0;
        if illegal {
            let what = if pause {
                "pause while already paused"
            } else {
                "resume while not paused"
            };
            self.report(
                ViolationKind::PfcIllegalTransition,
                time,
                Some(node),
                Some(in_port),
                Some(prio),
                None,
                what.to_string(),
            );
        }
    }

    /// A packet went through switch admission: run the per-packet checks
    /// (ECN bounds, DT limit, headroom draw) and arm the boundary Xoff
    /// check. Must be called *before* the pause frames from this admission
    /// are emitted, so the triggering packet itself never draws headroom.
    pub(crate) fn note_switch_arrive(&mut self, time: Time, info: &SwitchArrive, sw: &Switch) {
        if info.dropped {
            self.dropped_pkts += 1;
            self.dropped_wire += info.wire;
        }
        if let Some((q_pre, dscp, marked)) = info.ecn {
            let scale = if sw.cfg.ecn_prio_scaled {
                dscp as u64 + 1
            } else {
                1
            };
            let (kmin, kmax) = (sw.cfg.ecn_kmin * scale, sw.cfg.ecn_kmax * scale);
            if marked && q_pre <= kmin {
                self.report(
                    ViolationKind::EcnBounds,
                    time,
                    Some(info.node),
                    Some(info.egress),
                    Some(info.queue),
                    None,
                    format!("marked at queue {q_pre} B <= kmin {kmin} B"),
                );
            } else if !marked && q_pre >= kmax {
                self.report(
                    ViolationKind::EcnBounds,
                    time,
                    Some(info.node),
                    Some(info.egress),
                    Some(info.queue),
                    None,
                    format!("unmarked at queue {q_pre} B >= kmax {kmax} B"),
                );
            }
        }
        if info.dropped {
            return;
        }
        // Headroom draw: bytes arriving for an already-paused (port, prio)
        // come out of the reserved headroom and must fit in it.
        if let Some(m) = self
            .pfc
            .get_mut(&(info.node, info.in_port, info.queue))
            .filter(|m| m.paused)
        {
            m.since_pause_bytes += info.wire;
            let drawn = m.since_pause_bytes;
            let headroom = sw.cfg.pfc_headroom_bytes;
            if drawn > headroom {
                self.report(
                    ViolationKind::HeadroomOverdraw,
                    time,
                    Some(info.node),
                    Some(info.in_port),
                    Some(info.queue),
                    None,
                    format!("{drawn} B arrived since pause, headroom {headroom} B"),
                );
            }
        }
        // Lossy-mode Dynamic Threshold: the post-admission queue must fit
        // under alpha * (free-at-admission) = alpha * (free_now + size).
        if !sw.cfg.pfc_enabled && info.is_data {
            let q_post = sw.ports[info.egress as usize].queued_bytes_q[info.queue as usize];
            let free_at_admission = (sw.free_buffer() + info.wire).saturating_sub(info.fluid_occ);
            let limit = (sw.cfg.dt_alpha * free_at_admission as f64) as u64 + info.wire;
            if q_post > limit {
                self.report(
                    ViolationKind::BufferOverflow,
                    time,
                    Some(info.node),
                    Some(info.egress),
                    Some(info.queue),
                    None,
                    format!("queue {q_post} B exceeds DT admission limit {limit} B"),
                );
            }
        }
        // Arm the boundary Xoff-must-fire check for this (port, priority).
        let nq = sw.ports[info.egress as usize].queues.len();
        if sw.cfg.pfc_enabled && (info.queue as usize) < nq - 1 {
            self.focus = Some(Focus {
                node: info.node,
                in_port: info.in_port,
                queue: info.queue,
                fluid_occ: info.fluid_occ,
            });
        }
    }

    /// Take the admission focus armed by the last event, if any.
    pub(crate) fn take_focus(&mut self) -> Option<Focus> {
        self.focus.take()
    }

    /// Xoff-must-fire: right after an admission for (in_port, queue), an
    /// ingress counter above the pause threshold implies a pause was sent.
    ///
    /// This is sound at the event boundary because between the admission and
    /// the boundary only dequeues happen on this switch: the ingress counter
    /// can only fall and the threshold can only rise, and a resume requires
    /// falling below `threshold - resume_offset`. So `bytes > threshold`
    /// still holding here means the admission itself saw it and must have
    /// paused. With fluid load the admission-time fluid occupancy is
    /// replayed: the boundary threshold then upper-bounds the one the
    /// switch used (free buffer only grows between admission and boundary),
    /// keeping the implication sound.
    pub(crate) fn check_xoff(&mut self, time: Time, focus: &Focus, sw: &Switch) {
        let (ip, q) = (focus.in_port as usize, focus.queue as usize);
        let bytes = sw.ingress_bytes[ip][q];
        let threshold = sw.pfc_pause_threshold(focus.fluid_occ);
        if bytes > threshold && !sw.ingress_paused[ip][q] {
            self.report(
                ViolationKind::PfcXoffMissed,
                time,
                Some(focus.node),
                Some(focus.in_port),
                Some(focus.queue),
                None,
                format!("ingress {bytes} B > pause threshold {threshold} B, no Xoff sent"),
            );
        }
    }

    /// True when the periodic deep scan is due for the event just processed.
    pub(crate) fn should_deep_scan(&self) -> bool {
        self.cfg.deep_every <= 1 || self.events_audited % self.cfg.deep_every == 0
    }

    /// Deep-scan one switch: recount every queue against the byte counters,
    /// check occupancy against the physical buffer, and cross-check the PFC
    /// pause mirror. Returns the data wire bytes found buffered (for the
    /// conservation check).
    pub(crate) fn check_switch(
        &mut self,
        time: Time,
        node: NodeId,
        sw: &Switch,
        arena: &PacketArena,
    ) -> u64 {
        self.deep_scans += 1;
        let mut switch_total = 0u64;
        let mut data_wire = 0u64;
        for (pi, port) in sw.ports.iter().enumerate() {
            let mut port_total = 0u64;
            for (qi, queue) in port.queues.iter().enumerate() {
                let mut recount = 0u64;
                for &id in queue {
                    let pkt = arena.get(id);
                    recount += pkt.size as u64;
                    if pkt.kind.is_data() {
                        data_wire += pkt.size as u64;
                    }
                }
                if recount != port.queued_bytes_q[qi] {
                    let counter = port.queued_bytes_q[qi];
                    self.report(
                        ViolationKind::BufferAccounting,
                        time,
                        Some(node),
                        Some(pi as u16),
                        Some(qi as u8),
                        None,
                        format!("queue recount {recount} B != counter {counter} B"),
                    );
                }
                port_total += recount;
            }
            if port_total != port.queued_bytes {
                let counter = port.queued_bytes;
                self.report(
                    ViolationKind::BufferAccounting,
                    time,
                    Some(node),
                    Some(pi as u16),
                    None,
                    None,
                    format!("port recount {port_total} B != counter {counter} B"),
                );
            }
            switch_total += port_total;
        }
        if switch_total != sw.total_buffered {
            let counter = sw.total_buffered;
            self.report(
                ViolationKind::BufferAccounting,
                time,
                Some(node),
                None,
                None,
                None,
                format!("switch recount {switch_total} B != total_buffered {counter} B"),
            );
        }
        let ingress_total: u64 = sw.ingress_bytes.iter().flatten().sum();
        if ingress_total != sw.total_buffered {
            let counter = sw.total_buffered;
            self.report(
                ViolationKind::BufferAccounting,
                time,
                Some(node),
                None,
                None,
                None,
                format!("ingress recount {ingress_total} B != total_buffered {counter} B"),
            );
        }
        if sw.total_buffered > sw.cfg.buffer_bytes {
            let (used, cap) = (sw.total_buffered, sw.cfg.buffer_bytes);
            self.report(
                ViolationKind::BufferOverflow,
                time,
                Some(node),
                None,
                None,
                None,
                format!("buffered {used} B exceeds physical buffer {cap} B"),
            );
        }
        // Pause mirror vs switch state: every emitted pause we saw must
        // match what the switch believes, and vice versa.
        for (ip, prios) in sw.ingress_paused.iter().enumerate() {
            for (qi, &paused) in prios.iter().enumerate() {
                let mirrored = self
                    .pfc
                    .get(&(node, ip as u16, qi as u8))
                    .map(|m| m.paused)
                    .unwrap_or(false);
                if mirrored != paused {
                    self.report(
                        ViolationKind::PfcIllegalTransition,
                        time,
                        Some(node),
                        Some(ip as u16),
                        Some(qi as u8),
                        None,
                        format!(
                            "switch pause state {paused} but emitted frames imply {mirrored}"
                        ),
                    );
                }
            }
        }
        data_wire
    }

    /// Deep-scan the packet arena: the arena's own structural invariants
    /// ([`PacketArena::check`]) must hold, and `refs` — the caller's recount
    /// of how many times each slot is referenced by a port queue position or
    /// a pending `Arrive` event — must show every live slot held exactly
    /// once and every free slot not at all. Together these prove ids are
    /// never duplicated, leaked, or used after release.
    pub(crate) fn check_arena(&mut self, time: Time, arena: &PacketArena, refs: &[u32]) {
        if let Err(e) = arena.check() {
            self.report(
                ViolationKind::ArenaAccounting,
                time,
                None,
                None,
                None,
                None,
                format!("arena self-check failed: {e}"),
            );
        }
        for (i, &n) in refs.iter().enumerate() {
            let live = arena.is_live(crate::packet::PacketId(i as u32));
            if live && n != 1 {
                self.report(
                    ViolationKind::ArenaAccounting,
                    time,
                    None,
                    None,
                    None,
                    None,
                    format!("live arena slot {i} referenced {n} times (expected 1)"),
                );
            } else if !live && n != 0 {
                self.report(
                    ViolationKind::ArenaAccounting,
                    time,
                    None,
                    None,
                    None,
                    None,
                    format!("free arena slot {i} still referenced {n} times"),
                );
            }
        }
    }

    /// Fluid mass conservation (hybrid model): on every fluid-loaded port,
    /// cumulative injected units must equal cumulative drained units plus
    /// the current backlog — the solver's integer rate×time arithmetic
    /// makes this identity exact, so any deviation is an accounting bug.
    pub(crate) fn check_fluid(&mut self, time: Time, view: &crate::fluid::FluidAudit) {
        for p in &view.ports {
            if p.injected != p.drained + p.backlog {
                self.report(
                    ViolationKind::FluidConservation,
                    time,
                    Some(p.node),
                    Some(p.port),
                    None,
                    None,
                    format!(
                        "fluid mass leak: injected {} != drained {} + backlog {} units",
                        p.injected, p.drained, p.backlog
                    ),
                );
            }
        }
    }

    /// Conservation across the whole fabric: what is buffered in switches
    /// can be at most what was injected and neither delivered nor dropped
    /// (the remainder is in flight on links).
    pub(crate) fn check_conservation(&mut self, time: Time, buffered_data_wire: u64) {
        let outstanding = self
            .injected_wire
            .saturating_sub(self.delivered_wire)
            .saturating_sub(self.dropped_wire);
        if buffered_data_wire > outstanding
            || self.delivered_wire + self.dropped_wire > self.injected_wire
        {
            let (i, d, dr) = (self.injected_wire, self.delivered_wire, self.dropped_wire);
            self.report(
                ViolationKind::PacketConservation,
                time,
                None,
                None,
                None,
                None,
                format!(
                    "buffered {buffered_data_wire} B > injected {i} - delivered {d} - dropped {dr}"
                ),
            );
        }
    }

    /// Cross-check the simulator's public counters against the audit's
    /// independent tallies.
    pub(crate) fn check_counters(&mut self, time: Time, counters: &SimCounters) {
        if counters.data_delivered != self.delivered_pkts {
            let (c, a) = (counters.data_delivered, self.delivered_pkts);
            self.report(
                ViolationKind::CounterMismatch,
                time,
                None,
                None,
                None,
                None,
                format!("counters.data_delivered {c} != audited {a}"),
            );
        }
        if counters.drops + counters.fault_link_drops != self.dropped_pkts {
            let (c, f, a) = (counters.drops, counters.fault_link_drops, self.dropped_pkts);
            self.report(
                ViolationKind::CounterMismatch,
                time,
                None,
                None,
                None,
                None,
                format!("counters.drops {c} + fault_link_drops {f} != audited {a}"),
            );
        }
    }

    /// Flow-scoped violation helper (transport sanity / receiver state).
    pub(crate) fn flow_violation(
        &mut self,
        kind: ViolationKind,
        time: Time,
        flow: FlowId,
        detail: String,
    ) {
        self.report(kind, time, None, None, None, Some(flow), detail);
    }

    /// Event-queue violation helper.
    pub(crate) fn queue_violation(&mut self, time: Time, detail: String) {
        self.report(ViolationKind::EventQueue, time, None, None, None, None, detail);
    }

    fn snapshot_report(&self) -> AuditReport {
        AuditReport {
            violations: self.violations.clone(),
            total_violations: self.total_violations,
            events_audited: self.events_audited,
            deep_scans: self.deep_scans,
            recent_events: self.ring.iter().copied().collect(),
        }
    }

    /// Consume the audit state into its final report.
    pub fn into_report(self) -> AuditReport {
        AuditReport {
            recent_events: self.ring.iter().copied().collect(),
            violations: self.violations,
            total_violations: self.total_violations,
            events_audited: self.events_audited,
            deep_scans: self.deep_scans,
        }
    }
}

/// Whether auditing was requested from the environment: `PRIOPLUS_AUDIT`
/// set to anything but `0`, or a literal `--audit` CLI argument. Cached, so
/// the per-run cost is one relaxed load.
pub fn env_enabled() -> bool {
    // Process-wide env caches: write-once before any sim state exists.
    use std::sync::OnceLock; // simlint::allow(shared-state, process-wide env cache - write-once before any sim state exists)
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        std::env::var("PRIOPLUS_AUDIT")
            .map(|v| v != "0")
            .unwrap_or(false)
            || std::env::args().any(|a| a == "--audit")
    })
}

/// Whether environment-requested audits should panic (with a full ring-log
/// dump) on the first violation: `PRIOPLUS_AUDIT_PANIC` set to anything but
/// `0`. Only consulted for audits enabled via [`env_enabled`]; explicit
/// [`crate::Sim::enable_audit_with`] calls carry their own config.
pub fn env_panic() -> bool {
    // Process-wide env caches: write-once before any sim state exists.
    use std::sync::OnceLock; // simlint::allow(shared-state, process-wide env cache - write-once before any sim state exists)
    static PANIC: OnceLock<bool> = OnceLock::new();
    *PANIC.get_or_init(|| {
        std::env::var("PRIOPLUS_AUDIT_PANIC")
            .map(|v| v != "0")
            .unwrap_or(false)
    })
}

/// Deep-scan cadence for environment-requested audits:
/// `PRIOPLUS_AUDIT_DEEP=N` runs the O(state) scan every N events
/// (default 64; `1` = every event). The cheap focused checks always run
/// per event regardless. Explicit [`crate::Sim::enable_audit_with`] calls
/// carry their own config.
pub fn env_deep_every() -> u64 {
    // Process-wide env caches: write-once before any sim state exists.
    use std::sync::OnceLock; // simlint::allow(shared-state, process-wide env cache - write-once before any sim state exists)
    static DEEP: OnceLock<u64> = OnceLock::new();
    *DEEP.get_or_init(|| {
        std::env::var("PRIOPLUS_AUDIT_DEEP")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(64)
    })
}

/// Detect a PFC wait-for cycle (circular buffer dependency) over the
/// current pause state. See [`crate::faults`]'s module docs for the graph construction.
/// Returns the first cycle found — deterministic: vertices are visited in
/// sorted `(node, port, queue)` order — as the list of its vertices, or
/// `None` when the wait-for graph is acyclic.
#[cfg_attr(not(feature = "audit"), allow(dead_code))]
pub(crate) fn detect_pause_cycle(
    switches: &[(NodeId, &Switch)],
    arena: &PacketArena,
) -> Option<Vec<(NodeId, u16, u8)>> {
    // Vertices: every paused data-priority egress on a switch. The control
    // queue (index nq-1) is never PFC-paused.
    let mut verts: Vec<(NodeId, u16, u8)> = Vec::new();
    let mut sw_of: BTreeMap<NodeId, &Switch> = BTreeMap::new();
    for &(id, s) in switches {
        sw_of.insert(id, s);
        for (pi, p) in s.ports.iter().enumerate() {
            for q in 0..p.queues.len().saturating_sub(1) {
                if p.is_paused(q) {
                    verts.push((id, pi as u16, q as u8));
                }
            }
        }
    }
    if verts.len() < 2 {
        return None;
    }
    verts.sort_unstable();
    // Per vertex: the set of ingress ports whose packets occupy its queue.
    // One pass over paused queues only, so edge tests below are set lookups
    // instead of per-edge queue scans.
    let ins: BTreeMap<(NodeId, u16, u8), BTreeSet<u16>> = verts
        .iter()
        .map(|&(id, pi, q)| {
            let set: BTreeSet<u16> = sw_of[&id].ports[pi as usize].queues[q as usize]
                .iter()
                .map(|&pid| arena.get(pid).cur_in_port)
                .collect();
            ((id, pi, q), set)
        })
        .collect();
    // Edge (A,p,q) -> (B,p2,q): A waits on peer B's resume for link (A,p);
    // that resume is blocked while B's paused egress (p2,q) holds a packet
    // that entered B through this very link.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); verts.len()];
    for (i, &(a, p, q)) in verts.iter().enumerate() {
        let ep = &sw_of[&a].ports[p as usize];
        let (b, b_in) = (ep.peer, ep.peer_port);
        for (j, &(vb, p2, q2)) in verts.iter().enumerate() {
            if vb == b && q2 == q && ins[&(vb, p2, q2)].contains(&b_in) {
                adj[i].push(j);
            }
        }
    }
    // DFS cycle detection in sorted vertex order (deterministic result).
    // 0 = unvisited, 1 = on the current path, 2 = done.
    let mut color = vec![0u8; verts.len()];
    let mut path: Vec<usize> = Vec::new();
    for start in 0..verts.len() {
        if color[start] == 0 {
            if let Some(cycle) = dfs_cycle(start, &adj, &mut color, &mut path) {
                return Some(cycle.into_iter().map(|i| verts[i]).collect());
            }
        }
    }
    None
}

/// Depth-first search step for [`detect_pause_cycle`]; returns the vertex
/// indices of the first back-edge cycle found. Recursion depth is bounded
/// by the number of paused (port, priority) pairs.
fn dfs_cycle(
    v: usize,
    adj: &[Vec<usize>],
    color: &mut [u8],
    path: &mut Vec<usize>,
) -> Option<Vec<usize>> {
    color[v] = 1;
    path.push(v);
    for &w in &adj[v] {
        if color[w] == 1 {
            // Back edge: the cycle is the path suffix starting at `w`.
            let from = path.iter().position(|&x| x == w).unwrap_or(0);
            return Some(path[from..].to_vec());
        }
        if color[w] == 0 {
            if let Some(c) = dfs_cycle(w, adj, color, path) {
                return Some(c);
            }
        }
    }
    path.pop();
    color[v] = 2;
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_check_flags_bad_reference_counts() {
        let mut arena = PacketArena::new();
        let live = arena.alloc(crate::packet::Packet::pfc(0, 1, 0, true));
        let freed = arena.alloc(crate::packet::Packet::pfc(0, 1, 0, true));
        arena.release(freed);
        let mut a = Audit::new(AuditConfig::default());

        // Consistent view: live slot referenced once, free slot not at all.
        let mut refs = vec![0u32; arena.capacity()];
        refs[live.index()] = 1;
        a.check_arena(Time::ZERO, &arena, &refs);
        assert_eq!(a.total_violations, 0);

        // A duplicated live id and a dangling reference to a freed slot
        // must each produce an ArenaAccounting violation.
        refs[live.index()] = 2;
        refs[freed.index()] = 1;
        a.check_arena(Time::ZERO, &arena, &refs);
        let r = a.into_report();
        assert_eq!(r.total_violations, 2);
        assert!(r
            .violations
            .iter()
            .all(|v| v.kind == ViolationKind::ArenaAccounting));
    }

    #[test]
    fn report_caps_storage_but_counts_all() {
        let mut a = Audit::new(AuditConfig {
            max_violations: 2,
            ..Default::default()
        });
        for i in 0..5 {
            a.flow_violation(
                ViolationKind::TransportSanity,
                Time::from_us(i),
                i as u32,
                "x".into(),
            );
        }
        let r = a.into_report();
        assert_eq!(r.total_violations, 5);
        assert_eq!(r.violations.len(), 2);
        assert!(!r.is_clean());
    }

    #[test]
    fn ring_keeps_most_recent_events() {
        let mut a = Audit::new(AuditConfig {
            ring_capacity: 3,
            ..Default::default()
        });
        for i in 0..10u32 {
            a.on_event(Time::from_us(i as u64), "arrive", i);
        }
        let r = a.into_report();
        assert_eq!(r.events_audited, 10);
        let ids: Vec<u32> = r.recent_events.iter().map(|e| e.id).collect();
        assert_eq!(ids, vec![7, 8, 9]);
    }

    #[test]
    fn pfc_transition_legality() {
        let mut a = Audit::new(AuditConfig::default());
        let t = Time::from_us(1);
        a.on_pfc_frame(t, 0, 1, 0, true); // pause: legal
        a.on_pfc_frame(t, 0, 1, 0, true); // pause again: illegal
        a.on_pfc_frame(t, 0, 1, 0, false); // resume: legal
        a.on_pfc_frame(t, 0, 1, 0, false); // resume again: illegal
        let r = a.into_report();
        assert_eq!(r.total_violations, 2);
        assert!(r
            .violations
            .iter()
            .all(|v| v.kind == ViolationKind::PfcIllegalTransition));
    }

    #[test]
    fn conservation_detects_over_delivery() {
        let mut a = Audit::new(AuditConfig::default());
        let t = Time::from_us(1);
        a.on_data_injected(0, 1048);
        a.on_data_delivered(t, 0, 1048);
        assert_eq!(a.total_violations, 0);
        a.on_data_delivered(t, 0, 1048); // one more than injected
        assert_eq!(a.total_violations, 1);
        let r = a.into_report();
        assert_eq!(r.violations[0].kind, ViolationKind::PacketConservation);
    }

    #[test]
    fn dump_is_readable() {
        let mut a = Audit::new(AuditConfig::default());
        a.on_event(Time::from_us(1), "arrive", 3);
        a.flow_violation(
            ViolationKind::TransportSanity,
            Time::from_us(2),
            7,
            "cwnd below floor".into(),
        );
        let dump = a.into_report().dump();
        assert!(dump.contains("TransportSanity"));
        assert!(dump.contains("flow=7"));
        assert!(dump.contains("arrive"));
    }

    #[test]
    fn panic_on_violation_fires() {
        let result = std::panic::catch_unwind(|| {
            let mut a = Audit::new(AuditConfig {
                panic_on_violation: true,
                ..Default::default()
            });
            a.queue_violation(Time::ZERO, "boom".into());
        });
        assert!(result.is_err());
    }

    // ---- Buggify coverage: every injected switch/fluid fault must be ----
    // ---- caught by the audit check that owns its invariant.          ----

    use crate::config::{Buggify, SwitchConfig};
    use crate::fluid::{BackgroundLoad, FluidFlowSpec, FluidState};
    use crate::node::{Admission, EgressPort};
    use crate::packet::Packet;
    use simcore::{Rate, SimRng};

    fn buggy_switch(buggify: Option<Buggify>, buffer: u64) -> Switch {
        let cfg = SwitchConfig {
            buffer_bytes: buffer,
            pfc_lossless_prios: 0,
            buggify,
            ..Default::default()
        };
        let ports = (0..2)
            .map(|_| EgressPort::new(1, 0, Rate::from_gbps(100), Time::from_us(1), 3))
            .collect();
        Switch::new(cfg, ports, 2)
    }

    #[test]
    fn dequeue_leak_buggify_caught_by_buffer_accounting() {
        let mut arena = PacketArena::new();
        let mut s = buggy_switch(Some(Buggify::DequeueLeak), 1_000_000);
        let mut pauses = Vec::new();
        let id = arena.alloc(Packet::data(0, 0, 1, 0, 1000, 0, Time::ZERO));
        assert_eq!(
            s.admit(0, 1, id, 0, &mut arena, &mut pauses),
            Admission::Queued
        );
        let mut a = Audit::new(AuditConfig::default());
        a.check_switch(Time::ZERO, 0, &s, &arena);
        assert_eq!(a.total_violations, 0, "consistent before the departure");
        // Departure under the buggify: the queue pops, but shared-buffer
        // and ingress accounting are never released.
        let popped = s.ports[0].dequeue(&arena).unwrap();
        let mut resumes = Vec::new();
        s.on_dequeue(arena.get(popped), 0, &mut resumes);
        arena.release(popped);
        a.check_switch(Time::from_us(1), 0, &s, &arena);
        let r = a.into_report();
        assert!(r.total_violations > 0, "leak must be detected");
        assert!(r
            .violations
            .iter()
            .all(|v| v.kind == ViolationKind::BufferAccounting));
    }

    /// Drive admissions and run the boundary Xoff check after each one,
    /// exactly as the event loop does; returns the violations found.
    fn xoff_scan(buggify: Option<Buggify>) -> AuditReport {
        let mut arena = PacketArena::new();
        // Small buffer so the pause threshold floors at 3000 B quickly.
        let mut s = buggy_switch(buggify, 20_000);
        let mut pauses = Vec::new();
        let mut a = Audit::new(AuditConfig::default());
        for i in 0..6u64 {
            let id = arena.alloc(Packet::data(0, 0, 1, 0, 1000, i * 1000, Time::ZERO));
            s.admit(0, 1, id, 0, &mut arena, &mut pauses);
            for &(ip, q) in &pauses {
                a.on_pfc_frame(Time::from_us(i), 0, ip, q, true);
            }
            pauses.clear();
            let focus = Focus {
                node: 0,
                in_port: 1,
                queue: 0,
                fluid_occ: 0,
            };
            a.check_xoff(Time::from_us(i), &focus, &s);
        }
        a.into_report()
    }

    #[test]
    fn pfc_off_by_one_buggify_caught_by_xoff_check() {
        let r = xoff_scan(Some(Buggify::PfcPauseOffByOne));
        assert!(r.total_violations > 0, "late pause must be flagged");
        assert_eq!(r.violations[0].kind, ViolationKind::PfcXoffMissed);
        // Soundness: the identical sequence on a correct switch is clean.
        assert!(xoff_scan(None).is_clean());
    }

    #[test]
    fn ecn_below_kmin_buggify_caught_by_ecn_bounds() {
        let s = buggy_switch(Some(Buggify::EcnMarkBelowKmin), 1_000_000);
        let mut rng = SimRng::new(3);
        // Empty queue, far below kmin — the buggify marks anyway.
        let marked = s.ecn_mark(0, 0, 0, 0, &mut rng);
        assert!(marked, "buggify must mark unconditionally");
        let mut a = Audit::new(AuditConfig::default());
        let info = SwitchArrive {
            node: 0,
            in_port: 1,
            egress: 0,
            queue: 0,
            wire: 1048,
            is_data: true,
            dropped: false,
            ecn: Some((0, 0, marked)),
            fluid_occ: 0,
        };
        a.note_switch_arrive(Time::ZERO, &info, &s);
        let r = a.into_report();
        assert_eq!(r.total_violations, 1);
        assert_eq!(r.violations[0].kind, ViolationKind::EcnBounds);
    }

    #[test]
    fn fluid_drain_leak_buggify_caught_by_fluid_conservation() {
        let bg = BackgroundLoad {
            ports: vec![(5, 0)],
            flows: vec![FluidFlowSpec {
                start: Time::ZERO,
                bytes: 1_000_000,
                port: 0,
            }],
            access_bps: 0,
        };
        let mut f = FluidState::new(&bg, |_, _| 100_000_000_000, true);
        let mut now = Time::ZERO;
        f.on_epoch(now);
        while let Some(next) = f.plan(now) {
            now = next;
            f.on_epoch(now);
        }
        let mut a = Audit::new(AuditConfig::default());
        a.check_fluid(now, &f.audit_view());
        let r = a.into_report();
        assert!(r.total_violations >= 1, "drain leak must be detected");
        assert!(r
            .violations
            .iter()
            .all(|v| v.kind == ViolationKind::FluidConservation));
    }

    #[test]
    fn fault_drops_join_the_counter_identity() {
        let mut a = Audit::new(AuditConfig::default());
        a.on_link_drop(1048);
        let mut c = SimCounters {
            fault_link_drops: 1,
            ..SimCounters::default()
        };
        a.check_counters(Time::ZERO, &c);
        assert_eq!(a.total_violations, 0, "audited fault drop balances");
        // An unaccounted fault drop (the FaultDropUnaccounted buggify path)
        // breaks the identity and must surface as a counter mismatch.
        c.fault_link_drops = 2;
        a.check_counters(Time::ZERO, &c);
        assert_eq!(a.total_violations, 1);
        let r = a.into_report();
        assert_eq!(r.violations[0].kind, ViolationKind::CounterMismatch);
    }

    #[test]
    fn deadlock_latch_reports_once_per_episode() {
        let mut a = Audit::new(AuditConfig::default());
        let cycle = [(0 as NodeId, 0u16, 0u8), (1, 1, 0)];
        a.check_deadlock(Time::from_us(1), Some(&cycle));
        a.check_deadlock(Time::from_us(2), Some(&cycle));
        assert_eq!(a.total_violations, 1, "latched: one report per episode");
        a.check_deadlock(Time::from_us(3), None); // cycle cleared: re-arm
        a.check_deadlock(Time::from_us(4), Some(&cycle));
        assert_eq!(a.total_violations, 2);
        let r = a.into_report();
        assert!(r
            .violations
            .iter()
            .all(|v| v.kind == ViolationKind::PfcDeadlock));
        assert!(r.violations[0].detail.contains("(0,0,q0)"));
    }
}
