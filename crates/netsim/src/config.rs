//! Simulation-wide and per-switch configuration.

use simcore::{Rate, SchedKind, Time};

use crate::noise::NoiseModel;

/// Which physical priority ACKs travel in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AckPriority {
    /// ACKs use a dedicated highest control queue (the paper's default and
    /// the common practice in production data centers, §4.4).
    Control,
    /// ACKs share the data packet's priority queue ("PrioPlus*", Fig 16).
    SameAsData,
}

/// Deliberate switch fault injection ("buggify"), used to prove the audit
/// layer catches real accounting bugs. Always `None` in real runs; the
/// audit self-tests set one variant and assert a violation is reported.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Buggify {
    /// `on_dequeue` forgets to release shared-buffer/ingress accounting,
    /// leaking occupancy on every departure.
    DequeueLeak,
    /// The PFC pause check compares the threshold against the counter
    /// *before* the just-admitted packet (the classic off-by-one), so Xoff
    /// fires one packet late and headroom can be overdrawn.
    PfcPauseOffByOne,
    /// `ecn_mark` marks every data packet, even below `kmin`.
    EcnMarkBelowKmin,
    /// The fluid background solver under-counts drained mass by one byte
    /// per settled segment, breaking the `injected == drained + backlog`
    /// conservation identity the audit checks.
    FluidDrainLeak,
    /// Data packets dropped on a downed link are counted in
    /// [`crate::record::SimCounters::fault_link_drops`] but never reported
    /// to the audit's conservation tallies, breaking the
    /// `drops + fault_link_drops == audited drops` identity.
    FaultDropUnaccounted,
    /// Flow completion skips releasing the flow's live-state slab slot
    /// (transport + reassembly state), leaking per-flow memory that the
    /// hyperscale scenarios depend on reclaiming. Caught by the audit deep
    /// scan's flow-state sweep
    /// ([`crate::audit::ViolationKind::FlowStateLeak`]).
    FlowReclaimLeak,
}

/// Shared-buffer and scheduling configuration of a switch.
#[derive(Clone, Debug)]
pub struct SwitchConfig {
    /// Total shared buffer in bytes.
    pub buffer_bytes: u64,
    /// Dynamic-Threshold alpha for egress admission (lossy drops).
    pub dt_alpha: f64,
    /// Dynamic-Threshold alpha for the PFC ingress pause threshold. Real
    /// deployments use a much smaller ingress alpha than the egress DT so
    /// that pauses fire before the shared pool exhausts.
    pub pfc_alpha: f64,
    /// Enable PFC (lossless operation). When `false`, over-threshold packets
    /// are dropped (lossy mode, Fig 17).
    pub pfc_enabled: bool,
    /// Number of lossless priorities for which PFC headroom is reserved.
    /// Headroom is deducted from the usable shared buffer per port per
    /// priority — this is the buffer cost that limits physical priority
    /// counts (§2.2, Fig 11a).
    pub pfc_lossless_prios: u8,
    /// Headroom reserved per (port, lossless priority), in bytes. Sized to
    /// absorb in-flight data after a pause: 2× link BDP plus one MTU.
    pub pfc_headroom_bytes: u64,
    /// PFC resume hysteresis: resume when ingress usage falls below
    /// `pause_threshold - pfc_resume_offset_bytes`.
    pub pfc_resume_offset_bytes: u64,
    /// ECN marking: minimum threshold (bytes of the egress queue).
    pub ecn_kmin: u64,
    /// ECN marking: maximum threshold.
    pub ecn_kmax: u64,
    /// ECN marking probability at `kmax`.
    pub ecn_pmax: f64,
    /// Priority-scaled ECN (the Appendix B extension): the marking
    /// thresholds for a data packet become `kmin*(dscp+1)` /
    /// `kmax*(dscp+1)`, so lower-DSCP (lower virtual priority) flows see
    /// marks first and yield — virtual priority for ECN-based CCs, at the
    /// cost of a switch change (hence not "readily deployable", O3).
    pub ecn_prio_scaled: bool,
    /// Append INT telemetry to data packets (HPCC mode).
    pub int_enabled: bool,
    /// Extra non-congestive delay applied per data packet at egress,
    /// uniformly distributed (Fig 13); `None` disables it.
    pub nc_delay: Option<NoiseModel>,
    /// Fault injection for audit self-tests; `None` in every real run.
    pub buggify: Option<Buggify>,
}

impl Default for SwitchConfig {
    fn default() -> Self {
        SwitchConfig {
            buffer_bytes: 32 * 1024 * 1024,
            dt_alpha: 1.0,
            pfc_alpha: 0.125,
            pfc_enabled: true,
            pfc_lossless_prios: 1,
            pfc_headroom_bytes: 100_000,
            pfc_resume_offset_bytes: 20_000,
            // DCQCN-style defaults for 100G (HPCC paper parameters).
            ecn_kmin: 100_000,
            ecn_kmax: 400_000,
            ecn_pmax: 0.2,
            ecn_prio_scaled: false,
            int_enabled: false,
            nc_delay: None,
            buggify: None,
        }
    }
}

impl SwitchConfig {
    /// Usable shared buffer after PFC headroom reservation on `ports` ports.
    pub fn usable_buffer(&self, ports: usize) -> u64 {
        if !self.pfc_enabled {
            return self.buffer_bytes;
        }
        let headroom = self.pfc_headroom_bytes * self.pfc_lossless_prios as u64 * ports as u64;
        self.buffer_bytes.saturating_sub(headroom)
    }
}

/// Global simulation configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Number of physical data priorities (queues per port, excluding the
    /// control queue).
    pub num_prios: u8,
    /// Payload bytes per full data segment (the paper uses 1 KB MTU with
    /// per-packet ACKs).
    pub mtu: u32,
    /// ACK priority policy.
    pub ack_prio: AckPriority,
    /// Delay-measurement noise model applied at the sender to every RTT
    /// sample.
    pub meas_noise: NoiseModel,
    /// Simulation end time; events after this are not processed.
    pub end_time: Time,
    /// Master seed.
    pub seed: u64,
    /// Record per-flow delay/cwnd traces and throughput meters (costly; used
    /// by the micro-benchmark figures).
    pub trace_flows: bool,
    /// Throughput meter bucket for traced flows.
    pub trace_bucket: Time,
    /// Event-scheduler backend. Pure performance knob: every backend pops
    /// in the identical `(time, seq)` order, so results are bit-identical
    /// across choices (pinned by the golden-trace suite). Defaults to the
    /// `PRIOPLUS_SCHED` environment variable (calendar queue when unset).
    pub sched: SchedKind,
    /// Fluid background traffic (hybrid packet/fluid model). `None` — the
    /// default — is the pure packet simulator; the zero-background e2e
    /// suite pins that an empty background load is bit-identical to it.
    pub background: Option<crate::fluid::BackgroundLoad>,
    /// Deterministic fault schedule (link flaps, degradation epochs, PFC
    /// pause storms). `None` — the default — runs fault-free and keeps
    /// every fault hook to one branch; an installed schedule also arms the
    /// PFC deadlock monitor in the audit deep scan.
    pub faults: Option<crate::faults::FaultSchedule>,
    /// Streaming-statistics mode (hyperscale runs): fold each completed
    /// flow's FCT/slowdown into integer-bucketed quantile sketches
    /// ([`crate::record::StreamingStats`]) at completion and return *empty*
    /// per-flow records in [`crate::record::SimResult`], so result assembly
    /// stays O(1) per flow instead of cloning an O(flows) record vector.
    pub streaming_stats: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            num_prios: 1,
            mtu: 1000,
            ack_prio: AckPriority::Control,
            meas_noise: NoiseModel::None,
            end_time: Time::from_ms(100),
            seed: 1,
            trace_flows: false,
            trace_bucket: Time::from_us(20),
            sched: SchedKind::from_env(),
            background: None,
            faults: None,
            streaming_stats: false,
        }
    }
}

/// Properties of one directional link attachment (rate + propagation).
#[derive(Clone, Copy, Debug)]
pub struct LinkSpec {
    /// Line rate.
    pub rate: Rate,
    /// One-way propagation delay.
    pub prop: Time,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headroom_reduces_usable_buffer() {
        let cfg = SwitchConfig {
            buffer_bytes: 1_000_000,
            pfc_headroom_bytes: 100_000,
            pfc_lossless_prios: 2,
            ..Default::default()
        };
        assert_eq!(cfg.usable_buffer(4), 1_000_000 - 100_000 * 2 * 4);
    }

    #[test]
    fn lossy_mode_ignores_headroom() {
        let cfg = SwitchConfig {
            buffer_bytes: 1_000_000,
            pfc_enabled: false,
            pfc_lossless_prios: 8,
            ..Default::default()
        };
        assert_eq!(cfg.usable_buffer(64), 1_000_000);
    }

    #[test]
    fn headroom_saturates_at_zero() {
        let cfg = SwitchConfig {
            buffer_bytes: 100,
            pfc_headroom_bytes: 100_000,
            pfc_lossless_prios: 8,
            ..Default::default()
        };
        assert_eq!(cfg.usable_buffer(64), 0);
    }
}
