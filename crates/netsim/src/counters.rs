//! Aggregate run counters, split from [`crate::record`] so the audit layer
//! (which cross-checks them against independent tallies) does not import
//! the whole results module while the results embed the audit report —
//! that pair of imports was a module cycle, and the `layering` lint
//! (simlint R9) rejects cycles in sim-state crates.

/// Aggregate counters of a run.
#[derive(Clone, Debug, Default)]
pub struct SimCounters {
    /// Total events processed.
    pub events: u64,
    /// Data packets delivered end-to-end.
    pub data_delivered: u64,
    /// PFC pause frames emitted.
    pub pfc_pauses: u64,
    /// PFC resume frames emitted.
    pub pfc_resumes: u64,
    /// Packets dropped (lossy mode).
    pub drops: u64,
    /// Data packets ECN-marked.
    pub ecn_marks: u64,
    /// Probe packets sent.
    pub probes: u64,
    /// Maximum shared-buffer occupancy observed across switches.
    pub max_buffer_used: u64,
    /// Packet-arena handle allocations over the whole run (slab reuse
    /// included), i.e. total packets that existed.
    pub arena_allocs: u64,
    /// Fresh slab slots the arena ever grew to (== peak live packets; every
    /// other allocation reused a freed slot without touching the heap).
    pub arena_slab_slots: u64,
    /// Peak number of simultaneously live packets.
    pub arena_peak_live: u64,
    /// `IntPath` boxes actually heap-allocated (pool misses). Bounded by the
    /// peak number of in-flight INT-carrying packets, not by packet count.
    pub arena_int_allocs: u64,
    /// `IntPath` boxes served from / returned to the recycle pool.
    pub arena_int_recycled: u64,
    /// Fluid background flows that started injecting (hybrid model).
    pub fluid_flows_started: u64,
    /// Fluid background flows fully drained through their port.
    pub fluid_flows_completed: u64,
    /// Total fluid background bytes injected.
    pub fluid_bytes_injected: u64,
    /// Fluid rate-change epochs processed (the scheduler events the whole
    /// background load cost, in place of per-packet events).
    pub fluid_epochs: u64,
    /// Fault-schedule transitions applied ([`crate::faults::FaultSchedule`]).
    pub fault_events: u64,
    /// Data packets dropped because their link was down at arrival.
    pub fault_link_drops: u64,
    /// Control packets (ACKs, probes, probe echoes) dropped because their
    /// link was down at arrival. PFC frames are never dropped (out-of-band
    /// reliable control plane).
    pub fault_ctrl_drops: u64,
    /// Flows registered over the whole run (open-loop injections included).
    /// In streaming mode this is the only total-flow count — `records` is
    /// empty.
    pub flows_total: u64,
    /// Peak number of flows with live state (transport + reassembly)
    /// resident in the flow slab at once. The hyperscale memory budget is
    /// proportional to this, not to the total flow count.
    pub flow_live_peak: u64,
    /// Flow-slab slots ever allocated (== peak live flows; slot reuse means
    /// completed flows' slots are recycled, not leaked).
    pub flow_slab_slots: u64,
    /// Flows whose live state was reclaimed on completion.
    pub flows_reclaimed: u64,
    /// Peak bytes of live flow state (slab slots + transport boxes; the
    /// reassembly map's heap nodes are not counted — empty at completion).
    pub flow_live_bytes_peak: u64,
    /// Scheduler interactions (same-timestamp batch pops). `events /
    /// sched_pops` is the average number of events dispatched per scheduler
    /// interaction — the batching win batch dispatch is after.
    pub sched_pops: u64,
}
