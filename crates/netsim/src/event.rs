//! The simulation event vocabulary, split from the event loop
//! ([`crate::sim`]) so that modules which only *name* events — transports
//! via [`crate::transport_api`], a future PDES partition layer — depend on
//! this leaf module instead of the whole simulator. The `layering` lint
//! (simlint R9) keeps it that way: `event` must never grow an import back
//! into `sim`.

use crate::packet::{FlowId, NodeId, PacketId};

/// Simulation events.
///
/// `Copy` is deliberate: every variant is a few machine words of plain ids
/// (see the `event_stays_slim` size pin in `crate::sim`'s tests), which is
/// what lets [`crate::sim::Sim::snapshot`] clone the whole scheduler queue
/// without touching packet or flow state.
#[derive(Clone, Copy, Debug)]
pub enum Event {
    /// A packet arrives at `node` through ingress `in_port` (propagation
    /// finished).
    Arrive {
        /// Receiving node.
        node: NodeId,
        /// Ingress port index at the receiving node.
        in_port: u16,
        /// Handle of the packet in the simulator's
        /// [`crate::packet::PacketArena`]. Carrying the 4-byte id (instead
        /// of the packet) keeps `Event` at a few machine words, so
        /// scheduler sift/percolate stays cheap — see the
        /// `event_stays_slim` size pin in `crate::sim`'s tests.
        pkt: PacketId,
    },
    /// `node`'s egress `port` finished serializing its current packet.
    PortFree {
        /// Node owning the port.
        node: NodeId,
        /// Port index.
        port: u16,
    },
    /// A flow begins.
    FlowStart {
        /// The flow.
        flow: FlowId,
    },
    /// A transport timer fires.
    FlowTimer {
        /// The flow whose transport scheduled the timer.
        flow: FlowId,
        /// Opaque token chosen by the transport.
        token: u64,
    },
    /// Wake a host NIC to re-poll its transports (pacing).
    HostPoke {
        /// The host.
        node: NodeId,
    },
    /// Periodic monitor sample.
    Sample {
        /// Monitor index.
        monitor: u32,
    },
    /// A fluid background rate-change epoch (hybrid model): the single
    /// pending epoch the fluid solver keeps in the queue, rescheduled via
    /// cancellable scheduling whenever a coupling hook changes the
    /// piecewise-constant rates. Never scheduled when
    /// [`crate::config::SimConfig::background`] is `None`.
    FluidEpoch,
    /// Apply fault-schedule transition `idx`
    /// ([`crate::faults::FaultSchedule`]). Scheduled up-front at run start
    /// — through the same scheduler backend as every other event — so
    /// fault runs stay bit-identical across backends. Never scheduled when
    /// [`crate::config::SimConfig::faults`] is `None`.
    Fault {
        /// Index into the installed schedule's event list.
        idx: u32,
    },
    /// Call the installed [`crate::sim::ArrivalSource`] to register the
    /// next chunk of open-loop flows. At most one is pending at a time;
    /// never scheduled when no source is installed.
    Inject,
    /// End of simulation.
    End,
}

impl Event {
    /// Fold this event into a state digest as a fixed sequence of `u64`
    /// words: a variant discriminant followed by every payload field. Used
    /// by [`crate::sim::Sim::state_digest`] to fingerprint pending queue
    /// entries; the match is exhaustive on purpose (simlint R8) so a new
    /// variant cannot silently escape the snapshot-completeness fleet.
    pub fn fold_digest(&self, mut fold: impl FnMut(u64)) {
        match *self {
            Event::Arrive { node, in_port, pkt } => {
                fold(1);
                fold(node as u64);
                fold(in_port as u64);
                fold(pkt.index() as u64);
            }
            Event::PortFree { node, port } => {
                fold(2);
                fold(node as u64);
                fold(port as u64);
            }
            Event::FlowStart { flow } => {
                fold(3);
                fold(flow as u64);
            }
            Event::FlowTimer { flow, token } => {
                fold(4);
                fold(flow as u64);
                fold(token);
            }
            Event::HostPoke { node } => {
                fold(5);
                fold(node as u64);
            }
            Event::Sample { monitor } => {
                fold(6);
                fold(monitor as u64);
            }
            Event::FluidEpoch => fold(7),
            Event::Fault { idx } => {
                fold(8);
                fold(idx as u64);
            }
            Event::Inject => fold(9),
            Event::End => fold(10),
        }
    }
}
