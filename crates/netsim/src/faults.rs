//! Deterministic fault-regime subsystem: link flaps, degradation epochs,
//! PFC pause storms, and the CBD-style PFC deadlock monitor.
//!
//! A [`FaultSchedule`] is a plain list of timestamped [`FaultKind`]
//! transitions installed via [`crate::SimConfig::faults`]. The simulator
//! schedules every entry as a first-class `Event::Fault` through the same
//! [`simcore::Scheduler`] backend as all other events, so fault runs stay
//! bit-identical across the binary/quad/calendar backends and across
//! repeated runs — fault times are data, never wall clock.
//!
//! Three regimes are supported, always applied to **both directions** of
//! the named link (`node`, `port` identifies one attachment; the peer
//! attachment is resolved from the topology):
//!
//! - **link flaps** ([`FaultKind::LinkDown`] / [`FaultKind::LinkUp`]): a
//!   down link transmits nothing (switch dequeue and host NIC pull both
//!   stall, building ordinary backpressure), and any non-PFC packet whose
//!   propagation ends while the link is down is dropped with accounted
//!   loss (`SimCounters::fault_link_drops` / `fault_ctrl_drops`, mirrored
//!   in the audit's conservation tallies). PFC control frames are exempt —
//!   the control plane is modeled as out-of-band and reliable — so pause
//!   state never desynchronizes across a flap;
//! - **degradation epochs** ([`FaultKind::DegradeStart`] /
//!   [`FaultKind::DegradeEnd`]): the link serializes at
//!   `rate × rate_factor` and adds `extra_prop` propagation delay for the
//!   duration of the epoch. Applied at dequeue time, so packets already in
//!   flight are unaffected. Unsupported on fluid-loaded ports (the fluid
//!   solver captures drain rates at construction);
//! - **PFC pause storms** ([`FaultKind::PauseStart`] /
//!   [`FaultKind::PauseEnd`]): the egress pause bit for (port, priority)
//!   is pinned on, and genuine PFC frames for that (port, priority) are
//!   swallowed while the storm lasts. On release the bit is restored from
//!   the pause authority — the peer switch's ingress pause state (hosts
//!   never emit pauses) — so a resume lost "inside" the storm cannot wedge
//!   the port.
//!
//! The deadlock monitor ([`crate::audit::detect_pause_cycle`]) runs with the audit deep
//! scan whenever a fault schedule is installed. It builds the classic
//! circular-buffer-dependency wait-for graph: vertex `(A, p, q)` for every
//! paused switch egress, and an edge to `(B, p2, q)` when `B` is the peer
//! across link `(A, p)` and `B`'s paused egress queue `(p2, q)` holds at
//! least one packet that entered `B` through the `(A, p)` link — i.e. the
//! resume `A` waits for is itself blocked behind a paused queue. A cycle
//! is a PFC deadlock and is flagged as a structured
//! [`crate::audit::ViolationKind::PfcDeadlock`] violation (latched: one
//! report per deadlock episode, re-armed when the cycle clears).

use std::collections::BTreeMap;

use simcore::{SimRng, Time};

use crate::packet::NodeId;

/// One fault transition. All variants name a link by one attachment
/// (`node`, `port`); the simulator applies the transition to both
/// directions.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// The link goes down: nothing serializes onto it, and non-PFC packets
    /// arriving over it are dropped (accounted loss).
    LinkDown {
        /// One attachment of the link.
        node: NodeId,
        /// Port index at `node`.
        port: u16,
    },
    /// The link comes back up; both endpoints are kicked to resume
    /// transmission.
    LinkUp {
        /// One attachment of the link.
        node: NodeId,
        /// Port index at `node`.
        port: u16,
    },
    /// Begin a degradation epoch: the link runs at `rate × rate_factor`
    /// with `extra_prop` added propagation delay.
    DegradeStart {
        /// One attachment of the link.
        node: NodeId,
        /// Port index at `node`.
        port: u16,
        /// Multiplier on the line rate, in `(0, 1]`.
        rate_factor: f64,
        /// Additional one-way propagation delay.
        extra_prop: Time,
    },
    /// End the degradation epoch; the link returns to nominal rate/delay.
    DegradeEnd {
        /// One attachment of the link.
        node: NodeId,
        /// Port index at `node`.
        port: u16,
    },
    /// Begin a pause storm: pin PFC pause on `(node, port, prio)`'s egress
    /// and swallow genuine PFC frames for it until [`FaultKind::PauseEnd`].
    PauseStart {
        /// Node whose egress is force-paused.
        node: NodeId,
        /// Port index at `node`.
        port: u16,
        /// Data priority (queue index) pinned paused.
        prio: u8,
    },
    /// End the pause storm; the pause bit is restored from the peer's
    /// genuine ingress pause state.
    PauseEnd {
        /// Node whose egress was force-paused.
        node: NodeId,
        /// Port index at `node`.
        port: u16,
        /// Data priority (queue index) released.
        prio: u8,
    },
}

impl FaultKind {
    /// The link attachment this fault targets.
    pub fn link(&self) -> (NodeId, u16) {
        match *self {
            FaultKind::LinkDown { node, port }
            | FaultKind::LinkUp { node, port }
            | FaultKind::DegradeStart { node, port, .. }
            | FaultKind::DegradeEnd { node, port }
            | FaultKind::PauseStart { node, port, .. }
            | FaultKind::PauseEnd { node, port, .. } => (node, port),
        }
    }
}

/// One timestamped fault transition.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultEvent {
    /// Simulated time the transition applies.
    pub at: Time,
    /// The transition.
    pub kind: FaultKind,
}

/// A deterministic fault schedule: the full list of transitions for one
/// run, fixed before the simulation starts. Entries need not be sorted —
/// the event queue orders them by `(time, insertion seq)` like every other
/// event — but same-time entries apply in list order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultSchedule {
    /// The transitions.
    pub events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// New empty schedule.
    pub fn new() -> Self {
        FaultSchedule::default()
    }

    /// True when the schedule has no transitions.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of transitions.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Append one transition.
    pub fn push(&mut self, at: Time, kind: FaultKind) -> &mut Self {
        self.events.push(FaultEvent { at, kind });
        self
    }

    /// One link flap: down at `down_at`, back up at `up_at`.
    pub fn link_flap(&mut self, node: NodeId, port: u16, down_at: Time, up_at: Time) -> &mut Self {
        assert!(down_at < up_at, "flap must come back up after going down");
        self.push(down_at, FaultKind::LinkDown { node, port });
        self.push(up_at, FaultKind::LinkUp { node, port });
        self
    }

    /// One degradation epoch over `[from, to)`.
    pub fn degrade(
        &mut self,
        node: NodeId,
        port: u16,
        from: Time,
        to: Time,
        rate_factor: f64,
        extra_prop: Time,
    ) -> &mut Self {
        assert!(from < to, "degradation epoch must have positive length");
        assert!(
            rate_factor > 0.0 && rate_factor <= 1.0,
            "rate_factor must be in (0, 1]"
        );
        self.push(
            from,
            FaultKind::DegradeStart {
                node,
                port,
                rate_factor,
                extra_prop,
            },
        );
        self.push(to, FaultKind::DegradeEnd { node, port });
        self
    }

    /// One pause storm on `(node, port, prio)` over `[from, to)`.
    pub fn pause_storm(
        &mut self,
        node: NodeId,
        port: u16,
        prio: u8,
        from: Time,
        to: Time,
    ) -> &mut Self {
        assert!(from < to, "pause storm must have positive length");
        self.push(from, FaultKind::PauseStart { node, port, prio });
        self.push(to, FaultKind::PauseEnd { node, port, prio });
        self
    }

    /// Seed-driven random link flaps: each listed link alternates between
    /// exponentially distributed up-holds (mean `mean_up`) and down-holds
    /// (mean `mean_down`) until `horizon`. Each link draws from an
    /// independent split stream of `seed`, so adding links never perturbs
    /// the others' flap times. Every `LinkDown` gets its matching `LinkUp`
    /// (possibly past `horizon`; the run ends first and never applies it).
    pub fn random_flaps(
        links: &[(NodeId, u16)],
        seed: u64,
        horizon: Time,
        mean_up: Time,
        mean_down: Time,
    ) -> FaultSchedule {
        let mut sched = FaultSchedule::new();
        for (i, &(node, port)) in links.iter().enumerate() {
            let mut rng = SimRng::new(seed).split(i as u64);
            let mut t = Time::ZERO;
            loop {
                let up_hold = Time::from_ps_f64(rng.exponential(mean_up.as_ps() as f64));
                t += up_hold.max(Time::from_ps(1));
                if t >= horizon {
                    break;
                }
                let down_hold = Time::from_ps_f64(rng.exponential(mean_down.as_ps() as f64));
                let up_at = t + down_hold.max(Time::from_ps(1));
                sched.link_flap(node, port, t, up_at);
                t = up_at;
            }
        }
        // Global time order keeps same-time application deterministic and
        // independent of the link list's internal interleaving.
        sched.events.sort_by_key(|e| e.at);
        sched
    }
}

/// Live per-port fault state, keyed by `(node, port)` attachment.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct PortFault {
    /// The link is down (set on both attachments).
    pub(crate) down: bool,
    /// A degradation epoch is active.
    pub(crate) degraded: bool,
    /// Rate multiplier while degraded.
    pub(crate) rate_factor: f64,
    /// Added propagation delay while degraded.
    pub(crate) extra_prop: Time,
    /// Pause-storm pin mask by priority (bit `q` = storm on queue `q`).
    pub(crate) storm: u32,
}

impl PortFault {
    fn is_clear(&self) -> bool {
        !self.down && !self.degraded && self.storm == 0
    }
}

/// Runtime fault state owned by the simulator: the installed schedule
/// (indexed by `Event::Fault { idx }`) plus the current per-port overlay.
#[derive(Clone, Debug)]
pub(crate) struct FaultRuntime {
    /// The installed schedule.
    pub(crate) schedule: FaultSchedule,
    /// Ports with at least one fault currently applied. `BTreeMap` for
    /// deterministic iteration (simlint `nondeterministic-map`).
    ports: BTreeMap<(NodeId, u16), PortFault>,
}

impl FaultRuntime {
    pub(crate) fn new(schedule: FaultSchedule) -> Self {
        FaultRuntime {
            schedule,
            ports: BTreeMap::new(),
        }
    }

    fn entry(&mut self, node: NodeId, port: u16) -> &mut PortFault {
        self.ports.entry((node, port)).or_default()
    }

    /// Drop the entry again once every fault on it has cleared, keeping
    /// lookups on never-faulted ports a miss in a map of faulted ports only.
    fn prune(&mut self, node: NodeId, port: u16) {
        if self.ports.get(&(node, port)).is_some_and(PortFault::is_clear) {
            self.ports.remove(&(node, port));
        }
    }

    /// True when the link at this attachment is down.
    pub(crate) fn is_down(&self, node: NodeId, port: u16) -> bool {
        self.ports.get(&(node, port)).is_some_and(|f| f.down)
    }

    pub(crate) fn set_down(&mut self, node: NodeId, port: u16, down: bool) {
        self.entry(node, port).down = down;
        self.prune(node, port);
    }

    /// Active degradation overlay: `(rate_factor, extra_prop)`.
    pub(crate) fn degrade_of(&self, node: NodeId, port: u16) -> Option<(f64, Time)> {
        self.ports
            .get(&(node, port))
            .filter(|f| f.degraded)
            .map(|f| (f.rate_factor, f.extra_prop))
    }

    pub(crate) fn set_degrade(
        &mut self,
        node: NodeId,
        port: u16,
        on: bool,
        rate_factor: f64,
        extra_prop: Time,
    ) {
        let f = self.entry(node, port);
        f.degraded = on;
        f.rate_factor = rate_factor;
        f.extra_prop = extra_prop;
        self.prune(node, port);
    }

    /// True when a pause storm pins `(node, port, prio)`.
    pub(crate) fn stormed(&self, node: NodeId, port: u16, prio: u8) -> bool {
        self.ports
            .get(&(node, port))
            .is_some_and(|f| f.storm & (1 << prio) != 0)
    }

    pub(crate) fn set_storm(&mut self, node: NodeId, port: u16, prio: u8, on: bool) {
        let f = self.entry(node, port);
        if on {
            f.storm |= 1 << prio;
        } else {
            f.storm &= !(1 << prio);
        }
        self.prune(node, port);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::detect_pause_cycle;
    use crate::config::SwitchConfig;
    use crate::node::{EgressPort, Switch};
    use crate::packet::{Packet, PacketArena};
    use simcore::Rate;
    use std::collections::BTreeSet;

    #[test]
    fn schedule_builders_emit_paired_transitions() {
        let mut s = FaultSchedule::new();
        s.link_flap(1, 0, Time::from_us(10), Time::from_us(20))
            .degrade(2, 1, Time::from_us(5), Time::from_us(9), 0.5, Time::from_us(1))
            .pause_storm(3, 2, 0, Time::from_us(1), Time::from_us(2));
        assert_eq!(s.len(), 6);
        assert_eq!(s.events[0].kind, FaultKind::LinkDown { node: 1, port: 0 });
        assert_eq!(s.events[1].kind, FaultKind::LinkUp { node: 1, port: 0 });
        assert_eq!(s.events[0].kind.link(), (1, 0));
        assert!(matches!(s.events[2].kind, FaultKind::DegradeStart { .. }));
        assert!(matches!(s.events[5].kind, FaultKind::PauseEnd { prio: 0, .. }));
    }

    #[test]
    fn random_flaps_are_deterministic_and_paired() {
        let links = [(4u32, 0u16), (5, 1)];
        let mk = || {
            FaultSchedule::random_flaps(
                &links,
                42,
                Time::from_ms(10),
                Time::from_ms(1),
                Time::from_us(100),
            )
        };
        let a = mk();
        let b = mk();
        assert_eq!(a, b, "same seed must give the identical schedule");
        assert!(!a.is_empty());
        assert_eq!(a.len() % 2, 0, "every down has its matching up");
        // Per link: transitions alternate down/up in time order.
        for &(node, port) in &links {
            let mut down = false;
            for ev in a.events.iter().filter(|e| e.kind.link() == (node, port)) {
                match ev.kind {
                    FaultKind::LinkDown { .. } => {
                        assert!(!down, "double down on ({node},{port})");
                        down = true;
                    }
                    FaultKind::LinkUp { .. } => {
                        assert!(down, "up without down on ({node},{port})");
                        down = false;
                    }
                    _ => unreachable!(),
                }
            }
        }
        assert!(a.events.windows(2).all(|w| w[0].at <= w[1].at));
        let other = FaultSchedule::random_flaps(
            &links,
            43,
            Time::from_ms(10),
            Time::from_ms(1),
            Time::from_us(100),
        );
        assert_ne!(a, other, "different seeds must differ");
    }

    #[test]
    fn runtime_overlay_set_get_and_prune() {
        let mut rt = FaultRuntime::new(FaultSchedule::new());
        assert!(!rt.is_down(0, 0));
        rt.set_down(0, 0, true);
        rt.set_storm(0, 0, 2, true);
        rt.set_degrade(1, 3, true, 0.25, Time::from_us(7));
        assert!(rt.is_down(0, 0));
        assert!(rt.stormed(0, 0, 2));
        assert!(!rt.stormed(0, 0, 1));
        assert_eq!(rt.degrade_of(1, 3), Some((0.25, Time::from_us(7))));
        assert_eq!(rt.degrade_of(0, 0), None);
        rt.set_down(0, 0, false);
        assert!(!rt.is_down(0, 0));
        assert!(rt.stormed(0, 0, 2), "clearing down must not clear the storm");
        rt.set_storm(0, 0, 2, false);
        rt.set_degrade(1, 3, false, 0.0, Time::ZERO);
        assert!(rt.ports.is_empty(), "cleared ports must be pruned");
    }

    /// Build a switch with `nports` ports at 2 data priorities (+control),
    /// wired so port `p` peers with node `peers[p].0` at its port
    /// `peers[p].1`.
    fn mk_switch(peers: &[(NodeId, u16)]) -> Switch {
        let ports = peers
            .iter()
            .map(|&(peer, peer_port)| {
                EgressPort::new(peer, peer_port, Rate::from_gbps(100), Time::from_us(1), 3)
            })
            .collect();
        Switch::new(SwitchConfig::default(), ports, 2)
    }

    /// Queue one data packet with `cur_in_port` set onto `(port, q)`.
    fn seed_pkt(s: &mut Switch, arena: &mut PacketArena, port: usize, q: u8, in_port: u16) {
        let mut pkt = Packet::data(0, 0, 1, q, 1000, 0, Time::ZERO);
        pkt.cur_in_port = in_port;
        let pid = arena.alloc(pkt);
        s.ports[port].enqueue(pid, arena);
    }

    /// Three switches in a directed ring, each pausing the next hop's
    /// ingress: a circular buffer dependency the monitor must flag.
    #[test]
    fn detector_flags_constructed_cycle() {
        let mut arena = PacketArena::new();
        // Nodes 0,1,2; port 0 = toward next in ring, port 1 = from previous.
        // Link i -> i+1: (i, port 0) peers (i+1, port 1).
        let mut s0 = mk_switch(&[(1, 1), (2, 0)]);
        let mut s1 = mk_switch(&[(2, 1), (0, 0)]);
        let mut s2 = mk_switch(&[(0, 1), (1, 0)]);
        for s in [&mut s0, &mut s1, &mut s2] {
            s.ports[0].set_paused(0, true);
            // Transit traffic: the paused egress holds a packet that came in
            // from the previous ring link (ingress port 1).
            seed_pkt(s, &mut arena, 0, 0, 1);
        }
        let switches = [(0u32, &s0), (1, &s1), (2, &s2)];
        let cycle = detect_pause_cycle(&switches, &arena).expect("cycle must be flagged");
        assert_eq!(cycle.len(), 3);
        let nodes: BTreeSet<NodeId> = cycle.iter().map(|v| v.0).collect();
        assert_eq!(nodes, BTreeSet::from([0, 1, 2]));
        assert!(cycle.iter().all(|&(_, p, q)| p == 0 && q == 0));
    }

    /// Same pause pattern but the queues hold only locally injected traffic
    /// (ingress from a host-facing port, not the ring): the wait-for graph
    /// has no edges, so no deadlock.
    #[test]
    fn detector_silent_without_transit_packets() {
        let mut arena = PacketArena::new();
        let mut s0 = mk_switch(&[(1, 1), (2, 0)]);
        let mut s1 = mk_switch(&[(2, 1), (0, 0)]);
        let mut s2 = mk_switch(&[(0, 1), (1, 0)]);
        for s in [&mut s0, &mut s1, &mut s2] {
            s.ports[0].set_paused(0, true);
            // cur_in_port 7: not the ring ingress, so the dependency chain
            // breaks at every hop.
            seed_pkt(s, &mut arena, 0, 0, 7);
        }
        let switches = [(0u32, &s0), (1, &s1), (2, &s2)];
        assert!(detect_pause_cycle(&switches, &arena).is_none());
    }

    /// An acyclic pause chain (A waits on B waits on C, C unpaused) must
    /// stay silent even with transit packets everywhere.
    #[test]
    fn detector_silent_on_acyclic_chain() {
        let mut arena = PacketArena::new();
        let mut s0 = mk_switch(&[(1, 1), (2, 0)]);
        let mut s1 = mk_switch(&[(2, 1), (0, 0)]);
        let mut s2 = mk_switch(&[(0, 1), (1, 0)]);
        for s in [&mut s0, &mut s1, &mut s2] {
            seed_pkt(s, &mut arena, 0, 0, 1);
        }
        // Break the ring: only 0 and 1 are paused.
        s0.ports[0].set_paused(0, true);
        s1.ports[0].set_paused(0, true);
        let switches = [(0u32, &s0), (1, &s1), (2, &s2)];
        assert!(detect_pause_cycle(&switches, &arena).is_none());
    }

    /// Pauses on different priorities never form an edge: the wait-for
    /// relation is per-priority (PFC is per-class).
    #[test]
    fn detector_is_per_priority() {
        let mut arena = PacketArena::new();
        let mut s0 = mk_switch(&[(1, 1), (2, 0)]);
        let mut s1 = mk_switch(&[(2, 1), (0, 0)]);
        let mut s2 = mk_switch(&[(0, 1), (1, 0)]);
        for (i, s) in [&mut s0, &mut s1, &mut s2].into_iter().enumerate() {
            // Alternate priorities around the ring.
            let q = (i % 2) as u8;
            s.ports[0].set_paused(q as usize, true);
            seed_pkt(s, &mut arena, 0, q, 1);
        }
        let switches = [(0u32, &s0), (1, &s1), (2, &s2)];
        assert!(detect_pause_cycle(&switches, &arena).is_none());
    }
}
