//! Fluid background-traffic subsystem (hybrid packet/fluid model).
//!
//! Loaded scenarios pay millions of scheduler events for background traffic
//! we only need in aggregate: every background packet is enqueued, ECN-
//! inspected, serialized, and delivered individually. This module models
//! designated *background* flows as piecewise-constant fluid rates instead.
//! Each background flow injects mass into a per-switch-port fluid queue at
//! its access rate (open loop, exactly like a [`crate::transport_api`]
//! blast sender); the port drains the fluid queue at a piecewise-constant
//! service rate. State is recomputed only at **rate-change epochs** — flow
//! arrival, injection end, backlog-empty crossing, flow completion —
//! instead of per packet, so a background flow costs O(1) events
//! regardless of size.
//!
//! # Mass units and determinism
//!
//! All mass accounting is integer: one byte is `8 * PS_PER_SEC` *units*
//! (i.e. one unit is a bit-picosecond-per-second), so a rate of `r` bits
//! per second drains exactly `r` units per picosecond and every segment
//! integral `rate × Δt` is exact in `u128`. There is no floating point
//! anywhere in the solver, no RNG draws during the run (arrival traces are
//! materialized up front from a seed), and per-port iteration is in fixed
//! index order — the subsystem is bit-deterministic and is audited against
//! the mass-conservation invariant
//! `injected == drained + backlog` (per port and globally).
//!
//! # Coupling with the packet simulator
//!
//! Fluid → packet: the projected fluid backlog at a port is added to the
//! queue occupancy the switch uses for ECN marking, and subtracted from the
//! free buffer used for dynamic-threshold admission and PFC pause
//! decisions. Foreground timing uses FIFO emulation: every data-class
//! packet admitted to a fluid-loaded port is stamped with the cumulative
//! injected fluid mass at admission ([`FluidState::push_stamp`]); when it
//! reaches the head of the queue it serializes at line rate behind the
//! stamped mass that has neither drained nor been charged to an earlier
//! packet ([`FluidState::pop_stamp`]) — so foreground packets wait behind
//! standing background backlog exactly as they would in the FIFO shared
//! queue, without per-packet fluid events, and congestion control sees the
//! resulting delay.
//!
//! Packet → fluid: the port's capacity is allocated between the two
//! streams by the same FIFO discipline the real shared queue uses. While
//! foreground packets are queued or serializing, the fluid queue drains
//! *only* through the per-packet charges (the wire is busy with packets
//! and the fluid bytes ahead of them); when the port carries no packets,
//! fluid drains at the full line rate. Each stream therefore gets exactly
//! its arrival-order share of the line — demand-proportional fair sharing
//! emerges from the FIFO interleave without any rate estimation, and the
//! combined model never overcommits the port. A PFC pause of the port's
//! data priority halts fluid service entirely until resume.
//!
//! With `SimConfig::background == None` (or an empty trace) the subsystem
//! is inert: no events are scheduled, every coupling hook adds zero, and
//! packet runs are bit-identical to the pure packet simulator — pinned by
//! the zero-background differential e2e suite.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

use simcore::time::PS_PER_SEC;
use simcore::{SimRng, Time};

use crate::packet::{NodeId, HEADER_BYTES};

/// Mass units per byte: one unit is a "bit-picosecond-per-second", so a
/// rate of `r` bits/s drains exactly `r` units per picosecond.
pub const UNITS_PER_BYTE: u128 = 8 * PS_PER_SEC as u128;

/// One background flow in a [`BackgroundLoad`] trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FluidFlowSpec {
    /// Arrival time: the flow starts injecting at this instant.
    pub start: Time,
    /// Flow size in bytes (wire bytes; headers are not modeled separately).
    pub bytes: u64,
    /// Index into [`BackgroundLoad::ports`] of the port this flow loads.
    pub port: u32,
}

/// Specification of open-loop fluid background traffic.
///
/// The spec is a fully materialized arrival trace: sampling happens at
/// construction time (see [`BackgroundLoad::poisson`]) so the running
/// simulation draws no randomness for background traffic at all. The
/// same trace can be replayed through packet-level blast senders to build
/// the reference run a hybrid run is validated against.
#[derive(Clone, Debug, Default)]
pub struct BackgroundLoad {
    /// Switch egress ports carrying fluid background load, as
    /// `(switch node, egress port index)`.
    pub ports: Vec<(NodeId, u16)>,
    /// Arrival trace, grouped implicitly by `FluidFlowSpec::port`. Flows
    /// for each port must be sorted by `start`.
    pub flows: Vec<FluidFlowSpec>,
    /// Access rate (bits/s) at which each flow injects into its port's
    /// fluid queue. `0` means "the port's line rate".
    pub access_bps: u64,
}

impl BackgroundLoad {
    /// Sample a Poisson open-loop arrival trace targeting `load` (0..1)
    /// utilization of `line_bps` on every listed port, with exponentially
    /// distributed flow sizes of mean `mean_bytes`, until `until`.
    ///
    /// Each port gets an independent RNG stream (`seed` split by port
    /// index), so adding a port never perturbs the others' arrivals.
    pub fn poisson(
        ports: Vec<(NodeId, u16)>,
        line_bps: u64,
        load: f64,
        mean_bytes: u64,
        seed: u64,
        until: Time,
    ) -> Self {
        assert!((0.0..1.0).contains(&load), "background load must be in [0,1)");
        assert!(mean_bytes > 0, "background mean flow size must be positive");
        let root = SimRng::new(seed);
        let mut flows = Vec::new();
        for (idx, _) in ports.iter().enumerate() {
            let mut rng = root.split(idx as u64);
            if load == 0.0 {
                continue;
            }
            // flows/sec so that load * line_bps / 8 bytes/sec arrive on
            // average: lambda = line_Bps * load / mean_bytes.
            let lambda = (line_bps as f64 / 8.0) * load / mean_bytes as f64;
            let mean_gap_ps = PS_PER_SEC as f64 / lambda;
            let mut t = Time::ZERO;
            loop {
                let gap = rng.exponential(mean_gap_ps);
                t += Time::from_ps_f64(gap);
                if t >= until {
                    break;
                }
                let bytes = (rng.exponential(mean_bytes as f64) as u64).max(1);
                flows.push(FluidFlowSpec {
                    start: t,
                    bytes,
                    port: idx as u32,
                });
            }
        }
        // Keep the trace sorted by (port, start) so per-port arrival lists
        // build in time order regardless of interleaving above.
        flows.sort_by_key(|f| (f.port, f.start));
        BackgroundLoad {
            ports,
            flows,
            access_bps: 0,
        }
    }

    /// Build a single-port background load from a `(start, payload_bytes)`
    /// arrival trace emitted round-robin by `hosts` packet-level senders
    /// that each own one `access_bps` access link.
    ///
    /// This models what blast senders do with the same trace, so a hybrid
    /// run stays comparable to its packet reference:
    ///
    /// - payloads are chunked into `mtu`-byte packets with
    ///   [`HEADER_BYTES`] of framing each — the fluid queue carries wire
    ///   bytes, like the packet queue does;
    /// - a host can only put one flow on the wire at a time, so a flow
    ///   arriving while its host is still serializing an earlier one is
    ///   deferred until the access link frees. (The real sender would
    ///   interleave the two flows' packets, but the *aggregate* mass
    ///   reaching the switch — access rate for the whole busy period — is
    ///   identical, and the fluid queue only accounts aggregate mass.)
    ///
    /// Without the deferral, overlapping same-host flows would inject at
    /// a multiple of the access rate the packet reference can physically
    /// never reach, over-building fluid backlog and over-delaying the
    /// foreground.
    pub fn from_shared_hosts(
        port: (NodeId, u16),
        trace: &[(Time, u64)],
        hosts: usize,
        access_bps: u64,
        mtu: u32,
    ) -> Self {
        assert!(hosts > 0, "need at least one background host");
        assert!(access_bps > 0 && mtu > 0);
        let mut free = vec![Time::ZERO; hosts];
        let mut flows: Vec<FluidFlowSpec> = trace
            .iter()
            .enumerate()
            .map(|(i, &(start, payload))| {
                let pkts = payload.div_ceil(mtu as u64).max(1);
                let wire = payload + pkts * HEADER_BYTES as u64;
                let h = i % hosts;
                let eff = start.max(free[h]);
                let ser_ps = (wire as u128 * 8 * PS_PER_SEC as u128)
                    .div_ceil(access_bps as u128);
                free[h] = eff + Time::from_ps(ser_ps as u64);
                FluidFlowSpec {
                    start: eff,
                    bytes: wire,
                    port: 0,
                }
            })
            .collect();
        flows.sort_by_key(|f| f.start);
        BackgroundLoad {
            ports: vec![port],
            flows,
            access_bps,
        }
    }

    /// Total bytes across all flows in the trace.
    pub fn total_bytes(&self) -> u64 {
        self.flows.iter().map(|f| f.bytes).sum()
    }
}

/// A flow currently injecting into a port's fluid queue.
#[derive(Clone, Copy, Debug)]
struct Injector {
    /// Instant the injection finishes (`start + ceil(bytes / access)`).
    end: Time,
    /// Mass still to be injected, in units.
    remaining: u128,
}

/// Per-port audit snapshot for the mass-conservation invariant.
#[derive(Clone, Copy, Debug)]
pub struct FluidPortAudit {
    /// Switch node carrying this fluid port.
    pub node: NodeId,
    /// Egress port index on that switch.
    pub port: u16,
    /// Cumulative mass injected into the port's fluid queue (units).
    pub injected: u128,
    /// Cumulative mass drained from the port's fluid queue (units).
    pub drained: u128,
    /// Mass currently queued (units).
    pub backlog: u128,
}

/// Snapshot of the whole fluid subsystem for the audit layer.
#[derive(Clone, Debug, Default)]
pub struct FluidAudit {
    /// One entry per fluid-loaded port, in fixed port order.
    pub ports: Vec<FluidPortAudit>,
}

/// Fluid state for one switch egress port.
#[derive(Clone, Debug)]
struct FluidPort {
    node: NodeId,
    port: u16,
    /// Port line rate, bits/s.
    line_bps: u64,
    /// Injection rate per background flow, bits/s.
    access_bps: u64,
    /// Arrival trace for this port, reversed (pop due arrivals from the
    /// back in O(1)).
    arrivals: Vec<(Time, u64)>,
    /// Flows currently injecting.
    injectors: Vec<Injector>,
    /// FIFO completion offsets: a flow whose last unit entered the queue
    /// when `injected == off` completes when `drained >= off`.
    completions: BinaryHeap<Reverse<u128>>,
    /// Mass currently queued, in units.
    backlog: u128,
    /// Cumulative mass injected / drained, in units.
    injected: u128,
    drained: u128,
    /// Current fluid service rate, bits/s (piecewise constant).
    service_bps: u64,
    /// Foreground packets are queued or serializing at this port.
    presence: bool,
    /// The port's data priority is PFC-paused by the downstream peer.
    paused: bool,
    /// FIFO admission stamps: for every foreground data-class packet
    /// queued at this port, the cumulative injected mass (units) at its
    /// admission — the fluid logically ahead of it in FIFO order.
    stamps: VecDeque<u128>,
    /// Fluid mass (units) already charged to some packet's serialization,
    /// monotone — prevents two packets from both paying for the same
    /// fluid bytes.
    charged: u128,
}

impl FluidPort {
    /// Aggregate injection rate of all active injectors, bits/s.
    fn inflow_bps(&self) -> u64 {
        self.access_bps.saturating_mul(self.injectors.len() as u64)
    }

    /// The rate at which `drained` currently grows, bits/s.
    fn drain_bps(&self) -> u64 {
        if self.backlog > 0 {
            self.service_bps
        } else {
            self.inflow_bps().min(self.service_bps)
        }
    }

    /// Project the backlog at `now >= last` without mutating state.
    fn backlog_at(&self, dt_ps: u64) -> u128 {
        let supply = self.backlog + self.injected_at(dt_ps) - self.injected;
        let cap = self.service_bps as u128 * dt_ps as u128;
        supply - supply.min(cap)
    }

    /// Project cumulative injected mass at `last + dt_ps` without mutating
    /// state (injection ends are epochs, so `remaining` bounds are exact).
    fn injected_at(&self, dt_ps: u64) -> u128 {
        let per_injector = self.access_bps as u128 * dt_ps as u128;
        self.injected
            + self
                .injectors
                .iter()
                .map(|f| per_injector.min(f.remaining))
                .sum::<u128>()
    }
}

/// The fluid background-traffic solver.
///
/// Owned by `Sim` when `SimConfig::background` is set; all methods are
/// cheap no-ops once every port's trace is exhausted and drained.
#[derive(Clone, Debug)]
pub struct FluidState {
    ports: Vec<FluidPort>,
    /// `(node, egress port) -> index into ports`.
    lookup: BTreeMap<(NodeId, u16), u32>,
    /// Instant the mass state was last settled to.
    last: Time,
    /// Buggify: leak one byte of drained accounting per settled segment.
    leak: bool,
    /// Counters surfaced into `SimCounters` at end of run.
    flows_started: u64,
    flows_completed: u64,
    epochs: u64,
}

/// Buggify mass-leak size: one byte of drained accounting per segment.
const LEAK_UNITS: u128 = UNITS_PER_BYTE;

impl FluidState {
    /// Build the solver from a background spec.
    ///
    /// `line_rate_of(node, port)` must return the egress line rate in
    /// bits/s; panics if a listed port is unknown (zero rate) or listed
    /// twice. `leak` enables the buggified drained-mass leak used to prove
    /// the audit invariant detects accounting bugs.
    pub fn new(
        bg: &BackgroundLoad,
        mut line_rate_of: impl FnMut(NodeId, u16) -> u64,
        leak: bool,
    ) -> Self {
        let mut ports = Vec::with_capacity(bg.ports.len());
        let mut lookup = BTreeMap::new();
        for (idx, &(node, port)) in bg.ports.iter().enumerate() {
            let line_bps = line_rate_of(node, port);
            assert!(
                line_bps > 0,
                "background port ({node}, {port}) has no egress rate"
            );
            let access_bps = if bg.access_bps == 0 {
                line_bps
            } else {
                bg.access_bps
            };
            let prev = lookup.insert((node, port), idx as u32);
            assert!(prev.is_none(), "background port ({node}, {port}) listed twice");
            let mut arrivals: Vec<(Time, u64)> = bg
                .flows
                .iter()
                .filter(|f| f.port == idx as u32)
                .map(|f| (f.start, f.bytes))
                .collect();
            assert!(
                arrivals.windows(2).all(|w| w[0].0 <= w[1].0),
                "background arrivals for port ({node}, {port}) must be sorted"
            );
            // Reverse so settling pops due arrivals from the back in O(1).
            arrivals.reverse();
            ports.push(FluidPort {
                node,
                port,
                line_bps,
                access_bps,
                arrivals,
                injectors: Vec::new(),
                completions: BinaryHeap::new(),
                backlog: 0,
                injected: 0,
                drained: 0,
                service_bps: 0,
                presence: false,
                paused: false,
                stamps: VecDeque::new(),
                charged: 0,
            });
        }
        FluidState {
            ports,
            lookup,
            last: Time::ZERO,
            leak,
            flows_started: 0,
            flows_completed: 0,
            epochs: 0,
        }
    }

    fn port_index(&self, node: NodeId, port: u16) -> Option<usize> {
        self.lookup.get(&(node, port)).map(|&i| i as usize)
    }

    /// Is `(node, port)` carrying fluid background load?
    pub fn loads_port(&self, node: NodeId, port: u16) -> bool {
        self.lookup.contains_key(&(node, port))
    }

    /// Current fluid service rate at a port, bits/s (0 if not loaded).
    pub fn service_bps(&self, node: NodeId, port: u16) -> u64 {
        match self.port_index(node, port) {
            Some(i) => self.ports[i].service_bps,
            None => 0,
        }
    }

    /// Projected fluid queue occupancy at `now`, in bytes (0 if the port
    /// carries no fluid load). Read-only: projects the piecewise-constant
    /// rates forward from the last settled instant.
    pub fn occupancy_bytes(&self, node: NodeId, port: u16, now: Time) -> u64 {
        let Some(i) = self.port_index(node, port) else {
            return 0;
        };
        let p = &self.ports[i];
        debug_assert!(now >= self.last);
        let units = p.backlog_at(now.as_ps().saturating_sub(self.last.as_ps()));
        (units / UNITS_PER_BYTE) as u64
    }

    /// Stamp a foreground data-class packet admitted to a fluid-loaded
    /// port with its FIFO position: the cumulative injected fluid mass at
    /// admission, i.e. all fluid logically ahead of it in the shared
    /// queue. No-op for unloaded ports. Must be paired with exactly one
    /// [`Self::pop_stamp`] when the packet starts serializing (the data
    /// queue is FIFO, so stamps and packets stay aligned).
    pub fn push_stamp(&mut self, node: NodeId, port: u16, now: Time) {
        let Some(i) = self.port_index(node, port) else {
            return;
        };
        let dt = now.as_ps().saturating_sub(self.last.as_ps());
        let p = &mut self.ports[i];
        let pos = p.injected_at(dt);
        p.stamps.push_back(pos);
    }

    /// Pop the admission stamp of the data-class packet now reaching the
    /// head of a fluid-loaded port and charge it the fluid bytes it owes:
    /// mass injected before its admission that has neither drained nor
    /// been charged to an earlier packet. The packet serializes behind
    /// exactly those bytes at line rate — emulating FIFO interleaving of
    /// the fluid and packet streams without per-packet fluid events — and
    /// the charged mass is drained here (it leaves the wire during the
    /// packet's serialization; accounting it at the start of that interval
    /// keeps the conservation identity exact). Returns 0 for unloaded
    /// ports.
    pub fn pop_stamp(&mut self, node: NodeId, port: u16, now: Time) -> u64 {
        let Some(i) = self.port_index(node, port) else {
            return 0;
        };
        if self.ports[i].stamps.is_empty() {
            return 0;
        }
        self.settle_to(now);
        let mut completed = 0u64;
        let p = &mut self.ports[i];
        let Some(pos) = p.stamps.pop_front() else {
            return 0;
        };
        // Mass physically drained so far, via the conservation identity —
        // immune to the buggified drained-counter leak.
        let drained_true = p.injected - p.backlog;
        let base = p.charged.max(drained_true);
        let charge = pos.saturating_sub(base);
        p.charged = p.charged.max(pos);
        // `pos <= injected`, so `charge <= injected - drained_true ==
        // backlog`: the subtraction cannot underflow.
        p.backlog -= charge;
        p.drained += charge;
        while let Some(&Reverse(off)) = p.completions.peek() {
            if p.drained >= off {
                p.completions.pop();
                completed += 1;
            } else {
                break;
            }
        }
        self.flows_completed += completed;
        (charge / UNITS_PER_BYTE) as u64
    }

    /// Update the foreground-presence flag (packets queued or serializing)
    /// for a port. Returns true if this changed the bandwidth split and
    /// the pending epoch must be rescheduled.
    pub fn set_presence(&mut self, node: NodeId, port: u16, presence: bool, now: Time) -> bool {
        let Some(i) = self.port_index(node, port) else {
            return false;
        };
        if self.ports[i].presence == presence {
            return false;
        }
        self.settle_to(now);
        self.ports[i].presence = presence;
        self.refresh_rates(now);
        true
    }

    /// Update the PFC-paused flag for a port's data priority. Returns true
    /// if the pending epoch must be rescheduled.
    pub fn set_paused(&mut self, node: NodeId, port: u16, paused: bool, now: Time) -> bool {
        let Some(i) = self.port_index(node, port) else {
            return false;
        };
        if self.ports[i].paused == paused {
            return false;
        }
        self.settle_to(now);
        self.ports[i].paused = paused;
        self.refresh_rates(now);
        true
    }

    /// Process a scheduled fluid epoch: settle mass to `now`, refresh the
    /// piecewise-constant rates. The caller reschedules via [`Self::plan`].
    pub fn on_epoch(&mut self, now: Time) {
        self.epochs += 1;
        self.settle_to(now);
        self.refresh_rates(now);
    }

    /// Settle all per-port mass state from `last` to `now` using the
    /// current piecewise-constant rates, then process arrivals, injection
    /// ends, and completions due at or before `now`.
    fn settle_to(&mut self, now: Time) {
        debug_assert!(now >= self.last, "fluid settle must move forward");
        let dt = now.as_ps().saturating_sub(self.last.as_ps());
        for p in &mut self.ports {
            if dt > 0 {
                // Injection: each active injector contributes
                // min(rate·Δt, remaining) — exact, and injection ends are
                // epochs so `remaining` hits zero exactly at `end`.
                let per_injector = p.access_bps as u128 * dt as u128;
                let mut inj = 0u128;
                for f in &mut p.injectors {
                    let seg = per_injector.min(f.remaining);
                    f.remaining -= seg;
                    inj += seg;
                }
                p.injected += inj;
                // Drain: capacity service·Δt against backlog + new mass.
                let supply = p.backlog + inj;
                let mut drained = supply.min(p.service_bps as u128 * dt as u128);
                p.backlog = supply - drained;
                if self.leak && drained >= LEAK_UNITS {
                    // Buggify: under-count drained mass by one byte. The
                    // backlog above already shrank by the true amount, so
                    // injected != drained + backlog from here on — the
                    // audit's fluid-conservation invariant must catch it.
                    drained -= LEAK_UNITS;
                }
                p.drained += drained;
            }
            // Retire injectors whose injection ended (remaining hit 0 at
            // their scheduled end). Record the FIFO completion offset: the
            // flow's last unit drains when cumulative drained mass reaches
            // the cumulative injected mass at its injection end.
            let injected_now = p.injected;
            p.injectors.retain(|f| {
                if f.remaining == 0 {
                    debug_assert!(f.end <= now);
                    p.completions.push(Reverse(injected_now));
                    false
                } else {
                    true
                }
            });
            // Admit arrivals due at or before `now`. In a live Sim the
            // pending epoch is always scheduled at the next arrival, so
            // admission happens exactly at `start`; a late admission (only
            // reachable by driving epochs by hand in tests) simply starts
            // the injection at `now`.
            while let Some(&(start, bytes)) = p.arrivals.last() {
                if start > now {
                    break;
                }
                p.arrivals.pop();
                let mass = bytes as u128 * UNITS_PER_BYTE;
                let ser_ps = mass.div_ceil(p.access_bps as u128) as u64;
                p.injectors.push(Injector {
                    end: now + Time::from_ps(ser_ps),
                    remaining: mass,
                });
                self.flows_started += 1;
            }
            // Pop completed flows.
            while let Some(&Reverse(off)) = p.completions.peek() {
                if p.drained >= off {
                    p.completions.pop();
                    self.flows_completed += 1;
                } else {
                    break;
                }
            }
        }
        self.last = now;
    }

    /// Recompute each port's fluid service rate from the current flags and
    /// backlog. Rates stay constant until the next settle.
    ///
    /// The port is one line-rate FIFO server. While foreground packets are
    /// present the server's capacity is consumed by packet serialization —
    /// including the fluid mass each packet drags along via its admission
    /// stamp, drained in [`Self::pop_stamp`] — so the autonomous fluid
    /// service is zero: draining in parallel would double-spend the wire.
    /// With no packets present the fluid has the whole line.
    fn refresh_rates(&mut self, _now: Time) {
        for p in &mut self.ports {
            if p.paused || p.presence {
                p.service_bps = 0;
                continue;
            }
            // Fluid demand: line rate while backlogged, else the aggregate
            // injection rate.
            let demand = if p.backlog > 0 {
                p.line_bps
            } else {
                p.inflow_bps().min(p.line_bps)
            };
            p.service_bps = demand;
        }
    }

    /// The first arrival across all ports — where `Sim` schedules the
    /// initial fluid epoch (exactly at the arrival instant, unlike
    /// [`Self::plan`] which never schedules at the current instant).
    pub fn first_epoch(&self) -> Option<Time> {
        self.ports
            .iter()
            .filter_map(|p| p.arrivals.last().map(|&(start, _)| start))
            .min()
    }

    /// Earliest instant at which any port's piecewise-constant rates
    /// change: next arrival, injection end, backlog-empty crossing, or
    /// flow completion. `None` once all background traffic is fully
    /// drained.
    pub fn plan(&self, now: Time) -> Option<Time> {
        let mut next = Time::MAX;
        for p in &self.ports {
            if let Some(&(start, _)) = p.arrivals.last() {
                next = next.min(start);
            }
            for f in &p.injectors {
                next = next.min(f.end);
            }
            let drain = p.drain_bps();
            // Backlog-empty crossing: service outpaces inflow.
            let inflow = p.inflow_bps();
            if p.backlog > 0 && p.service_bps > inflow {
                let gap = (p.service_bps - inflow) as u128;
                let dt = p.backlog.div_ceil(gap);
                next = next.min(now + Time::from_ps(dt.min(u64::MAX as u128) as u64));
            }
            // Next FIFO completion at the current drain rate.
            if let Some(&Reverse(off)) = p.completions.peek() {
                if drain > 0 {
                    let dt = (off - p.drained).div_ceil(drain as u128);
                    next = next.min(now + Time::from_ps(dt.min(u64::MAX as u128) as u64));
                }
            }
        }
        if next == Time::MAX {
            None
        } else {
            // Work due exactly at `now` was handled by the settle that
            // preceded this plan; never schedule a same-instant epoch or
            // the solver would spin.
            Some(next.max(now + Time::from_ps(1)))
        }
    }

    /// Audit snapshot of the mass-conservation state.
    pub fn audit_view(&self) -> FluidAudit {
        FluidAudit {
            ports: self
                .ports
                .iter()
                .map(|p| FluidPortAudit {
                    node: p.node,
                    port: p.port,
                    injected: p.injected,
                    drained: p.drained,
                    backlog: p.backlog,
                })
                .collect(),
        }
    }

    /// Background flows that have started injecting.
    pub fn flows_started(&self) -> u64 {
        self.flows_started
    }

    /// Background flows fully drained through their port.
    pub fn flows_completed(&self) -> u64 {
        self.flows_completed
    }

    /// Fluid epochs processed (scheduler events consumed by the solver).
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Total mass injected so far across all ports, in bytes.
    pub fn injected_bytes(&self) -> u64 {
        let units: u128 = self.ports.iter().map(|p| p.injected).sum();
        (units / UNITS_PER_BYTE) as u64
    }

    /// Fold every deterministic field of the fluid solver into a state
    /// digest ([`crate::sim::Sim::state_digest`]): per-port mass accounting
    /// (backlog, injected, drained, charged), the piecewise-constant rate
    /// state, injector/stamp queues, and the settle clock.
    pub(crate) fn fold_digest(&self, fold: &mut impl FnMut(u64)) {
        fold(self.last.as_ps());
        fold(self.flows_started);
        fold(self.flows_completed);
        fold(self.epochs);
        for p in &self.ports {
            fold(p.node as u64);
            fold(p.port as u64);
            fold(p.backlog as u64);
            fold((p.backlog >> 64) as u64);
            fold(p.injected as u64);
            fold((p.injected >> 64) as u64);
            fold(p.drained as u64);
            fold((p.drained >> 64) as u64);
            fold(p.charged as u64);
            fold((p.charged >> 64) as u64);
            fold(p.service_bps);
            fold(p.presence as u64 | (p.paused as u64) << 1);
            fold(p.arrivals.len() as u64);
            fold(p.injectors.len() as u64);
            for inj in &p.injectors {
                fold(inj.end.as_ps());
                fold(inj.remaining as u64);
            }
            fold(p.stamps.len() as u64);
            for &s in &p.stamps {
                fold(s as u64);
            }
        }
    }

    /// Test hook for the snapshot-completeness fleet: leak one unit of
    /// backlog mass on the first fluid-loaded port. A correct
    /// [`crate::sim::Sim::state_digest`] must notice.
    #[doc(hidden)]
    pub fn tamper_backlog(&mut self) {
        if let Some(p) = self.ports.first_mut() {
            p.backlog += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn single_port_load(flows: Vec<(u64, u64)>) -> BackgroundLoad {
        BackgroundLoad {
            ports: vec![(9, 0)],
            flows: flows
                .into_iter()
                .map(|(start_ns, bytes)| FluidFlowSpec {
                    start: Time::from_ns(start_ns),
                    bytes,
                    port: 0,
                })
                .collect(),
            access_bps: 0,
        }
    }

    fn drive_to_quiescence(f: &mut FluidState, mut now: Time) -> Time {
        let mut steps = 0;
        while let Some(next) = f.plan(now) {
            now = next;
            f.on_epoch(now);
            steps += 1;
            assert!(steps < 10_000, "fluid solver failed to quiesce");
        }
        now
    }

    fn assert_conserved(f: &FluidState) {
        for p in &f.audit_view().ports {
            assert_eq!(
                p.injected,
                p.drained + p.backlog,
                "mass conservation violated on port ({}, {})",
                p.node,
                p.port
            );
        }
    }

    #[test]
    fn empty_load_is_inert() {
        let bg = single_port_load(vec![]);
        let f = FluidState::new(&bg, |_, _| 100_000_000_000, false);
        assert_eq!(f.plan(Time::ZERO), None);
        assert_eq!(f.occupancy_bytes(9, 0, Time::from_ms(1)), 0);
        assert_eq!(f.service_bps(9, 0), 0);
    }

    #[test]
    fn single_flow_injects_and_drains_exactly() {
        // One 1 MB flow at line rate into an idle port: it injects and
        // drains concurrently, completing exactly when its last unit
        // arrives (FIFO queue never backs up at equal rates).
        let bg = single_port_load(vec![(1000, 1_000_000)]);
        let mut f = FluidState::new(&bg, |_, _| 100_000_000_000, false);
        let end = drive_to_quiescence(&mut f, Time::ZERO);
        assert_eq!(f.flows_started(), 1);
        assert_eq!(f.flows_completed(), 1);
        assert_eq!(f.injected_bytes(), 1_000_000);
        assert_conserved(&f);
        // 1 MB at 100 Gbps serializes in 80 us.
        let expect = Time::from_ns(1000) + Time::from_ps(80_000_000_000 / 1_000);
        assert!(
            end >= expect && end <= expect + Time::from_ns(2),
            "completed at {end:?}, expected ~{expect:?}"
        );
    }

    #[test]
    fn overlapping_flows_build_and_drain_backlog() {
        // Two simultaneous line-rate flows halve each other's effective
        // drain: 2 MB total injected in 80 us, drained in 160 us.
        let bg = single_port_load(vec![(0, 1_000_000), (0, 1_000_000)]);
        let mut f = FluidState::new(&bg, |_, _| 100_000_000_000, false);
        f.on_epoch(Time::from_ps(1));
        // Mid-injection the backlog is growing at line rate.
        let mid = Time::from_us(40);
        f.on_epoch(mid);
        assert_conserved(&f);
        let occ = f.occupancy_bytes(9, 0, mid);
        assert!(occ > 400_000, "expected ~500 KB backlog, got {occ}");
        let end = drive_to_quiescence(&mut f, mid);
        assert_eq!(f.flows_completed(), 2);
        assert_conserved(&f);
        let expect = Time::from_us(160);
        assert!(
            end >= expect - Time::from_ns(2) && end <= expect + Time::from_ns(2),
            "drained at {end:?}, expected ~{expect:?}"
        );
        assert_eq!(f.occupancy_bytes(9, 0, end), 0);
    }

    #[test]
    fn pause_halts_drain_and_resume_restores_it() {
        let bg = single_port_load(vec![(0, 1_000_000)]);
        let mut f = FluidState::new(&bg, |_, _| 100_000_000_000, false);
        f.on_epoch(Time::from_ps(1));
        assert!(f.set_paused(9, 0, true, Time::from_us(10)));
        assert_eq!(f.service_bps(9, 0), 0);
        // While paused the flow keeps injecting: backlog grows.
        f.on_epoch(Time::from_us(40));
        assert_conserved(&f);
        let occ = f.occupancy_bytes(9, 0, Time::from_us(40));
        assert!(occ > 300_000, "paused backlog should accumulate, got {occ}");
        assert!(f.set_paused(9, 0, false, Time::from_us(50)));
        let end = drive_to_quiescence(&mut f, Time::from_us(50));
        assert_eq!(f.flows_completed(), 1);
        assert_conserved(&f);
        // 40 us of pause shifts the ~80 us completion to ~120 us.
        assert!(end >= Time::from_us(118) && end <= Time::from_us(122));
    }

    #[test]
    fn presence_halts_service_and_packets_drain_their_charges() {
        let bg = single_port_load(vec![(0, 10_000_000)]);
        let line = 100_000_000_000u64;
        let mut f = FluidState::new(&bg, |_, _| line, false);
        f.on_epoch(Time::from_ps(1));
        assert_eq!(f.service_bps(9, 0), line);
        // Foreground packets arrive: the single FIFO server is theirs, so
        // autonomous fluid service stops entirely.
        assert!(f.set_presence(9, 0, true, Time::from_us(1)));
        assert_eq!(f.service_bps(9, 0), 0);
        // A packet admitted now is stamped with everything injected so
        // far; when it reaches the head it is charged exactly that mass,
        // which physically drains from the backlog.
        f.push_stamp(9, 0, Time::from_us(2));
        let occ_before = f.occupancy_bytes(9, 0, Time::from_us(3));
        assert!(occ_before > 0);
        let owed = f.pop_stamp(9, 0, Time::from_us(3));
        // 2 us of line-rate injection minus 1 us drained before presence.
        assert!(
            owed > 10_000 && owed <= 25_000,
            "owed {owed} bytes, expected ~12.5 KB"
        );
        assert!(f.occupancy_bytes(9, 0, Time::from_us(3)) < occ_before);
        // A second packet admitted immediately after owes only the fluid
        // injected between the two admissions.
        f.push_stamp(9, 0, Time::from_us(3));
        let owed2 = f.pop_stamp(9, 0, Time::from_us(4));
        assert!(
            owed2 <= 13_000,
            "consecutive packets must not re-charge drained mass, owed {owed2}"
        );
        assert_conserved(&f);
        // Foreground leaves: fluid gets the full line back.
        assert!(f.set_presence(9, 0, false, Time::from_us(5)));
        assert_eq!(f.service_bps(9, 0), line);
        drive_to_quiescence(&mut f, Time::from_us(5));
        assert_eq!(f.flows_completed(), 1);
        assert_conserved(&f);
    }

    #[test]
    fn poisson_trace_is_deterministic_and_hits_target_load() {
        let line = 100_000_000_000u64;
        let until = Time::from_ms(50);
        let a = BackgroundLoad::poisson(vec![(9, 0)], line, 0.5, 1_000_000, 42, until);
        let b = BackgroundLoad::poisson(vec![(9, 0)], line, 0.5, 1_000_000, 42, until);
        assert_eq!(a.flows, b.flows, "same seed must give the same trace");
        let offered = a.total_bytes() as f64 * 8.0 / until.as_secs_f64();
        let target = line as f64 * 0.5;
        assert!(
            (offered / target - 1.0).abs() < 0.25,
            "offered {offered:.3e} bps vs target {target:.3e} bps"
        );
        // A different seed gives a different trace.
        let c = BackgroundLoad::poisson(vec![(9, 0)], line, 0.5, 1_000_000, 43, until);
        assert_ne!(a.flows, c.flows);
    }

    #[test]
    fn buggified_leak_breaks_conservation() {
        let bg = single_port_load(vec![(0, 1_000_000)]);
        let mut f = FluidState::new(&bg, |_, _| 100_000_000_000, true);
        drive_to_quiescence(&mut f, Time::ZERO);
        let v = f.audit_view();
        let p = &v.ports[0];
        assert!(
            p.injected != p.drained + p.backlog,
            "leak buggify must break the conservation identity"
        );
    }

    #[test]
    fn mass_is_conserved_across_random_traces() {
        let line = 100_000_000_000u64;
        for seed in 0..8 {
            let bg = BackgroundLoad::poisson(
                vec![(9, 0), (9, 1)],
                line,
                0.6,
                500_000,
                seed,
                Time::from_ms(5),
            );
            let mut f = FluidState::new(&bg, |_, _| line, false);
            // Interleave pause/presence churn with epochs to stress the
            // piecewise segments.
            let mut now = Time::ZERO;
            let mut step = 0u64;
            while let Some(next) = f.plan(now) {
                now = next;
                f.on_epoch(now);
                step += 1;
                if step % 7 == 0 {
                    f.set_presence(9, 0, step % 14 == 0, now);
                }
                if step % 11 == 0 {
                    f.set_paused(9, 1, step % 22 == 0, now);
                }
                assert!(step < 100_000, "failed to quiesce");
                assert_conserved(&f);
            }
            f.set_paused(9, 1, false, now);
            f.set_presence(9, 0, false, now);
            let end = drive_to_quiescence(&mut f, now);
            assert_conserved(&f);
            assert_eq!(
                f.flows_started(),
                f.flows_completed(),
                "seed {seed}: all background flows must drain by {end:?}"
            );
            assert_eq!(f.injected_bytes(), bg.total_bytes());
        }
    }
}
