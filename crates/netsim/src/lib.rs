//! A deterministic discrete-event data center network simulator.
//!
//! `netsim` plays the role ns-3 plays in the PrioPlus paper: it models hosts,
//! store-and-forward output-queued switches with shared buffers, priority
//! queues with strict-priority scheduling, ECN marking, PFC (priority flow
//! control) with headroom accounting, ECMP routing over standard data center
//! topologies, and per-packet delay measurement with configurable noise.
//!
//! The simulator is transport-agnostic: congestion control algorithms
//! implement the [`transport_api::Transport`] trait (window/rate management,
//! probing, retransmission policy) and are instantiated per flow by a
//! factory. The `transport` crate provides Swift, LEDBAT, DCTCP/D2TCP, HPCC
//! and the PrioPlus-enhanced variants.
//!
//! # Model summary
//!
//! - **Time**: picoseconds ([`simcore::Time`]); fully deterministic event
//!   ordering (seeded RNG + stable event tie-breaking).
//! - **Links**: full-duplex, fixed rate + propagation delay; serialization is
//!   exact (store-and-forward at every hop).
//! - **Switches**: shared-buffer output-queued; per-port priority queues;
//!   strict priority dequeue; RED-style ECN marking; Dynamic-Threshold
//!   admission (Choudhury–Hahne); PFC pause/resume per (ingress port,
//!   priority) with per-priority headroom reservation; optional lossy mode
//!   with drops.
//! - **Hosts**: pull-model NIC honoring PFC and strict priority across its
//!   flows; per-packet ACKs (64 B) on a dedicated highest control priority by
//!   default (configurable to share the data priority, "PrioPlus*" mode);
//!   probe echo; additive delay-measurement noise.

#![forbid(unsafe_code)]

#![warn(missing_docs)]

pub mod audit;
pub mod config;
pub mod counters;
pub mod event;
pub mod faults;
pub mod fluid;
pub mod monitor;
pub mod node;
pub mod noise;
pub mod packet;
pub mod record;
pub mod routing;
pub mod sim;
pub mod snapshot;
pub mod topology;
pub mod transport_api;

pub use audit::{AuditConfig, AuditReport, Violation, ViolationKind};
pub use config::{AckPriority, Buggify, SimConfig, SwitchConfig};
pub use event::Event;
pub use faults::{FaultEvent, FaultKind, FaultSchedule};
pub use fluid::{BackgroundLoad, FluidFlowSpec, FluidState};
pub use noise::NoiseModel;
pub use packet::{ArenaStats, FlowId, NodeId, Packet, PacketArena, PacketId, PktHeader, PktKind, PktTag};
pub use record::{FlowRecord, SimCounters, SimResult, StreamingStats};
pub use simcore::SchedKind;
pub use sim::{ArrivalSource, FlowSpec, Sim};
pub use snapshot::{SimSnapshot, StateTamper};
pub use topology::{ThreeTierWanSpec, Topology};
pub use transport_api::{AckEvent, AckKind, FlowParams, Transport, TransportCtx, TrySend};
