//! Periodic in-simulation samplers.

use simcore::stats::TimeSeries;
use simcore::Time;

use crate::packet::NodeId;

/// What a monitor samples.
#[derive(Clone, Copy, Debug)]
pub enum MonitorKind {
    /// Bytes queued on one egress port (all priorities).
    QueueBytes {
        /// Node owning the port.
        node: NodeId,
        /// Port index.
        port: u16,
    },
    /// Bytes queued in one priority queue of a port.
    QueueBytesPrio {
        /// Node owning the port.
        node: NodeId,
        /// Port index.
        port: u16,
        /// Queue index.
        prio: u8,
    },
    /// Throughput of one egress port in Gbit/s over the sampling period.
    PortThroughput {
        /// Node owning the port.
        node: NodeId,
        /// Port index.
        port: u16,
    },
    /// Total buffered bytes of a switch.
    SwitchBuffer {
        /// Switch node.
        node: NodeId,
    },
}

/// A periodic sampler registered with the simulator.
#[derive(Debug)]
pub struct Monitor {
    /// Human-readable label for result reporting.
    pub label: String,
    /// Sampled quantity.
    pub kind: MonitorKind,
    /// Sampling period.
    pub period: Time,
    /// Collected series.
    pub series: TimeSeries,
    /// Last cumulative tx-bytes reading (for throughput sampling).
    pub last_tx: u64,
}

impl Monitor {
    /// New monitor.
    pub fn new(label: impl Into<String>, kind: MonitorKind, period: Time) -> Self {
        Monitor {
            label: label.into(),
            kind,
            period,
            series: TimeSeries::new(),
            last_tx: 0,
        }
    }
}
