//! Periodic in-simulation samplers.

use simcore::stats::TimeSeries;
use simcore::Time;

use crate::packet::NodeId;

/// What a monitor samples.
#[derive(Clone, Copy, Debug)]
pub enum MonitorKind {
    /// Bytes queued on one egress port (all priorities).
    QueueBytes {
        /// Node owning the port.
        node: NodeId,
        /// Port index.
        port: u16,
    },
    /// Bytes queued in one priority queue of a port.
    QueueBytesPrio {
        /// Node owning the port.
        node: NodeId,
        /// Port index.
        port: u16,
        /// Queue index.
        prio: u8,
    },
    /// Throughput of one egress port in Gbit/s over the sampling period.
    PortThroughput {
        /// Node owning the port.
        node: NodeId,
        /// Port index.
        port: u16,
    },
    /// Total buffered bytes of a switch.
    SwitchBuffer {
        /// Switch node.
        node: NodeId,
    },
}

/// A periodic sampler registered with the simulator.
#[derive(Clone, Debug)]
pub struct Monitor {
    /// Human-readable label for result reporting.
    pub label: String,
    /// Sampled quantity.
    pub kind: MonitorKind,
    /// Sampling period.
    pub period: Time,
    /// Collected series.
    pub series: TimeSeries,
    /// Last cumulative tx-bytes reading (for throughput sampling).
    pub last_tx: u64,
}

impl Monitor {
    /// New monitor.
    pub fn new(label: impl Into<String>, kind: MonitorKind, period: Time) -> Self {
        Monitor {
            label: label.into(),
            kind,
            period,
            series: TimeSeries::new(),
            last_tx: 0,
        }
    }

    /// Record a gauge sample (queue depth, buffer occupancy).
    pub fn record_gauge(&mut self, now: Time, value: f64) {
        self.series.push(now, value);
    }

    /// Record a throughput sample from a cumulative tx-byte counter: the
    /// delta since the previous sample, expressed in Gbit/s over one
    /// sampling period. The first sample measures from a zero baseline.
    pub fn record_tx(&mut self, now: Time, cum_tx_bytes: u64) {
        let delta = cum_tx_bytes.saturating_sub(self.last_tx);
        self.last_tx = cum_tx_bytes;
        let gbps = delta as f64 * 8.0 / self.period.as_secs_f64() / 1e9;
        self.series.push(now, gbps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mon(kind: MonitorKind) -> Monitor {
        Monitor::new("m", kind, Time::from_us(10))
    }

    #[test]
    fn throughput_matches_hand_computed_line_rate() {
        // 125_000 B in 10 us = 1e11 bit/s = exactly 100 Gbit/s.
        let mut m = mon(MonitorKind::PortThroughput { node: 0, port: 0 });
        m.record_tx(Time::from_us(10), 125_000);
        assert!((m.series.v[0] - 100.0).abs() < 1e-9, "{}", m.series.v[0]);
        // Next period: port idle, counter unchanged -> 0 Gbit/s.
        m.record_tx(Time::from_us(20), 125_000);
        assert_eq!(m.series.v[1], 0.0);
        // Half-rate period.
        m.record_tx(Time::from_us(30), 125_000 + 62_500);
        assert!((m.series.v[2] - 50.0).abs() < 1e-9, "{}", m.series.v[2]);
    }

    #[test]
    fn throughput_deltas_sum_to_the_cumulative_counter() {
        let mut m = mon(MonitorKind::PortThroughput { node: 0, port: 0 });
        let readings = [10_000u64, 45_000, 45_000, 200_000, 201_500];
        for (i, &tx) in readings.iter().enumerate() {
            m.record_tx(Time::from_us(10 * (i as u64 + 1)), tx);
        }
        // sum(gbps_i) * period = total bytes * 8: no byte lost or doubled.
        let sum_gbps: f64 = m.series.v.iter().sum();
        let total_bits = sum_gbps * 1e9 * Time::from_us(10).as_secs_f64();
        assert!((total_bits - 201_500.0 * 8.0).abs() < 1e-6, "{total_bits}");
    }

    #[test]
    fn gauge_samples_pass_through_untouched() {
        let mut m = mon(MonitorKind::SwitchBuffer { node: 3 });
        m.record_gauge(Time::from_us(1), 42.0);
        m.record_gauge(Time::from_us(2), 0.0);
        assert_eq!(m.series.t_us, vec![1.0, 2.0]);
        assert_eq!(m.series.v, vec![42.0, 0.0]);
    }

    #[test]
    fn counter_regression_is_not_negative_throughput() {
        let mut m = mon(MonitorKind::PortThroughput { node: 0, port: 0 });
        m.record_tx(Time::from_us(10), 1000);
        m.record_tx(Time::from_us(20), 500); // reset/regression
        assert_eq!(m.series.v[1], 0.0);
    }
}
