//! Switch and host state.
//!
//! Logic that needs the event queue (scheduling arrivals, PFC frames,
//! transport callbacks) lives in [`crate::sim`]; this module holds the data
//! structures and the pure parts: buffer accounting, admission, ECN marking,
//! strict-priority selection, and PFC threshold math.

use std::collections::VecDeque;

use simcore::{Rate, SimRng, Time};

use crate::config::{Buggify, SwitchConfig};
use crate::packet::{FlowId, NodeId, PacketArena, PacketId, PktHeader};

/// One directional egress attachment (switch port or host NIC).
#[derive(Clone, Debug)]
pub struct EgressPort {
    /// Node on the other end of the link.
    pub peer: NodeId,
    /// Ingress port index at the peer.
    pub peer_port: u16,
    /// Line rate.
    pub rate: Rate,
    /// One-way propagation delay.
    pub prop: Time,
    /// A packet is currently being serialized.
    pub busy: bool,
    /// PFC pause state per data priority (bitmask by queue index).
    pub paused: u32,
    /// Per-priority FIFO queues of arena handles; index `num_prios` is the
    /// control queue. Queues rotate 4-byte [`PacketId`]s — the packets
    /// themselves stay put in the [`PacketArena`].
    pub queues: Vec<VecDeque<PacketId>>,
    /// Bytes queued per priority queue.
    pub queued_bytes_q: Vec<u64>,
    /// Total bytes queued on this port.
    pub queued_bytes: u64,
    /// Cumulative bytes transmitted (INT).
    pub tx_bytes: u64,
}

impl EgressPort {
    /// New idle port with `nq` queues.
    pub fn new(peer: NodeId, peer_port: u16, rate: Rate, prop: Time, nq: usize) -> Self {
        EgressPort {
            peer,
            peer_port,
            rate,
            prop,
            busy: false,
            paused: 0,
            queues: (0..nq).map(|_| VecDeque::new()).collect(),
            // simlint::allow(hot-path-alloc, port construction runs once at topology build, not per event)
            queued_bytes_q: vec![0; nq],
            queued_bytes: 0,
            tx_bytes: 0,
        }
    }

    /// True when priority `q` is paused by PFC.
    #[inline]
    pub fn is_paused(&self, q: usize) -> bool {
        self.paused & (1 << q) != 0
    }

    /// Set/clear the pause bit for priority `q`.
    #[inline]
    pub fn set_paused(&mut self, q: usize, paused: bool) {
        if paused {
            self.paused |= 1 << q;
        } else {
            self.paused &= !(1 << q);
        }
    }

    /// Push a packet (by handle) into its priority queue.
    pub fn enqueue(&mut self, id: PacketId, arena: &PacketArena) {
        let pkt = arena.get(id);
        let q = queue_index(pkt.prio, self.queues.len());
        self.queued_bytes_q[q] += pkt.size as u64;
        self.queued_bytes += pkt.size as u64;
        self.queues[q].push_back(id);
    }

    /// Pop the highest-priority unpaused packet (strict priority, control
    /// queue first).
    pub fn dequeue(&mut self, arena: &PacketArena) -> Option<PacketId> {
        for q in (0..self.queues.len()).rev() {
            if self.is_paused(q) {
                continue;
            }
            if let Some(id) = self.queues[q].pop_front() {
                let size = arena.get(id).size as u64;
                self.queued_bytes_q[q] -= size;
                self.queued_bytes -= size;
                return Some(id);
            }
        }
        None
    }

    /// True when at least one unpaused queue has a packet.
    pub fn has_sendable(&self) -> bool {
        (0..self.queues.len())
            .rev()
            .any(|q| !self.is_paused(q) && !self.queues[q].is_empty())
    }
}

/// Map a packet's `prio` field to its queue index: control packets (ACKs
/// when running in `AckPriority::Control` mode get `prio == ctrl` already)
/// go by their `prio`; the caller sets it appropriately, so this is just a
/// clamp guard. Takes the bare priority so callers holding either a full
/// [`Packet`](crate::packet::Packet) or just a hot [`PktHeader`] can use it.
#[inline]
pub fn queue_index(prio: u8, nq: usize) -> usize {
    (prio as usize).min(nq - 1)
}

/// Result of offering a packet to a switch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Packet was queued.
    Queued,
    /// Packet was dropped (lossy mode only).
    Dropped,
}

/// A shared-buffer output-queued switch.
#[derive(Clone, Debug)]
pub struct Switch {
    /// Switch configuration.
    pub cfg: SwitchConfig,
    /// Egress ports.
    pub ports: Vec<EgressPort>,
    /// Total bytes buffered across all ports.
    pub total_buffered: u64,
    /// Usable shared buffer (total minus PFC headroom reservation).
    pub usable: u64,
    /// Ingress byte counts per (ingress port, data priority), for PFC.
    pub ingress_bytes: Vec<Vec<u64>>,
    /// Whether we have sent PAUSE upstream for (ingress port, priority).
    pub ingress_paused: Vec<Vec<bool>>,
    /// High-water mark of total buffered bytes.
    pub max_buffered: u64,
}

impl Switch {
    /// Build a switch; `ports` must already be constructed with
    /// `num_prios + 1` queues each.
    pub fn new(cfg: SwitchConfig, ports: Vec<EgressPort>, num_prios: u8) -> Self {
        let n = ports.len();
        let usable = cfg.usable_buffer(n);
        Switch {
            cfg,
            ports,
            total_buffered: 0,
            usable,
            // simlint::allow(hot-path-alloc, switch construction runs once at topology build, not per event)
            ingress_bytes: vec![vec![0; num_prios as usize + 1]; n],
            // simlint::allow(hot-path-alloc, switch construction runs once at topology build, not per event)
            ingress_paused: vec![vec![false; num_prios as usize + 1]; n],
            max_buffered: 0,
        }
    }

    /// Remaining shared buffer.
    #[inline]
    pub fn free_buffer(&self) -> u64 {
        self.usable.saturating_sub(self.total_buffered)
    }

    /// Dynamic-Threshold admission limit for one queue (Choudhury–Hahne):
    /// a queue may grow up to `alpha * free_buffer`. `fluid_occ` is the
    /// projected fluid background occupancy at the egress port (hybrid
    /// model); it consumes shared buffer the same way packet bytes do, so
    /// it shrinks the free pool the threshold scales with. Zero whenever
    /// the port carries no fluid load (pure packet runs are unchanged).
    #[inline]
    pub fn dt_limit(&self, fluid_occ: u64) -> u64 {
        (self.cfg.dt_alpha * self.free_buffer().saturating_sub(fluid_occ) as f64) as u64
    }

    /// PFC pause threshold for one (ingress port, priority) counter.
    /// Dynamic: proportional to the free buffer with the (small) ingress
    /// alpha, floored at three MTUs so the switch can always absorb a final
    /// in-flight packet pair. `fluid_occ` as in [`Self::dt_limit`]: fluid
    /// background backlog shrinks the free pool, pausing packet ingress
    /// earlier on fluid-loaded switches.
    #[inline]
    pub fn pfc_pause_threshold(&self, fluid_occ: u64) -> u64 {
        ((self.cfg.pfc_alpha * self.free_buffer().saturating_sub(fluid_occ) as f64) as u64)
            .max(3_000)
    }

    /// Decide ECN marking for a data packet about to be enqueued on `port`,
    /// given current queue occupancy (RED on the per-queue bytes). With
    /// priority-scaled ECN (Appendix B extension) the thresholds grow with
    /// the packet's DSCP, so lower virtual priorities mark first.
    /// `fluid_occ` adds the projected fluid background backlog at the port
    /// to the occupancy RED sees, so fluid load back-pressures ECN-driven
    /// foreground senders exactly as queued packet bytes would.
    pub fn ecn_mark(
        &self,
        port: u16,
        queue: usize,
        dscp: u8,
        fluid_occ: u64,
        rng: &mut SimRng,
    ) -> bool {
        if self.cfg.buggify == Some(Buggify::EcnMarkBelowKmin) {
            return true;
        }
        let q = self.ports[port as usize].queued_bytes_q[queue] + fluid_occ;
        let scale = if self.cfg.ecn_prio_scaled {
            dscp as u64 + 1
        } else {
            1
        };
        let (kmin, kmax, pmax) = (
            self.cfg.ecn_kmin * scale,
            self.cfg.ecn_kmax * scale,
            self.cfg.ecn_pmax,
        );
        if q <= kmin {
            false
        } else if q >= kmax {
            true
        } else {
            let p = (q - kmin) as f64 / (kmax - kmin) as f64 * pmax;
            rng.f64() < p
        }
    }

    /// Offer a packet (by handle) for queuing on egress `port` coming from
    /// ingress `in_port`. Applies admission (lossy mode), buffer/ingress
    /// accounting and PFC pause decisions. Returns the admission outcome and
    /// any PFC pause frames to emit as `(ingress_port, prio)`. A `Dropped`
    /// packet is released back to the arena here — its id is dead after the
    /// call.
    pub fn admit(
        &mut self,
        port: u16,
        in_port: u16,
        id: PacketId,
        fluid_occ: u64,
        arena: &mut PacketArena,
        pauses: &mut Vec<(u16, u8)>,
    ) -> Admission {
        let nq = self.ports[port as usize].queues.len();
        let (q, size, is_data) = {
            let pkt = arena.get(id);
            (queue_index(pkt.prio, nq), pkt.size as u64, pkt.kind.is_data())
        };
        if !self.cfg.pfc_enabled && is_data {
            // Lossy: Dynamic-Threshold admission on the egress queue.
            let limit = self.dt_limit(fluid_occ);
            if self.ports[port as usize].queued_bytes_q[q] + size > limit {
                arena.release(id);
                return Admission::Dropped;
            }
        }
        arena.get_mut(id).cur_in_port = in_port;
        self.total_buffered += size;
        self.max_buffered = self.max_buffered.max(self.total_buffered);
        self.ingress_bytes[in_port as usize][q] += size;
        self.ports[port as usize].enqueue(id, arena);

        if self.cfg.pfc_enabled && q < nq - 1 {
            // PFC protects data priorities; control queue is never paused.
            let threshold = self.pfc_pause_threshold(fluid_occ);
            let counted = if self.cfg.buggify == Some(Buggify::PfcPauseOffByOne) {
                // Injected fault: compare the pre-admission counter, so the
                // pause fires one packet late.
                self.ingress_bytes[in_port as usize][q].saturating_sub(size)
            } else {
                self.ingress_bytes[in_port as usize][q]
            };
            if !self.ingress_paused[in_port as usize][q] && counted > threshold {
                self.ingress_paused[in_port as usize][q] = true;
                pauses.push((in_port, q as u8));
            }
        }
        Admission::Queued
    }

    /// Account a packet leaving the switch from egress `port`. Returns PFC
    /// resume frames to emit as `(ingress_port, prio)`. `fluid_occ` as in
    /// [`Self::dt_limit`] (shrinks the resume threshold symmetrically with
    /// the pause threshold).
    pub fn on_dequeue(&mut self, pkt: &PktHeader, fluid_occ: u64, resumes: &mut Vec<(u16, u8)>) {
        if self.cfg.buggify == Some(Buggify::DequeueLeak) {
            // Injected fault: departure accounting is skipped entirely.
            return;
        }
        let nq = self.ports[0].queues.len();
        let q = queue_index(pkt.prio, nq);
        let size = pkt.size as u64;
        debug_assert!(self.total_buffered >= size);
        self.total_buffered -= size;
        let in_port = pkt.cur_in_port as usize;
        debug_assert!(self.ingress_bytes[in_port][q] >= size);
        self.ingress_bytes[in_port][q] -= size;

        if self.ingress_paused[in_port][q] {
            let threshold = self.pfc_pause_threshold(fluid_occ);
            let resume_at = threshold.saturating_sub(self.cfg.pfc_resume_offset_bytes);
            if self.ingress_bytes[in_port][q] <= resume_at {
                self.ingress_paused[in_port][q] = false;
                resumes.push((in_port as u16, q as u8));
            }
        }
    }
}

/// Per-host sender-side scheduling state.
#[derive(Clone, Debug)]
pub struct Host {
    /// The single NIC.
    pub port: EgressPort,
    /// Active (not finished) flows per data priority, pulled round-robin.
    /// Bounded by *concurrent* flows on this host (deactivated at
    /// completion), not total flow lifetimes — safe at hyperscale.
    pub active: Vec<Vec<FlowId>>,
    /// Round-robin cursor per priority.
    pub rr: Vec<usize>,
    /// Earliest already-scheduled wakeup poke; `Time::MAX` when none.
    pub next_poke: Time,
}

impl Host {
    /// New host with a NIC of `num_prios + 1` queues.
    pub fn new(port: EgressPort, num_prios: u8) -> Self {
        Host {
            port,
            // simlint::allow(hot-path-alloc, host construction runs once at topology build, not per event)
            active: vec![Vec::new(); num_prios as usize],
            // simlint::allow(hot-path-alloc, host construction runs once at topology build, not per event)
            rr: vec![0; num_prios as usize],
            next_poke: Time::MAX,
        }
    }

    /// Register a flow as active at `prio`.
    pub fn activate(&mut self, prio: u8, flow: FlowId) {
        self.active[prio as usize].push(flow);
    }

    /// Remove a finished flow.
    pub fn deactivate(&mut self, prio: u8, flow: FlowId) {
        let list = &mut self.active[prio as usize];
        if let Some(pos) = list.iter().position(|&f| f == flow) {
            list.remove(pos);
            let rr = &mut self.rr[prio as usize];
            if *rr > pos {
                *rr -= 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Packet, PktTag};

    fn port(nq: usize) -> EgressPort {
        EgressPort::new(1, 0, Rate::from_gbps(100), Time::from_us(1), nq)
    }

    fn data(a: &mut PacketArena, prio: u8, bytes: u32) -> PacketId {
        a.alloc(Packet::data(0, 0, 1, prio, bytes, 0, Time::ZERO))
    }

    #[test]
    fn strict_priority_dequeue_order() {
        let mut a = PacketArena::new();
        let mut p = port(4);
        for prio in [0, 2, 1] {
            let id = data(&mut a, prio, 100);
            p.enqueue(id, &a);
        }
        let order: Vec<u8> = std::iter::from_fn(|| p.dequeue(&a))
            .map(|id| a.get(id).prio)
            .collect();
        assert_eq!(order, vec![2, 1, 0]);
    }

    #[test]
    fn control_queue_beats_all_data() {
        let mut a = PacketArena::new();
        let mut p = port(3); // 2 data prios + control at index 2
        let d = data(&mut a, 1, 100);
        p.enqueue(d, &a);
        let mut ack = Packet::pfc(0, 1, 0, true);
        ack.prio = 2;
        let ack = a.alloc(ack);
        p.enqueue(ack, &a);
        let first = p.dequeue(&a).unwrap();
        assert!(matches!(a.get(first).kind, PktTag::Pfc { .. }));
    }

    #[test]
    fn paused_priority_is_skipped() {
        let mut a = PacketArena::new();
        let mut p = port(3);
        let hi = data(&mut a, 1, 100);
        let lo = data(&mut a, 0, 200);
        p.enqueue(hi, &a);
        p.enqueue(lo, &a);
        p.set_paused(1, true);
        assert_eq!(a.get(p.dequeue(&a).unwrap()).prio, 0);
        assert!(!p.has_sendable() || p.is_paused(1));
        p.set_paused(1, false);
        assert_eq!(a.get(p.dequeue(&a).unwrap()).prio, 1);
    }

    #[test]
    fn byte_accounting_balances() {
        let mut a = PacketArena::new();
        let mut p = port(2);
        let x = data(&mut a, 0, 1000);
        let y = data(&mut a, 1, 500);
        p.enqueue(x, &a);
        p.enqueue(y, &a);
        assert_eq!(p.queued_bytes, 1048 + 548);
        p.dequeue(&a);
        p.dequeue(&a);
        assert_eq!(p.queued_bytes, 0);
        assert!(p.queued_bytes_q.iter().all(|&b| b == 0));
    }

    fn mk_switch(pfc: bool, buffer: u64) -> Switch {
        let cfg = SwitchConfig {
            buffer_bytes: buffer,
            pfc_enabled: pfc,
            pfc_lossless_prios: 0,
            ..Default::default()
        };
        let ports = (0..2).map(|_| port(3)).collect();
        Switch::new(cfg, ports, 2)
    }

    #[test]
    fn lossy_switch_drops_over_dt_limit() {
        let mut a = PacketArena::new();
        let mut s = mk_switch(false, 10_000);
        let mut pauses = Vec::new();
        let mut admitted = 0;
        for i in 0..20 {
            let id = a.alloc(Packet::data(0, 0, 1, 0, 1000, i * 1000, Time::ZERO));
            if s.admit(0, 1, id, 0, &mut a, &mut pauses) == Admission::Queued {
                admitted += 1;
            }
        }
        assert!(admitted < 20, "DT must reject some packets");
        assert!(
            admitted >= 4,
            "DT must accept early packets, got {admitted}"
        );
        assert!(pauses.is_empty(), "no PFC in lossy mode");
        // Dropped packets were released by admit; queued ones stay live.
        assert_eq!(a.live_count(), admitted);
    }

    #[test]
    fn pfc_pause_and_resume_cycle() {
        let mut a = PacketArena::new();
        let mut s = mk_switch(true, 20_000);
        let mut pauses = Vec::new();
        let mut i = 0u64;
        // Fill until a pause is emitted.
        while pauses.is_empty() && i < 100 {
            let id = a.alloc(Packet::data(0, 0, 1, 0, 1000, i * 1000, Time::ZERO));
            s.admit(0, 1, id, 0, &mut a, &mut pauses);
            i += 1;
        }
        assert!(!pauses.is_empty(), "pause must trigger");
        assert_eq!(pauses[0], (1, 0));
        assert!(s.ingress_paused[1][0]);
        // Drain; resume must eventually be emitted.
        let mut resumes = Vec::new();
        while let Some(id) = s.ports[0].dequeue(&a) {
            s.on_dequeue(a.get(id), 0, &mut resumes);
            a.release(id);
        }
        assert_eq!(resumes, vec![(1, 0)]);
        assert_eq!(s.total_buffered, 0);
        assert_eq!(a.live_count(), 0);
    }

    #[test]
    fn ecn_marking_thresholds() {
        let mut a = PacketArena::new();
        let mut s = mk_switch(true, 10_000_000);
        s.cfg.ecn_kmin = 2_000;
        s.cfg.ecn_kmax = 4_000;
        s.cfg.ecn_pmax = 1.0;
        let mut rng = SimRng::new(5);
        let mut pauses = Vec::new();
        // Below kmin: never marked.
        assert!(!s.ecn_mark(0, 0, 0, 0, &mut rng));
        for i in 0..5 {
            let id = a.alloc(Packet::data(0, 0, 1, 0, 1000, i * 1000, Time::ZERO));
            s.admit(0, 1, id, 0, &mut a, &mut pauses);
        }
        // Above kmax: always marked.
        assert!(s.ecn_mark(0, 0, 0, 0, &mut rng));
    }

    #[test]
    fn prio_scaled_ecn_marks_low_dscp_first() {
        let mut a = PacketArena::new();
        let mut s = mk_switch(true, 10_000_000);
        s.cfg.ecn_kmin = 2_000;
        s.cfg.ecn_kmax = 4_000;
        s.cfg.ecn_pmax = 1.0;
        s.cfg.ecn_prio_scaled = true;
        let mut rng = SimRng::new(6);
        let mut pauses = Vec::new();
        for i in 0..5 {
            let id = a.alloc(Packet::data(0, 0, 1, 0, 1000, i * 1000, Time::ZERO));
            s.admit(0, 1, id, 0, &mut a, &mut pauses);
        }
        // ~5 KB queued: dscp 0 thresholds (2k/4k) => always marked;
        // dscp 3 thresholds (8k/16k) => never marked.
        assert!(s.ecn_mark(0, 0, 0, 0, &mut rng));
        assert!(!s.ecn_mark(0, 0, 3, 0, &mut rng));
    }

    #[test]
    fn host_activate_deactivate_keeps_rr_valid() {
        let p = port(3);
        let mut h = Host::new(p, 2);
        h.activate(1, 10);
        h.activate(1, 11);
        h.activate(1, 12);
        h.rr[1] = 2;
        h.deactivate(1, 11);
        assert_eq!(h.active[1], vec![10, 12]);
        assert_eq!(h.rr[1], 1);
        h.deactivate(1, 99); // unknown flow: no-op
        assert_eq!(h.active[1].len(), 2);
    }
}
