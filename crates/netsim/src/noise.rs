//! Delay-measurement noise and non-congestive delay models.
//!
//! The paper measures the delay noise of NIC hardware timestamping in its
//! testbed (Fig 7): an additive, long-tailed distribution with mean
//! ≈ 0.3 µs and less than 0.1 % probability of exceeding 1 µs. All PrioPlus
//! simulations inject this noise into delay samples to increase fidelity; we
//! do the same with a fitted synthetic model.

use simcore::{SimRng, Time};

/// Additive delay-measurement noise applied to every RTT sample a host takes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum NoiseModel {
    /// No noise (idealized hardware timestamps).
    None,
    /// Long-tail noise fitted to the paper's Fig 7 testbed measurement,
    /// multiplied by `scale` (Fig 10d sweeps this scale).
    ///
    /// The fit: with probability 0.999, noise ~ Exp(mean 0.28 µs) truncated
    /// at 1 µs; with probability 0.001, a tail sample uniform in
    /// [1 µs, 3 µs]. This yields mean ≈ 0.3 µs and P(>1 µs) ≈ 0.1 %.
    Fitted {
        /// Multiplier on the fitted distribution (1.0 = testbed).
        scale: f64,
    },
    /// Uniform noise in `[0, range]`; used to model non-congestive delay
    /// variation (Fig 13) when applied in-path.
    Uniform {
        /// Upper bound of the uniform range in picoseconds.
        range_ps: u64,
    },
}

impl NoiseModel {
    /// Fitted testbed noise at scale 1.0.
    pub fn testbed() -> Self {
        NoiseModel::Fitted { scale: 1.0 }
    }

    /// Draw one noise sample. Additive: always ≥ 0 (measured delay is never
    /// below the true network delay, §4.3.2).
    pub fn sample(&self, rng: &mut SimRng) -> Time {
        match *self {
            NoiseModel::None => Time::ZERO,
            NoiseModel::Fitted { scale } => {
                let body_mean_us = 0.28;
                let us = if rng.f64() < 0.999 {
                    // Truncated exponential body.
                    loop {
                        let v = rng.exponential(body_mean_us);
                        if v < 1.0 {
                            break v;
                        }
                    }
                } else {
                    rng.range_f64(1.0, 3.0)
                };
                Time::from_us_f64(us * scale)
            }
            NoiseModel::Uniform { range_ps } => {
                if range_ps == 0 {
                    Time::ZERO
                } else {
                    Time::from_ps(rng.below(range_ps + 1))
                }
            }
        }
    }

    /// The `p`-th percentile of the model (Monte-Carlo; deterministic given
    /// the internal fixed seed), used by operators to pick the channel-width
    /// noise allowance `B` (§4.3.2).
    pub fn percentile_us(&self, p: f64) -> f64 {
        let mut rng = SimRng::new(0xF17);
        let n = 100_000;
        let mut samples: Vec<f64> = (0..n).map(|_| self.sample(&mut rng).as_us_f64()).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = ((p / 100.0 * n as f64).ceil() as usize).clamp(1, n);
        samples[rank - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_zero() {
        let mut rng = SimRng::new(1);
        assert_eq!(NoiseModel::None.sample(&mut rng), Time::ZERO);
    }

    #[test]
    fn fitted_matches_paper_statistics() {
        let m = NoiseModel::testbed();
        let mut rng = SimRng::new(2);
        let n = 200_000;
        let mut sum = 0.0;
        let mut over_1us = 0usize;
        for _ in 0..n {
            let s = m.sample(&mut rng).as_us_f64();
            assert!(s >= 0.0);
            sum += s;
            if s > 1.0 {
                over_1us += 1;
            }
        }
        let mean = sum / n as f64;
        // Paper: mean ~0.3us, <0.1% above 1us.
        assert!((0.2..0.4).contains(&mean), "mean {mean}");
        let frac = over_1us as f64 / n as f64;
        assert!(frac < 0.002, "tail fraction {frac}");
    }

    #[test]
    fn fitted_scale_scales_mean() {
        let mut rng = SimRng::new(3);
        let m1 = NoiseModel::Fitted { scale: 1.0 };
        let m4 = NoiseModel::Fitted { scale: 4.0 };
        let n = 50_000;
        let mean = |m: &NoiseModel, rng: &mut SimRng| {
            (0..n).map(|_| m.sample(rng).as_us_f64()).sum::<f64>() / n as f64
        };
        let m1v = mean(&m1, &mut rng);
        let m4v = mean(&m4, &mut rng);
        assert!((m4v / m1v - 4.0).abs() < 0.3, "ratio {}", m4v / m1v);
    }

    #[test]
    fn uniform_bounded() {
        let m = NoiseModel::Uniform {
            range_ps: Time::from_us(10).as_ps(),
        };
        let mut rng = SimRng::new(4);
        for _ in 0..10_000 {
            let s = m.sample(&mut rng);
            assert!(s <= Time::from_us(10));
        }
    }

    #[test]
    fn percentile_is_monotone_in_p() {
        let m = NoiseModel::testbed();
        let p50 = m.percentile_us(50.0);
        let p9985 = m.percentile_us(99.85);
        assert!(p9985 >= p50);
        // Paper picks 0.8us as the 99.85th percentile of its testbed noise.
        assert!(
            (0.5..1.6).contains(&p9985),
            "p99.85 {p9985} should be near the paper's 0.8us"
        );
    }
}
