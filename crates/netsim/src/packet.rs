//! Packet and identifier types.

use simcore::Time;

/// Index of a node (host or switch) in the simulation.
pub type NodeId = u32;

/// Index of a flow in the simulation.
pub type FlowId = u32;

/// Wire overhead added to every data payload (Ethernet + IP + transport
/// headers; the paper's DPDK stack uses a comparable fixed header).
pub const HEADER_BYTES: u32 = 48;

/// Wire size of an ACK / probe / probe-ACK / NACK control packet.
pub const CONTROL_BYTES: u32 = 64;

/// One INT (in-band network telemetry) record appended per hop for HPCC.
#[derive(Clone, Copy, Debug)]
pub struct IntHop {
    /// Egress queue length in bytes at enqueue time.
    pub qlen: u64,
    /// Cumulative bytes transmitted by the egress port.
    pub tx_bytes: u64,
    /// Timestamp of the observation.
    pub ts: Time,
    /// Port line rate in bits per second.
    pub rate_bps: u64,
}

impl IntHop {
    const ZERO: IntHop = IntHop {
        qlen: 0,
        tx_bytes: 0,
        ts: Time::ZERO,
        rate_bps: 0,
    };
}

/// Hop count an [`IntPath`] stores without touching the heap. Data-center
/// paths in the paper's topologies are ≤ 5 hops, so the inline capacity
/// covers them with margin.
pub const INT_INLINE_HOPS: usize = 8;

/// The INT records collected along a packet's path.
///
/// Stores up to [`INT_INLINE_HOPS`] hops inline; only paths longer than that
/// spill to a heap `Vec`. Boxed as `Option<Box<IntPath>>` in [`Packet`] /
/// [`AckInfo`], an INT-carrying packet costs exactly one allocation, versus
/// the old `Box<Vec<IntHop>>`'s box + vec buffer + growth reallocations.
#[derive(Clone, Debug)]
pub struct IntPath {
    len: u8,
    inline: [IntHop; INT_INLINE_HOPS],
    spill: Vec<IntHop>,
}

impl Default for IntPath {
    fn default() -> Self {
        Self::new()
    }
}

impl IntPath {
    /// New empty path.
    pub fn new() -> Self {
        IntPath {
            len: 0,
            inline: [IntHop::ZERO; INT_INLINE_HOPS],
            spill: Vec::new(),
        }
    }

    /// Append one hop record.
    pub fn push(&mut self, hop: IntHop) {
        if self.spill.is_empty() {
            if (self.len as usize) < INT_INLINE_HOPS {
                self.inline[self.len as usize] = hop;
                self.len += 1;
                return;
            }
            // First spill: migrate the inline records so `as_slice` stays a
            // single contiguous view.
            self.spill.reserve(INT_INLINE_HOPS * 2);
            self.spill.extend_from_slice(&self.inline[..self.len as usize]);
        }
        self.spill.push(hop);
    }

    /// Number of hop records.
    pub fn len(&self) -> usize {
        if self.spill.is_empty() {
            self.len as usize
        } else {
            self.spill.len()
        }
    }

    /// True when no hops have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All hop records, in path order.
    pub fn as_slice(&self) -> &[IntHop] {
        if self.spill.is_empty() {
            &self.inline[..self.len as usize]
        } else {
            &self.spill
        }
    }
}

/// Acknowledgment contents carried by [`PktKind::Ack`] and
/// [`PktKind::ProbeAck`].
#[derive(Clone, Debug)]
pub struct AckInfo {
    /// Cumulative bytes received in-order at the receiver.
    pub cum_bytes: u64,
    /// Sequence (byte offset) of the specific packet being acknowledged.
    pub acked_seq: u64,
    /// Number of payload bytes acknowledged by this ACK.
    pub acked_bytes: u32,
    /// Sender timestamp echoed back for RTT measurement.
    pub ts_echo: Time,
    /// ECN CE mark observed on the acknowledged data packet.
    pub ecn_echo: bool,
    /// Selective NACK: a missing byte range `[from, to)` detected by the
    /// receiver (lossy/IRN mode only).
    pub nack: Option<(u64, u64)>,
    /// Echoed INT telemetry (HPCC mode).
    pub int: Option<Box<IntPath>>,
}

/// What a packet is.
#[derive(Clone, Debug)]
pub enum PktKind {
    /// A data segment.
    Data,
    /// A minimal-size delay probe (PrioPlus §4.2.1).
    Probe,
    /// Acknowledgment of a data segment.
    Ack(AckInfo),
    /// Echo of a probe.
    ProbeAck(AckInfo),
    /// PFC pause/resume control frame for one priority, handled out-of-band
    /// at the MAC layer (never queued).
    Pfc {
        /// Priority (queue index) being paused or resumed.
        prio: u8,
        /// `true` = pause, `false` = resume.
        pause: bool,
    },
}

impl PktKind {
    /// True for PFC control frames.
    pub fn is_pfc(&self) -> bool {
        matches!(self, PktKind::Pfc { .. })
    }

    /// True for data segments (the only packets subject to ECN marking,
    /// non-congestive delay, and drops).
    pub fn is_data(&self) -> bool {
        matches!(self, PktKind::Data)
    }

    /// True for end-to-end control packets (ACKs, probes, probe echoes):
    /// everything that is neither a data segment nor a link-local PFC frame.
    pub fn is_control(&self) -> bool {
        !self.is_data() && !self.is_pfc()
    }
}

/// A packet in flight.
#[derive(Clone, Debug)]
pub struct Packet {
    /// Owning flow (undefined for PFC frames, set to `u32::MAX`).
    pub flow: FlowId,
    /// Origin host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// Physical priority queue index this packet travels in.
    pub prio: u8,
    /// DSCP code point carrying the flow's *virtual* priority; used by the
    /// priority-scaled ECN extension (Appendix B) where switches vary the
    /// marking threshold by DSCP.
    pub dscp: u8,
    /// Total wire size in bytes (header included).
    pub size: u32,
    /// Payload bytes (0 for control packets).
    pub payload: u32,
    /// Byte-offset sequence number of the first payload byte.
    pub seq: u64,
    /// Packet kind and kind-specific contents.
    pub kind: PktKind,
    /// Timestamp when the sender put the packet on the wire.
    pub ts_tx: Time,
    /// ECN congestion-experienced mark.
    pub ecn_ce: bool,
    /// INT telemetry collected along the path (HPCC mode).
    pub int: Option<Box<IntPath>>,
    /// Transient: ingress port at the switch currently holding the packet
    /// (for PFC ingress accounting).
    pub cur_in_port: u16,
}

impl Packet {
    /// Construct a data segment.
    pub fn data(
        flow: FlowId,
        src: NodeId,
        dst: NodeId,
        prio: u8,
        payload: u32,
        seq: u64,
        ts_tx: Time,
    ) -> Self {
        Packet {
            flow,
            src,
            dst,
            prio,
            dscp: 0,
            size: payload + HEADER_BYTES,
            payload,
            seq,
            kind: PktKind::Data,
            ts_tx,
            ecn_ce: false,
            int: None,
            cur_in_port: 0,
        }
    }

    /// Construct a probe packet.
    pub fn probe(flow: FlowId, src: NodeId, dst: NodeId, prio: u8, ts_tx: Time) -> Self {
        Packet {
            flow,
            src,
            dst,
            prio,
            dscp: 0,
            size: CONTROL_BYTES,
            payload: 0,
            seq: 0,
            kind: PktKind::Probe,
            ts_tx,
            ecn_ce: false,
            int: None,
            cur_in_port: 0,
        }
    }

    /// Construct an acknowledgment (or probe echo) for a received packet.
    pub fn ack(
        flow: FlowId,
        src: NodeId,
        dst: NodeId,
        prio: u8,
        info: AckInfo,
        probe: bool,
        ts_tx: Time,
    ) -> Self {
        Packet {
            flow,
            src,
            dst,
            prio,
            dscp: 0,
            size: CONTROL_BYTES,
            payload: 0,
            seq: 0,
            kind: if probe {
                PktKind::ProbeAck(info)
            } else {
                PktKind::Ack(info)
            },
            ts_tx,
            ecn_ce: false,
            int: None,
            cur_in_port: 0,
        }
    }

    /// Construct a PFC pause/resume frame.
    pub fn pfc(src: NodeId, dst: NodeId, prio: u8, pause: bool) -> Self {
        Packet {
            flow: u32::MAX,
            src,
            dst,
            prio,
            dscp: 0,
            size: CONTROL_BYTES,
            payload: 0,
            seq: 0,
            kind: PktKind::Pfc { prio, pause },
            ts_tx: Time::ZERO,
            ecn_ce: false,
            int: None,
            cur_in_port: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_packet_wire_size_includes_header() {
        let p = Packet::data(0, 1, 2, 3, 1000, 0, Time::ZERO);
        assert_eq!(p.size, 1048);
        assert_eq!(p.payload, 1000);
        assert!(p.kind.is_data());
    }

    #[test]
    fn int_path_inline_then_spills() {
        let mut p = IntPath::new();
        assert!(p.is_empty());
        let hop = |i: u64| IntHop {
            qlen: i,
            tx_bytes: i * 10,
            ts: Time::from_us(i),
            rate_bps: 100,
        };
        for i in 0..INT_INLINE_HOPS as u64 {
            p.push(hop(i));
        }
        assert_eq!(p.len(), INT_INLINE_HOPS);
        assert_eq!(p.as_slice().len(), INT_INLINE_HOPS);
        // Push past inline capacity: order must be preserved across the
        // spill.
        for i in INT_INLINE_HOPS as u64..12 {
            p.push(hop(i));
        }
        assert_eq!(p.len(), 12);
        let qlens: Vec<u64> = p.as_slice().iter().map(|h| h.qlen).collect();
        assert_eq!(qlens, (0..12).collect::<Vec<u64>>());
    }

    #[test]
    fn control_packets_are_64_bytes() {
        let probe = Packet::probe(0, 1, 2, 3, Time::ZERO);
        assert_eq!(probe.size, CONTROL_BYTES);
        let pfc = Packet::pfc(1, 2, 0, true);
        assert_eq!(pfc.size, CONTROL_BYTES);
        assert!(pfc.kind.is_pfc());
        assert!(!probe.kind.is_data());
    }
}
