//! Packet and identifier types.

use simcore::Time;

/// Index of a node (host or switch) in the simulation.
pub type NodeId = u32;

/// Index of a flow in the simulation.
pub type FlowId = u32;

/// Wire overhead added to every data payload (Ethernet + IP + transport
/// headers; the paper's DPDK stack uses a comparable fixed header).
pub const HEADER_BYTES: u32 = 48;

/// Wire size of an ACK / probe / probe-ACK / NACK control packet.
pub const CONTROL_BYTES: u32 = 64;

/// One INT (in-band network telemetry) record appended per hop for HPCC.
#[derive(Clone, Copy, Debug)]
pub struct IntHop {
    /// Egress queue length in bytes at enqueue time.
    pub qlen: u64,
    /// Cumulative bytes transmitted by the egress port.
    pub tx_bytes: u64,
    /// Timestamp of the observation.
    pub ts: Time,
    /// Port line rate in bits per second.
    pub rate_bps: u64,
}

impl IntHop {
    const ZERO: IntHop = IntHop {
        qlen: 0,
        tx_bytes: 0,
        ts: Time::ZERO,
        rate_bps: 0,
    };
}

/// Hop count an [`IntPath`] stores without touching the heap. Data-center
/// paths in the paper's topologies are ≤ 5 hops, so the inline capacity
/// covers them with margin.
pub const INT_INLINE_HOPS: usize = 8;

/// Hard cap on hop records an [`IntPath`] will store. Matches the routing
/// layer's 64-hop loop guard, so any path this long is a routing bug, not a
/// telemetry need. Past the cap [`IntPath::push`] saturates: the record is
/// discarded and `push` returns `false` (the first `len()` hops stay exact —
/// a transport computing per-hop gradients sees a stable prefix, never
/// silently shifted or truncated records).
pub const INT_MAX_HOPS: usize = 64;

/// The INT records collected along a packet's path.
///
/// Stores up to [`INT_INLINE_HOPS`] hops inline; only paths longer than that
/// spill to a heap `Vec`. Boxed as `Option<Box<IntPath>>` in [`Packet`] /
/// [`AckInfo`], an INT-carrying packet costs exactly one allocation, versus
/// the old `Box<Vec<IntHop>>`'s box + vec buffer + growth reallocations.
#[derive(Clone, Debug)]
pub struct IntPath {
    len: u8,
    inline: [IntHop; INT_INLINE_HOPS],
    spill: Vec<IntHop>,
}

impl Default for IntPath {
    fn default() -> Self {
        Self::new()
    }
}

impl IntPath {
    /// New empty path.
    pub fn new() -> Self {
        IntPath {
            len: 0,
            inline: [IntHop::ZERO; INT_INLINE_HOPS],
            spill: Vec::new(),
        }
    }

    /// Append one hop record. Returns `false` — leaving the path unchanged
    /// — once [`INT_MAX_HOPS`] records are stored (see the cap's docs).
    pub fn push(&mut self, hop: IntHop) -> bool {
        if self.spill.is_empty() {
            if (self.len as usize) < INT_INLINE_HOPS {
                self.inline[self.len as usize] = hop;
                self.len += 1;
                return true;
            }
            // First spill: migrate the inline records so `as_slice` stays a
            // single contiguous view.
            self.spill.reserve(INT_INLINE_HOPS * 2);
            self.spill.extend_from_slice(&self.inline[..self.len as usize]);
        } else if self.spill.len() >= INT_MAX_HOPS {
            return false;
        }
        self.spill.push(hop);
        true
    }

    /// Number of hop records.
    pub fn len(&self) -> usize {
        if self.spill.is_empty() {
            self.len as usize
        } else {
            self.spill.len()
        }
    }

    /// True when no hops have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All hop records, in path order.
    pub fn as_slice(&self) -> &[IntHop] {
        if self.spill.is_empty() {
            &self.inline[..self.len as usize]
        } else {
            &self.spill
        }
    }

    /// Reset to an empty path, keeping any spill capacity. Used by the
    /// [`PacketArena`] recycle stack so a reused INT box never leaks hop
    /// records from its previous life.
    pub fn clear(&mut self) {
        self.len = 0;
        self.spill.clear();
    }
}

/// Acknowledgment contents carried by [`PktKind::Ack`] and
/// [`PktKind::ProbeAck`].
#[derive(Clone, Debug)]
pub struct AckInfo {
    /// Cumulative bytes received in-order at the receiver.
    pub cum_bytes: u64,
    /// Sequence (byte offset) of the specific packet being acknowledged.
    pub acked_seq: u64,
    /// Number of payload bytes acknowledged by this ACK.
    pub acked_bytes: u32,
    /// Sender timestamp echoed back for RTT measurement.
    pub ts_echo: Time,
    /// ECN CE mark observed on the acknowledged data packet.
    pub ecn_echo: bool,
    /// Selective NACK: a missing byte range `[from, to)` detected by the
    /// receiver (lossy/IRN mode only).
    pub nack: Option<(u64, u64)>,
    /// Echoed INT telemetry (HPCC mode).
    pub int: Option<Box<IntPath>>,
}

/// What a packet is.
#[derive(Clone, Debug)]
pub enum PktKind {
    /// A data segment.
    Data,
    /// A minimal-size delay probe (PrioPlus §4.2.1).
    Probe,
    /// Acknowledgment of a data segment.
    Ack(AckInfo),
    /// Echo of a probe.
    ProbeAck(AckInfo),
    /// PFC pause/resume control frame for one priority, handled out-of-band
    /// at the MAC layer (never queued).
    Pfc {
        /// Priority (queue index) being paused or resumed.
        prio: u8,
        /// `true` = pause, `false` = resume.
        pause: bool,
    },
}

impl PktKind {
    /// True for PFC control frames.
    pub fn is_pfc(&self) -> bool {
        matches!(self, PktKind::Pfc { .. })
    }

    /// True for data segments (the only packets subject to ECN marking,
    /// non-congestive delay, and drops).
    pub fn is_data(&self) -> bool {
        matches!(self, PktKind::Data)
    }

    /// True for end-to-end control packets (ACKs, probes, probe echoes):
    /// everything that is neither a data segment nor a link-local PFC frame.
    pub fn is_control(&self) -> bool {
        !self.is_data() && !self.is_pfc()
    }
}

/// Discriminant-only packet kind stored in the hot header plane.
///
/// The structure-of-arrays arena splits each packet into a hot
/// [`PktHeader`] (read on every hop) and a cold plane holding the bulky
/// kind-specific payloads ([`AckInfo`], the INT box). `PktTag` is the
/// `Copy` discriminant that stays in the header: forwarding, queue
/// selection, and PFC classification branch on it without ever touching
/// the cold plane.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PktTag {
    /// A data segment.
    Data,
    /// A minimal-size delay probe (PrioPlus §4.2.1).
    Probe,
    /// Acknowledgment of a data segment (payload in the cold plane).
    Ack,
    /// Echo of a probe (payload in the cold plane).
    ProbeAck,
    /// PFC pause/resume control frame for one priority, handled out-of-band
    /// at the MAC layer (never queued).
    Pfc {
        /// Priority (queue index) being paused or resumed.
        prio: u8,
        /// `true` = pause, `false` = resume.
        pause: bool,
    },
}

impl PktTag {
    /// True for PFC control frames.
    #[inline]
    pub fn is_pfc(&self) -> bool {
        matches!(self, PktTag::Pfc { .. })
    }

    /// True for data segments (the only packets subject to ECN marking,
    /// non-congestive delay, and drops).
    #[inline]
    pub fn is_data(&self) -> bool {
        matches!(self, PktTag::Data)
    }

    /// True for end-to-end control packets (ACKs, probes, probe echoes):
    /// everything that is neither a data segment nor a link-local PFC frame.
    #[inline]
    pub fn is_control(&self) -> bool {
        !self.is_data() && !self.is_pfc()
    }
}

/// The hot plane of a packet: every field the forwarding path touches on
/// every hop (routing, queue selection, byte accounting, ECN, PFC
/// classification), and nothing else.
///
/// [`PacketArena`] stores these contiguously, separate from the cold
/// kind-specific payloads, so a hop's working set is one small header per
/// packet instead of a header plus an [`AckInfo`]-sized tail it never
/// reads. The `hot_header_fits_budget` size pin holds this to ≤ 48 bytes —
/// grow it past that and the test will ask you to justify the cache cost.
#[derive(Clone, Debug)]
pub struct PktHeader {
    /// Owning flow (undefined for PFC frames, set to `u32::MAX`).
    pub flow: FlowId,
    /// Origin host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// Total wire size in bytes (header included).
    pub size: u32,
    /// Payload bytes (0 for control packets).
    pub payload: u32,
    /// Byte-offset sequence number of the first payload byte.
    pub seq: u64,
    /// Timestamp when the sender put the packet on the wire.
    pub ts_tx: Time,
    /// Transient: ingress port at the switch currently holding the packet
    /// (for PFC ingress accounting).
    pub cur_in_port: u16,
    /// Physical priority queue index this packet travels in.
    pub prio: u8,
    /// DSCP code point carrying the flow's *virtual* priority; used by the
    /// priority-scaled ECN extension (Appendix B) where switches vary the
    /// marking threshold by DSCP.
    pub dscp: u8,
    /// ECN congestion-experienced mark.
    pub ecn_ce: bool,
    /// Packet kind discriminant; the kind-specific payload lives in the
    /// arena's cold plane.
    pub kind: PktTag,
}

/// The cold plane of a packet: bulky state only the endpoints touch
/// (once per packet, not once per hop).
#[derive(Clone, Debug, Default)]
struct PktCold {
    /// INT telemetry collected along the path (HPCC mode).
    int: Option<Box<IntPath>>,
    /// ACK payload for [`PktTag::Ack`] / [`PktTag::ProbeAck`].
    ack: Option<AckInfo>,
}

/// A packet in flight, in its construction-side (array-of-structs) form.
///
/// Endpoints build a `Packet` with the constructors below and hand it to
/// [`PacketArena::alloc`], which splits it into the hot [`PktHeader`] plane
/// and the cold payload plane. Code holding a [`PacketId`] reads the header
/// via [`PacketArena::get`] and the cold parts via
/// [`PacketArena::take_ack`] / [`PacketArena::take_int`].
#[derive(Clone, Debug)]
pub struct Packet {
    /// Owning flow (undefined for PFC frames, set to `u32::MAX`).
    pub flow: FlowId,
    /// Origin host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// Physical priority queue index this packet travels in.
    pub prio: u8,
    /// DSCP code point carrying the flow's *virtual* priority; used by the
    /// priority-scaled ECN extension (Appendix B) where switches vary the
    /// marking threshold by DSCP.
    pub dscp: u8,
    /// Total wire size in bytes (header included).
    pub size: u32,
    /// Payload bytes (0 for control packets).
    pub payload: u32,
    /// Byte-offset sequence number of the first payload byte.
    pub seq: u64,
    /// Packet kind and kind-specific contents.
    pub kind: PktKind,
    /// Timestamp when the sender put the packet on the wire.
    pub ts_tx: Time,
    /// ECN congestion-experienced mark.
    pub ecn_ce: bool,
    /// INT telemetry collected along the path (HPCC mode).
    pub int: Option<Box<IntPath>>,
    /// Transient: ingress port at the switch currently holding the packet
    /// (for PFC ingress accounting).
    pub cur_in_port: u16,
}

impl Packet {
    /// Construct a data segment.
    pub fn data(
        flow: FlowId,
        src: NodeId,
        dst: NodeId,
        prio: u8,
        payload: u32,
        seq: u64,
        ts_tx: Time,
    ) -> Self {
        Packet {
            flow,
            src,
            dst,
            prio,
            dscp: 0,
            size: payload + HEADER_BYTES,
            payload,
            seq,
            kind: PktKind::Data,
            ts_tx,
            ecn_ce: false,
            int: None,
            cur_in_port: 0,
        }
    }

    /// Construct a probe packet.
    pub fn probe(flow: FlowId, src: NodeId, dst: NodeId, prio: u8, ts_tx: Time) -> Self {
        Packet {
            flow,
            src,
            dst,
            prio,
            dscp: 0,
            size: CONTROL_BYTES,
            payload: 0,
            seq: 0,
            kind: PktKind::Probe,
            ts_tx,
            ecn_ce: false,
            int: None,
            cur_in_port: 0,
        }
    }

    /// Construct an acknowledgment (or probe echo) for a received packet.
    pub fn ack(
        flow: FlowId,
        src: NodeId,
        dst: NodeId,
        prio: u8,
        info: AckInfo,
        probe: bool,
        ts_tx: Time,
    ) -> Self {
        Packet {
            flow,
            src,
            dst,
            prio,
            dscp: 0,
            size: CONTROL_BYTES,
            payload: 0,
            seq: 0,
            kind: if probe {
                PktKind::ProbeAck(info)
            } else {
                PktKind::Ack(info)
            },
            ts_tx,
            ecn_ce: false,
            int: None,
            cur_in_port: 0,
        }
    }

    /// Construct a PFC pause/resume frame.
    pub fn pfc(src: NodeId, dst: NodeId, prio: u8, pause: bool) -> Self {
        Packet {
            flow: u32::MAX,
            src,
            dst,
            prio,
            dscp: 0,
            size: CONTROL_BYTES,
            payload: 0,
            seq: 0,
            kind: PktKind::Pfc { prio, pause },
            ts_tx: Time::ZERO,
            ecn_ce: false,
            int: None,
            cur_in_port: 0,
        }
    }
}

/// Copyable handle into a [`PacketArena`] slot.
///
/// Events and port queues carry this 4-byte id instead of a whole
/// [`Packet`], so scheduler sift/percolate and `VecDeque` rotation move a
/// few machine words per hop. Ids are plain slot indices — no generation
/// tag — because the simulator's packet lifecycle is strictly linear
/// (alloc → queue/fly → release exactly once); the arena's live-flag check
/// plus the audit's reference counting catch any use-after-release in
/// debug and audited runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PacketId(pub u32);

impl PacketId {
    /// The slot index this id names.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Allocation counters kept by a [`PacketArena`].
///
/// `allocs` counts every packet handed out; `slot_allocs` counts only the
/// allocations that had to *grow* the slab (free list empty). In steady
/// state `allocs` keeps climbing while `slot_allocs` stays frozen at
/// `peak_live` — which is exactly the "zero heap allocations per packet"
/// claim, made checkable: the slab grows only while the live population is
/// reaching its high-water mark. `int_allocs`/`int_recycled` do the same
/// split for the `Box<IntPath>` pool.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Packets allocated (total, including slot reuse).
    pub allocs: u64,
    /// Packets released back to the free list.
    pub frees: u64,
    /// Allocations that grew the slab (== final slab capacity).
    pub slot_allocs: u64,
    /// High-water mark of simultaneously live packets.
    pub peak_live: u64,
    /// `Box<IntPath>` boxes created fresh (recycle stack was empty).
    pub int_allocs: u64,
    /// `Box<IntPath>` boxes served from / returned to the recycle stack.
    pub int_recycled: u64,
}

/// Deterministic structure-of-arrays slab allocator for in-flight packets.
///
/// Two parallel planes plus a strictly LIFO free list of `u32` slot
/// indices: the hot plane (`Vec<PktHeader>`) holds the fields the
/// forwarding path reads on every hop; the cold plane holds the bulky
/// endpoint-only payloads (INT box, [`AckInfo`]). A slot index names the
/// same packet in both planes. Releasing slot `i` makes `i` the *next*
/// slot handed out, so the mapping from packet-creation order to slot
/// index is a pure function of the event sequence — identical across
/// runs, scheduler backends, and platforms. (A FIFO free list would be
/// equally deterministic but touch cold slots; LIFO reuses the
/// cache-hot one. What matters for replay is only that the policy is
/// fixed.)
///
/// Retired packets donate their `Box<IntPath>` to a recycle stack, so in
/// steady state neither the slab nor INT telemetry touches the global
/// allocator: forwarding a packet costs zero heap allocations.
#[derive(Clone, Debug, Default)]
pub struct PacketArena {
    hot: Vec<PktHeader>,
    cold: Vec<PktCold>,
    live: Vec<bool>,
    free: Vec<u32>,
    // The boxes themselves are the pooled resource: the cold plane and
    // `AckEvent.int` hold `Box<IntPath>`, and recycling must hand back the
    // exact allocation, not re-box a by-value copy.
    #[allow(clippy::vec_box)]
    int_recycle: Vec<Box<IntPath>>,
    stats: ArenaStats,
}

impl PacketArena {
    /// New empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Store `pkt`, returning its handle. Splits the packet into the hot
    /// header plane and the cold payload plane, and reuses the most
    /// recently freed slot (LIFO) or grows the slab when none is free.
    pub fn alloc(&mut self, pkt: Packet) -> PacketId {
        self.stats.allocs += 1;
        let (tag, ack) = match pkt.kind {
            PktKind::Data => (PktTag::Data, None),
            PktKind::Probe => (PktTag::Probe, None),
            PktKind::Ack(info) => (PktTag::Ack, Some(info)),
            PktKind::ProbeAck(info) => (PktTag::ProbeAck, Some(info)),
            PktKind::Pfc { prio, pause } => (PktTag::Pfc { prio, pause }, None),
        };
        let header = PktHeader {
            flow: pkt.flow,
            src: pkt.src,
            dst: pkt.dst,
            size: pkt.size,
            payload: pkt.payload,
            seq: pkt.seq,
            ts_tx: pkt.ts_tx,
            cur_in_port: pkt.cur_in_port,
            prio: pkt.prio,
            dscp: pkt.dscp,
            ecn_ce: pkt.ecn_ce,
            kind: tag,
        };
        let cold = PktCold { int: pkt.int, ack };
        let id = match self.free.pop() {
            Some(i) => {
                self.hot[i as usize] = header;
                self.cold[i as usize] = cold;
                self.live[i as usize] = true;
                PacketId(i)
            }
            None => {
                let i = self.hot.len() as u32;
                self.stats.slot_allocs += 1;
                self.hot.push(header);
                self.cold.push(cold);
                self.live.push(true);
                PacketId(i)
            }
        };
        let live_now = (self.hot.len() - self.free.len()) as u64;
        if live_now > self.stats.peak_live {
            self.stats.peak_live = live_now;
        }
        id
    }

    /// Borrow the hot header behind `id`.
    #[inline]
    pub fn get(&self, id: PacketId) -> &PktHeader {
        debug_assert!(self.live[id.index()], "get() on freed packet {id:?}");
        &self.hot[id.index()]
    }

    /// Mutably borrow the hot header behind `id`.
    #[inline]
    pub fn get_mut(&mut self, id: PacketId) -> &mut PktHeader {
        debug_assert!(self.live[id.index()], "get_mut() on freed packet {id:?}");
        &mut self.hot[id.index()]
    }

    /// Borrow the INT telemetry of the packet behind `id`, if it carries
    /// any.
    #[inline]
    pub fn int(&self, id: PacketId) -> Option<&IntPath> {
        debug_assert!(self.live[id.index()], "int() on freed packet {id:?}");
        self.cold[id.index()].int.as_deref()
    }

    /// Detach the INT box of the packet behind `id` (the receiver moves it
    /// onto the ACK it emits). The caller owns the box; return it with
    /// [`recycle_int`](Self::recycle_int) when done.
    #[inline]
    pub fn take_int(&mut self, id: PacketId) -> Option<Box<IntPath>> {
        debug_assert!(self.live[id.index()], "take_int() on freed packet {id:?}");
        self.cold[id.index()].int.take()
    }

    /// Detach the ACK payload of the packet behind `id`. `Some` exactly
    /// when the header tag is [`PktTag::Ack`] / [`PktTag::ProbeAck`] and
    /// the payload has not been taken yet; the header tag is left in
    /// place.
    #[inline]
    pub fn take_ack(&mut self, id: PacketId) -> Option<AckInfo> {
        debug_assert!(self.live[id.index()], "take_ack() on freed packet {id:?}");
        self.cold[id.index()].ack.take()
    }

    /// Retire `id`: its slot becomes the next one [`alloc`](Self::alloc)
    /// hands out, and any INT box it carried is cleared and pushed onto the
    /// recycle stack. Panics on double free — a released id must never be
    /// released again.
    pub fn release(&mut self, id: PacketId) {
        let i = id.index();
        assert!(self.live[i], "double free of packet arena slot {}", id.0);
        self.live[i] = false;
        self.stats.frees += 1;
        if let Some(mut boxed) = self.cold[i].int.take() {
            boxed.clear();
            self.stats.int_recycled += 1;
            self.int_recycle.push(boxed);
        }
        // An untaken ACK payload (e.g. an ACK dropped by a fault) is
        // discarded, matching the pre-split behavior where the payload sat
        // in the slot until overwritten by the next alloc.
        self.cold[i].ack = None;
        self.free.push(id.0);
    }

    /// Append an INT hop record to the packet behind `id`, materializing its
    /// `IntPath` from the recycle stack (or, only when the stack is dry, a
    /// fresh box) if the packet does not carry one yet. Returns `false` when
    /// the path was already at [`INT_MAX_HOPS`] and the record was discarded
    /// (see [`IntPath::push`]).
    pub fn append_int(&mut self, id: PacketId, hop: IntHop) -> bool {
        let i = id.index();
        debug_assert!(self.live[i], "append_int() on freed packet {id:?}");
        if self.cold[i].int.is_none() {
            let boxed = match self.int_recycle.pop() {
                Some(b) => {
                    self.stats.int_recycled += 1;
                    b
                }
                None => {
                    self.stats.int_allocs += 1;
                    // simlint::allow(hot-path-alloc, pool refill: runs only until the INT box population reaches its peak, then the recycle stack serves every request)
                    Box::new(IntPath::new())
                }
            };
            self.cold[i].int = Some(boxed);
        }
        match self.cold[i].int.as_mut() {
            Some(path) => path.push(hop),
            None => unreachable!("int box installed above"),
        }
    }

    /// Return a detached INT box (e.g. one that rode an [`AckInfo`] back to
    /// the sender) to the recycle stack.
    pub fn recycle_int(&mut self, mut boxed: Box<IntPath>) {
        boxed.clear();
        self.stats.int_recycled += 1;
        self.int_recycle.push(boxed);
    }

    /// Number of currently live packets.
    pub fn live_count(&self) -> usize {
        self.hot.len() - self.free.len()
    }

    /// Total slots ever created (live + free).
    pub fn capacity(&self) -> usize {
        self.hot.len()
    }

    /// Whether slot `id` is live. Used by the audit's reference scan.
    pub fn is_live(&self, id: PacketId) -> bool {
        self.live.get(id.index()).copied().unwrap_or(false)
    }

    /// Allocation counters.
    pub fn stats(&self) -> ArenaStats {
        self.stats
    }

    /// Fold every deterministic field of the arena into a state digest
    /// ([`crate::sim::Sim::state_digest`]): the full free list (slot-reuse
    /// order is part of determinism), allocation counters, and every live
    /// packet's hot header and cold-plane shape. The recycle stack is
    /// folded by depth only — recycled boxes are cleared, so depth is the
    /// only state they carry.
    pub(crate) fn fold_digest(&self, fold: &mut impl FnMut(u64)) {
        fold(self.hot.len() as u64);
        fold(self.free.len() as u64);
        for &i in &self.free {
            fold(i as u64);
        }
        fold(self.int_recycle.len() as u64);
        fold(self.stats.allocs);
        fold(self.stats.frees);
        fold(self.stats.slot_allocs);
        fold(self.stats.peak_live);
        fold(self.stats.int_allocs);
        fold(self.stats.int_recycled);
        for (i, live) in self.live.iter().enumerate() {
            if !live {
                continue;
            }
            let h = &self.hot[i];
            fold(i as u64);
            fold(h.flow as u64);
            fold((h.src as u64) << 32 | h.dst as u64);
            fold((h.size as u64) << 32 | h.payload as u64);
            fold(h.seq);
            fold(h.ts_tx.as_ps());
            let mut tagged: u64 = (h.cur_in_port as u64) << 32
                | (h.prio as u64) << 24
                | (h.dscp as u64) << 16
                | (h.ecn_ce as u64) << 8;
            tagged |= match h.kind {
                PktTag::Data => 1,
                PktTag::Probe => 2,
                PktTag::Ack => 3,
                PktTag::ProbeAck => 4,
                PktTag::Pfc { prio, pause } => {
                    0x80 | (prio as u64) << 40 | (pause as u64) << 48
                }
            };
            fold(tagged);
            let c = &self.cold[i];
            fold(c.int.as_deref().map_or(0, |p| p.len() as u64 + 1));
            if let Some(a) = &c.ack {
                fold(1 + a.cum_bytes);
                fold(a.acked_seq);
            } else {
                fold(0);
            }
        }
    }

    /// Internal-consistency check used by the invariant audit: the free
    /// list must be duplicate-free, in bounds, and exactly the complement
    /// of the live set; counters must balance.
    pub fn check(&self) -> Result<(), String> {
        if self.cold.len() != self.hot.len() {
            return Err(format!(
                "cold plane length {} != hot plane length {}",
                self.cold.len(),
                self.hot.len()
            ));
        }
        if self.live.len() != self.hot.len() {
            return Err(format!(
                "live-flag vector length {} != slab length {}",
                self.live.len(),
                self.hot.len()
            ));
        }
        let mut on_free_list = vec![false; self.hot.len()];
        for &i in &self.free {
            let i = i as usize;
            if i >= self.hot.len() {
                return Err(format!("free-list entry {i} out of bounds"));
            }
            if on_free_list[i] {
                return Err(format!("slot {i} appears twice on the free list"));
            }
            if self.live[i] {
                return Err(format!("slot {i} is both live and on the free list"));
            }
            on_free_list[i] = true;
        }
        for (i, &live) in self.live.iter().enumerate() {
            if !live {
                if !on_free_list[i] {
                    return Err(format!("slot {i} is neither live nor on the free list"));
                }
                // Release must have harvested the INT box into the recycle
                // stack and dropped any untaken ACK payload.
                if self.cold[i].int.is_some() || self.cold[i].ack.is_some() {
                    return Err(format!("freed slot {i} still owns cold-plane state"));
                }
            }
        }
        if self.stats.allocs - self.stats.frees != self.live_count() as u64 {
            return Err(format!(
                "allocs {} - frees {} != live {}",
                self.stats.allocs,
                self.stats.frees,
                self.live_count()
            ));
        }
        if self.stats.slot_allocs != self.hot.len() as u64 {
            return Err(format!(
                "slot_allocs {} != slab capacity {}",
                self.stats.slot_allocs,
                self.hot.len()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_packet_wire_size_includes_header() {
        let p = Packet::data(0, 1, 2, 3, 1000, 0, Time::ZERO);
        assert_eq!(p.size, 1048);
        assert_eq!(p.payload, 1000);
        assert!(p.kind.is_data());
    }

    #[test]
    fn int_path_inline_then_spills() {
        let mut p = IntPath::new();
        assert!(p.is_empty());
        let hop = |i: u64| IntHop {
            qlen: i,
            tx_bytes: i * 10,
            ts: Time::from_us(i),
            rate_bps: 100,
        };
        for i in 0..INT_INLINE_HOPS as u64 {
            p.push(hop(i));
        }
        assert_eq!(p.len(), INT_INLINE_HOPS);
        assert_eq!(p.as_slice().len(), INT_INLINE_HOPS);
        // Push past inline capacity: order must be preserved across the
        // spill.
        for i in INT_INLINE_HOPS as u64..12 {
            p.push(hop(i));
        }
        assert_eq!(p.len(), 12);
        let qlens: Vec<u64> = p.as_slice().iter().map(|h| h.qlen).collect();
        assert_eq!(qlens, (0..12).collect::<Vec<u64>>());
    }

    #[test]
    fn int_path_saturates_at_max_hops() {
        let mut p = IntPath::new();
        let hop = |i: u64| IntHop {
            qlen: i,
            tx_bytes: i,
            ts: Time::from_us(i),
            rate_bps: 100,
        };
        for i in 0..INT_MAX_HOPS as u64 {
            assert!(p.push(hop(i)), "hop {i} must be accepted below the cap");
        }
        assert_eq!(p.len(), INT_MAX_HOPS);
        // Past the cap: rejected, path unchanged, recorded prefix intact.
        assert!(!p.push(hop(999)));
        assert!(!p.push(hop(1000)));
        assert_eq!(p.len(), INT_MAX_HOPS);
        let qlens: Vec<u64> = p.as_slice().iter().map(|h| h.qlen).collect();
        assert_eq!(qlens, (0..INT_MAX_HOPS as u64).collect::<Vec<u64>>());
        // Clearing re-arms the path.
        p.clear();
        assert!(p.push(hop(0)));
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn control_packets_are_64_bytes() {
        let probe = Packet::probe(0, 1, 2, 3, Time::ZERO);
        assert_eq!(probe.size, CONTROL_BYTES);
        let pfc = Packet::pfc(1, 2, 0, true);
        assert_eq!(pfc.size, CONTROL_BYTES);
        assert!(pfc.kind.is_pfc());
        assert!(!probe.kind.is_data());
    }

    fn pkt(seq: u64) -> Packet {
        Packet::data(0, 1, 2, 0, 1000, seq, Time::ZERO)
    }

    #[test]
    fn arena_reuses_slots_strictly_lifo() {
        let mut a = PacketArena::new();
        let ids: Vec<PacketId> = (0..4).map(|i| a.alloc(pkt(i))).collect();
        assert_eq!(ids, vec![PacketId(0), PacketId(1), PacketId(2), PacketId(3)]);
        assert_eq!(a.capacity(), 4);
        // Free 1 then 3: LIFO hands back 3 first, then 1, then grows.
        a.release(ids[1]);
        a.release(ids[3]);
        assert_eq!(a.live_count(), 2);
        assert_eq!(a.alloc(pkt(10)), PacketId(3));
        assert_eq!(a.alloc(pkt(11)), PacketId(1));
        assert_eq!(a.alloc(pkt(12)), PacketId(4));
        assert_eq!(a.get(PacketId(3)).seq, 10);
        assert_eq!(a.get(PacketId(1)).seq, 11);
        let s = a.stats();
        assert_eq!(s.allocs, 7);
        assert_eq!(s.frees, 2);
        assert_eq!(s.slot_allocs, 5);
        assert_eq!(s.peak_live, 5);
        a.check().expect("arena internally consistent");
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn arena_rejects_double_free() {
        let mut a = PacketArena::new();
        let id = a.alloc(pkt(0));
        a.release(id);
        a.release(id);
    }

    #[test]
    fn arena_recycles_int_boxes() {
        let mut a = PacketArena::new();
        let hop = IntHop {
            qlen: 7,
            tx_bytes: 9,
            ts: Time::from_us(1),
            rate_bps: 100,
        };
        let id = a.alloc(pkt(0));
        a.append_int(id, hop);
        a.append_int(id, hop);
        assert_eq!(a.int(id).unwrap().len(), 2);
        assert_eq!(a.stats().int_allocs, 1);
        // Release returns the (cleared) box to the recycle stack...
        a.release(id);
        let id2 = a.alloc(pkt(1));
        a.append_int(id2, hop);
        // ...so the second packet's INT path is served without a fresh box
        // and starts empty.
        assert_eq!(a.stats().int_allocs, 1);
        assert_eq!(a.int(id2).unwrap().len(), 1);
        // A detached box (the ack-echo path) recycles the same way.
        let boxed = a.take_int(id2).unwrap();
        a.recycle_int(boxed);
        a.release(id2);
        let id3 = a.alloc(pkt(2));
        a.append_int(id3, hop);
        assert_eq!(a.stats().int_allocs, 1, "steady state allocates no boxes");
        a.check().expect("arena internally consistent");
    }

    #[test]
    fn alloc_splits_planes_and_take_ack_detaches_payload() {
        let mut a = PacketArena::new();
        let info = AckInfo {
            cum_bytes: 4096,
            acked_seq: 3072,
            acked_bytes: 1024,
            ts_echo: Time::from_us(5),
            ecn_echo: true,
            nack: Some((1024, 2048)),
            int: None,
        };
        let id = a.alloc(Packet::ack(7, 1, 2, 3, info, false, Time::from_us(9)));
        // Hot header carries the tag and wire fields only.
        assert_eq!(a.get(id).kind, PktTag::Ack);
        assert!(a.get(id).kind.is_control());
        assert_eq!(a.get(id).size, CONTROL_BYTES);
        // The payload comes out of the cold plane exactly once.
        let taken = a.take_ack(id).expect("ack tag implies ack payload");
        assert_eq!(taken.cum_bytes, 4096);
        assert_eq!(taken.nack, Some((1024, 2048)));
        assert!(a.take_ack(id).is_none(), "payload detaches only once");
        a.release(id);
        // A probe echo maps to the ProbeAck tag; data/probe/PFC carry none.
        let info2 = AckInfo {
            cum_bytes: 0,
            acked_seq: 0,
            acked_bytes: 0,
            ts_echo: Time::ZERO,
            ecn_echo: false,
            nack: None,
            int: None,
        };
        let pa = a.alloc(Packet::ack(7, 1, 2, 3, info2, true, Time::ZERO));
        assert_eq!(a.get(pa).kind, PktTag::ProbeAck);
        assert!(a.take_ack(pa).is_some());
        let d = a.alloc(pkt(0));
        assert!(a.take_ack(d).is_none());
        assert_eq!(a.get(d).kind, PktTag::Data);
        let f = a.alloc(Packet::pfc(1, 2, 4, true));
        assert_eq!(a.get(f).kind, PktTag::Pfc { prio: 4, pause: true });
        a.release(pa);
        a.release(d);
        a.release(f);
        a.check().expect("arena internally consistent");
    }

    #[test]
    fn release_discards_untaken_ack_payload() {
        // An ACK dropped in flight (fault / lossy mode) is released without
        // `take_ack`; the slot must come back clean for its next tenant.
        let mut a = PacketArena::new();
        let info = AckInfo {
            cum_bytes: 1,
            acked_seq: 2,
            acked_bytes: 3,
            ts_echo: Time::ZERO,
            ecn_echo: false,
            nack: None,
            int: None,
        };
        let id = a.alloc(Packet::ack(0, 1, 2, 0, info, false, Time::ZERO));
        a.release(id);
        a.check().expect("freed slot owns no cold state");
        let id2 = a.alloc(pkt(0));
        assert_eq!(id2, id, "LIFO reuse of the freed slot");
        assert!(a.take_ack(id2).is_none(), "no payload leaks across tenants");
    }

    /// Size pins for the split planes. The hot header is the per-hop
    /// working set: 5×u32 + 2×u64 + u16 + 2×u8 + bool + 3-byte tag = 44
    /// bytes, padded to 48 — one 64-byte line holds a header with room to
    /// spare, and two headers straddle at most two lines. The pin fails
    /// loudly if a field addition silently fattens every queue entry.
    #[test]
    fn hot_header_fits_budget() {
        assert!(
            std::mem::size_of::<PktHeader>() <= 48,
            "PktHeader grew to {} bytes (budget 48); move cold fields to PktCold",
            std::mem::size_of::<PktHeader>()
        );
        assert!(
            std::mem::size_of::<PktTag>() <= 4,
            "PktTag grew to {} bytes (budget 4)",
            std::mem::size_of::<PktTag>()
        );
        assert_eq!(std::mem::size_of::<PacketId>(), 4);
    }

    /// The cold plane holds the ACK payload inline (boxing it would cost a
    /// heap allocation per ACK — one per delivered data packet). Pin its
    /// size so AckInfo growth is a conscious decision, not drift.
    #[test]
    fn cold_plane_fits_budget() {
        assert!(
            std::mem::size_of::<PktCold>() <= 88,
            "PktCold grew to {} bytes (budget 88)",
            std::mem::size_of::<PktCold>()
        );
    }
}
