//! Results of a simulation run.

use std::collections::BTreeMap;

use simcore::stats::{QuantileSketch, ThroughputMeter, TimeSeries};
use simcore::{Rate, Time};

use crate::packet::{FlowId, NodeId};

/// Outcome of one flow.
#[derive(Clone, Debug)]
pub struct FlowRecord {
    /// Flow id.
    pub flow: FlowId,
    /// Source host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// Flow size in bytes.
    pub size: u64,
    /// Physical priority queue used.
    pub phys_prio: u8,
    /// Virtual priority (PrioPlus channel).
    pub virt_prio: u8,
    /// User tag (coflow id, job id, size class, ...).
    pub tag: u64,
    /// Start time.
    pub start: Time,
    /// Completion (receiver got the last byte); `None` if censored by the
    /// simulation end.
    pub finish: Option<Time>,
    /// Payload bytes delivered to the receiver.
    pub delivered: u64,
    /// Data packets retransmitted by the sender.
    pub retransmits: u64,
    /// Base (no-queue) RTT of the flow's path.
    pub base_rtt: Time,
    /// Line rate of the sender's NIC.
    pub line_rate: Rate,
}

impl FlowRecord {
    /// Flow completion time, if the flow finished.
    pub fn fct(&self) -> Option<Time> {
        self.finish.map(|f| f - self.start)
    }

    /// Ideal FCT: base RTT for the first byte round plus serialization of
    /// the whole flow at `rate` (the standard store-and-forward ideal used
    /// for slowdown normalization).
    pub fn ideal_fct(&self, rate: Rate, base_rtt: Time) -> Time {
        base_rtt + rate.serialize_time(self.size)
    }

    /// FCT slowdown relative to the ideal; `None` when unfinished.
    pub fn slowdown(&self, rate: Rate, base_rtt: Time) -> Option<f64> {
        let fct = self.fct()?;
        let ideal = self.ideal_fct(rate, base_rtt);
        Some(fct.as_ps() as f64 / ideal.as_ps() as f64)
    }

    /// FCT slowdown using the flow's own recorded path parameters.
    pub fn slowdown_auto(&self) -> Option<f64> {
        self.slowdown(self.line_rate, self.base_rtt)
    }
}

pub use crate::counters::SimCounters;

/// Streaming run statistics ([`crate::SimConfig::streaming_stats`]):
/// integer-bucketed quantile sketches folded at flow completion, replacing
/// the per-flow sample vectors experiments otherwise build from
/// [`SimResult::records`]. All fields are order-independent integer state,
/// so a run's `StreamingStats` is bit-identical across scheduler backends
/// (pinned by the sketch differential fleet).
#[derive(Clone, Debug, Default)]
pub struct StreamingStats {
    /// FCT sketch over all completed flows, in picoseconds.
    pub fct_ps: QuantileSketch,
    /// FCT slowdown (vs each flow's own ideal) in milli-units
    /// (`slowdown * 1000` truncated), over all completed flows.
    pub slowdown_milli: QuantileSketch,
    /// Per-virtual-priority FCT sketches (ps), indexed by `virt_prio`;
    /// grown on demand.
    pub fct_ps_by_virt: Vec<QuantileSketch>,
    /// Flows completed (== total sketch sample count).
    pub finished: u64,
    /// Payload bytes delivered by completed flows.
    pub finished_bytes: u64,
}

impl StreamingStats {
    /// Fold one completed flow.
    pub fn on_complete(&mut self, record: &FlowRecord, finish: Time) {
        let fct = (finish - record.start).as_ps();
        self.fct_ps.add(fct);
        let ideal = record.ideal_fct(record.line_rate, record.base_rtt);
        let slowdown_milli = (fct as u128 * 1000 / ideal.as_ps().max(1) as u128) as u64;
        self.slowdown_milli.add(slowdown_milli);
        let v = record.virt_prio as usize;
        if v >= self.fct_ps_by_virt.len() {
            self.fct_ps_by_virt.resize_with(v + 1, QuantileSketch::new);
        }
        self.fct_ps_by_virt[v].add(fct);
        self.finished += 1;
        self.finished_bytes += record.size;
    }

    /// Order-independent fingerprint of the whole streaming state, for
    /// cross-scheduler bit-identity assertions.
    pub fn fingerprint(&self) -> u64 {
        let mut h = self.fct_ps.fingerprint() ^ self.finished.rotate_left(17);
        h ^= self.slowdown_milli.fingerprint().rotate_left(31);
        h ^= self.finished_bytes.rotate_left(47);
        for (i, s) in self.fct_ps_by_virt.iter().enumerate() {
            h ^= s.fingerprint().rotate_left((i % 63) as u32 + 1);
        }
        h
    }
}

/// Per-flow time-series traces (only populated when
/// [`crate::SimConfig::trace_flows`] is on).
#[derive(Clone, Debug, Default)]
pub struct FlowTrace {
    /// Receiver goodput meter.
    pub throughput: Option<ThroughputMeter>,
    /// Delay samples observed by the sender (µs).
    pub delay: TimeSeries,
    /// Congestion window over time (bytes).
    pub cwnd: TimeSeries,
}

/// Everything a run produces.
#[derive(Debug)]
pub struct SimResult {
    /// Per-flow outcomes, indexed by flow id.
    pub records: Vec<FlowRecord>,
    /// Aggregate counters.
    pub counters: SimCounters,
    /// Per-flow traces (tracing mode). Ordered so that iterating traces is
    /// deterministic (simlint rule `nondeterministic-map`).
    pub traces: BTreeMap<FlowId, FlowTrace>,
    /// Monitor output series, in registration order.
    pub monitors: Vec<(String, TimeSeries)>,
    /// Time the simulation stopped.
    pub end_time: Time,
    /// Invariant-audit report; `Some` when the audit layer was enabled for
    /// the run ([`crate::sim::Sim::enable_audit`]).
    pub audit: Option<crate::audit::AuditReport>,
    /// Streaming statistics; `Some` when
    /// [`crate::SimConfig::streaming_stats`] was on (then `records` is
    /// empty — quantiles come from the sketches instead).
    pub streaming: Option<Box<StreamingStats>>,
}

impl SimResult {
    /// All finished flows.
    pub fn finished(&self) -> impl Iterator<Item = &FlowRecord> {
        self.records.iter().filter(|r| r.finish.is_some())
    }

    /// Fraction of flows that finished.
    pub fn completion_rate(&self) -> f64 {
        if self.records.is_empty() {
            return 1.0;
        }
        self.finished().count() as f64 / self.records.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(size: u64, start: Time, finish: Option<Time>) -> FlowRecord {
        FlowRecord {
            flow: 0,
            src: 0,
            dst: 1,
            size,
            phys_prio: 0,
            virt_prio: 0,
            tag: 0,
            start,
            finish,
            delivered: size,
            retransmits: 0,
            base_rtt: Time::from_us(12),
            line_rate: Rate::from_gbps(100),
        }
    }

    #[test]
    fn fct_and_slowdown() {
        let r = rec(150_000, Time::from_us(10), Some(Time::from_us(40)));
        assert_eq!(r.fct(), Some(Time::from_us(30)));
        // Ideal at 100G: 12us rtt + 12us serialization = 24us -> slowdown 1.25.
        let s = r.slowdown(Rate::from_gbps(100), Time::from_us(12)).unwrap();
        assert!((s - 30.0 / 24.0).abs() < 1e-9);
    }

    #[test]
    fn censored_flow_has_no_fct() {
        let r = rec(1000, Time::ZERO, None);
        assert!(r.fct().is_none());
        assert!(r
            .slowdown(Rate::from_gbps(100), Time::from_us(12))
            .is_none());
    }
}
