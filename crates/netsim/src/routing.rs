//! Shortest-path ECMP routing.
//!
//! Routes are precomputed: for every (node, destination host) pair we store
//! every port that lies on a shortest path. Per-flow ECMP picks one port by
//! hashing the flow id with the node id, so a flow is pinned to one path
//! (no reordering from multipathing) while flows spread across paths.
//!
//! Two table representations share one query interface:
//!
//! - **Exact**: a dense `next[node][dst]` table, built by one reverse BFS
//!   per destination host. O(nodes × hosts) storage — fine up to a few
//!   hundred nodes, and the historical representation, so its candidate
//!   *order* is load-bearing (golden traces pin ECMP picks).
//! - **ToR-compressed**: for hyperscale topologies (above
//!   [`RoutingTable::COMPRESS_THRESHOLD`] nodes), exploit that every host
//!   has a single NIC: routes to a host equal routes to its attachment
//!   (ToR) switch plus the ToR's down-port. One BFS per *ToR* over the
//!   switch-only graph gives O(switches × ToRs) storage — at a k=16
//!   fat-tree that is 320×128 rows instead of 1344×1024, and at the 3-tier
//!   WAN topology ~0.4M rows instead of ~1.1G.
//!
//! Both builders expand the frontier in the same (node-ascending,
//! port-ascending) order, so the per-(node, dst) candidate lists — and
//! therefore every ECMP pick — are identical between representations
//! (pinned by `compressed_matches_exact_*` tests below).

use crate::packet::{FlowId, NodeId};

/// Precomputed next-hop table.
#[derive(Clone, Debug)]
pub struct RoutingTable {
    table: Table,
    salt: u64,
}

#[derive(Clone, Debug)]
enum Table {
    /// `next[node][dst]` = ports on shortest paths from `node` to host `dst`.
    Exact(Vec<Vec<Vec<u16>>>),
    Compressed(Compressed),
}

/// ToR-compressed representation: per-switch rows keyed by dense ToR index,
/// plus O(hosts) attachment metadata.
#[derive(Clone, Debug)]
struct Compressed {
    n: usize,
    is_host: Vec<bool>,
    /// Host -> its single egress port (valid only at host indices).
    host_up: Vec<u16>,
    /// Host -> its attachment (ToR) switch (valid only at host indices).
    tor_of: Vec<NodeId>,
    /// Host -> the ToR's down-port to this host (valid only at host indices).
    tor_down: Vec<u16>,
    /// Node -> dense switch index (`u32::MAX` for hosts).
    sw_idx: Vec<u32>,
    /// Node -> dense ToR index (`u32::MAX` unless a host attaches here).
    tor_idx: Vec<u32>,
    num_tors: usize,
    /// `next[sw_dense * num_tors + tor_dense]` = candidate ports.
    next: Vec<Vec<u16>>,
}

fn mix(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x = x.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    x ^ (x >> 33)
}

/// Reverse adjacency: `radj[peer]` = `(node, port)` pairs such that
/// `adj[node]` contains `(port, peer)`, in (node-ascending, port-order)
/// order — exactly the order the original O(V·E) builder scanned them in,
/// which the candidate lists (and golden traces) depend on.
fn reverse_adj(adj: &[Vec<(u16, NodeId)>]) -> Vec<Vec<(NodeId, u16)>> {
    let mut radj = vec![Vec::new(); adj.len()];
    for (node, ports) in adj.iter().enumerate() {
        for &(port, peer) in ports {
            radj[peer as usize].push((node as NodeId, port));
        }
    }
    radj
}

impl RoutingTable {
    /// Node count above which the ToR-compressed representation is used.
    /// Everything at or below stays on the exact dense table (all golden
    /// and e2e topologies are far below this).
    pub const COMPRESS_THRESHOLD: usize = 512;

    /// Build from an adjacency list: `adj[node]` = `(port, peer)` pairs.
    /// `is_host[node]` marks hosts (BFS roots; hosts never forward).
    pub fn build(adj: &[Vec<(u16, NodeId)>], is_host: &[bool], salt: u64) -> Self {
        if adj.len() > Self::COMPRESS_THRESHOLD {
            Self::build_compressed(adj, is_host, salt)
        } else {
            Self::build_exact(adj, is_host, salt)
        }
    }

    /// Dense-table builder (the historical representation).
    fn build_exact(adj: &[Vec<(u16, NodeId)>], is_host: &[bool], salt: u64) -> Self {
        let n = adj.len();
        let radj = reverse_adj(adj);
        let mut next = vec![vec![Vec::new(); n]; n];
        for (dst, _) in is_host.iter().enumerate().filter(|(_, h)| **h) {
            let mut dist = vec![u32::MAX; n];
            dist[dst] = 0;
            let mut frontier = vec![dst];
            while !frontier.is_empty() {
                let mut nf = Vec::new();
                for &u in &frontier {
                    // Hosts never forward traffic: only the destination host
                    // itself may be an intermediate BFS root.
                    if u != dst && is_host[u] {
                        continue;
                    }
                    for &(node, port) in &radj[u] {
                        let node = node as usize;
                        let cand = dist[u] + 1;
                        if dist[node] > cand {
                            // First time reached: record distance.
                            if dist[node] == u32::MAX {
                                nf.push(node);
                            }
                            dist[node] = cand;
                            next[node][dst].clear();
                            next[node][dst].push(port);
                        } else if dist[node] == cand && !next[node][dst].contains(&port) {
                            next[node][dst].push(port);
                        }
                    }
                }
                frontier = nf;
            }
        }
        RoutingTable {
            table: Table::Exact(next),
            salt,
        }
    }

    /// ToR-compressed builder. Requires every host to have exactly one NIC
    /// (already asserted by `Sim::new`) and a connected switch fabric.
    fn build_compressed(adj: &[Vec<(u16, NodeId)>], is_host: &[bool], salt: u64) -> Self {
        let n = adj.len();
        let radj = reverse_adj(adj);

        let mut host_up = vec![0u16; n];
        let mut tor_of = vec![0 as NodeId; n];
        let mut tor_down = vec![0u16; n];
        let mut tor_idx = vec![u32::MAX; n];
        let mut sw_idx = vec![u32::MAX; n];
        let mut num_tors = 0usize;
        let mut num_sw = 0usize;
        for (node, h) in is_host.iter().enumerate() {
            if !*h {
                sw_idx[node] = num_sw as u32;
                num_sw += 1;
            }
        }
        for (node, h) in is_host.iter().enumerate() {
            if !*h {
                continue;
            }
            assert_eq!(
                adj[node].len(),
                1,
                "compressed routing requires single-NIC hosts (host {node} has {} ports)",
                adj[node].len()
            );
            let (up_port, tor) = adj[node][0];
            assert!(
                !is_host[tor as usize],
                "host {node} attaches to host {tor}"
            );
            host_up[node] = up_port;
            tor_of[node] = tor;
            // The ToR's port back down to this host.
            let down = adj[tor as usize]
                .iter()
                .find(|&&(_, peer)| peer as usize == node)
                .map(|&(port, _)| port)
                .expect("host link must be bidirectional");
            tor_down[node] = down;
            if tor_idx[tor as usize] == u32::MAX {
                tor_idx[tor as usize] = num_tors as u32;
                num_tors += 1;
            }
        }

        // One BFS per ToR over the switch-only graph, expanding in the same
        // (node-ascending, port-order) sequence as the exact builder so the
        // candidate lists come out identical.
        let mut next = vec![Vec::new(); num_sw * num_tors];
        let mut dist = vec![u32::MAX; n];
        for (tor, _) in is_host.iter().enumerate() {
            let ti = tor_idx[tor];
            if ti == u32::MAX {
                continue;
            }
            let ti = ti as usize;
            dist.iter_mut().for_each(|d| *d = u32::MAX);
            dist[tor] = 0;
            let mut frontier = vec![tor];
            while !frontier.is_empty() {
                let mut nf = Vec::new();
                for &u in &frontier {
                    for &(node, port) in &radj[u] {
                        let node = node as usize;
                        if is_host[node] {
                            continue;
                        }
                        let slot = sw_idx[node] as usize * num_tors + ti;
                        let cand = dist[u] + 1;
                        if dist[node] > cand {
                            if dist[node] == u32::MAX {
                                nf.push(node);
                            }
                            dist[node] = cand;
                            next[slot].clear();
                            next[slot].push(port);
                        } else if dist[node] == cand && !next[slot].contains(&port) {
                            next[slot].push(port);
                        }
                    }
                }
                frontier = nf;
            }
        }

        RoutingTable {
            table: Table::Compressed(Compressed {
                n,
                is_host: is_host.to_vec(),
                host_up,
                tor_of,
                tor_down,
                sw_idx,
                tor_idx,
                num_tors,
                next,
            }),
            salt,
        }
    }

    /// All ECMP candidate ports at `node` toward host `dst`.
    pub fn candidates(&self, node: NodeId, dst: NodeId) -> &[u16] {
        match &self.table {
            Table::Exact(next) => &next[node as usize][dst as usize],
            Table::Compressed(c) => {
                let node_u = node as usize;
                let dst_u = dst as usize;
                if node == dst || !c.is_host[dst_u] {
                    return &[];
                }
                if c.is_host[node_u] {
                    // Single-NIC host: its only port is the route to
                    // everything else.
                    return std::slice::from_ref(&c.host_up[node_u]);
                }
                let tor = c.tor_of[dst_u];
                if node == tor {
                    return std::slice::from_ref(&c.tor_down[dst_u]);
                }
                &c.next[c.sw_idx[node_u] as usize * c.num_tors + c.tor_idx[tor as usize] as usize]
            }
        }
    }

    /// The ECMP-selected port for `flow` at `node` toward `dst`.
    ///
    /// # Panics
    /// Panics when `dst` is unreachable from `node`.
    pub fn port_for(&self, node: NodeId, dst: NodeId, flow: FlowId) -> u16 {
        let cands = self.candidates(node, dst);
        assert!(!cands.is_empty(), "no route from node {node} to host {dst}");
        if cands.len() == 1 {
            return cands[0];
        }
        let h = mix(self.salt ^ (flow as u64) << 20 ^ node as u64);
        cands[(h % cands.len() as u64) as usize]
    }

    /// Number of nodes the table was built for.
    pub fn num_nodes(&self) -> usize {
        match &self.table {
            Table::Exact(next) => next.len(),
            Table::Compressed(c) => c.n,
        }
    }

    /// True when the ToR-compressed representation is in use.
    pub fn is_compressed(&self) -> bool {
        matches!(self.table, Table::Compressed(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 4-node line: h0 - s1 - s2 - h3 (hosts at the ends).
    fn line() -> (Vec<Vec<(u16, NodeId)>>, Vec<bool>) {
        let adj = vec![
            vec![(0, 1)],         // h0 -> s1
            vec![(0, 0), (1, 2)], // s1 -> h0, s2
            vec![(0, 1), (1, 3)], // s2 -> s1, h3
            vec![(0, 2)],         // h3 -> s2
        ];
        let is_host = vec![true, false, false, true];
        (adj, is_host)
    }

    #[test]
    fn line_routes_forward() {
        let (adj, is_host) = line();
        let rt = RoutingTable::build(&adj, &is_host, 0);
        assert_eq!(rt.port_for(0, 3, 7), 0);
        assert_eq!(rt.port_for(1, 3, 7), 1);
        assert_eq!(rt.port_for(2, 3, 7), 1);
        assert_eq!(rt.port_for(2, 0, 7), 0);
        assert_eq!(rt.port_for(1, 0, 7), 0);
    }

    /// Two hosts connected through two parallel switches (ECMP diamond):
    /// h0 -(0)-> s1 / s2 -> h3, with h0 ports 0,1 and h3 ports 0,1.
    fn diamond() -> (Vec<Vec<(u16, NodeId)>>, Vec<bool>) {
        let adj = vec![
            vec![(0, 1), (1, 2)], // h0 -> s1, s2
            vec![(0, 0), (1, 3)], // s1
            vec![(0, 0), (1, 3)], // s2
            vec![(0, 1), (1, 2)], // h3 -> s1, s2
        ];
        let is_host = vec![true, false, false, true];
        (adj, is_host)
    }

    #[test]
    fn ecmp_uses_both_paths_and_is_per_flow_stable() {
        let (adj, is_host) = diamond();
        let rt = RoutingTable::build(&adj, &is_host, 42);
        assert_eq!(rt.candidates(0, 3).len(), 2);
        let mut used = std::collections::BTreeSet::new();
        for f in 0..64u32 {
            let p = rt.port_for(0, 3, f);
            assert_eq!(p, rt.port_for(0, 3, f), "per-flow stability");
            used.insert(p);
        }
        assert_eq!(used.len(), 2, "both ECMP paths used across flows");
    }

    #[test]
    #[should_panic(expected = "no route")]
    fn unreachable_panics() {
        let adj = vec![vec![], vec![]];
        let is_host = vec![true, true];
        let rt = RoutingTable::build(&adj, &is_host, 0);
        rt.port_for(0, 1, 0);
    }

    /// Two hosts joined by `n` parallel 2-hop paths (a wide ECMP fan):
    /// h0 - {s1..sn} - h(n+1).
    fn fan(n: usize) -> (Vec<Vec<(u16, NodeId)>>, Vec<bool>) {
        let dst = (n + 1) as NodeId;
        let mut adj = vec![Vec::new(); n + 2];
        for i in 0..n {
            let sw = (i + 1) as NodeId;
            let p = adj[0].len() as u16;
            adj[0].push((p, sw));
            adj[sw as usize] = vec![(0, 0), (1, dst)];
            let p = adj[dst as usize].len() as u16;
            adj[dst as usize].push((p, sw));
        }
        let mut is_host = vec![false; n + 2];
        is_host[0] = true;
        is_host[dst as usize] = true;
        (adj, is_host)
    }

    #[test]
    fn hash_is_stable_across_table_rebuilds() {
        // The selection must be a pure function of (salt, node, flow), not
        // of construction order or table identity: rebuilding the same
        // topology reproduces every flow's path exactly.
        let (adj, is_host) = fan(8);
        let a = RoutingTable::build(&adj, &is_host, 1234);
        let b = RoutingTable::build(&adj, &is_host, 1234);
        for f in 0..256u32 {
            assert_eq!(a.port_for(0, 9, f), b.port_for(0, 9, f), "flow {f}");
        }
    }

    #[test]
    fn wide_fan_coverage_is_roughly_balanced() {
        let (adj, is_host) = fan(8);
        let rt = RoutingTable::build(&adj, &is_host, 7);
        assert_eq!(rt.candidates(0, 9).len(), 8);
        let mut count = [0usize; 8];
        const FLOWS: usize = 1024;
        for f in 0..FLOWS as u32 {
            count[rt.port_for(0, 9, f) as usize] += 1;
        }
        // Every path is used, and no path gets less than a quarter or more
        // than double its fair share (a loose bound; the hash is not
        // cryptographic but must not collapse onto a few ports).
        let fair = FLOWS / 8;
        for (p, &c) in count.iter().enumerate() {
            assert!(c >= fair / 4, "port {p} starved: {c}/{FLOWS}");
            assert!(c <= fair * 2, "port {p} overloaded: {c}/{FLOWS}");
        }
    }

    #[test]
    fn salt_remaps_flow_placement() {
        let (adj, is_host) = fan(8);
        let a = RoutingTable::build(&adj, &is_host, 1);
        let b = RoutingTable::build(&adj, &is_host, 2);
        let moved = (0..256u32)
            .filter(|&f| a.port_for(0, 9, f) != b.port_for(0, 9, f))
            .count();
        assert!(moved > 64, "changing the salt moved only {moved}/256 flows");
    }

    #[test]
    fn fat_tree_shortest_path_candidate_counts() {
        // k=4 fat-tree: hosts 0..16, edges/aggs/cores after. From an edge
        // switch, a remote-pod host is reachable through every aggregation
        // switch of the pod (k/2 ways); a directly attached host has exactly
        // one port; an aggregation switch fans out over k/2 cores.
        let t = crate::topology::Topology::fat_tree(
            4,
            simcore::Rate::from_gbps(100),
            simcore::Time::from_us(1),
        );
        let adj = t.adjacency();
        let is_host: Vec<bool> = t
            .kinds
            .iter()
            .map(|k| *k == crate::topology::NodeKind::Host)
            .collect();
        let rt = RoutingTable::build(&adj, &is_host, 0);
        // Layout: 16 hosts, then per pod edges followed by aggs:
        // pod 0 edges 16,17 aggs 18,19; pod 1 edges 20,21 aggs 22,23; ...
        let pod0_edge = 16 as NodeId;
        let pod0_agg = 18 as NodeId;
        let local_host = 0 as NodeId; // host 0 hangs off pod 0 edge 0
        let remote_host = 15 as NodeId; // last host, pod 3
        assert_eq!(rt.candidates(pod0_edge, local_host).len(), 1);
        assert_eq!(
            rt.candidates(pod0_edge, remote_host).len(),
            2,
            "k/2 aggs up from an edge"
        );
        assert_eq!(
            rt.candidates(pod0_agg, remote_host).len(),
            2,
            "k/2 cores up from an agg"
        );
        // Flows spread over both uplinks at the edge.
        let used: std::collections::BTreeSet<u16> = (0..64u32)
            .map(|f| rt.port_for(pod0_edge, remote_host, f))
            .collect();
        assert_eq!(used.len(), 2, "both edge uplinks carry traffic");
    }

    /// Ordered candidate-list equality between the exact and compressed
    /// builders on every (node, host-dst) pair of a topology.
    fn assert_modes_agree(t: &crate::topology::Topology, salt: u64) {
        let adj = t.adjacency();
        let is_host: Vec<bool> = t
            .kinds
            .iter()
            .map(|k| *k == crate::topology::NodeKind::Host)
            .collect();
        let exact = RoutingTable::build_exact(&adj, &is_host, salt);
        let comp = RoutingTable::build_compressed(&adj, &is_host, salt);
        assert!(!exact.is_compressed() && comp.is_compressed());
        let n = adj.len();
        for dst in (0..n).filter(|&d| is_host[d]) {
            for node in 0..n {
                assert_eq!(
                    exact.candidates(node as NodeId, dst as NodeId),
                    comp.candidates(node as NodeId, dst as NodeId),
                    "candidate order diverged at node {node} -> dst {dst}"
                );
            }
        }
    }

    #[test]
    fn compressed_matches_exact_fat_tree() {
        let t = crate::topology::Topology::fat_tree(
            4,
            simcore::Rate::from_gbps(100),
            simcore::Time::from_us(1),
        );
        assert_modes_agree(&t, 0x5EED);
    }

    #[test]
    fn compressed_matches_exact_leaf_spine() {
        let t = crate::topology::Topology::leaf_spine(
            4,
            3,
            4,
            simcore::Rate::from_gbps(100),
            simcore::Rate::from_gbps(400),
            simcore::Time::from_us(1),
        );
        assert_modes_agree(&t, 0xB0B);
    }

    #[test]
    fn compressed_matches_exact_testbed_tree() {
        let t = crate::topology::Topology::testbed_tree();
        assert_modes_agree(&t, 7);
    }

    #[test]
    fn compressed_matches_exact_three_tier_wan_tiny() {
        let t = crate::topology::Topology::three_tier_wan(
            &crate::topology::ThreeTierWanSpec::tiny(),
        );
        assert_modes_agree(&t, 0xDC);
    }

    #[test]
    fn exact_mode_used_below_threshold() {
        let (adj, is_host) = fan(8);
        let rt = RoutingTable::build(&adj, &is_host, 0);
        assert!(!rt.is_compressed(), "small topologies stay on exact mode");
    }
}
