//! The simulator: event loop, flow management, switch/host event handlers.

use std::collections::BTreeMap;

use simcore::stats::ThroughputMeter;
use simcore::{EventQueue, Rate, ScheduledId, SimRng, Time};

#[cfg(feature = "audit")]
use crate::audit::{Audit, SwitchArrive, ViolationKind};
use crate::audit::AuditConfig;
use crate::config::{AckPriority, Buggify, SimConfig, SwitchConfig};
use crate::faults::{FaultKind, FaultRuntime};
use crate::fluid::FluidState;
use crate::monitor::{Monitor, MonitorKind};
use crate::node::queue_index;
use crate::node::{Admission, EgressPort, Host, Switch};
use crate::packet::{
    AckInfo, FlowId, IntHop, NodeId, Packet, PacketArena, PacketId, PktTag, CONTROL_BYTES,
    HEADER_BYTES,
};
use crate::record::{FlowRecord, FlowTrace, SimCounters, SimResult, StreamingStats};
use crate::routing::RoutingTable;
use crate::topology::{NodeKind, Topology};
use crate::transport_api::{AckEvent, AckKind, FlowParams, Transport, TransportCtx, TrySend};

/// A closed-loop application driver: gets called whenever a flow completes
/// (receiver got every byte) and may register new flows, enabling iterative
/// workloads such as ring all-reduce training (§6.2's ML cluster scenario).
pub trait App {
    /// `flow` just completed at `sim.now()`.
    fn on_flow_complete(&mut self, flow: FlowId, sim: &mut Sim);
}

/// An open-loop arrival source, driven by [`Event::Inject`] during the run.
/// Instead of registering an entire trace of flows up front (O(total flows)
/// resident before the first event fires), the source is called back to
/// register the next chunk, so hyperscale runs sustain millions of flow
/// lifetimes with memory proportional to the look-ahead window.
pub trait ArrivalSource {
    /// Register flows starting at or after `now` (chunk size is the
    /// source's choice; every registered spec must start `>= now`). Return
    /// the time of the next injection — strictly after `now` — or `None`
    /// when the trace is exhausted (the source is then dropped).
    fn inject(&mut self, sim: &mut Sim, now: Time) -> Option<Time>;
}

pub use crate::event::Event;

/// Description of one flow to simulate.
#[derive(Clone, Debug)]
pub struct FlowSpec {
    /// Source host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// Payload bytes to transfer.
    pub size: u64,
    /// Start time.
    pub start: Time,
    /// Physical priority queue (0-based; must be `< SimConfig::num_prios`).
    pub phys_prio: u8,
    /// Virtual priority (PrioPlus channel index; informational for
    /// non-PrioPlus transports).
    pub virt_prio: u8,
    /// Arbitrary user tag carried into the flow record.
    pub tag: u64,
}

impl FlowSpec {
    /// Convenience constructor with priority 0 and tag 0.
    pub fn new(src: NodeId, dst: NodeId, size: u64, start: Time) -> Self {
        FlowSpec {
            src,
            dst,
            size,
            start,
            phys_prio: 0,
            virt_prio: 0,
            tag: 0,
        }
    }
}

#[derive(Clone, Debug, Default)]
pub(crate) struct RecvState {
    pub(crate) cum: u64,
    pub(crate) ooo: BTreeMap<u64, u64>,
    pub(crate) delivered: u64,
    pub(crate) done: bool,
    pub(crate) nack_for_cum: u64,
}

impl RecvState {
    /// Returns (newly_delivered_bytes, nack_range).
    fn on_data(&mut self, seq: u64, len: u64, lossy: bool) -> (u64, Option<(u64, u64)>) {
        let mut new_bytes = 0;
        let dup = seq < self.cum
            || self
                .ooo
                .range(..=seq)
                .next_back()
                .is_some_and(|(_, &e)| e > seq);
        if !dup {
            new_bytes = len;
        }
        if seq == self.cum {
            self.cum += len;
            while let Some((&s, &e)) = self.ooo.iter().next() {
                if s <= self.cum {
                    self.cum = self.cum.max(e);
                    self.ooo.remove(&s);
                } else {
                    break;
                }
            }
        } else if seq > self.cum && !dup {
            let entry = self.ooo.entry(seq).or_insert(seq + len);
            *entry = (*entry).max(seq + len);
        }
        self.delivered += new_bytes;
        let mut nack = None;
        if lossy && seq > self.cum && self.nack_for_cum != self.cum {
            nack = Some((self.cum, seq));
            self.nack_for_cum = self.cum;
        }
        (new_bytes, nack)
    }
}

/// The permanent per-flow core: spec, derived parameters, and the outcome
/// record. Intentionally O(total flows) — results need every record. The
/// heavyweight state (transport + reassembly) lives in the [`FlowSlab`]
/// behind `live` and is reclaimed at completion.
#[derive(Clone)]
pub(crate) struct Flow {
    pub(crate) spec: FlowSpec,
    pub(crate) params: FlowParams,
    pub(crate) record: FlowRecord,
    pub(crate) active: bool,
    /// Slab slot of the flow's live state; `u32::MAX` once reclaimed.
    pub(crate) live: u32,
}

/// Per-flow state that exists only while the flow is in flight: the
/// sender-side transport and the receiver reassembly state.
pub(crate) struct FlowLive {
    pub(crate) transport: Box<dyn Transport>,
    pub(crate) recv: RecvState,
}

impl Clone for FlowLive {
    fn clone(&self) -> Self {
        FlowLive {
            // simlint::allow(hot-path-alloc, cloning happens only at snapshot/restore, not per event)
            transport: self.transport.clone_box(),
            recv: self.recv.clone(), // simlint::allow(hot-path-alloc, snapshot/restore only, not per event)
        }
    }
}

/// Slab of live flow state with LIFO slot reuse — the same determinism
/// argument as the packet arena: the slot sequence is a pure function of
/// event order, so it is bit-identical across scheduler backends. Slots are
/// released explicitly at flow completion, which is what makes resident
/// memory scale with *concurrent* flows rather than total flows.
#[derive(Clone, Default)]
pub(crate) struct FlowSlab {
    pub(crate) slots: Vec<Option<FlowLive>>,
    pub(crate) free: Vec<u32>,
    pub(crate) occupancy: u64,
    pub(crate) peak: u64,
    pub(crate) reclaimed: u64,
    pub(crate) bytes: u64,
    pub(crate) peak_bytes: u64,
}

impl FlowSlab {
    fn alloc(&mut self, fl: FlowLive) -> u32 {
        self.bytes += Self::entry_bytes(&fl);
        self.occupancy += 1;
        self.peak = self.peak.max(self.occupancy);
        self.peak_bytes = self.peak_bytes.max(self.bytes);
        match self.free.pop() {
            Some(slot) => {
                debug_assert!(self.slots[slot as usize].is_none());
                self.slots[slot as usize] = Some(fl);
                slot
            }
            None => {
                let slot = self.slots.len() as u32;
                // simlint::allow(hot-path-alloc, slab growth only at a new peak of concurrent flows)
                self.slots.push(Some(fl));
                slot
            }
        }
    }

    fn get(&self, slot: u32) -> &FlowLive {
        // simlint::allow(hot-path-unwrap, callers check `live != u32::MAX` before indexing)
        self.slots[slot as usize].as_ref().expect("live flow slot")
    }

    fn get_mut(&mut self, slot: u32) -> &mut FlowLive {
        // simlint::allow(hot-path-unwrap, callers check `live != u32::MAX` before indexing)
        self.slots[slot as usize].as_mut().expect("live flow slot")
    }

    fn release(&mut self, slot: u32) -> FlowLive {
        // simlint::allow(hot-path-unwrap, release is only reached through a valid live slot)
        let fl = self.slots[slot as usize].take().expect("double release");
        self.bytes -= Self::entry_bytes(&fl);
        self.occupancy -= 1;
        self.reclaimed += 1;
        self.free.push(slot);
        fl
    }

    /// Approximate resident bytes of one entry: the slab slot itself plus
    /// the boxed transport's state. The reassembly map's heap nodes are not
    /// counted — the map is empty by the time a flow completes.
    fn entry_bytes(fl: &FlowLive) -> u64 {
        (std::mem::size_of::<Option<FlowLive>>() + std::mem::size_of_val(&*fl.transport)) as u64
    }
}

#[derive(Clone)]
pub(crate) enum Node {
    Host(Host),
    Switch(Switch),
}

/// The simulator.
///
/// Fields are `pub(crate)` so [`crate::snapshot`] can capture and rebuild
/// the full deterministic state by exhaustive struct literal (the
/// forget-a-field compile guard).
pub struct Sim {
    pub(crate) cfg: SimConfig,
    pub(crate) switch_cfg: SwitchConfig,
    pub(crate) nodes: Vec<Node>,
    /// (peer, peer_port, rate, prop) per (node, port), aligned with routing.
    pub(crate) port_specs: Vec<Vec<(NodeId, u16, Rate, Time)>>,
    pub(crate) routes: RoutingTable,
    /// Per-flow cores, indexed by [`FlowId`]. Intentionally O(total flows)
    /// (results need every record); the heavyweight live state is in `live`.
    pub(crate) flows: Vec<Flow>,
    /// Slab of live (transport + reassembly) flow state, reclaimed at flow
    /// completion so memory tracks concurrent — not total — flows.
    pub(crate) live: FlowSlab,
    /// Slab holding every in-flight packet; events and port queues refer to
    /// packets by [`PacketId`]. LIFO slot reuse keeps the id sequence a pure
    /// function of the event order (deterministic across backends).
    pub(crate) arena: PacketArena,
    pub(crate) queue: EventQueue<Event>,
    pub(crate) counters: SimCounters,
    pub(crate) monitors: Vec<Monitor>,
    /// Opt-in ([`SimConfig::trace_flows`]) per-flow time series — O(total
    /// flows) when enabled, so hyperscale runs leave it off.
    pub(crate) traces: BTreeMap<FlowId, FlowTrace>,
    pub(crate) noise_rng: SimRng,
    pub(crate) ecn_rng: SimRng,
    pub(crate) nc_rng: SimRng,
    pub(crate) lossy: bool,
    pub(crate) app: Option<Box<dyn App>>,
    /// Open-loop arrival source ([`Event::Inject`]); `None` between the
    /// final injection and the end of the run, and for closed workloads.
    pub(crate) arrivals: Option<Box<dyn ArrivalSource>>,
    /// Streaming-statistics accumulator ([`SimConfig::streaming_stats`]):
    /// completed flows fold into quantile sketches at completion time.
    pub(crate) streaming: Option<Box<StreamingStats>>,
    pub(crate) completed_buf: Vec<FlowId>,
    /// Fluid background-traffic solver (hybrid model); `None` — the pure
    /// packet simulator — keeps every coupling hook to one branch.
    pub(crate) fluid: Option<Box<FluidState>>,
    /// The single pending [`Event::FluidEpoch`], if any. Cancellable so a
    /// coupling hook can pull the epoch earlier without stale events.
    pub(crate) fluid_epoch: Option<ScheduledId>,
    /// Fault-schedule runtime state; `None` — the fault-free default —
    /// keeps every fault hook to one branch.
    pub(crate) faults: Option<Box<FaultRuntime>>,
    /// Whether the run-level bootstrap events ([`Self::ensure_started`])
    /// have been scheduled. Restored snapshots carry `true`.
    pub(crate) started: bool,
    /// Invariant-audit state; `None` keeps the hot path to one branch per
    /// hook. Boxed so the disabled case costs a single word.
    #[cfg(feature = "audit")]
    pub(crate) audit: Option<Box<Audit>>,
}

impl Sim {
    /// Build a simulator over `topo` with uniform switch configuration.
    pub fn new(topo: &Topology, cfg: SimConfig, switch_cfg: SwitchConfig) -> Self {
        let n = topo.num_nodes();
        // Build per-node port lists in the same order as `Topology::adjacency`.
        // simlint::allow(hot-path-alloc, Sim construction runs once per run, not per event)
        let mut port_specs: Vec<Vec<(NodeId, u16, Rate, Time)>> = vec![Vec::new(); n];
        for &(a, b, spec) in &topo.links {
            let pa = port_specs[a as usize].len() as u16;
            let pb = port_specs[b as usize].len() as u16;
            port_specs[a as usize].push((b, pb, spec.rate, spec.prop));
            port_specs[b as usize].push((a, pa, spec.rate, spec.prop));
        }
        let adj = topo.adjacency();
        let is_host: Vec<bool> = topo.kinds.iter().map(|k| *k == NodeKind::Host).collect();
        let routes = RoutingTable::build(&adj, &is_host, cfg.seed ^ 0x9E3779B97F4A7C15);

        let nq = cfg.num_prios as usize + 1;
        let mut nodes = Vec::with_capacity(n);
        for (id, kind) in topo.kinds.iter().enumerate() {
            let ports: Vec<EgressPort> = port_specs[id]
                .iter()
                .map(|&(peer, peer_port, rate, prop)| {
                    EgressPort::new(peer, peer_port, rate, prop, nq)
                })
                .collect();
            match kind {
                NodeKind::Host => {
                    assert_eq!(ports.len(), 1, "host {id} must have exactly one NIC link");
                    nodes.push(Node::Host(Host::new(
                        // simlint::allow(hot-path-unwrap, the assert_eq above guarantees exactly one port)
                        ports.into_iter().next().unwrap(),
                        cfg.num_prios,
                    )));
                }
                NodeKind::Switch => {
                    nodes.push(Node::Switch(Switch::new(
                        // simlint::allow(hot-path-alloc, per-switch config copy at construction, not per event)
                        switch_cfg.clone(),
                        ports,
                        cfg.num_prios,
                    )));
                }
            }
        }

        let seed = cfg.seed;
        let sched = cfg.sched;
        let lossy = !switch_cfg.pfc_enabled;
        let streaming = cfg
            .streaming_stats
            // simlint::allow(hot-path-alloc, one streaming box per run at construction, not per event)
            .then(|| Box::new(StreamingStats::default()));
        let fluid = cfg.background.as_ref().map(|bg| {
            for &(node, port) in &bg.ports {
                assert!(
                    matches!(nodes.get(node as usize), Some(Node::Switch(_))),
                    "background port ({node}, {port}) is not a switch egress"
                );
            }
            let leak = switch_cfg.buggify == Some(Buggify::FluidDrainLeak);
            // simlint::allow(hot-path-alloc, one fluid box per run at construction, not per event)
            Box::new(FluidState::new(
                bg,
                |node, port| {
                    port_specs
                        .get(node as usize)
                        .and_then(|v| v.get(port as usize))
                        .map_or(0, |&(_, _, rate, _)| rate.as_bps())
                },
                leak,
            ))
        });
        let faults = cfg
            .faults
            // simlint::allow(hot-path-alloc, one schedule clone at Sim construction, not per event)
            .clone()
            .filter(|s| !s.is_empty())
            .map(|s| {
                for ev in &s.events {
                    let (node, port) = ev.kind.link();
                    assert!(
                        port_specs
                            .get(node as usize)
                            .is_some_and(|v| (port as usize) < v.len()),
                        "fault schedule targets nonexistent link attachment ({node}, {port})"
                    );
                    if matches!(ev.kind, FaultKind::DegradeStart { .. }) {
                        if let Some(bg) = cfg.background.as_ref() {
                            let (peer, peer_port, _, _) =
                                port_specs[node as usize][port as usize];
                            assert!(
                                !bg.ports.contains(&(node, port))
                                    && !bg.ports.contains(&(peer, peer_port)),
                                "link degradation on fluid-loaded port ({node}, {port}) is \
                                 unsupported: the fluid solver captures drain rates at \
                                 construction (flaps and pause storms are fine)"
                            );
                        }
                    }
                }
                // simlint::allow(hot-path-alloc, one fault box per run at construction, not per event)
                Box::new(FaultRuntime::new(s))
            });
        Sim {
            cfg,
            switch_cfg,
            nodes,
            port_specs,
            routes,
            flows: Vec::new(),
            live: FlowSlab::default(),
            arena: PacketArena::new(),
            queue: EventQueue::with_sched(sched),
            counters: SimCounters::default(),
            monitors: Vec::new(),
            traces: BTreeMap::new(),
            noise_rng: SimRng::new(seed).split(1),
            ecn_rng: SimRng::new(seed).split(2),
            nc_rng: SimRng::new(seed).split(3),
            lossy,
            app: None,
            arrivals: None,
            streaming,
            completed_buf: Vec::new(),
            fluid,
            fluid_epoch: None,
            faults,
            started: false,
            #[cfg(feature = "audit")]
            audit: if crate::audit::env_enabled() {
                // simlint::allow(hot-path-alloc, one audit box per run at construction, not per event)
                Some(Box::new(Audit::new(AuditConfig {
                    panic_on_violation: crate::audit::env_panic(),
                    deep_every: crate::audit::env_deep_every(),
                    ..AuditConfig::default()
                })))
            } else {
                None
            },
        }
    }

    /// Enable the invariant-audit layer with default settings. No-op when
    /// the `audit` feature is compiled out.
    pub fn enable_audit(&mut self) {
        self.enable_audit_with(AuditConfig::default());
    }

    /// Enable the invariant-audit layer with explicit settings. No-op when
    /// the `audit` feature is compiled out.
    pub fn enable_audit_with(&mut self, cfg: AuditConfig) {
        #[cfg(feature = "audit")]
        {
            // simlint::allow(hot-path-alloc, one audit box per run at enablement, not per event)
            self.audit = Some(Box::new(Audit::new(cfg)));
        }
        #[cfg(not(feature = "audit"))]
        let _ = cfg;
    }

    /// True when the audit layer is compiled in and enabled for this run.
    pub fn audit_enabled(&self) -> bool {
        #[cfg(feature = "audit")]
        {
            self.audit.is_some()
        }
        #[cfg(not(feature = "audit"))]
        false
    }

    /// Install a closed-loop application driver.
    pub fn set_app(&mut self, app: Box<dyn App>) {
        self.app = Some(app);
    }

    /// Install an open-loop arrival source; the first [`Event::Inject`] is
    /// scheduled at run start.
    pub fn set_arrivals(&mut self, src: Box<dyn ArrivalSource>) {
        self.arrivals = Some(src);
    }

    /// Live flow-slab occupancy (flows whose transport + reassembly state is
    /// still resident). Exposed for reclamation tests and progress logging.
    pub fn live_flows(&self) -> u64 {
        self.live.occupancy
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.queue.now()
    }

    /// The record of a flow (live view during the run for [`App`]s).
    pub fn record(&self, flow: FlowId) -> &FlowRecord {
        &self.flows[flow as usize].record
    }

    /// Number of flows registered so far.
    pub fn num_flows(&self) -> usize {
        self.flows.len()
    }

    /// The simulator's configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The switch configuration.
    pub fn switch_config(&self) -> &SwitchConfig {
        &self.switch_cfg
    }

    /// Compute per-flow parameters (base RTTs, line rate) for a prospective
    /// flow, so transport factories can be configured before registration.
    pub fn flow_params(&self, spec: &FlowSpec, flow: FlowId) -> FlowParams {
        let line_rate = self.port_specs[spec.src as usize][0].2;
        let data_wire = (self.cfg.mtu + HEADER_BYTES) as u64;
        let base_rtt = self.path_delay(spec.src, spec.dst, flow, data_wire)
            + self.path_delay(spec.dst, spec.src, flow, CONTROL_BYTES as u64);
        let base_rtt_probe = self.path_delay(spec.src, spec.dst, flow, CONTROL_BYTES as u64)
            + self.path_delay(spec.dst, spec.src, flow, CONTROL_BYTES as u64);
        FlowParams {
            flow,
            size: spec.size,
            line_rate,
            base_rtt,
            base_rtt_probe,
            mtu: self.cfg.mtu,
            virt_prio: spec.virt_prio,
            seed: SimRng::new(self.cfg.seed)
                .split(0x1000 + flow as u64)
                .next(),
        }
    }

    /// One-way no-queue delay for a `wire_bytes` packet from `src` to `dst`
    /// following the flow's ECMP path: per hop, serialization + propagation.
    fn path_delay(&self, src: NodeId, dst: NodeId, flow: FlowId, wire_bytes: u64) -> Time {
        let mut node = src;
        let mut total = Time::ZERO;
        let mut hops = 0;
        while node != dst {
            let port = self.routes.port_for(node, dst, flow);
            let (peer, _, rate, prop) = self.port_specs[node as usize][port as usize];
            total += rate.serialize_time(wire_bytes) + prop;
            node = peer;
            hops += 1;
            assert!(hops < 64, "routing loop from {src} to {dst}");
        }
        total
    }

    /// Register a flow. `make` receives the computed [`FlowParams`] and
    /// returns the sender-side transport.
    pub fn add_flow(
        &mut self,
        spec: FlowSpec,
        make: impl FnOnce(&FlowParams) -> Box<dyn Transport>,
    ) -> FlowId {
        assert!(
            spec.phys_prio < self.cfg.num_prios,
            "phys_prio {} out of range (num_prios {})",
            spec.phys_prio,
            self.cfg.num_prios
        );
        assert!(spec.size > 0, "zero-size flow");
        let id = self.flows.len() as FlowId;
        let params = self.flow_params(&spec, id);
        let transport = make(&params);
        let record = FlowRecord {
            flow: id,
            src: spec.src,
            dst: spec.dst,
            size: spec.size,
            phys_prio: spec.phys_prio,
            virt_prio: spec.virt_prio,
            tag: spec.tag,
            start: spec.start,
            finish: None,
            delivered: 0,
            retransmits: 0,
            base_rtt: params.base_rtt,
            line_rate: params.line_rate,
        };
        if self.cfg.trace_flows {
            self.traces.insert(
                id,
                FlowTrace {
                    throughput: Some(ThroughputMeter::new(self.cfg.trace_bucket)),
                    ..Default::default()
                },
            );
        }
        self.queue
            .schedule(spec.start, Event::FlowStart { flow: id });
        let live = self.live.alloc(FlowLive {
            transport,
            recv: RecvState::default(),
        });
        self.flows.push(Flow {
            spec,
            params,
            record,
            active: false,
            live,
        });
        id
    }

    /// Register a periodic monitor; returns its index.
    pub fn add_monitor(
        &mut self,
        label: impl Into<String>,
        kind: MonitorKind,
        period: Time,
    ) -> usize {
        let idx = self.monitors.len();
        self.monitors.push(Monitor::new(label, kind, period));
        idx
    }

    /// Egress port index a switch uses toward `dst` for `flow` (exposed for
    /// tests and monitor setup).
    pub fn route_port(&self, node: NodeId, dst: NodeId, flow: FlowId) -> u16 {
        self.routes.port_for(node, dst, flow)
    }

    /// Schedule the run-level bootstrap events (End, first Inject, monitor
    /// samples, the first fluid epoch, the fault schedule). Runs once, on
    /// whichever of [`Self::run`] / [`Self::run_until`] is called first; a
    /// restored simulation carries `started = true`, so the bootstrap is
    /// never re-applied to forked state.
    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        self.queue.schedule(self.cfg.end_time, Event::End);
        if self.arrivals.is_some() {
            self.queue.schedule(Time::ZERO, Event::Inject);
        }
        for i in 0..self.monitors.len() {
            let period = self.monitors[i].period;
            self.queue
                .schedule(period, Event::Sample { monitor: i as u32 });
        }
        // Hybrid model: the fluid solver keeps exactly one pending epoch in
        // the queue; the first sits at the first background arrival.
        if let Some(first) = self.fluid.as_deref().and_then(|f| f.first_epoch()) {
            self.fluid_epoch = Some(self.queue.schedule_cancellable(first, Event::FluidEpoch));
        }
        // The fault schedule is fixed up-front: every transition becomes a
        // first-class event through the same scheduler backend as data
        // traffic, so fault runs stay bit-identical across backends.
        // simlint::allow(hot-path-alloc, once at run start, not on the per-event path)
        let fault_times: Vec<Time> = self
            .faults
            .as_deref()
            .map(|ft| ft.schedule.events.iter().map(|e| e.at).collect())
            .unwrap_or_default();
        for (i, at) in fault_times.into_iter().enumerate() {
            self.queue.schedule(at, Event::Fault { idx: i as u32 });
        }
    }

    /// Dispatch the next same-timestamp batch of events: one scheduler
    /// interaction, clock advanced once, events served in `(time, seq)`
    /// order — the per-event semantics (audit hooks, app delivery, boundary
    /// checks) are identical to sequential dispatch. Returns `false` when
    /// the run is over (queue drained or [`Event::End`] fired) or, with a
    /// horizon, when the next batch would be at or past it.
    fn pump(&mut self, until: Option<Time>) -> bool {
        if let Some(horizon) = until {
            match self.queue.peek_time() {
                Some(at) if at < horizon => {}
                _ => return false,
            }
        }
        let Some(now) = self.queue.pop_batch() else {
            return false;
        };
        while let Some(ev) = self.queue.batch_next() {
            self.counters.events += 1;
            #[cfg(feature = "audit")]
            if let Some(a) = self.audit.as_deref_mut() {
                let (kind, id): (&'static str, u32) = match &ev {
                    Event::Arrive { node, .. } => ("arrive", *node),
                    Event::PortFree { node, .. } => ("port_free", *node),
                    Event::FlowStart { flow } => ("flow_start", *flow),
                    Event::FlowTimer { flow, .. } => ("flow_timer", *flow),
                    Event::HostPoke { node } => ("host_poke", *node),
                    Event::Sample { monitor } => ("sample", *monitor),
                    Event::FluidEpoch => ("fluid_epoch", 0),
                    Event::Fault { idx } => ("fault", *idx),
                    Event::Inject => ("inject", 0),
                    Event::End => ("end", 0),
                };
                a.on_event(now, kind, id);
            }
            match ev {
                Event::End => return false,
                Event::FlowStart { flow } => self.on_flow_start(flow, now),
                Event::FlowTimer { flow, token } => self.on_flow_timer(flow, token, now),
                Event::HostPoke { node } => {
                    if let Node::Host(h) = &mut self.nodes[node as usize] {
                        h.next_poke = Time::MAX;
                    }
                    self.host_poke(node, now);
                }
                Event::PortFree { node, port } => self.on_port_free(node, port, now),
                Event::Arrive { node, in_port, pkt } => self.on_arrive(node, in_port, pkt, now),
                Event::Sample { monitor } => self.on_sample(monitor, now),
                Event::FluidEpoch => self.on_fluid_epoch(now),
                Event::Fault { idx } => self.on_fault(idx, now),
                Event::Inject => self.on_inject(now),
            }
            if !self.completed_buf.is_empty() && self.app.is_some() {
                // simlint::allow(hot-path-unwrap, guarded by the is_some() check one line up)
                let mut app = self.app.take().expect("checked");
                let done = std::mem::take(&mut self.completed_buf);
                for f in done {
                    app.on_flow_complete(f, self);
                }
                self.app = Some(app);
            }
            #[cfg(feature = "audit")]
            self.audit_boundary(now);
        }
        true
    }

    /// Advance the simulation up to (but not into) `horizon`: every batch
    /// with timestamp strictly before `horizon` is dispatched, then the
    /// clock rests at the last dispatched batch. Used to simulate a shared
    /// warmup prefix before [`Self::snapshot`](crate::snapshot)ing.
    ///
    /// # Panics
    /// Panics if `horizon` is past `end_time` (the run would consume its
    /// `End` event and a later `run()` could not terminate at `end_time`).
    pub fn run_until(&mut self, horizon: Time) {
        assert!(
            horizon <= self.cfg.end_time,
            "run_until horizon {horizon} past end_time {}",
            self.cfg.end_time
        );
        self.ensure_started();
        while self.pump(Some(horizon)) {}
    }

    /// Run to completion (all events drained or `end_time` reached).
    pub fn run(mut self) -> SimResult {
        self.ensure_started();
        while self.pump(None) {}
        let end_time = self.queue.now();
        for sw in self.nodes.iter().filter_map(|n| match n {
            Node::Switch(s) => Some(s),
            _ => None,
        }) {
            self.counters.max_buffer_used = self.counters.max_buffer_used.max(sw.max_buffered);
        }
        if let Some(f) = self.fluid.as_deref() {
            self.counters.fluid_flows_started = f.flows_started();
            self.counters.fluid_flows_completed = f.flows_completed();
            self.counters.fluid_bytes_injected = f.injected_bytes();
        }
        let astats = self.arena.stats();
        self.counters.arena_allocs = astats.allocs;
        self.counters.arena_slab_slots = astats.slot_allocs;
        self.counters.arena_peak_live = astats.peak_live;
        self.counters.arena_int_allocs = astats.int_allocs;
        self.counters.arena_int_recycled = astats.int_recycled;
        self.counters.sched_pops = self.queue.pops();
        self.counters.flows_total = self.flows.len() as u64;
        self.counters.flow_live_peak = self.live.peak;
        self.counters.flow_slab_slots = self.live.slots.len() as u64;
        self.counters.flows_reclaimed = self.live.reclaimed;
        self.counters.flow_live_bytes_peak = self.live.peak_bytes;
        #[cfg(feature = "audit")]
        let audit = self.audit.take().map(|a| a.into_report());
        #[cfg(not(feature = "audit"))]
        let audit = None;
        // Streaming mode returns empty records: quantiles come from the
        // sketches, and cloning O(total flows) records would defeat the
        // point of streaming at hyperscale.
        let records = if self.streaming.is_some() {
            Vec::new()
        } else {
            self.flows
                .iter()
                .map(|f| {
                    // simlint::allow(hot-path-alloc, result assembly after the event loop has ended)
                    let mut r = f.record.clone();
                    if f.live != u32::MAX {
                        // Unreclaimed (censored or leaked) flows still hold a
                        // transport; reclaimed ones snapshotted retransmits
                        // into the record at release time.
                        r.retransmits = self.live.get(f.live).transport.retransmits();
                    }
                    r
                })
                .collect()
        };
        SimResult {
            records,
            counters: self.counters,
            traces: self.traces,
            monitors: self
                .monitors
                .into_iter()
                .map(|m| (m.label, m.series))
                .collect(),
            end_time,
            audit,
            streaming: self.streaming,
        }
    }

    /// Handle [`Event::Inject`]: hand the simulator to the arrival source
    /// (take/put-back, same pattern as [`App`] delivery) and reschedule at
    /// the time it asks for.
    fn on_inject(&mut self, now: Time) {
        let Some(mut src) = self.arrivals.take() else {
            return;
        };
        if let Some(next) = src.inject(self, now) {
            assert!(next > now, "arrival source must make progress");
            self.queue.schedule(next, Event::Inject);
            self.arrivals = Some(src);
        }
    }

    /// Verify cross-cutting invariants at the end of one event: flows the
    /// event touched, the Xoff-must-fire condition for an admission in this
    /// event, and (per [`AuditConfig::deep_every`]) a full recount of switch
    /// buffers, conservation, counters, and event-queue state.
    #[cfg(feature = "audit")]
    fn audit_boundary(&mut self, now: Time) {
        let Some(mut a) = self.audit.take() else {
            return;
        };
        while let Some(fid) = a.pop_touched() {
            let f = &self.flows[fid as usize];
            if f.live != u32::MAX {
                if let Err(msg) = self.live.get(f.live).transport.check_invariants() {
                    a.flow_violation(ViolationKind::TransportSanity, now, fid, msg);
                }
            }
            if f.record.delivered > f.spec.size {
                let (got, size) = (f.record.delivered, f.spec.size);
                a.flow_violation(
                    ViolationKind::PacketConservation,
                    now,
                    fid,
                    format!("receiver delivered {got} B > flow size {size} B"),
                );
            }
        }
        if let Some(focus) = a.take_focus() {
            if let Node::Switch(s) = &self.nodes[focus.node as usize] {
                a.check_xoff(now, &focus, s);
            }
        }
        if a.should_deep_scan() {
            let mut buffered_data = 0u64;
            for (id, node) in self.nodes.iter().enumerate() {
                if let Node::Switch(s) = node {
                    buffered_data += a.check_switch(now, id as NodeId, s, &self.arena);
                }
            }
            a.check_conservation(now, buffered_data);
            a.check_counters(now, &self.counters);
            if let Some(f) = self.fluid.as_deref() {
                a.check_fluid(now, &f.audit_view());
            }
            if self.faults.is_some() {
                // PFC deadlock monitor: a cycle in the wait-for graph over
                // paused egress attachments is a circular buffer dependency
                // (see DESIGN.md § Fault model). Only armed alongside a
                // fault schedule — transient legitimate pause cycles in
                // cyclic topologies are not deadlocks.
                // simlint::allow(hot-path-alloc, deep-scan-only audit buffer, off the per-event path)
                let switches: Vec<(NodeId, &Switch)> = self
                    .nodes
                    .iter()
                    .enumerate()
                    .filter_map(|(id, n)| match n {
                        Node::Switch(s) => Some((id as NodeId, s)),
                        Node::Host(_) => None,
                    })
                    .collect();
                let cycle = crate::audit::detect_pause_cycle(&switches, &self.arena);
                a.check_deadlock(now, cycle.as_deref());
            }
            if let Err(msg) = self.queue.check_invariants() {
                a.queue_violation(now, msg);
            }
            // Flow-state reclamation sweep: a completed flow must have
            // released its slab slot — `Buggify::FlowReclaimLeak` proves
            // this sweep notices when it doesn't. O(flows) by design: deep
            // scans are periodic; the per-event audit state stays O(ports).
            let mut resident = 0u64;
            for f in &self.flows {
                if f.live == u32::MAX {
                    continue;
                }
                resident += 1;
                if let (false, Some(finish)) = (f.active, f.record.finish) {
                    a.flow_violation(
                        ViolationKind::FlowStateLeak,
                        now,
                        f.record.flow,
                        format!(
                            "flow {} finished at {} but still holds slab slot {}",
                            f.record.flow,
                            finish.as_ps(),
                            f.live
                        ),
                    );
                }
            }
            if resident != self.live.occupancy {
                let occ = self.live.occupancy;
                a.flow_violation(
                    ViolationKind::FlowStateLeak,
                    now,
                    0,
                    format!("flow slab occupancy {occ} != {resident} resident live slots"),
                );
            }
            // Arena accounting: every live slot must be referenced exactly
            // once — by one port queue or one pending Arrive event — and
            // free slots never. Counts references across the whole topology
            // plus the event queue, then hands the tally to the audit.
            // simlint::allow(hot-path-alloc, deep-scan-only audit buffer, off the per-event path)
            let mut refs = vec![0u32; self.arena.capacity()];
            for node in &self.nodes {
                let ports: &[EgressPort] = match node {
                    Node::Switch(s) => &s.ports,
                    Node::Host(h) => std::slice::from_ref(&h.port),
                };
                for p in ports {
                    for q in &p.queues {
                        for id in q {
                            refs[id.index()] += 1;
                        }
                    }
                }
            }
            self.queue.for_each_live(&mut |ev| {
                if let Event::Arrive { pkt, .. } = ev {
                    refs[pkt.index()] += 1;
                }
            });
            a.check_arena(now, &self.arena, &refs);
        }
        self.audit = Some(a);
    }

    fn ctx<'a>(
        queue: &'a mut EventQueue<Event>,
        traces: &'a mut BTreeMap<FlowId, FlowTrace>,
        now: Time,
        flow: FlowId,
    ) -> TransportCtx<'a> {
        // Tracing is off in almost every run; skip the per-callback hash
        // lookup entirely then.
        let trace = if traces.is_empty() {
            None
        } else {
            traces.get_mut(&flow)
        };
        let (delay_trace, cwnd_trace) = match trace {
            Some(t) => (Some(&mut t.delay), Some(&mut t.cwnd)),
            None => (None, None),
        };
        TransportCtx {
            now,
            flow,
            queue,
            delay_trace,
            cwnd_trace,
        }
    }

    fn on_flow_start(&mut self, flow: FlowId, now: Time) {
        #[cfg(feature = "audit")]
        if let Some(a) = self.audit.as_deref_mut() {
            a.touch_flow(flow);
        }
        let f = &mut self.flows[flow as usize];
        let src = f.spec.src;
        let prio = f.spec.phys_prio;
        f.active = true;
        let live = f.live;
        {
            let mut ctx = Self::ctx(&mut self.queue, &mut self.traces, now, flow);
            self.live.get_mut(live).transport.on_start(&mut ctx);
        }
        if let Node::Host(h) = &mut self.nodes[src as usize] {
            h.activate(prio, flow);
        } else {
            panic!("flow source {src} is not a host");
        }
        self.host_poke(src, now);
    }

    fn on_flow_timer(&mut self, flow: FlowId, token: u64, now: Time) {
        let f = &mut self.flows[flow as usize];
        if !f.active {
            return;
        }
        #[cfg(feature = "audit")]
        if let Some(a) = self.audit.as_deref_mut() {
            a.touch_flow(flow);
        }
        let f = &self.flows[flow as usize];
        let live = f.live;
        let src = f.spec.src;
        {
            let mut ctx = Self::ctx(&mut self.queue, &mut self.traces, now, flow);
            self.live.get_mut(live).transport.on_timer(token, &mut ctx);
        }
        self.host_poke(src, now);
    }

    fn on_port_free(&mut self, node: NodeId, port: u16, now: Time) {
        match &mut self.nodes[node as usize] {
            Node::Host(h) => {
                h.port.busy = false;
                self.host_poke(node, now);
            }
            Node::Switch(s) => {
                s.ports[port as usize].busy = false;
                self.switch_dequeue(node, port, now);
                if self.fluid.is_some() {
                    // The port may have gone idle: hand its bandwidth back
                    // to the fluid class.
                    self.fluid_sync_port(node, port, now);
                }
            }
        }
    }

    /// Process the pending fluid rate-change epoch and schedule the next.
    fn on_fluid_epoch(&mut self, now: Time) {
        self.counters.fluid_epochs += 1;
        self.fluid_epoch = None;
        if let Some(f) = self.fluid.as_deref_mut() {
            f.on_epoch(now);
        }
        self.fluid_reschedule(now);
    }

    /// Replace the pending fluid epoch with the solver's next rate-change
    /// instant (cancelling any stale one).
    fn fluid_reschedule(&mut self, now: Time) {
        if let Some(id) = self.fluid_epoch.take() {
            self.queue.cancel(id);
        }
        if let Some(next) = self.fluid.as_deref().and_then(|f| f.plan(now)) {
            self.fluid_epoch = Some(self.queue.schedule_cancellable(next, Event::FluidEpoch));
        }
    }

    /// Push a switch egress port's foreground-presence state (packets
    /// queued or serializing) into the fluid solver; reschedules the
    /// pending epoch when the bandwidth split changed. Cheap no-op for
    /// ports carrying no fluid load.
    fn fluid_sync_port(&mut self, node: NodeId, port: u16, now: Time) {
        let presence = match &self.nodes[node as usize] {
            Node::Switch(s) => {
                let p = &s.ports[port as usize];
                p.busy || p.queued_bytes > 0
            }
            Node::Host(_) => return,
        };
        let mut changed = false;
        if let Some(f) = self.fluid.as_deref_mut() {
            changed = f.set_presence(node, port, presence, now);
        }
        if changed {
            self.fluid_reschedule(now);
        }
    }

    /// Apply fault-schedule transition `idx` at its scheduled time.
    fn on_fault(&mut self, idx: u32, now: Time) {
        self.counters.fault_events += 1;
        let kind = self
            .faults
            .as_deref()
            // simlint::allow(hot-path-unwrap, Fault events are only scheduled when a runtime exists)
            .expect("Fault event without a fault runtime")
            .schedule
            .events[idx as usize]
            .kind;
        match kind {
            FaultKind::LinkDown { node, port } => self.set_link_down(node, port, true, now),
            FaultKind::LinkUp { node, port } => self.set_link_down(node, port, false, now),
            FaultKind::DegradeStart {
                node,
                port,
                rate_factor,
                extra_prop,
            } => self.set_degrade(node, port, Some((rate_factor, extra_prop))),
            FaultKind::DegradeEnd { node, port } => self.set_degrade(node, port, None),
            FaultKind::PauseStart { node, port, prio } => {
                self.set_storm(node, port, prio, true, now)
            }
            FaultKind::PauseEnd { node, port, prio } => {
                self.set_storm(node, port, prio, false, now)
            }
        }
    }

    /// Take a link (both attachments) down, or bring it back up. While down,
    /// neither attachment serializes and every non-PFC packet in flight on
    /// the link is dropped at arrival; on recovery both sides are kicked so
    /// queued traffic resumes.
    fn set_link_down(&mut self, node: NodeId, port: u16, down: bool, now: Time) {
        let (peer, peer_port, _, _) = self.port_specs[node as usize][port as usize];
        // simlint::allow(hot-path-unwrap, Fault events are only scheduled when a runtime exists)
        let ft = self.faults.as_deref_mut().expect("fault runtime");
        ft.set_down(node, port, down);
        ft.set_down(peer, peer_port, down);
        for (n, p) in [(node, port), (peer, peer_port)] {
            self.fault_fluid_sync(n, p, now);
            if !down {
                match &self.nodes[n as usize] {
                    Node::Switch(_) => self.switch_dequeue(n, p, now),
                    Node::Host(_) => self.host_poke(n, now),
                }
            }
        }
    }

    /// Begin (`Some((rate_factor, extra_prop))`) or end (`None`) a
    /// degradation epoch on both directions of the link at `(node, port)`.
    /// Applied at dequeue time, so already-queued packets see the regime
    /// active when they reach the head of line.
    fn set_degrade(&mut self, node: NodeId, port: u16, eff: Option<(f64, Time)>) {
        let (peer, peer_port, _, _) = self.port_specs[node as usize][port as usize];
        // simlint::allow(hot-path-unwrap, Fault events are only scheduled when a runtime exists)
        let ft = self.faults.as_deref_mut().expect("fault runtime");
        let (on, factor, extra) = match eff {
            Some((factor, extra)) => (true, factor, extra),
            None => (false, 1.0, Time::ZERO),
        };
        ft.set_degrade(node, port, on, factor, extra);
        ft.set_degrade(peer, peer_port, on, factor, extra);
    }

    /// Pin (or release) a persistent PFC pause on `node`'s egress
    /// attachment `port` for `prio` — a pause storm. While pinned, genuine
    /// PFC frames addressed to that attachment are swallowed so the pin
    /// holds; on release the pause bit is restored from the peer's real
    /// pause authority (its ingress pause state).
    fn set_storm(&mut self, node: NodeId, port: u16, prio: u8, on: bool, now: Time) {
        let (peer, peer_port, _, _) = self.port_specs[node as usize][port as usize];
        // simlint::allow(hot-path-unwrap, Fault events are only scheduled when a runtime exists)
        let ft = self.faults.as_deref_mut().expect("fault runtime");
        ft.set_storm(node, port, prio, on);
        let paused = if on {
            true
        } else {
            match &self.nodes[peer as usize] {
                Node::Switch(ps) => ps.ingress_paused[peer_port as usize][prio as usize],
                Node::Host(_) => false,
            }
        };
        match &mut self.nodes[node as usize] {
            Node::Switch(s) => s.ports[port as usize].set_paused(prio as usize, paused),
            Node::Host(h) => {
                debug_assert_eq!(port, 0, "hosts have a single egress port");
                h.port.set_paused(prio as usize, paused);
            }
        }
        if prio == 0 {
            self.fault_fluid_sync(node, port, now);
        }
        if !paused {
            match &self.nodes[node as usize] {
                Node::Switch(_) => self.switch_dequeue(node, port, now),
                Node::Host(_) => self.host_poke(node, now),
            }
        }
    }

    /// Recompute the effective fluid pause on a switch egress attachment:
    /// fluid service halts while the link is down or priority 0 (the class
    /// fluid traffic rides) is paused, genuinely or storm-pinned.
    fn fault_fluid_sync(&mut self, node: NodeId, port: u16, now: Time) {
        if self.fluid.is_none() {
            return;
        }
        let paused0 = match &self.nodes[node as usize] {
            Node::Switch(s) => s.ports[port as usize].is_paused(0),
            Node::Host(_) => return,
        };
        let eff = paused0 || self.faults.as_deref().is_some_and(|f| f.is_down(node, port));
        let mut changed = false;
        if let Some(f) = self.fluid.as_deref_mut() {
            changed = f.set_paused(node, port, eff, now);
        }
        if changed {
            self.fluid_reschedule(now);
        }
    }

    /// Retire a packet caught in flight on a dead link. Data losses are
    /// reported to the audit's conservation tallies (unless the
    /// [`Buggify::FaultDropUnaccounted`] self-test suppresses that to prove
    /// the audit notices); control losses are counted in
    /// [`SimCounters::fault_ctrl_drops`] but never audited, since control
    /// packets are not part of the injected tallies.
    fn fault_drop(&mut self, pid: PacketId) {
        let (is_data, wire) = {
            let pkt = self.arena.get(pid);
            (pkt.kind.is_data(), pkt.size as u64)
        };
        if is_data {
            self.counters.fault_link_drops += 1;
            #[cfg(feature = "audit")]
            if self.switch_cfg.buggify != Some(Buggify::FaultDropUnaccounted) {
                if let Some(a) = self.audit.as_deref_mut() {
                    a.on_link_drop(wire);
                }
            }
            #[cfg(not(feature = "audit"))]
            let _ = wire;
        } else {
            self.counters.fault_ctrl_drops += 1;
        }
        // A dropped INT carrier returns its telemetry box to the pool.
        if let Some(boxed) = self.arena.take_int(pid) {
            self.arena.recycle_int(boxed);
        }
        self.arena.release(pid);
    }

    /// Try to start transmitting the next packet on a switch egress port.
    fn switch_dequeue(&mut self, node: NodeId, port: u16, now: Time) {
        if self.faults.as_deref().is_some_and(|f| f.is_down(node, port)) {
            // Dead egress: nothing moves until LinkUp kicks this port.
            return;
        }
        // Hybrid coupling: fluid backlog at this port consumes buffer (PFC
        // resume threshold).
        let fluid_occ = match self.fluid.as_deref() {
            Some(f) => f.occupancy_bytes(node, port, now),
            None => 0,
        };
        let Node::Switch(s) = &mut self.nodes[node as usize] else {
            return;
        };
        let p = &mut s.ports[port as usize];
        if p.busy || !p.has_sendable() {
            return;
        }
        // simlint::allow(hot-path-unwrap, guarded by the has_sendable() early return above)
        let pid = p.dequeue(&self.arena).expect("has_sendable");
        let mut resumes = Vec::new();
        s.on_dequeue(self.arena.get(pid), fluid_occ, &mut resumes);
        let (size, is_data, prio) = {
            let pkt = self.arena.get(pid);
            (pkt.size as u64, pkt.kind.is_data(), pkt.prio)
        };
        // Hybrid coupling: a data-class packet leaving a fluid-loaded port
        // serializes behind the fluid bytes injected before its admission
        // that have neither drained nor been charged to an earlier packet
        // (FIFO emulation; see `fluid::FluidState::pop_stamp`).
        let nq = s.ports[port as usize].queues.len();
        let fluid_owed = if (prio as usize).min(nq - 1) == 0 {
            match self.fluid.as_deref_mut() {
                Some(f) => f.pop_stamp(node, port, now),
                None => 0,
            }
        } else {
            0
        };
        let p = &mut s.ports[port as usize];
        p.busy = true;
        p.tx_bytes += size;
        let (peer, peer_port, rate, prop) = self.port_specs[node as usize][port as usize];
        // Degradation epoch: reduced rate and/or extra propagation. Applied
        // before the INT record so telemetry reports the effective rate.
        let (rate, prop) = match self.faults.as_deref().and_then(|f| f.degrade_of(node, port)) {
            Some((factor, extra)) => (rate.mul_f64(factor), prop + extra),
            None => (rate, prop),
        };
        if self.switch_cfg.int_enabled && is_data {
            let rec = IntHop {
                qlen: p.queued_bytes_q[prio as usize],
                tx_bytes: p.tx_bytes,
                ts: now,
                rate_bps: rate.as_bps(),
            };
            let pushed = self.arena.append_int(pid, rec);
            debug_assert!(
                pushed,
                "INT path saturated at switch {node}: {} hops means a routing loop",
                crate::packet::INT_MAX_HOPS
            );
        }
        // `fluid_owed == 0` takes the exact original path, so
        // zero-background runs stay bit-identical.
        let ser = if fluid_owed == 0 {
            rate.serialize_time(size)
        } else {
            rate.serialize_time(size.saturating_add(fluid_owed))
        };
        let mut arrival = now + ser + prop;
        if is_data {
            if let Some(nc) = self.switch_cfg.nc_delay {
                arrival += nc.sample(&mut self.nc_rng);
            }
        }
        self.queue
            .schedule(now + ser, Event::PortFree { node, port });
        self.queue.schedule(
            arrival,
            Event::Arrive {
                node: peer,
                in_port: peer_port,
                pkt: pid,
            },
        );
        self.emit_pfc(node, &resumes, false, now);
    }

    /// Send PFC pause/resume frames upstream out-of-band.
    fn emit_pfc(&mut self, node: NodeId, list: &[(u16, u8)], pause: bool, now: Time) {
        for &(in_port, prio) in list {
            let (peer, peer_port, _, prop) = self.port_specs[node as usize][in_port as usize];
            if pause {
                self.counters.pfc_pauses += 1;
            } else {
                self.counters.pfc_resumes += 1;
            }
            #[cfg(feature = "audit")]
            if let Some(a) = self.audit.as_deref_mut() {
                a.on_pfc_frame(now, node, in_port, prio, pause);
            }
            let pid = self.arena.alloc(Packet::pfc(node, peer, prio, pause));
            self.queue.schedule(
                now + prop,
                Event::Arrive {
                    node: peer,
                    in_port: peer_port,
                    pkt: pid,
                },
            );
        }
    }

    fn on_arrive(&mut self, node: NodeId, in_port: u16, pkt: PacketId, now: Time) {
        if let Some(ft) = self.faults.as_deref() {
            // A dead link drops everything in flight on it — except PFC
            // frames, which model an out-of-band reliable control plane.
            if ft.is_down(node, in_port) && !self.arena.get(pkt).kind.is_pfc() {
                self.fault_drop(pkt);
                return;
            }
        }
        match &self.nodes[node as usize] {
            Node::Switch(_) => self.switch_arrive(node, in_port, pkt, now),
            Node::Host(_) => self.host_arrive(node, pkt, now),
        }
    }

    fn switch_arrive(&mut self, node: NodeId, in_port: u16, pid: PacketId, now: Time) {
        if let PktTag::Pfc { prio, pause } = self.arena.get(pid).kind {
            // PFC frames are consumed at the MAC layer, never queued.
            self.arena.release(pid);
            if self
                .faults
                .as_deref()
                .is_some_and(|f| f.stormed(node, in_port, prio))
            {
                // Storm pin holds: genuine frames are swallowed. The peer's
                // pause authority is re-read at storm release.
                return;
            }
            let Node::Switch(s) = &mut self.nodes[node as usize] else {
                unreachable!()
            };
            s.ports[in_port as usize].set_paused(prio as usize, pause);
            if self.fluid.is_some() && prio == 0 {
                // Hybrid coupling: a pause of the lowest data priority —
                // the class fluid background traffic rides — halts fluid
                // service on this egress port until resume. Composited with
                // the fault overlay (a down link also halts fluid service).
                self.fault_fluid_sync(node, in_port, now);
            }
            if !pause {
                self.switch_dequeue(node, in_port, now);
            }
            return;
        }
        let (dst, flow, is_data, data_q, dscp) = {
            let pkt = self.arena.get(pid);
            (
                pkt.dst,
                pkt.flow,
                pkt.kind.is_data(),
                pkt.prio as usize,
                pkt.dscp,
            )
        };
        let egress = self.routes.port_for(node, dst, flow);
        // Hybrid coupling: projected fluid backlog at the egress inflates
        // the occupancy ECN sees and shrinks the free buffer DT/PFC use.
        let fluid_occ = match self.fluid.as_deref() {
            Some(f) => f.occupancy_bytes(node, egress, now),
            None => 0,
        };
        let Node::Switch(s) = &mut self.nodes[node as usize] else {
            unreachable!()
        };
        #[cfg(feature = "audit")]
        let mut ecn_info = None;
        if is_data {
            #[cfg(feature = "audit")]
            let q_pre = s.ports[egress as usize].queued_bytes_q[data_q] + fluid_occ;
            let marked = s.ecn_mark(egress, data_q, dscp, fluid_occ, &mut self.ecn_rng);
            if marked {
                self.arena.get_mut(pid).ecn_ce = true;
                self.counters.ecn_marks += 1;
            }
            #[cfg(feature = "audit")]
            {
                ecn_info = Some((q_pre, dscp, marked));
            }
        }
        #[cfg(feature = "audit")]
        let info = SwitchArrive {
            node,
            in_port,
            egress,
            queue: queue_index(self.arena.get(pid).prio, s.ports[egress as usize].queues.len())
                as u8,
            wire: self.arena.get(pid).size as u64,
            is_data,
            dropped: false,
            ecn: ecn_info,
            fluid_occ,
        };
        let mut pauses = Vec::new();
        let admission = s.admit(egress, in_port, pid, fluid_occ, &mut self.arena, &mut pauses);
        // The `s` borrow ends here so the audit can re-inspect the switch.
        #[cfg(feature = "audit")]
        if self.audit.is_some() {
            let Node::Switch(sw) = &self.nodes[node as usize] else {
                unreachable!()
            };
            // simlint::allow(hot-path-unwrap, guarded by the audit.is_some() branch condition)
            let a = self.audit.as_deref_mut().expect("checked");
            a.note_switch_arrive(
                now,
                &SwitchArrive {
                    dropped: admission == Admission::Dropped,
                    ..info
                },
                sw,
            );
        }
        match admission {
            Admission::Dropped => {
                self.counters.drops += 1;
            }
            Admission::Queued => {
                if self.fluid.is_some() {
                    // Hybrid coupling: admitted data-class packets get a
                    // FIFO stamp of the fluid mass logically ahead of them
                    // in the shared queue, and the queue just became (or
                    // stayed) non-empty.
                    let qi = {
                        let Node::Switch(sw) = &self.nodes[node as usize] else {
                            unreachable!()
                        };
                        let pkt = self.arena.get(pid);
                        queue_index(pkt.prio, sw.ports[egress as usize].queues.len())
                    };
                    if qi == 0 {
                        if let Some(f) = self.fluid.as_deref_mut() {
                            f.push_stamp(node, egress, now);
                        }
                    }
                    self.fluid_sync_port(node, egress, now);
                }
                self.emit_pfc(node, &pauses, true, now);
                self.switch_dequeue(node, egress, now);
            }
        }
    }

    fn host_arrive(&mut self, node: NodeId, pid: PacketId, now: Time) {
        match self.arena.get(pid).kind {
            PktTag::Pfc { prio, pause } => {
                let prio = prio as usize;
                self.arena.release(pid);
                if self
                    .faults
                    .as_deref()
                    .is_some_and(|f| f.stormed(node, 0, prio as u8))
                {
                    // Storm pin on the host NIC holds; see `set_storm`.
                    return;
                }
                let Node::Host(h) = &mut self.nodes[node as usize] else {
                    unreachable!()
                };
                h.port.set_paused(prio, pause);
                if !pause {
                    self.host_poke(node, now);
                }
            }
            PktTag::Data => {
                self.counters.data_delivered += 1;
                #[cfg(feature = "audit")]
                if let Some(a) = self.audit.as_deref_mut() {
                    let pkt = self.arena.get(pid);
                    a.on_data_delivered(now, pkt.flow, pkt.size as u64);
                }
                debug_assert_eq!(self.arena.get(pid).dst, node, "data packet misrouted");
                self.receiver_data(node, pid, now);
            }
            PktTag::Probe => {
                let (flow, src, ts_tx, in_prio) = {
                    let pkt = self.arena.get(pid);
                    debug_assert_eq!(pkt.dst, node);
                    (pkt.flow, pkt.src, pkt.ts_tx, pkt.prio)
                };
                self.arena.release(pid);
                // Echo the probe back at the same priority it came in on
                // (probe echoes measure the reverse control path like ACKs).
                let info = AckInfo {
                    cum_bytes: 0,
                    acked_seq: 0,
                    acked_bytes: 0,
                    ts_echo: ts_tx,
                    ecn_echo: false,
                    nack: None,
                    int: None,
                };
                let prio = self.ack_prio(in_prio);
                let ack = Packet::ack(flow, node, src, prio, info, true, now);
                self.host_enqueue_control(node, ack, now);
            }
            PktTag::Ack | PktTag::ProbeAck => {
                debug_assert_eq!(self.arena.get(pid).dst, node, "ack misrouted");
                self.sender_ack(node, pid, now);
            }
        }
    }

    fn ack_prio(&self, data_prio: u8) -> u8 {
        match self.cfg.ack_prio {
            AckPriority::Control => self.cfg.num_prios,
            AckPriority::SameAsData => data_prio,
        }
    }

    /// Receiver-side handling of a data segment: update reassembly state,
    /// emit a per-packet ACK, record delivery/completion. Consumes the
    /// arena slot: the data packet is retired and its slot immediately
    /// reused (LIFO) by the ACK this method emits.
    fn receiver_data(&mut self, node: NodeId, pid: PacketId, now: Time) {
        let (fid, src, seq, payload, ts_tx, ecn_ce, in_prio) = {
            let pkt = self.arena.get(pid);
            (
                pkt.flow,
                pkt.src,
                pkt.seq,
                pkt.payload,
                pkt.ts_tx,
                pkt.ecn_ce,
                pkt.prio,
            )
        };
        let live = self.flows[fid as usize].live;
        let (cum_bytes, nack) = if live == u32::MAX {
            // The sender already finished and its state was reclaimed: this
            // packet is a stale duplicate (a retransmission racing the final
            // ACK). Reproduce exactly the ACK the live path would emit — the
            // receiver had every byte (`cum == size`) and a duplicate below
            // `cum` delivers no new bytes and never NACKs — so the event
            // sequence is bit-identical whether or not reclamation happened.
            (self.flows[fid as usize].spec.size, None)
        } else {
            let flow = &mut self.flows[fid as usize];
            let fl = self.live.get_mut(live);
            let (new_bytes, nack) = fl.recv.on_data(seq, payload as u64, self.lossy);
            flow.record.delivered = fl.recv.delivered;
            if new_bytes > 0 {
                if let Some(t) = self.traces.get_mut(&fid) {
                    if let Some(m) = &mut t.throughput {
                        m.record(now, new_bytes);
                    }
                }
            }
            if !fl.recv.done && fl.recv.cum >= flow.spec.size {
                fl.recv.done = true;
                flow.record.finish = Some(now);
                if let Some(st) = self.streaming.as_deref_mut() {
                    st.on_complete(&flow.record, now);
                }
                self.completed_buf.push(fid);
            }
            (fl.recv.cum, nack)
        };
        // Detach the INT record (it rides the ACK back to the sender), then
        // retire the data packet before allocating the ACK so the ACK reuses
        // the same cache-hot slot.
        let int = self.arena.take_int(pid);
        self.arena.release(pid);
        let info = AckInfo {
            cum_bytes,
            acked_seq: seq,
            acked_bytes: payload,
            ts_echo: ts_tx,
            ecn_echo: ecn_ce,
            nack,
            int,
        };
        let prio = self.ack_prio(in_prio);
        let ack = Packet::ack(fid, node, src, prio, info, false, now);
        self.host_enqueue_control(node, ack, now);
    }

    /// Sender-side handling of an ACK or probe echo. Consumes the arena
    /// slot; the echoed INT box (if any) returns to the arena's recycle
    /// stack after the transport callback.
    fn sender_ack(&mut self, node: NodeId, pid: PacketId, now: Time) {
        let fid = self.arena.get(pid).flow;
        if !self.flows[fid as usize].active {
            self.arena.release(pid);
            return;
        }
        #[cfg(feature = "audit")]
        if let Some(a) = self.audit.as_deref_mut() {
            a.touch_flow(fid);
        }
        let f = &self.flows[fid as usize];
        let live = f.live;
        // Take the AckInfo out of the cold plane so the slot can be retired
        // before the transport runs.
        let kind = match self.arena.get(pid).kind {
            PktTag::Ack => AckKind::Data,
            PktTag::ProbeAck => AckKind::Probe,
            _ => unreachable!("sender_ack dispatched on a non-ack tag"),
        };
        let info = match self.arena.take_ack(pid) {
            Some(info) => info,
            None => unreachable!("an ack tag always has a cold-plane payload"),
        };
        self.arena.release(pid);
        // Normalize the measured delay to the data base RTT: probes have a
        // smaller no-queue RTT, so shift by the difference; then apply
        // measurement noise (additive, §4.3.2).
        let raw = now - info.ts_echo;
        let normalized = match kind {
            AckKind::Data => raw,
            AckKind::Probe => raw + f.params.base_rtt.saturating_sub(f.params.base_rtt_probe),
        };
        let noise = self.cfg.meas_noise.sample(&mut self.noise_rng);
        let delay = normalized + noise;
        let ack = AckEvent {
            kind,
            delay,
            cum_bytes: info.cum_bytes,
            acked_seq: info.acked_seq,
            acked_bytes: info.acked_bytes,
            ecn_echo: info.ecn_echo,
            nack: info.nack,
            int: info.int,
        };
        {
            let mut ctx = Self::ctx(&mut self.queue, &mut self.traces, now, fid);
            self.live.get_mut(live).transport.on_ack(&ack, &mut ctx);
        }
        // The transport only borrows the AckEvent, so the INT box comes
        // back here — return it to the pool instead of freeing it.
        if let Some(boxed) = ack.int {
            self.arena.recycle_int(boxed);
        }
        if self.live.get(live).transport.is_finished() {
            let f = &mut self.flows[fid as usize];
            f.active = false;
            let (src, prio) = (f.spec.src, f.spec.phys_prio);
            if let Node::Host(h) = &mut self.nodes[src as usize] {
                h.deactivate(prio, fid);
            }
            self.release_flow_state(fid);
        }
        self.host_poke(node, now);
    }

    /// Release a finished flow's live-state slab slot, snapshotting the
    /// transport's retransmit count into the record first. The
    /// [`Buggify::FlowReclaimLeak`] self-test skips the release so the audit
    /// deep scan's flow-state sweep can prove it notices the leak.
    fn release_flow_state(&mut self, fid: FlowId) {
        if self.switch_cfg.buggify == Some(Buggify::FlowReclaimLeak) {
            return;
        }
        let f = &mut self.flows[fid as usize];
        if f.live == u32::MAX {
            return;
        }
        let slot = f.live;
        f.live = u32::MAX;
        let fl = self.live.release(slot);
        f.record.retransmits = fl.transport.retransmits();
    }

    /// Queue a locally generated control packet (ACK/probe echo) on the
    /// host's NIC and kick transmission.
    fn host_enqueue_control(&mut self, node: NodeId, pkt: Packet, now: Time) {
        let pid = self.arena.alloc(pkt);
        let Node::Host(h) = &mut self.nodes[node as usize] else {
            unreachable!()
        };
        h.port.enqueue(pid, &self.arena);
        self.host_poke(node, now);
    }

    /// The host NIC pull loop: if the NIC is idle, select the next packet
    /// (queued control first, then strict-priority pull across flows) and
    /// start transmitting it.
    fn host_poke(&mut self, node: NodeId, now: Time) {
        if self.faults.as_deref().is_some_and(|f| f.is_down(node, 0)) {
            // Dead NIC link: transports stay queued; LinkUp (or the next
            // transport timer after recovery) re-pokes.
            return;
        }
        let Node::Host(h) = &mut self.nodes[node as usize] else {
            panic!("host_poke on switch {node}")
        };
        if h.port.busy {
            return;
        }
        let mut min_retry = Time::MAX;
        let mut selected: Option<PacketId> = None;
        let nq = h.port.queues.len();
        'prio: for q in (0..nq).rev() {
            // Queued packets (ACKs, probe echoes) first within priority.
            // The control queue (index nq-1) is never PFC-paused.
            let paused = q < nq - 1 && h.port.is_paused(q);
            if !h.port.queues[q].is_empty() && !paused {
                // simlint::allow(hot-path-unwrap, guarded by the is_empty() check one line up)
                let pid = h.port.queues[q].pop_front().unwrap();
                let size = self.arena.get(pid).size as u64;
                h.port.queued_bytes_q[q] -= size;
                h.port.queued_bytes -= size;
                selected = Some(pid);
                break 'prio;
            }
            if q >= h.active.len() || paused {
                continue;
            }
            // Pull from transports at this data priority, round-robin.
            let len = h.active[q].len();
            let mut finished: Vec<FlowId> = Vec::new();
            for k in 0..len {
                let idx = (h.rr[q] + k) % len;
                let fid = h.active[q][idx];
                let f = &self.flows[fid as usize];
                let fl = self.live.get_mut(f.live);
                match fl.transport.try_send(now) {
                    TrySend::Data { seq, bytes } => {
                        let mut ctx = Self::ctx(&mut self.queue, &mut self.traces, now, fid);
                        fl.transport.on_sent(TrySend::Data { seq, bytes }, &mut ctx);
                        let mut pkt = Packet::data(
                            fid,
                            node,
                            f.spec.dst,
                            f.spec.phys_prio,
                            bytes,
                            seq,
                            now,
                        );
                        pkt.dscp = f.spec.virt_prio;
                        #[cfg(feature = "audit")]
                        if let Some(a) = self.audit.as_deref_mut() {
                            a.on_data_injected(fid, pkt.size as u64);
                        }
                        h.rr[q] = (idx + 1) % len;
                        selected = Some(self.arena.alloc(pkt));
                        break;
                    }
                    TrySend::Probe => {
                        let mut ctx = Self::ctx(&mut self.queue, &mut self.traces, now, fid);
                        fl.transport.on_sent(TrySend::Probe, &mut ctx);
                        self.counters.probes += 1;
                        let pkt = Packet::probe(fid, node, f.spec.dst, f.spec.phys_prio, now);
                        h.rr[q] = (idx + 1) % len;
                        selected = Some(self.arena.alloc(pkt));
                        break;
                    }
                    TrySend::NotBefore(t) => {
                        min_retry = min_retry.min(t);
                    }
                    TrySend::Blocked => {}
                    TrySend::Finished => finished.push(fid),
                }
            }
            for fid in finished {
                let f = &mut self.flows[fid as usize];
                f.active = false;
                h.deactivate(q as u8, fid);
                // Inline slab release (mirrors `release_flow_state`; `h`
                // still borrows `self.nodes`, so the method can't be called
                // here — the disjoint field accesses can).
                if f.live != u32::MAX
                    && self.switch_cfg.buggify != Some(Buggify::FlowReclaimLeak)
                {
                    let slot = f.live;
                    f.live = u32::MAX;
                    let fl = self.live.release(slot);
                    f.record.retransmits = fl.transport.retransmits();
                }
            }
            if selected.is_some() {
                break 'prio;
            }
        }
        match selected {
            Some(pid) => {
                let size = self.arena.get(pid).size as u64;
                let (peer, peer_port, rate, prop) = self.port_specs[node as usize][0];
                let (rate, prop) =
                    match self.faults.as_deref().and_then(|f| f.degrade_of(node, 0)) {
                        Some((factor, extra)) => (rate.mul_f64(factor), prop + extra),
                        None => (rate, prop),
                    };
                let h = match &mut self.nodes[node as usize] {
                    Node::Host(h) => h,
                    _ => unreachable!(),
                };
                h.port.busy = true;
                h.port.tx_bytes += size;
                let ser = rate.serialize_time(size);
                self.queue
                    .schedule(now + ser, Event::PortFree { node, port: 0 });
                self.queue.schedule(
                    now + ser + prop,
                    Event::Arrive {
                        node: peer,
                        in_port: peer_port,
                        pkt: pid,
                    },
                );
            }
            None => {
                if min_retry != Time::MAX {
                    let at = min_retry.max(now + Time::from_ps(1));
                    let h = match &mut self.nodes[node as usize] {
                        Node::Host(h) => h,
                        _ => unreachable!(),
                    };
                    if at < h.next_poke {
                        h.next_poke = at;
                        self.queue.schedule(at, Event::HostPoke { node });
                    }
                }
            }
        }
    }

    fn on_sample(&mut self, monitor: u32, now: Time) {
        let m = &mut self.monitors[monitor as usize];
        match m.kind {
            MonitorKind::QueueBytes { node, port } => {
                let bytes = match &self.nodes[node as usize] {
                    Node::Switch(s) => s.ports[port as usize].queued_bytes,
                    Node::Host(h) => h.port.queued_bytes,
                };
                m.record_gauge(now, bytes as f64);
            }
            MonitorKind::QueueBytesPrio { node, port, prio } => {
                let bytes = match &self.nodes[node as usize] {
                    Node::Switch(s) => s.ports[port as usize].queued_bytes_q[prio as usize],
                    Node::Host(h) => h.port.queued_bytes_q[prio as usize],
                };
                m.record_gauge(now, bytes as f64);
            }
            MonitorKind::PortThroughput { node, port } => {
                let tx = match &self.nodes[node as usize] {
                    Node::Switch(s) => s.ports[port as usize].tx_bytes,
                    Node::Host(h) => h.port.tx_bytes,
                };
                m.record_tx(now, tx);
            }
            MonitorKind::SwitchBuffer { node } => {
                let bytes = match &self.nodes[node as usize] {
                    Node::Switch(s) => s.total_buffered as f64,
                    Node::Host(_) => 0.0,
                };
                m.record_gauge(now, bytes);
            }
        }
        if now + m.period < self.cfg.end_time {
            let period = m.period;
            self.queue.schedule(now + period, Event::Sample { monitor });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The whole point of the packet arena: events stay a few machine words
    /// so the scheduler backends sift small entries. If `Event` grows past
    /// 16 bytes (or an `Entry<Event>` past 40), someone put a payload back
    /// into the queue by value — route it through the arena instead.
    #[test]
    fn event_stays_slim() {
        assert!(
            std::mem::size_of::<Event>() <= 16,
            "Event grew to {} bytes; keep payloads in the packet arena",
            std::mem::size_of::<Event>()
        );
        assert!(
            std::mem::size_of::<simcore::Entry<Event>>() <= 40,
            "Entry<Event> grew to {} bytes",
            std::mem::size_of::<simcore::Entry<Event>>()
        );
    }
}
