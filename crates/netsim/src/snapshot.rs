//! Simulation snapshot and warm-start.
//!
//! [`Sim::snapshot`] captures the *complete* deterministic state of a
//! running simulation — scheduler queue, packet arena, live flow slab
//! (transports deep-copied via [`Transport::clone_box`]), node/port state,
//! RNG streams, counters, fluid backlogs, streaming sketches, and the audit
//! mirror — into an owned, `Send + Sync` [`SimSnapshot`]. [`Sim::restore`]
//! rebuilds a simulator that continues bit-identically to the original:
//! the restore-equals-straight-through property is pinned by the
//! `e2e_snapshot` suite across every scheduler backend.
//!
//! The intended use is prefix-sharing parameter sweeps
//! (`experiments::sweep::run_warm`): configs that share a warmup prefix
//! simulate it once, snapshot, then fork per-config instead of replaying
//! the prefix N times.
//!
//! Two design rules keep the snapshot honest:
//!
//! - **The forget-a-field guard**: [`Sim::restore`] builds `Sim` with an
//!   exhaustive struct literal (no `..`). Adding a field to `Sim` without
//!   deciding how it snapshots is a compile error, not a silent divergence.
//! - **Digest completeness**: [`Sim::state_digest`] folds every
//!   deterministic field into one `u64`; the snapshot-completeness fleet
//!   mutates one field class at a time (via [`StateTamper`]) and asserts
//!   the digest notices. A field the digest misses is a field a future
//!   snapshot bug could silently drop.
//!
//! Closed-loop [`crate::sim::App`]s and open-loop
//! [`crate::sim::ArrivalSource`]s hold arbitrary user state behind object
//! traits without a clone hook, so snapshotting is restricted to runs
//! without them (both are asserted `None`). That restriction is what makes
//! `SimSnapshot` automatically `Send + Sync`, which warm-start sweeps rely
//! on to share one snapshot across worker threads.

use simcore::{EventQueue, QueueSnapshot, Rate, ScheduledId, SimRng, Time};

#[cfg(feature = "audit")]
use crate::audit::Audit;
use crate::config::{SimConfig, SwitchConfig};
use crate::event::Event;
use crate::faults::FaultRuntime;
use crate::fluid::FluidState;
use crate::monitor::Monitor;
use crate::packet::{FlowId, NodeId, PacketArena};
use crate::record::{FlowTrace, SimCounters, StreamingStats};
use crate::routing::RoutingTable;
use crate::sim::{Flow, FlowSlab, Node, Sim};
use crate::transport_api::Transport;

use std::collections::BTreeMap;

/// An owned image of a [`Sim`]'s complete deterministic state at one
/// instant. Produced by [`Sim::snapshot`], consumed (any number of times)
/// by [`Sim::restore`]. `Send + Sync` by construction, so sweep workers can
/// fork from a shared snapshot concurrently.
pub struct SimSnapshot {
    cfg: SimConfig,
    switch_cfg: SwitchConfig,
    nodes: Vec<Node>,
    port_specs: Vec<Vec<(NodeId, u16, Rate, Time)>>,
    routes: RoutingTable,
    flows: Vec<Flow>,
    live: FlowSlab,
    arena: PacketArena,
    queue: QueueSnapshot<Event>,
    counters: SimCounters,
    monitors: Vec<Monitor>,
    traces: BTreeMap<FlowId, FlowTrace>,
    noise_rng: SimRng,
    ecn_rng: SimRng,
    nc_rng: SimRng,
    lossy: bool,
    streaming: Option<Box<StreamingStats>>,
    completed_buf: Vec<FlowId>,
    fluid: Option<Box<FluidState>>,
    fluid_epoch: Option<ScheduledId>,
    faults: Option<Box<FaultRuntime>>,
    started: bool,
    #[cfg(feature = "audit")]
    audit: Option<Box<Audit>>,
}

/// Which class of simulator state a completeness-fleet tamper mutates.
/// One variant per digest-covered field class that a snapshot bug could
/// plausibly drop; the `e2e_snapshot` fleet applies each in turn and
/// asserts [`Sim::state_digest`] diverges.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StateTamper {
    /// Bump one [`SimCounters`] field.
    Counter,
    /// Advance one RNG stream by a draw.
    Rng,
    /// Fold a sample into the streaming quantile sketch (requires
    /// [`SimConfig::streaming_stats`]).
    Sketch,
    /// Leak one unit of fluid backlog mass (requires a hybrid run with
    /// [`SimConfig::background`]).
    FluidBacklog,
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

impl Sim {
    /// Capture the full deterministic state into an owned
    /// [`SimSnapshot`]. Cold path by design: deep-copies the arena, slab,
    /// queue, and node state. Outstanding [`ScheduledId`]s held by
    /// transports stay valid against the restored queue (the cancellation
    /// slot table is captured verbatim).
    ///
    /// # Panics
    /// Panics if a closed-loop [`crate::sim::App`] or an open-loop
    /// [`crate::sim::ArrivalSource`] is installed — both hold arbitrary
    /// user state the snapshot cannot capture.
    pub fn snapshot(&self) -> SimSnapshot {
        assert!(
            self.app.is_none(),
            "snapshot with a closed-loop App installed: App state is not capturable"
        );
        assert!(
            self.arrivals.is_none(),
            "snapshot with an ArrivalSource installed: source state is not capturable"
        );
        SimSnapshot {
            cfg: self.cfg.clone(), // simlint::allow(hot-path-alloc, snapshot/restore is an explicit cold path, never per event)
            switch_cfg: self.switch_cfg.clone(), // simlint::allow(hot-path-alloc, snapshot/restore is an explicit cold path, never per event)
            nodes: self.nodes.clone(), // simlint::allow(hot-path-alloc, snapshot/restore is an explicit cold path, never per event)
            port_specs: self.port_specs.clone(), // simlint::allow(hot-path-alloc, snapshot/restore is an explicit cold path, never per event)
            routes: self.routes.clone(), // simlint::allow(hot-path-alloc, snapshot/restore is an explicit cold path, never per event)
            flows: self.flows.clone(), // simlint::allow(hot-path-alloc, snapshot/restore is an explicit cold path, never per event)
            live: self.live.clone(), // simlint::allow(hot-path-alloc, snapshot/restore is an explicit cold path, never per event)
            arena: self.arena.clone(), // simlint::allow(hot-path-alloc, snapshot/restore is an explicit cold path, never per event)
            queue: self.queue.snapshot(),
            counters: self.counters.clone(), // simlint::allow(hot-path-alloc, snapshot/restore is an explicit cold path, never per event)
            monitors: self.monitors.clone(), // simlint::allow(hot-path-alloc, snapshot/restore is an explicit cold path, never per event)
            traces: self.traces.clone(), // simlint::allow(hot-path-alloc, snapshot/restore is an explicit cold path, never per event)
            noise_rng: self.noise_rng.clone(), // simlint::allow(hot-path-alloc, snapshot/restore is an explicit cold path, never per event)
            ecn_rng: self.ecn_rng.clone(), // simlint::allow(hot-path-alloc, snapshot/restore is an explicit cold path, never per event)
            nc_rng: self.nc_rng.clone(), // simlint::allow(hot-path-alloc, snapshot/restore is an explicit cold path, never per event)
            lossy: self.lossy,
            streaming: self.streaming.clone(), // simlint::allow(hot-path-alloc, snapshot/restore is an explicit cold path, never per event)
            completed_buf: self.completed_buf.clone(), // simlint::allow(hot-path-alloc, snapshot/restore is an explicit cold path, never per event)
            fluid: self.fluid.clone(), // simlint::allow(hot-path-alloc, snapshot/restore is an explicit cold path, never per event)
            fluid_epoch: self.fluid_epoch,
            faults: self.faults.clone(), // simlint::allow(hot-path-alloc, snapshot/restore is an explicit cold path, never per event)
            started: self.started,
            // The audit mirror MUST be carried over: a fresh audit on the
            // resumed half would recount conservation tallies from zero and
            // flag every pre-snapshot byte as a violation.
            #[cfg(feature = "audit")]
            audit: self.audit.clone(), // simlint::allow(hot-path-alloc, snapshot/restore is an explicit cold path, never per event)
        }
    }

    /// Rebuild a simulator from `snap`; the result continues bit-identically
    /// to the simulation the snapshot was taken from. May be called any
    /// number of times on the same snapshot (warm-start forks).
    ///
    /// The struct literal below is deliberately exhaustive (no `..`): a new
    /// `Sim` field breaks this function at compile time until its snapshot
    /// story is decided.
    pub fn restore(snap: &SimSnapshot) -> Sim {
        Sim {
            cfg: snap.cfg.clone(), // simlint::allow(hot-path-alloc, snapshot/restore is an explicit cold path, never per event)
            switch_cfg: snap.switch_cfg.clone(), // simlint::allow(hot-path-alloc, snapshot/restore is an explicit cold path, never per event)
            nodes: snap.nodes.clone(), // simlint::allow(hot-path-alloc, snapshot/restore is an explicit cold path, never per event)
            port_specs: snap.port_specs.clone(), // simlint::allow(hot-path-alloc, snapshot/restore is an explicit cold path, never per event)
            routes: snap.routes.clone(), // simlint::allow(hot-path-alloc, snapshot/restore is an explicit cold path, never per event)
            flows: snap.flows.clone(), // simlint::allow(hot-path-alloc, snapshot/restore is an explicit cold path, never per event)
            live: snap.live.clone(), // simlint::allow(hot-path-alloc, snapshot/restore is an explicit cold path, never per event)
            arena: snap.arena.clone(), // simlint::allow(hot-path-alloc, snapshot/restore is an explicit cold path, never per event)
            queue: EventQueue::restore(&snap.queue),
            counters: snap.counters.clone(), // simlint::allow(hot-path-alloc, snapshot/restore is an explicit cold path, never per event)
            monitors: snap.monitors.clone(), // simlint::allow(hot-path-alloc, snapshot/restore is an explicit cold path, never per event)
            traces: snap.traces.clone(), // simlint::allow(hot-path-alloc, snapshot/restore is an explicit cold path, never per event)
            noise_rng: snap.noise_rng.clone(), // simlint::allow(hot-path-alloc, snapshot/restore is an explicit cold path, never per event)
            ecn_rng: snap.ecn_rng.clone(), // simlint::allow(hot-path-alloc, snapshot/restore is an explicit cold path, never per event)
            nc_rng: snap.nc_rng.clone(), // simlint::allow(hot-path-alloc, snapshot/restore is an explicit cold path, never per event)
            lossy: snap.lossy,
            app: None,
            arrivals: None,
            streaming: snap.streaming.clone(), // simlint::allow(hot-path-alloc, snapshot/restore is an explicit cold path, never per event)
            completed_buf: snap.completed_buf.clone(), // simlint::allow(hot-path-alloc, snapshot/restore is an explicit cold path, never per event)
            fluid: snap.fluid.clone(), // simlint::allow(hot-path-alloc, snapshot/restore is an explicit cold path, never per event)
            fluid_epoch: snap.fluid_epoch,
            faults: snap.faults.clone(), // simlint::allow(hot-path-alloc, snapshot/restore is an explicit cold path, never per event)
            started: snap.started,
            #[cfg(feature = "audit")]
            audit: snap.audit.clone(), // simlint::allow(hot-path-alloc, snapshot/restore is an explicit cold path, never per event)
        }
    }

    /// FNV-1a fingerprint of the simulator's complete deterministic state:
    /// scheduler queue (canonical entry order), counters, RNG streams,
    /// packet arena, flow slab, fluid backlogs, and streaming sketches.
    /// Two simulators with equal digests dispatch identically from here on;
    /// the snapshot-completeness fleet pins that every [`StateTamper`]
    /// class moves it.
    pub fn state_digest(&self) -> u64 {
        let mut h = FNV_OFFSET;
        let mut fold = |w: u64| {
            for b in w.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(FNV_PRIME);
            }
        };

        // Scheduler queue, in canonical (at, seq) order — backend-agnostic.
        let qs = self.queue.snapshot();
        fold(qs.now().as_ps());
        fold(qs.popped());
        fold(qs.next_seq());
        for e in qs.entries() {
            fold(e.at.as_ps());
            fold(e.seq);
            fold(e.slot as u64);
            e.event.fold_digest(&mut fold);
        }

        // Counters, exhaustively.
        let c = &self.counters;
        for w in [
            c.events,
            c.data_delivered,
            c.pfc_pauses,
            c.pfc_resumes,
            c.drops,
            c.ecn_marks,
            c.probes,
            c.max_buffer_used,
            c.arena_allocs,
            c.arena_slab_slots,
            c.arena_peak_live,
            c.arena_int_allocs,
            c.arena_int_recycled,
            c.fluid_flows_started,
            c.fluid_flows_completed,
            c.fluid_bytes_injected,
            c.fluid_epochs,
            c.fault_events,
            c.fault_link_drops,
            c.fault_ctrl_drops,
            c.flows_total,
            c.flow_live_peak,
            c.flow_slab_slots,
            c.flows_reclaimed,
            c.flow_live_bytes_peak,
            c.sched_pops,
        ] {
            fold(w);
        }

        // RNG streams.
        for rng in [&self.noise_rng, &self.ecn_rng, &self.nc_rng] {
            for w in rng.state() {
                fold(w);
            }
        }

        // Packet arena: free list, stats, live headers + cold shapes.
        self.arena.fold_digest(&mut fold);

        // Flow cores and live state. The transport is a trait object, so it
        // contributes its observable sender state (cwnd, retransmits,
        // finished); the full transport state is exercised by the
        // resume-bit-identity tests rather than the digest.
        fold(self.flows.len() as u64);
        for f in &self.flows {
            fold(f.record.delivered);
            fold(f.record.finish.map_or(0, |t| t.as_ps() + 1));
            fold(f.record.retransmits);
            fold(f.active as u64 | (f.live as u64) << 1);
        }
        fold(self.live.occupancy);
        fold(self.live.free.len() as u64);
        for &s in &self.live.free {
            fold(s as u64);
        }
        for slot in self.live.slots.iter().flatten() {
            fold(slot.recv.cum);
            fold(slot.recv.delivered);
            fold(slot.recv.nack_for_cum | (slot.recv.done as u64) << 63);
            fold(slot.recv.ooo.len() as u64);
            for (&s, &e) in &slot.recv.ooo {
                fold(s);
                fold(e);
            }
            fold(slot.transport.cwnd_bytes().to_bits());
            fold(slot.transport.retransmits());
            fold(slot.transport.is_finished() as u64);
        }

        // Fluid backlogs (hybrid model).
        fold(self.fluid.is_some() as u64);
        if let Some(f) = self.fluid.as_deref() {
            f.fold_digest(&mut fold);
        }

        // Streaming sketches.
        fold(self.streaming.is_some() as u64);
        if let Some(s) = self.streaming.as_deref() {
            fold(s.fingerprint());
        }

        fold(self.started as u64 | (self.lossy as u64) << 1);
        h
    }

    /// Buggify-style hook for the snapshot-completeness fleet: mutate one
    /// class of deterministic state in place. Returns `false` when the run
    /// does not carry that state class (e.g. [`StateTamper::FluidBacklog`]
    /// on a pure packet run), so tests can assert the tamper actually
    /// landed before asserting digest divergence.
    #[doc(hidden)]
    pub fn snap_mutate(&mut self, tamper: StateTamper) -> bool {
        match tamper {
            StateTamper::Counter => {
                self.counters.data_delivered += 1;
                true
            }
            StateTamper::Rng => {
                self.noise_rng.next();
                true
            }
            StateTamper::Sketch => match self.streaming.as_deref_mut() {
                Some(s) => {
                    s.fct_ps.add(1);
                    true
                }
                None => false,
            },
            StateTamper::FluidBacklog => match self.fluid.as_deref_mut() {
                Some(f) => {
                    f.tamper_backlog();
                    true
                }
                None => false,
            },
        }
    }
}

// Compile-time proof that a snapshot can be shared across sweep workers.
// (Transports are `Send + Sync` by trait bound; everything else is plain
// data. An App/ArrivalSource field would break this, which is exactly why
// snapshot() excludes them.)
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SimSnapshot>();
    assert_send_sync::<Box<dyn Transport>>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tamper_classes_are_distinct() {
        assert_ne!(StateTamper::Counter, StateTamper::Rng);
        assert_ne!(StateTamper::Sketch, StateTamper::FluidBacklog);
    }
}
