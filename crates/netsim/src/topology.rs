//! Topology builders for the paper's evaluation environments.
//!
//! - [`Topology::single_switch`]: the micro-benchmark tree — N hosts on one
//!   switch, host 0 the receiver, so the switch→receiver port is the single
//!   bottleneck (§3, §6.1);
//! - [`Topology::testbed_tree`]: the 10 Gbps/≈13 µs testbed (§5);
//! - [`Topology::fat_tree`]: the standard k-ary fat-tree (flow scheduling,
//!   §6.2);
//! - [`Topology::leaf_spine`]: 2-tier leaf–spine with configurable
//!   oversubscription (coflow fabric, CASSINI-style ML cluster);
//! - [`Topology::three_tier_wan`]: the hyperscale multi-datacenter fabric —
//!   per-DC ToR/agg/core tiers joined by WAN routers, tens of thousands of
//!   hosts at the default [`ThreeTierWanSpec`].

use simcore::{Rate, Time};

use crate::config::LinkSpec;
use crate::packet::NodeId;

/// Parameters for [`Topology::three_tier_wan`].
///
/// The default spec is the hyperscale evaluation fabric: 4 datacenters ×
/// 8 pods × 16 ToRs × 64 hosts = 32 768 hosts behind 840 switches.
#[derive(Clone, Copy, Debug)]
pub struct ThreeTierWanSpec {
    /// Number of datacenters.
    pub dcs: usize,
    /// Pods per datacenter.
    pub pods_per_dc: usize,
    /// ToR switches per pod (hosts attach here).
    pub tors_per_pod: usize,
    /// Hosts per ToR.
    pub hosts_per_tor: usize,
    /// Aggregation switches per pod (every ToR connects to all of them).
    pub aggs_per_pod: usize,
    /// Core switches per datacenter (every agg connects to all of them).
    pub cores_per_dc: usize,
    /// WAN routers (every core in every DC connects to all of them).
    pub wan_routers: usize,
    /// Host NIC rate.
    pub host_rate: Rate,
    /// ToR–agg and agg–core link rate.
    pub fabric_rate: Rate,
    /// Core–WAN link rate.
    pub wan_rate: Rate,
    /// Intra-DC one-way propagation.
    pub prop: Time,
    /// Core–WAN one-way propagation (inter-DC distance).
    pub wan_prop: Time,
}

impl Default for ThreeTierWanSpec {
    fn default() -> Self {
        ThreeTierWanSpec {
            dcs: 4,
            pods_per_dc: 8,
            tors_per_pod: 16,
            hosts_per_tor: 64,
            aggs_per_pod: 8,
            cores_per_dc: 16,
            wan_routers: 8,
            host_rate: Rate::from_gbps(100),
            fabric_rate: Rate::from_gbps(400),
            wan_rate: Rate::from_gbps(1600),
            prop: Time::from_us(1),
            wan_prop: Time::from_us(500),
        }
    }
}

impl ThreeTierWanSpec {
    /// A downscaled spec (16 hosts, 22 switches) for unit tests and the
    /// exact-vs-compressed routing differential.
    pub fn tiny() -> Self {
        ThreeTierWanSpec {
            dcs: 2,
            pods_per_dc: 2,
            tors_per_pod: 2,
            hosts_per_tor: 2,
            aggs_per_pod: 2,
            cores_per_dc: 2,
            wan_routers: 2,
            ..Default::default()
        }
    }

    /// Total host count.
    pub fn num_hosts(&self) -> usize {
        self.dcs * self.pods_per_dc * self.tors_per_pod * self.hosts_per_tor
    }

    /// Total switch count (ToRs + aggs + cores + WAN routers).
    pub fn num_switches(&self) -> usize {
        self.dcs * self.pods_per_dc * (self.tors_per_pod + self.aggs_per_pod)
            + self.dcs * self.cores_per_dc
            + self.wan_routers
    }

    /// Total full-duplex link count.
    pub fn num_links(&self) -> usize {
        self.num_hosts()
            + self.dcs * self.pods_per_dc * self.tors_per_pod * self.aggs_per_pod
            + self.dcs * self.pods_per_dc * self.aggs_per_pod * self.cores_per_dc
            + self.dcs * self.cores_per_dc * self.wan_routers
    }
}

/// Role of a node in the topology.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeKind {
    /// An end host with one NIC.
    Host,
    /// A switch.
    Switch,
}

/// A network topology: nodes and full-duplex links.
#[derive(Clone, Debug)]
pub struct Topology {
    /// Node roles, indexed by [`NodeId`].
    pub kinds: Vec<NodeKind>,
    /// Full-duplex links `(a, b, spec)`; the same rate/propagation applies
    /// in both directions.
    pub links: Vec<(NodeId, NodeId, LinkSpec)>,
    /// Host node ids in builder order.
    pub hosts: Vec<NodeId>,
}

impl Topology {
    /// Empty topology.
    pub fn new() -> Self {
        Topology {
            kinds: Vec::new(),
            links: Vec::new(),
            hosts: Vec::new(),
        }
    }

    /// Add a host; returns its id.
    pub fn add_host(&mut self) -> NodeId {
        let id = self.kinds.len() as NodeId;
        self.kinds.push(NodeKind::Host);
        self.hosts.push(id);
        id
    }

    /// Add a switch; returns its id.
    pub fn add_switch(&mut self) -> NodeId {
        let id = self.kinds.len() as NodeId;
        self.kinds.push(NodeKind::Switch);
        id
    }

    /// Connect two nodes with a full-duplex link.
    pub fn connect(&mut self, a: NodeId, b: NodeId, rate: Rate, prop: Time) {
        assert_ne!(a, b, "self link");
        self.links.push((a, b, LinkSpec { rate, prop }));
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.kinds.len()
    }

    /// Adjacency list: `adj[node]` = `(port, peer)`, ports numbered in link
    /// insertion order per node.
    pub fn adjacency(&self) -> Vec<Vec<(u16, NodeId)>> {
        let mut adj: Vec<Vec<(u16, NodeId)>> = vec![Vec::new(); self.num_nodes()];
        for &(a, b, _) in &self.links {
            let pa = adj[a as usize].len() as u16;
            adj[a as usize].push((pa, b));
            let pb = adj[b as usize].len() as u16;
            adj[b as usize].push((pb, a));
        }
        adj
    }

    /// The micro-benchmark topology: `n_senders + 1` hosts on one switch.
    /// Host index 0 is the designated receiver; all links share `rate` and
    /// `prop`. With 100 Gbps links and 3 µs latency this matches the paper's
    /// 12 µs-RTT bottleneck environment.
    pub fn single_switch(n_senders: usize, rate: Rate, prop: Time) -> Self {
        let mut t = Topology::new();
        let sw = {
            // Build hosts first for contiguous host ids starting at 0.
            let mut hosts = Vec::new();
            for _ in 0..=n_senders {
                hosts.push(t.add_host());
            }
            let sw = t.add_switch();
            for h in hosts {
                t.connect(h, sw, rate, prop);
            }
            sw
        };
        let _ = sw;
        t
    }

    /// The paper's testbed (§5): four sender leaves and one receiver root on
    /// a 10 Gbps tree with ≈13 µs RTT.
    pub fn testbed_tree() -> Self {
        // RTT for a 1048B packet + 64B ack through 2 store-and-forward hops:
        // 2*ser_data + 2*ser_ack + 4*prop. ser_data(10G) = 838.4ns,
        // ser_ack = 51.2ns => ~1.78us serialization; prop = 2.8us gives
        // RTT ~ 13.0us.
        Topology::single_switch(4, Rate::from_gbps(10), Time::from_ns(2_800))
    }

    /// Standard k-ary fat-tree: `k` pods, `k/2` edge + `k/2` aggregation
    /// switches per pod, `(k/2)^2` cores, `k/2` hosts per edge switch.
    /// All links run at `rate` with `prop` one-way latency.
    ///
    /// # Panics
    /// Panics when `k` is odd or zero.
    pub fn fat_tree(k: usize, rate: Rate, prop: Time) -> Self {
        assert!(k >= 2 && k % 2 == 0, "fat-tree requires even k");
        let half = k / 2;
        let mut t = Topology::new();
        // Hosts first: pod p, edge e, host h.
        let mut hosts = vec![vec![vec![0; half]; half]; k];
        for (p, pod) in hosts.iter_mut().enumerate() {
            let _ = p;
            for edge in pod.iter_mut() {
                for h in edge.iter_mut() {
                    *h = t.add_host();
                }
            }
        }
        let mut edges = vec![vec![0; half]; k];
        let mut aggs = vec![vec![0; half]; k];
        for p in 0..k {
            for e in edges[p].iter_mut() {
                *e = t.add_switch();
            }
            for a in aggs[p].iter_mut() {
                *a = t.add_switch();
            }
        }
        let mut cores = vec![0; half * half];
        for c in cores.iter_mut() {
            *c = t.add_switch();
        }
        for p in 0..k {
            for e in 0..half {
                for &host in &hosts[p][e] {
                    t.connect(host, edges[p][e], rate, prop);
                }
                for &agg in &aggs[p] {
                    t.connect(edges[p][e], agg, rate, prop);
                }
            }
            for (a, agg) in aggs[p].iter().enumerate() {
                for j in 0..half {
                    t.connect(*agg, cores[a * half + j], rate, prop);
                }
            }
        }
        t
    }

    /// A linear chain: host 0 — switch — switch — … — switch — host 1, with
    /// `switches ≥ 1` switches, all links at `rate`/`prop`. The only
    /// deliberately long-diameter topology; used by the INT-path saturation
    /// regression (paths longer than [`crate::packet::INT_INLINE_HOPS`]
    /// spill, and [`crate::packet::INT_MAX_HOPS`] caps them) and by
    /// multi-hop fault scenarios.
    pub fn chain(switches: usize, rate: Rate, prop: Time) -> Self {
        assert!(switches >= 1, "chain needs at least one switch");
        let mut t = Topology::new();
        let h0 = t.add_host();
        let h1 = t.add_host();
        let sws: Vec<_> = (0..switches).map(|_| t.add_switch()).collect();
        t.connect(h0, sws[0], rate, prop);
        for w in sws.windows(2) {
            t.connect(w[0], w[1], rate, prop);
        }
        t.connect(sws[switches - 1], h1, rate, prop);
        t
    }

    /// A ring of `n ≥ 3` switches, each with one attached host: hosts are
    /// nodes `0..n`, switch `n + i` serves host `i`, and ring links join
    /// switch `n + i` to switch `n + (i + 1) % n`. With odd `n` every
    /// switch-to-switch shortest path is unique, so ECMP routing is fully
    /// deterministic — the fault tests use this to construct circular
    /// buffer dependencies (PFC deadlock) with pause storms.
    pub fn ring(n: usize, rate: Rate, prop: Time) -> Self {
        assert!(n >= 3, "ring needs at least three switches");
        let mut t = Topology::new();
        let hosts: Vec<_> = (0..n).map(|_| t.add_host()).collect();
        let sws: Vec<_> = (0..n).map(|_| t.add_switch()).collect();
        for i in 0..n {
            t.connect(hosts[i], sws[i], rate, prop);
        }
        for i in 0..n {
            t.connect(sws[i], sws[(i + 1) % n], rate, prop);
        }
        t
    }

    /// Two-tier leaf–spine fabric. Each leaf hosts `hosts_per_leaf` hosts at
    /// `host_rate`; every leaf connects to every spine at `fabric_rate`.
    /// Oversubscription = `hosts_per_leaf*host_rate / (spines*fabric_rate)`.
    pub fn leaf_spine(
        leaves: usize,
        spines: usize,
        hosts_per_leaf: usize,
        host_rate: Rate,
        fabric_rate: Rate,
        prop: Time,
    ) -> Self {
        let mut t = Topology::new();
        let mut host_ids = Vec::new();
        for _ in 0..leaves * hosts_per_leaf {
            host_ids.push(t.add_host());
        }
        let leaf_ids: Vec<_> = (0..leaves).map(|_| t.add_switch()).collect();
        let spine_ids: Vec<_> = (0..spines).map(|_| t.add_switch()).collect();
        for (l, &leaf) in leaf_ids.iter().enumerate() {
            for h in 0..hosts_per_leaf {
                t.connect(host_ids[l * hosts_per_leaf + h], leaf, host_rate, prop);
            }
            for &spine in &spine_ids {
                t.connect(leaf, spine, fabric_rate, prop);
            }
        }
        t
    }

    /// Hyperscale 3-tier + WAN fabric: per datacenter, `pods_per_dc` pods
    /// of `tors_per_pod` ToRs (each serving `hosts_per_tor` hosts) fully
    /// meshed to `aggs_per_pod` aggregation switches, aggs fully meshed to
    /// `cores_per_dc` DC cores, and every core connected to every WAN
    /// router. Node order: all hosts (dc, pod, tor, host), then ToRs, then
    /// aggs, then cores, then WAN routers — hosts first, matching every
    /// other constructor, so host ids are contiguous from 0.
    pub fn three_tier_wan(spec: &ThreeTierWanSpec) -> Self {
        let mut t = Topology::new();
        let n_tors = spec.dcs * spec.pods_per_dc * spec.tors_per_pod;
        let mut hosts = Vec::with_capacity(spec.num_hosts());
        for _ in 0..spec.num_hosts() {
            hosts.push(t.add_host());
        }
        let tors: Vec<_> = (0..n_tors).map(|_| t.add_switch()).collect();
        let n_aggs = spec.dcs * spec.pods_per_dc * spec.aggs_per_pod;
        let aggs: Vec<_> = (0..n_aggs).map(|_| t.add_switch()).collect();
        let n_cores = spec.dcs * spec.cores_per_dc;
        let cores: Vec<_> = (0..n_cores).map(|_| t.add_switch()).collect();
        let wans: Vec<_> = (0..spec.wan_routers).map(|_| t.add_switch()).collect();

        // Hosts to their ToR.
        for (h, &host) in hosts.iter().enumerate() {
            t.connect(host, tors[h / spec.hosts_per_tor], spec.host_rate, spec.prop);
        }
        // ToRs to every agg in their pod.
        for (ti, &tor) in tors.iter().enumerate() {
            let pod = ti / spec.tors_per_pod; // global pod index
            for a in 0..spec.aggs_per_pod {
                t.connect(
                    tor,
                    aggs[pod * spec.aggs_per_pod + a],
                    spec.fabric_rate,
                    spec.prop,
                );
            }
        }
        // Aggs to every core in their DC.
        for (ai, &agg) in aggs.iter().enumerate() {
            let dc = ai / (spec.pods_per_dc * spec.aggs_per_pod);
            for c in 0..spec.cores_per_dc {
                t.connect(
                    agg,
                    cores[dc * spec.cores_per_dc + c],
                    spec.fabric_rate,
                    spec.prop,
                );
            }
        }
        // Every core to every WAN router.
        for &core in &cores {
            for &wan in &wans {
                t.connect(core, wan, spec.wan_rate, spec.wan_prop);
            }
        }
        t
    }

    /// Order-sensitive structural fingerprint over node kinds and links
    /// (endpoints, rate, propagation). Constructor regression tests pin
    /// this to a literal so accidental changes to build order — which the
    /// ECMP candidate order and therefore the golden traces depend on —
    /// fail loudly.
    pub fn fingerprint(&self) -> u64 {
        fn mix(mut x: u64) -> u64 {
            x ^= x >> 33;
            x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
            x ^= x >> 33;
            x = x.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
            x ^ (x >> 33)
        }
        let mut h = mix(self.kinds.len() as u64 ^ 0x9E37_79B9_7F4A_7C15);
        for (i, k) in self.kinds.iter().enumerate() {
            let tag = match k {
                NodeKind::Host => 1u64,
                NodeKind::Switch => 2u64,
            };
            h = mix(h ^ (i as u64) << 8 ^ tag);
        }
        for &(a, b, spec) in &self.links {
            h = mix(h ^ (a as u64) << 32 ^ b as u64);
            h = mix(h ^ spec.rate.as_bps());
            h = mix(h ^ spec.prop.as_ps());
        }
        h
    }
}

impl Default for Topology {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_switch_counts() {
        let t = Topology::single_switch(4, Rate::from_gbps(100), Time::from_us(3));
        assert_eq!(t.hosts.len(), 5);
        assert_eq!(t.num_nodes(), 6);
        assert_eq!(t.links.len(), 5);
    }

    #[test]
    fn fat_tree_k4_counts() {
        let t = Topology::fat_tree(4, Rate::from_gbps(100), Time::from_us(1));
        // k=4: 16 hosts, 8 edge, 8 agg, 4 core.
        assert_eq!(t.hosts.len(), 16);
        assert_eq!(t.num_nodes(), 16 + 8 + 8 + 4);
        // Links: 16 host + 4*2*4=32... edge-agg: k pods * half*half *? =
        // per pod: 2 edges x 2 aggs = 4 => 16; agg-core: per pod 2 aggs x 2 = 4 => 16.
        assert_eq!(t.links.len(), 16 + 16 + 16);
    }

    #[test]
    fn fat_tree_k6_counts() {
        let t = Topology::fat_tree(6, Rate::from_gbps(100), Time::from_us(1));
        assert_eq!(t.hosts.len(), 54);
        assert_eq!(t.num_nodes(), 54 + 6 * 6 + 9);
    }

    #[test]
    fn leaf_spine_counts_and_oversubscription() {
        // CASSINI-like: 24 servers, 2:1 oversubscription.
        let t = Topology::leaf_spine(
            4,
            2,
            6,
            Rate::from_gbps(100),
            Rate::from_gbps(150),
            Time::from_us(1),
        );
        assert_eq!(t.hosts.len(), 24);
        assert_eq!(t.num_nodes(), 24 + 4 + 2);
        // 6*100G hosts vs 2*150G uplinks per leaf = 2:1.
        assert_eq!(t.links.len(), 24 + 8);
    }

    #[test]
    fn adjacency_ports_are_dense_and_symmetric() {
        let t = Topology::single_switch(2, Rate::from_gbps(100), Time::from_us(1));
        let adj = t.adjacency();
        // Every host has exactly one port; the switch has 3.
        for &h in &t.hosts {
            assert_eq!(adj[h as usize].len(), 1);
        }
        let sw = 3; // hosts 0,1,2 then switch 3
        assert_eq!(adj[sw].len(), 3);
        // Symmetry: peer's port list contains us.
        for (n, ports) in adj.iter().enumerate() {
            for &(_, peer) in ports {
                assert!(adj[peer as usize].iter().any(|&(_, p)| p as usize == n));
            }
        }
    }

    #[test]
    #[should_panic(expected = "even k")]
    fn odd_fat_tree_rejected() {
        Topology::fat_tree(3, Rate::from_gbps(100), Time::from_us(1));
    }

    #[test]
    fn fat_tree_k8_counts() {
        // k=8: k^3/4 = 128 hosts, 32 edge, 32 agg, 16 core; each tier
        // contributes k^3/8 = 128 links.
        let t = Topology::fat_tree(8, Rate::from_gbps(100), Time::from_us(1));
        assert_eq!(t.hosts.len(), 128);
        assert_eq!(t.num_nodes(), 128 + 32 + 32 + 16);
        assert_eq!(t.links.len(), 3 * 128);
    }

    #[test]
    fn fat_tree_degrees_are_uniform_k() {
        // Every switch in a k-ary fat-tree has exactly k ports: edges serve
        // k/2 hosts + k/2 aggs, aggs serve k/2 edges + k/2 cores, cores
        // serve one agg per pod (k pods). Hosts have a single NIC.
        for k in [4usize, 6] {
            let t = Topology::fat_tree(k, Rate::from_gbps(100), Time::from_us(1));
            let adj = t.adjacency();
            for (n, kind) in t.kinds.iter().enumerate() {
                match kind {
                    NodeKind::Host => assert_eq!(adj[n].len(), 1, "host {n} (k={k})"),
                    NodeKind::Switch => assert_eq!(adj[n].len(), k, "switch {n} (k={k})"),
                }
            }
        }
    }

    #[test]
    fn fat_tree_links_connect_adjacent_tiers_only() {
        let k = 4;
        let t = Topology::fat_tree(k, Rate::from_gbps(100), Time::from_us(1));
        let tier = |n: NodeId| -> u8 {
            let n = n as usize;
            if n < 16 {
                0 // host
            } else if n < 16 + 16 {
                // Per pod: 2 edges then 2 aggs.
                if (n - 16) % k < k / 2 {
                    1 // edge
                } else {
                    2 // agg
                }
            } else {
                3 // core
            }
        };
        for &(a, b, _) in &t.links {
            let (ta, tb) = (tier(a), tier(b));
            assert_eq!(
                ta.abs_diff(tb),
                1,
                "link {a}({ta})-{b}({tb}) must join adjacent tiers"
            );
        }
    }

    #[test]
    fn leaf_spine_degrees() {
        let t = Topology::leaf_spine(
            4,
            2,
            6,
            Rate::from_gbps(100),
            Rate::from_gbps(150),
            Time::from_us(1),
        );
        let adj = t.adjacency();
        for &h in &t.hosts {
            assert_eq!(adj[h as usize].len(), 1);
        }
        // Leaves: 6 hosts + 2 spines; spines: 4 leaves.
        for leaf in &adj[24..28] {
            assert_eq!(leaf.len(), 8);
        }
        for spine in &adj[28..30] {
            assert_eq!(spine.len(), 4);
        }
    }

    #[test]
    fn chain_counts_and_shape() {
        let t = Topology::chain(10, Rate::from_gbps(100), Time::from_us(1));
        assert_eq!(t.hosts.len(), 2);
        assert_eq!(t.num_nodes(), 12);
        assert_eq!(t.links.len(), 11);
        let adj = t.adjacency();
        // End hosts have one NIC; interior switches have degree 2.
        assert_eq!(adj[0].len(), 1);
        assert_eq!(adj[1].len(), 1);
        for (sw, ports) in adj.iter().enumerate().skip(2) {
            assert_eq!(ports.len(), 2, "switch {sw}");
        }
    }

    #[test]
    fn ring_counts_and_degrees() {
        let n = 5;
        let t = Topology::ring(n, Rate::from_gbps(100), Time::from_us(1));
        assert_eq!(t.hosts.len(), n);
        assert_eq!(t.num_nodes(), 2 * n);
        assert_eq!(t.links.len(), 2 * n); // n host links + n ring links
        let adj = t.adjacency();
        for (node, ports) in adj.iter().enumerate() {
            if node < n {
                assert_eq!(ports.len(), 1, "host {node}");
            } else {
                assert_eq!(ports.len(), 3, "switch {node}: host + two ring neighbors");
            }
        }
    }

    #[test]
    fn fat_tree_k16_counts() {
        // k=16: k^3/4 = 1024 hosts, k^2/2 = 128 edge + 128 agg,
        // (k/2)^2 = 64 cores; each tier contributes k^3/4 = 1024 links.
        let t = Topology::fat_tree(16, Rate::from_gbps(100), Time::from_us(1));
        assert_eq!(t.hosts.len(), 1024);
        assert_eq!(t.num_nodes(), 1024 + 128 + 128 + 64);
        assert_eq!(t.links.len(), 3 * 1024);
        let adj = t.adjacency();
        for (n, kind) in t.kinds.iter().enumerate() {
            match kind {
                NodeKind::Host => assert_eq!(adj[n].len(), 1, "host {n}"),
                NodeKind::Switch => assert_eq!(adj[n].len(), 16, "switch {n}"),
            }
        }
    }

    #[test]
    fn fat_tree_k16_ecmp_widths() {
        // Closed-form ECMP path counts at k=16 (compressed routing table):
        // an edge switch reaches a remote-pod host through its k/2 = 8
        // uplinks, an agg through its 8 core uplinks, and a core has
        // exactly one path down (one agg per pod).
        let t = Topology::fat_tree(16, Rate::from_gbps(100), Time::from_us(1));
        let adj = t.adjacency();
        let is_host: Vec<bool> = t.kinds.iter().map(|k| *k == NodeKind::Host).collect();
        let rt = crate::routing::RoutingTable::build(&adj, &is_host, 0);
        assert!(rt.is_compressed(), "k=16 must use the compressed table");
        // 1024 hosts, then per pod 8 edges + 8 aggs; cores last.
        let pod0_edge = 1024 as NodeId;
        let pod0_agg = (1024 + 8) as NodeId;
        let core0 = (1024 + 256) as NodeId;
        let local_host = 0 as NodeId;
        let remote_host = 1023 as NodeId; // last host, pod 15
        assert_eq!(rt.candidates(pod0_edge, local_host).len(), 1);
        assert_eq!(rt.candidates(pod0_edge, remote_host).len(), 8);
        assert_eq!(rt.candidates(pod0_agg, remote_host).len(), 8);
        assert_eq!(rt.candidates(core0, remote_host).len(), 1);
    }

    #[test]
    fn three_tier_wan_tiny_counts_and_degrees() {
        let spec = ThreeTierWanSpec::tiny();
        let t = Topology::three_tier_wan(&spec);
        assert_eq!(t.hosts.len(), spec.num_hosts());
        assert_eq!(t.hosts.len(), 16);
        assert_eq!(t.num_nodes(), spec.num_hosts() + spec.num_switches());
        assert_eq!(t.links.len(), spec.num_links());
        let adj = t.adjacency();
        for &h in &t.hosts {
            assert_eq!(adj[h as usize].len(), 1, "host {h}");
        }
        // ToRs: hosts_per_tor + aggs_per_pod ports.
        let tor0 = spec.num_hosts();
        assert_eq!(adj[tor0].len(), spec.hosts_per_tor + spec.aggs_per_pod);
    }

    #[test]
    fn three_tier_wan_default_counts() {
        // The hyperscale fabric: 32 768 hosts, 840 switches.
        let spec = ThreeTierWanSpec::default();
        assert_eq!(spec.num_hosts(), 32_768);
        assert_eq!(spec.num_switches(), 4 * 8 * (16 + 8) + 4 * 16 + 8);
        assert_eq!(spec.num_switches(), 840);
        let t = Topology::three_tier_wan(&spec);
        assert_eq!(t.hosts.len(), 32_768);
        assert_eq!(t.num_nodes(), 32_768 + 840);
        // Links: 32768 host + 4*8*16*8 tor-agg + 4*8*8*16 agg-core
        // + 4*16*8 core-wan.
        assert_eq!(t.links.len(), 32_768 + 4_096 + 4_096 + 512);
        assert_eq!(t.links.len(), spec.num_links());
    }

    #[test]
    fn three_tier_wan_ecmp_widths() {
        // Closed-form ECMP path counts on the default hyperscale fabric:
        // ToR up = aggs_per_pod, agg up = cores_per_dc, core up (inter-DC)
        // = wan_routers, WAN router down = cores of the destination DC,
        // core down = aggs of the destination pod.
        let spec = ThreeTierWanSpec::default();
        let t = Topology::three_tier_wan(&spec);
        let adj = t.adjacency();
        let is_host: Vec<bool> = t.kinds.iter().map(|k| *k == NodeKind::Host).collect();
        let rt = crate::routing::RoutingTable::build(&adj, &is_host, 0);
        assert!(rt.is_compressed());
        let h = spec.num_hosts();
        let n_tors = spec.dcs * spec.pods_per_dc * spec.tors_per_pod;
        let n_aggs = spec.dcs * spec.pods_per_dc * spec.aggs_per_pod;
        let tor0 = h as NodeId;
        let agg0 = (h + n_tors) as NodeId;
        let core0 = (h + n_tors + n_aggs) as NodeId;
        let wan0 = (h + n_tors + n_aggs + spec.dcs * spec.cores_per_dc) as NodeId;
        let local_host = 0 as NodeId; // dc 0, pod 0, tor 0
        let same_dc_other_pod = (spec.pods_per_dc - 1) as NodeId
            * (spec.tors_per_pod * spec.hosts_per_tor) as NodeId; // dc 0, last pod
        let other_dc_host = (h - 1) as NodeId; // last host, dc 3
        assert_eq!(rt.candidates(tor0, local_host).len(), 1);
        assert_eq!(
            rt.candidates(tor0, same_dc_other_pod).len(),
            spec.aggs_per_pod
        );
        assert_eq!(rt.candidates(agg0, same_dc_other_pod).len(), spec.cores_per_dc);
        assert_eq!(rt.candidates(core0, other_dc_host).len(), spec.wan_routers);
        assert_eq!(rt.candidates(wan0, other_dc_host).len(), spec.cores_per_dc);
        assert_eq!(
            rt.candidates(core0, same_dc_other_pod).len(),
            spec.aggs_per_pod,
            "core down to a same-DC pod fans over the pod's aggs"
        );
    }

    #[test]
    fn fat_tree_k6_fingerprint_regression() {
        // Pins the exact construction (node order, link order, rates,
        // props) of the largest pre-hyperscale topology: the golden traces
        // were recorded against this build order, so any change here is a
        // golden-invalidating event and must be deliberate.
        let t = Topology::fat_tree(6, Rate::from_gbps(100), Time::from_us(1));
        assert_eq!(t.fingerprint(), FAT_TREE_6_FINGERPRINT);
    }

    /// Recorded from the construction order at the time the hyperscale
    /// layer landed (which itself reproduced the original seed order —
    /// verified by the goldens staying green).
    const FAT_TREE_6_FINGERPRINT: u64 = 11144305777346292389;

    #[test]
    fn all_link_rates_and_props_are_recorded() {
        let t = Topology::leaf_spine(
            2,
            2,
            2,
            Rate::from_gbps(100),
            Rate::from_gbps(400),
            Time::from_us(3),
        );
        for &(a, b, spec) in &t.links {
            let host_side = (a as usize) < 4 || (b as usize) < 4;
            let want = if host_side {
                Rate::from_gbps(100)
            } else {
                Rate::from_gbps(400)
            };
            assert_eq!(spec.rate, want, "link {a}-{b}");
            assert_eq!(spec.prop, Time::from_us(3));
        }
    }
}
