//! The interface between the simulator and congestion-control transports.
//!
//! A transport owns the sender-side state of one flow: congestion window or
//! rate, sequence tracking, probing, and retransmission bookkeeping. The host
//! NIC *pulls* packets from transports (highest priority first), so a
//! transport never needs to know whether the wire is busy; it only answers
//! "may I send now, and what?".

use simcore::event::ScheduledId;
use simcore::{EventQueue, Time};

use crate::packet::{FlowId, IntPath};
use crate::event::Event;

/// Static per-flow parameters handed to the transport at creation.
#[derive(Clone, Debug)]
pub struct FlowParams {
    /// Flow identifier.
    pub flow: FlowId,
    /// Total bytes to transfer.
    pub size: u64,
    /// Line rate of the sender's NIC (= bottleneck rate in the paper's
    /// single-tier contention scenarios).
    pub line_rate: simcore::Rate,
    /// Base RTT for a full data packet + its ACK on an idle path.
    pub base_rtt: Time,
    /// Base RTT for a probe + its echo on an idle path (probes are 64 B so
    /// their no-queue RTT is smaller; the host normalizes probe measurements
    /// to the data base RTT using the difference).
    pub base_rtt_probe: Time,
    /// Maximum payload bytes per packet.
    pub mtu: u32,
    /// Virtual priority of the flow (0 = lowest).
    pub virt_prio: u8,
    /// Deterministic seed for any randomness the transport needs.
    pub seed: u64,
}

impl FlowParams {
    /// Bandwidth-delay product at base RTT, in bytes.
    pub fn base_bdp(&self) -> f64 {
        self.line_rate.bdp_bytes(self.base_rtt) as f64
    }
}

/// Kind of acknowledgment delivered to [`Transport::on_ack`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AckKind {
    /// ACK of a data segment.
    Data,
    /// Echo of a probe packet.
    Probe,
}

/// An acknowledgment event, pre-digested by the host.
#[derive(Debug)]
pub struct AckEvent {
    /// Data or probe echo.
    pub kind: AckKind,
    /// Measured delay, normalized to the data-packet base RTT and with
    /// measurement noise already applied: `base_rtt + queuing + noise`.
    pub delay: Time,
    /// Cumulative bytes received in order at the receiver.
    pub cum_bytes: u64,
    /// Sequence of the acknowledged packet (first payload byte).
    pub acked_seq: u64,
    /// Payload bytes newly acknowledged by this packet.
    pub acked_bytes: u32,
    /// ECN congestion-experienced echo.
    pub ecn_echo: bool,
    /// Missing byte range reported by the receiver (lossy mode).
    pub nack: Option<(u64, u64)>,
    /// INT telemetry echoed by the receiver (HPCC).
    ///
    /// Transports see a borrowed view only (`on_ack` takes `&AckEvent`):
    /// after the callback returns, the host hands the box back to the
    /// packet arena's recycle pool, so steady-state INT traffic reuses a
    /// bounded set of boxes instead of allocating per ACK. Don't stash the
    /// box or assume its contents outlive the callback.
    pub int: Option<Box<IntPath>>,
}

/// What a transport wants to put on the wire right now.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrySend {
    /// Send a data segment starting at `seq` with `bytes` payload.
    Data {
        /// First payload byte offset.
        seq: u64,
        /// Payload size.
        bytes: u32,
    },
    /// Send a 64-byte probe.
    Probe,
    /// Nothing now; retry at the given time (pacing / probe schedule).
    NotBefore(Time),
    /// Nothing until an ACK or timer arrives (window-limited or suspended).
    Blocked,
    /// All bytes acknowledged; flow can be retired.
    Finished,
}

/// Context passed into every transport callback, giving access to the clock
/// and timer scheduling without exposing the whole simulator.
pub struct TransportCtx<'a> {
    /// Current simulated time.
    pub now: Time,
    /// The flow this callback concerns.
    pub flow: FlowId,
    pub(crate) queue: &'a mut EventQueue<Event>,
    /// Optional per-flow delay trace (filled when tracing is enabled).
    pub(crate) delay_trace: Option<&'a mut simcore::stats::TimeSeries>,
    /// Optional per-flow cwnd trace.
    pub(crate) cwnd_trace: Option<&'a mut simcore::stats::TimeSeries>,
}

impl<'a> TransportCtx<'a> {
    /// Construct a bare context for driving a transport outside the
    /// simulator. Intended for transport unit tests; no tracing is wired up.
    #[doc(hidden)]
    pub fn for_test(queue: &'a mut EventQueue<Event>, now: Time, flow: FlowId) -> Self {
        TransportCtx {
            now,
            flow,
            queue,
            delay_trace: None,
            cwnd_trace: None,
        }
    }

    /// Schedule a timer that will fire [`Transport::on_timer`] with `token`
    /// at absolute time `at`.
    pub fn schedule_timer(&mut self, at: Time, token: u64) -> ScheduledId {
        let flow = self.flow;
        self.queue
            .schedule_cancellable(at, Event::FlowTimer { flow, token })
    }

    /// Cancel a previously scheduled timer.
    pub fn cancel_timer(&mut self, id: ScheduledId) {
        self.queue.cancel(id);
    }

    /// Record a delay observation into the flow's trace, if tracing.
    pub fn trace_delay(&mut self, delay: Time) {
        let now = self.now;
        if let Some(trace) = self.delay_trace.as_deref_mut() {
            trace.push(now, delay.as_us_f64());
        }
    }

    /// Record the current congestion window (bytes) into the flow's trace.
    pub fn trace_cwnd(&mut self, cwnd_bytes: f64) {
        let now = self.now;
        if let Some(trace) = self.cwnd_trace.as_deref_mut() {
            trace.push(now, cwnd_bytes);
        }
    }
}

/// Sender-side congestion control for one flow.
///
/// Implementations must be deterministic: any randomness must come from the
/// seed in [`FlowParams`].
///
/// `Send + Sync` and [`Transport::clone_box`] exist for
/// [`crate::sim::Sim::snapshot`]: a snapshot deep-copies every live
/// transport, and warm-start sweeps share the resulting snapshot across
/// worker threads. Transports hold only plain sender state, so both come
/// for free in practice (`clone_box` is one line over a `Clone` derive).
pub trait Transport: Send + Sync {
    /// Deep-copy this transport as a boxed trait object (snapshot support).
    fn clone_box(&self) -> Box<dyn Transport>;

    /// Called once when the flow starts (before the first `try_send`).
    fn on_start(&mut self, ctx: &mut TransportCtx<'_>);

    /// An ACK or probe echo arrived.
    fn on_ack(&mut self, ack: &AckEvent, ctx: &mut TransportCtx<'_>);

    /// A timer scheduled through [`TransportCtx::schedule_timer`] fired.
    fn on_timer(&mut self, token: u64, ctx: &mut TransportCtx<'_>);

    /// The host NIC asks for the next packet. Must not mutate pacing state in
    /// a way that assumes the packet is actually sent; the host confirms with
    /// [`Transport::on_sent`].
    fn try_send(&mut self, now: Time) -> TrySend;

    /// The packet returned by the last `try_send` was put on the wire.
    fn on_sent(&mut self, sent: TrySend, ctx: &mut TransportCtx<'_>);

    /// True when every payload byte has been acknowledged.
    fn is_finished(&self) -> bool;

    /// Current congestion window in bytes (diagnostics / tracing).
    fn cwnd_bytes(&self) -> f64;

    /// Number of data packets this transport retransmitted (lossy mode).
    fn retransmits(&self) -> u64 {
        0
    }

    /// Audit hook: verify the transport's internal invariants (congestion
    /// window clamps, sequence-state sanity). Called by the simulator's
    /// invariant-audit layer after every event that touched this flow.
    /// Returns a description of the first violated invariant.
    fn check_invariants(&self) -> Result<(), String> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_params_bdp() {
        let p = FlowParams {
            flow: 0,
            size: 1_000_000,
            line_rate: simcore::Rate::from_gbps(100),
            base_rtt: Time::from_us(12),
            base_rtt_probe: Time::from_us(11),
            mtu: 1000,
            virt_prio: 0,
            seed: 0,
        };
        assert_eq!(p.base_bdp(), 150_000.0);
    }
}
