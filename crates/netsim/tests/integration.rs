//! netsim integration tests with a minimal fixed-window transport:
//! timing exactness, routing, PFC behavior and monitors — independent of
//! any real congestion-control algorithm.

use netsim::monitor::MonitorKind;
use netsim::{
    AckEvent, AckKind, FlowSpec, Sim, SimConfig, SwitchConfig, Topology, Transport, TransportCtx,
    TrySend,
};
use simcore::{Rate, Time};

/// Window-based transport with a constant window and no retransmission.
#[derive(Clone)]
struct FixedWindow {
    size: u64,
    mtu: u32,
    window: u64,
    snd_nxt: u64,
    inflight: u64,
    acked: u64,
    delays: Vec<Time>,
}

impl FixedWindow {
    fn new(size: u64, mtu: u32, window: u64) -> Self {
        FixedWindow {
            size,
            mtu,
            window,
            snd_nxt: 0,
            inflight: 0,
            acked: 0,
            delays: Vec::new(),
        }
    }
}

impl Transport for FixedWindow {
    fn clone_box(&self) -> Box<dyn Transport> {
        Box::new(self.clone())
    }
    fn on_start(&mut self, _ctx: &mut TransportCtx<'_>) {}
    fn on_ack(&mut self, ack: &AckEvent, _ctx: &mut TransportCtx<'_>) {
        if ack.kind == AckKind::Data {
            self.acked += ack.acked_bytes as u64;
            self.inflight = self.inflight.saturating_sub(ack.acked_bytes as u64);
            self.delays.push(ack.delay);
        }
    }
    fn on_timer(&mut self, _token: u64, _ctx: &mut TransportCtx<'_>) {}
    fn try_send(&mut self, _now: Time) -> TrySend {
        if self.acked >= self.size {
            return TrySend::Finished;
        }
        let remaining = self.size.saturating_sub(self.snd_nxt);
        if remaining == 0 {
            return TrySend::Blocked;
        }
        let bytes = remaining.min(self.mtu as u64) as u32;
        if self.inflight + bytes as u64 > self.window {
            return TrySend::Blocked;
        }
        TrySend::Data {
            seq: self.snd_nxt,
            bytes,
        }
    }
    fn on_sent(&mut self, sent: TrySend, _ctx: &mut TransportCtx<'_>) {
        if let TrySend::Data { bytes, .. } = sent {
            self.snd_nxt += bytes as u64;
            self.inflight += bytes as u64;
        }
    }
    fn is_finished(&self) -> bool {
        self.acked >= self.size
    }
    fn cwnd_bytes(&self) -> f64 {
        self.window as f64
    }
}

fn micro_sim(senders: usize) -> (Sim, Topology) {
    let topo = Topology::single_switch(senders, Rate::from_gbps(100), Time::from_us(3));
    let sim = Sim::new(&topo, SimConfig::default(), SwitchConfig::default());
    (sim, topo)
}

#[test]
fn single_packet_rtt_matches_computed_base_rtt() {
    let (mut sim, _) = micro_sim(1);
    let spec = FlowSpec::new(1, 0, 1000, Time::ZERO);
    let params = sim.flow_params(&spec, 0);
    sim.add_flow(spec, |_| Box::new(FixedWindow::new(1000, 1000, 10_000)));
    let res = sim.run();
    // The first (only) delay sample must equal base RTT exactly: no queues,
    // no noise.
    let r = &res.records[0];
    assert!(r.finish.is_some());
    // FCT = one-way data path latency (receiver-side completion).
    // base_rtt = fwd(data) + rev(ack), so FCT < base_rtt.
    let fct = r.fct().unwrap();
    assert!(fct < params.base_rtt);
    // 2 hops: host ser (83.84ns) + 3us + switch ser + 3us = 6.168us.
    assert_eq!(fct, Time::from_ps(2 * (83_840 + 3_000_000)));
}

#[test]
fn pipelined_flow_fct_is_exact() {
    let (mut sim, _) = micro_sim(1);
    // 100 packets, huge window: FCT = first-packet path latency + 99
    // serializations at the bottleneck (store-and-forward pipelining).
    let spec = FlowSpec::new(1, 0, 100_000, Time::ZERO);
    sim.add_flow(spec, |_| {
        Box::new(FixedWindow::new(100_000, 1000, 10_000_000))
    });
    let res = sim.run();
    let fct = res.records[0].fct().unwrap();
    let first = Time::from_ps(2 * (83_840 + 3_000_000));
    let rest = Time::from_ps(99 * 83_840);
    assert_eq!(fct, first + rest);
}

#[test]
fn ack_clocking_limits_inflight() {
    let (mut sim, _) = micro_sim(1);
    // Window of exactly 2 packets: the flow needs ~size/2 RTT-paced rounds.
    let spec = FlowSpec::new(1, 0, 20_000, Time::ZERO);
    sim.add_flow(spec, |_| Box::new(FixedWindow::new(20_000, 1000, 2_000)));
    let res = sim.run();
    let fct = res.records[0].fct().unwrap();
    // 10 windows of 2 packets, each round ~ one RTT (12.3us): > 100us.
    assert!(fct > Time::from_us(100), "fct {fct}");
    assert_eq!(res.records[0].delivered, 20_000);
}

#[test]
fn two_senders_share_bottleneck_serialization() {
    let (mut sim, _) = micro_sim(2);
    for s in 1..=2 {
        let spec = FlowSpec::new(s, 0, 500_000, Time::ZERO);
        sim.add_flow(spec, |_| {
            Box::new(FixedWindow::new(500_000, 1000, 10_000_000))
        });
    }
    let res = sim.run();
    // Both finish; combined service time ~= sum of serializations at the
    // bottleneck: 1000 packets * 83.84ns ~ 84us (+path).
    let worst = res.records.iter().map(|r| r.fct().unwrap()).max().unwrap();
    assert!(worst >= Time::from_us(83), "{worst}");
    assert!(worst < Time::from_us(120), "{worst}");
}

#[test]
fn fat_tree_all_pairs_reachable() {
    let topo = Topology::fat_tree(4, Rate::from_gbps(100), Time::from_us(1));
    let mut sim = Sim::new(
        &topo,
        SimConfig {
            end_time: Time::from_ms(5),
            ..Default::default()
        },
        SwitchConfig::default(),
    );
    // One small flow between every adjacent host pair (ring coverage).
    let hosts = topo.hosts.clone();
    for i in 0..hosts.len() {
        let spec = FlowSpec::new(hosts[i], hosts[(i + 5) % hosts.len()], 10_000, Time::ZERO);
        sim.add_flow(spec, |_| Box::new(FixedWindow::new(10_000, 1000, 100_000)));
    }
    let res = sim.run();
    assert_eq!(res.completion_rate(), 1.0);
}

#[test]
fn intra_pod_flows_have_shorter_base_rtt_than_cross_pod() {
    let topo = Topology::fat_tree(4, Rate::from_gbps(100), Time::from_us(1));
    let sim = Sim::new(&topo, SimConfig::default(), SwitchConfig::default());
    let h = &topo.hosts;
    // h[0] and h[1] share an edge switch; h[0] and h[15] are cross-pod.
    let same_rack = sim.flow_params(&FlowSpec::new(h[0], h[1], 1000, Time::ZERO), 0);
    let cross_pod = sim.flow_params(&FlowSpec::new(h[0], h[15], 1000, Time::ZERO), 1);
    assert!(same_rack.base_rtt < cross_pod.base_rtt);
    // Same-rack: 2 hops each way; cross-pod: 6 hops each way.
    let ratio = cross_pod.base_rtt.as_ps() as f64 / same_rack.base_rtt.as_ps() as f64;
    assert!((2.5..3.5).contains(&ratio), "hop ratio {ratio}");
}

#[test]
fn queue_monitor_reports_backlog() {
    let (mut sim, _) = micro_sim(4);
    let switch = 5; // hosts 0..=4, switch is node 5
    sim.add_monitor(
        "q",
        MonitorKind::QueueBytes {
            node: switch,
            port: 0,
        },
        Time::from_us(5),
    );
    for s in 1..=4 {
        let spec = FlowSpec::new(s, 0, 1_000_000, Time::ZERO);
        sim.add_flow(spec, |_| {
            Box::new(FixedWindow::new(1_000_000, 1000, 10_000_000))
        });
    }
    let res = sim.run();
    let (_, series) = &res.monitors[0];
    // 4 unthrottled senders into one port: the queue must build up to
    // roughly 3 windows' worth of data at peak.
    let peak = series.v.iter().copied().fold(0.0, f64::max);
    assert!(peak > 1_000_000.0, "peak queue {peak} bytes");
}

#[test]
fn ecn_marks_appear_under_congestion() {
    let topo = Topology::single_switch(4, Rate::from_gbps(100), Time::from_us(3));
    let sw_cfg = SwitchConfig {
        ecn_kmin: 30_000,
        ecn_kmax: 100_000,
        ecn_pmax: 1.0,
        ..Default::default()
    };
    let mut sim = Sim::new(&topo, SimConfig::default(), sw_cfg);
    for s in 1..=4 {
        let spec = FlowSpec::new(s, 0, 1_000_000, Time::ZERO);
        sim.add_flow(spec, |_| {
            Box::new(FixedWindow::new(1_000_000, 1000, 10_000_000))
        });
    }
    let res = sim.run();
    assert!(res.counters.ecn_marks > 100, "{}", res.counters.ecn_marks);
}

#[test]
fn per_flow_ecmp_is_stable_under_rerun() {
    let topo = Topology::leaf_spine(
        2,
        2,
        2,
        Rate::from_gbps(100),
        Rate::from_gbps(100),
        Time::from_us(1),
    );
    let mk = || {
        let mut sim = Sim::new(
            &topo,
            SimConfig {
                seed: 5,
                ..Default::default()
            },
            SwitchConfig::default(),
        );
        let spec = FlowSpec::new(topo.hosts[0], topo.hosts[3], 100_000, Time::ZERO);
        sim.add_flow(spec, |_| {
            Box::new(FixedWindow::new(100_000, 1000, 1_000_000))
        });
        let res = sim.run();
        res.records[0].fct().unwrap()
    };
    assert_eq!(mk(), mk());
}

#[test]
fn fat_tree_cross_pod_has_multiple_ecmp_paths() {
    let topo = Topology::fat_tree(4, Rate::from_gbps(100), Time::from_us(1));
    let sim = Sim::new(&topo, SimConfig::default(), SwitchConfig::default());
    let h = &topo.hosts;
    // The edge switch of h[0] is the first switch node (id 16 in k=4
    // builder order); toward a cross-pod destination it must hold two
    // equal-cost uplinks, and different flows should spread across them.
    let edge = 16u32;
    let mut ports = std::collections::BTreeSet::new();
    for f in 0..64u32 {
        ports.insert(sim.route_port(edge, h[15], f));
    }
    assert!(
        ports.len() >= 2,
        "cross-pod ECMP should use >=2 uplinks, used {ports:?}"
    );
    // Toward a same-rack destination there is exactly one (downlink) port.
    let mut down = std::collections::BTreeSet::new();
    for f in 0..16u32 {
        down.insert(sim.route_port(edge, h[1], f));
    }
    assert_eq!(down.len(), 1, "single path to a directly attached host");
}

#[test]
fn control_packets_bypass_data_backlog() {
    // ACKs ride the control queue: even with a deep data queue at the
    // bottleneck, the ack of an early packet returns promptly, which is
    // what keeps delay measurements fresh for PrioPlus.
    let (mut sim, _) = micro_sim(3);
    // Two senders flood the bottleneck (net +100G of queue growth); a
    // third sends one packet once the backlog exists.
    for s in 1..=2 {
        let spec = FlowSpec::new(s, 0, 2_000_000, Time::ZERO);
        sim.add_flow(spec, |_| {
            Box::new(FixedWindow::new(2_000_000, 1000, 10_000_000))
        });
    }
    let spec2 = FlowSpec::new(3, 0, 1_000, Time::from_us(50));
    sim.add_flow(spec2, |_| Box::new(FixedWindow::new(1_000, 1000, 10_000)));
    let res = sim.run();
    // The one-packet flow's FCT includes the data queue wait (strict FIFO
    // within the data priority)...
    let fct2 = res.records[2].fct().unwrap();
    assert!(
        fct2 > Time::from_us(50),
        "must wait behind the flood: {fct2}"
    );
    // ...but both flows complete: acks were never starved by data.
    assert_eq!(res.completion_rate(), 1.0);
}
