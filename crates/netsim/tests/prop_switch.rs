//! Property-test fleet for the switch model: random admit/dequeue streams
//! checked against an independent shadow model of the buffer-accounting,
//! PFC, ECN, and Dynamic-Threshold invariants.
//!
//! The checks here are written from scratch (recounts of the actual queue
//! contents, explicit pause-state mirrors) rather than reusing the
//! `netsim::audit` implementation, so the audit layer and this fleet can
//! catch each other's mistakes. The `Buggify` fault injections must be
//! caught by at least one property each — that is the acceptance bar for
//! the audit subsystem.

use netsim::node::{queue_index, Admission, EgressPort, Switch};
use netsim::packet::{Packet, PacketArena};
use netsim::{Buggify, SwitchConfig};
use proptest::prelude::*;
use simcore::{Rate, SimRng, Time};

const NPORTS: usize = 2;
/// Two data priorities + one control queue.
const NQ: usize = 3;

fn mk_switch(pfc: bool, buffer: u64, buggify: Option<Buggify>) -> Switch {
    let cfg = SwitchConfig {
        buffer_bytes: buffer,
        pfc_enabled: pfc,
        pfc_lossless_prios: 0,
        buggify,
        ..Default::default()
    };
    let ports = (0..NPORTS)
        .map(|_| EgressPort::new(1, 0, Rate::from_gbps(100), Time::from_us(1), NQ))
        .collect();
    Switch::new(cfg, ports, (NQ - 1) as u8)
}

/// One decoded operation against the switch.
#[derive(Clone, Copy, Debug)]
enum Op {
    Admit { port: u16, in_port: u16, prio: u8, payload: u32 },
    Dequeue { port: u16 },
}

/// Decode a raw 64-bit word into an operation. Two of four opcodes are
/// admits so streams grow queues faster than they drain them.
fn decode(w: u64) -> Op {
    let port = ((w >> 2) & 1) as u16;
    match w & 3 {
        0 | 1 => Op::Admit {
            port,
            in_port: ((w >> 3) & 1) as u16,
            prio: ((w >> 4) % 3) as u8, // 0,1 data; 2 control
            payload: 64 + ((w >> 8) % 1437) as u32,
        },
        _ => Op::Dequeue { port },
    }
}

fn data_pkt(prio: u8, payload: u32, seq: u64) -> Packet {
    Packet::data(0, 0, 1, prio, payload, seq, Time::ZERO)
}

/// Recount every queue of the switch from its actual contents and compare
/// against all cached byte counters. Independent of `Switch`'s own
/// bookkeeping and of `netsim::audit`.
fn recount_consistent(s: &Switch, arena: &PacketArena) -> Result<(), String> {
    let mut switch_total = 0u64;
    for (pi, port) in s.ports.iter().enumerate() {
        let mut port_total = 0u64;
        for (qi, queue) in port.queues.iter().enumerate() {
            let real: u64 = queue.iter().map(|&id| arena.get(id).size as u64).sum();
            if real != port.queued_bytes_q[qi] {
                return Err(format!(
                    "port {pi} queue {qi}: recount {real} != cached {}",
                    port.queued_bytes_q[qi]
                ));
            }
            port_total += real;
        }
        if port_total != port.queued_bytes {
            return Err(format!(
                "port {pi}: recount {port_total} != cached {}",
                port.queued_bytes
            ));
        }
        switch_total += port_total;
    }
    if switch_total != s.total_buffered {
        return Err(format!(
            "switch: recount {switch_total} != total_buffered {}",
            s.total_buffered
        ));
    }
    let ingress_total: u64 = s.ingress_bytes.iter().flatten().sum();
    if ingress_total != s.total_buffered {
        return Err(format!(
            "ingress counters {ingress_total} != total_buffered {}",
            s.total_buffered
        ));
    }
    Ok(())
}

/// Run one op against the switch, tracking PFC transition legality with a
/// shadow pause map. Returns the (in_port, queue) an admit landed on.
fn step(
    s: &mut Switch,
    arena: &mut PacketArena,
    op: Op,
    seq: &mut u64,
    shadow_paused: &mut [[bool; NQ]; NPORTS],
) -> Result<Option<(u16, usize)>, String> {
    let mut pauses = Vec::new();
    let mut resumes = Vec::new();
    let hit = match op {
        Op::Admit { port, in_port, prio, payload } => {
            let pkt = data_pkt(prio, payload, *seq);
            *seq += 1;
            let q = queue_index(pkt.prio, NQ);
            let id = arena.alloc(pkt);
            s.admit(port, in_port, id, 0, arena, &mut pauses);
            Some((in_port, q))
        }
        Op::Dequeue { port } => {
            if let Some(id) = s.ports[port as usize].dequeue(arena) {
                s.on_dequeue(arena.get(id), 0, &mut resumes);
                arena.release(id);
            }
            None
        }
    };
    for &(ip, q) in &pauses {
        let slot = &mut shadow_paused[ip as usize][q as usize];
        if *slot {
            return Err(format!("double Xoff for ({ip}, {q})"));
        }
        *slot = true;
    }
    for &(ip, q) in &resumes {
        let slot = &mut shadow_paused[ip as usize][q as usize];
        if !*slot {
            return Err(format!("Xon without Xoff for ({ip}, {q})"));
        }
        *slot = false;
    }
    Ok(hit)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128 })]

    /// A correct lossless switch keeps every byte counter equal to a full
    /// recount, never double-pauses or spuriously resumes, and never leaves
    /// an over-threshold ingress counter unpaused after the admission that
    /// crossed it.
    #[test]
    fn correct_switch_holds_all_invariants(words in proptest::collection::vec(0u64..u64::MAX, 1..300)) {
        let mut s = mk_switch(true, 64_000, None);
        let mut arena = PacketArena::new();
        let mut seq = 0u64;
        let mut shadow = [[false; NQ]; NPORTS];
        for &w in &words {
            let hit = match step(&mut s, &mut arena, decode(w), &mut seq, &mut shadow) {
                Ok(h) => h,
                Err(e) => return Err(TestCaseError::fail(e)),
            };
            if let Err(e) = recount_consistent(&s, &arena) {
                return Err(TestCaseError::fail(e));
            }
            // The Xoff-at-crossing invariant, checked for the pair that just
            // received a packet (data priorities only; control is unpaused).
            if let Some((ip, q)) = hit {
                if q < NQ - 1 {
                    let over = s.ingress_bytes[ip as usize][q] > s.pfc_pause_threshold(0);
                    prop_assert!(
                        !over || s.ingress_paused[ip as usize][q],
                        "ingress ({ip}, {q}) above pause threshold but not paused"
                    );
                }
            }
            // The switch's own pause state must match the emitted frames.
            for (ip, row) in shadow.iter().enumerate() {
                for (q, &paused) in row.iter().enumerate() {
                    prop_assert_eq!(paused, s.ingress_paused[ip][q]);
                }
            }
        }
    }

    /// Draining a correct switch returns every counter to exactly zero.
    #[test]
    fn full_drain_zeroes_all_counters(words in proptest::collection::vec(0u64..u64::MAX, 1..200)) {
        let mut s = mk_switch(true, 64_000, None);
        let mut arena = PacketArena::new();
        let mut seq = 0u64;
        let mut shadow = [[false; NQ]; NPORTS];
        for &w in &words {
            if let Err(e) = step(&mut s, &mut arena, decode(w), &mut seq, &mut shadow) {
                return Err(TestCaseError::fail(e));
            }
        }
        let mut resumes = Vec::new();
        for p in 0..NPORTS {
            while let Some(id) = s.ports[p].dequeue(&arena) {
                s.on_dequeue(arena.get(id), 0, &mut resumes);
                arena.release(id);
            }
        }
        prop_assert_eq!(s.total_buffered, 0);
        prop_assert!(s.ingress_bytes.iter().flatten().all(|&b| b == 0));
        for p in &s.ports {
            prop_assert_eq!(p.queued_bytes, 0);
            prop_assert!(p.queued_bytes_q.iter().all(|&b| b == 0));
        }
        // Every admitted packet came back out (or was dropped in admit), so
        // the arena must account for zero live handles.
        prop_assert_eq!(arena.live_count(), 0);
    }

    /// Lossy Dynamic-Threshold admission: a data packet is dropped exactly
    /// when its queue would exceed `dt_alpha * free_buffer`.
    #[test]
    fn dt_admission_matches_the_threshold_exactly(words in proptest::collection::vec(0u64..u64::MAX, 1..300)) {
        let mut s = mk_switch(false, 24_000, None);
        let mut arena = PacketArena::new();
        let mut seq = 0u64;
        for &w in &words {
            match decode(w) {
                Op::Admit { port, in_port, prio, payload } => {
                    let pkt = data_pkt(prio, payload, seq);
                    seq += 1;
                    let q = queue_index(pkt.prio, NQ);
                    let wire = pkt.size as u64;
                    let would_exceed =
                        s.ports[port as usize].queued_bytes_q[q] + wire > s.dt_limit(0);
                    let mut pauses = Vec::new();
                    let id = arena.alloc(pkt);
                    let adm = s.admit(port, in_port, id, 0, &mut arena, &mut pauses);
                    prop_assert_eq!(
                        adm == Admission::Dropped,
                        would_exceed,
                        "admission {:?} disagrees with DT threshold (exceed={})",
                        adm, would_exceed
                    );
                }
                Op::Dequeue { port } => {
                    let mut resumes = Vec::new();
                    if let Some(id) = s.ports[port as usize].dequeue(&arena) {
                        s.on_dequeue(arena.get(id), 0, &mut resumes);
                        arena.release(id);
                    }
                }
            }
            if let Err(e) = recount_consistent(&s, &arena) {
                return Err(TestCaseError::fail(e));
            }
        }
    }

    /// ECN marking bounds: never below `kmin`, always at/above `kmax`
    /// (with `pmax` = 1 the in-between band is probabilistic and untested).
    #[test]
    fn ecn_marks_respect_kmin_kmax(fills in proptest::collection::vec(64u32..1501, 0..40), rng_seed in 0u64..1_000_000) {
        let mut s = mk_switch(true, 10_000_000, None);
        let mut arena = PacketArena::new();
        s.cfg.ecn_kmin = 5_000;
        s.cfg.ecn_kmax = 20_000;
        let mut rng = SimRng::new(rng_seed);
        for (seq, &payload) in fills.iter().enumerate() {
            let mut pauses = Vec::new();
            let id = arena.alloc(data_pkt(0, payload, seq as u64));
            s.admit(0, 1, id, 0, &mut arena, &mut pauses);
            let q = s.ports[0].queued_bytes_q[0];
            let marked = s.ecn_mark(0, 0, 0, 0, &mut rng);
            if q <= s.cfg.ecn_kmin {
                prop_assert!(!marked, "marked at {q} <= kmin");
            }
            if q >= s.cfg.ecn_kmax {
                prop_assert!(marked, "unmarked at {q} >= kmax");
            }
        }
    }

    /// Link flaps and pause storms interleaved with traffic: a downed link
    /// freezes its egress (no dequeues, modeling `Sim`'s dead-port early
    /// return), a storm pins an egress pause bit, and neither may disturb
    /// any byte counter, emit an illegal PFC transition, or let a pinned
    /// priority transmit. After clearing every fault, a full drain must
    /// return all counters to exactly zero — flaps never strand bytes.
    #[test]
    fn flapping_links_hold_all_invariants(words in proptest::collection::vec(0u64..u64::MAX, 1..300)) {
        let mut s = mk_switch(true, 64_000, None);
        let mut arena = PacketArena::new();
        let mut seq = 0u64;
        let mut shadow = [[false; NQ]; NPORTS];
        let mut link_up = [true; NPORTS];
        let mut storm = [[false; NQ - 1]; NPORTS];
        for &w in &words {
            let port = ((w >> 3) & 1) as usize;
            match w & 7 {
                // Flap: toggle the link under the egress port.
                0 => link_up[port] = !link_up[port],
                // Storm: toggle a pinned pause on a data priority, exactly
                // as `Sim::set_storm` drives the port (pin on, restore to
                // the peer's authority — unpaused here — on release).
                1 => {
                    let q = ((w >> 4) % (NQ as u64 - 1)) as usize;
                    storm[port][q] = !storm[port][q];
                    s.ports[port].set_paused(q, storm[port][q]);
                }
                2..=4 => {
                    let op = Op::Admit {
                        port: port as u16,
                        in_port: ((w >> 4) & 1) as u16,
                        prio: ((w >> 5) % 3) as u8,
                        payload: 64 + ((w >> 8) % 1437) as u32,
                    };
                    let hit = match step(&mut s, &mut arena, op, &mut seq, &mut shadow) {
                        Ok(h) => h,
                        Err(e) => return Err(TestCaseError::fail(e)),
                    };
                    if let Some((ip, q)) = hit {
                        if q < NQ - 1 {
                            let over = s.ingress_bytes[ip as usize][q] > s.pfc_pause_threshold(0);
                            prop_assert!(
                                !over || s.ingress_paused[ip as usize][q],
                                "ingress ({ip}, {q}) above pause threshold but not paused"
                            );
                        }
                    }
                }
                _ => {
                    // Dequeue, honoring the fault overlay: a dead link's
                    // egress is frozen, and a storm-pinned priority must
                    // never be the one transmitting.
                    if link_up[port] {
                        if let Some(id) = s.ports[port].dequeue(&arena) {
                            let q = queue_index(arena.get(id).prio, NQ);
                            prop_assert!(
                                !(q < NQ - 1 && storm[port][q]),
                                "storm-pinned queue {q} on port {port} transmitted"
                            );
                            let mut resumes = Vec::new();
                            s.on_dequeue(arena.get(id), 0, &mut resumes);
                            arena.release(id);
                            for &(ip, rq) in &resumes {
                                let slot = &mut shadow[ip as usize][rq as usize];
                                prop_assert!(*slot, "Xon without Xoff for ({ip}, {rq})");
                                *slot = false;
                            }
                        }
                    }
                }
            }
            if let Err(e) = recount_consistent(&s, &arena) {
                return Err(TestCaseError::fail(e));
            }
            for (ip, row) in shadow.iter().enumerate() {
                for (q, &paused) in row.iter().enumerate() {
                    prop_assert_eq!(paused, s.ingress_paused[ip][q]);
                }
            }
        }
        // Clear every fault and drain: nothing may be stranded.
        for p in 0..NPORTS {
            link_up[p] = true;
            for (q, pinned) in storm[p].iter_mut().enumerate() {
                *pinned = false;
                s.ports[p].set_paused(q, false);
            }
        }
        let mut resumes = Vec::new();
        for p in 0..NPORTS {
            while let Some(id) = s.ports[p].dequeue(&arena) {
                s.on_dequeue(arena.get(id), 0, &mut resumes);
                arena.release(id);
            }
        }
        prop_assert_eq!(s.total_buffered, 0);
        prop_assert!(s.ingress_bytes.iter().flatten().all(|&b| b == 0));
        for p in &s.ports {
            prop_assert_eq!(p.queued_bytes, 0);
            prop_assert!(p.queued_bytes_q.iter().all(|&b| b == 0));
        }
        prop_assert_eq!(arena.live_count(), 0);
    }

    /// Fault injection: the PFC off-by-one must produce a state where the
    /// admission that crossed the pause threshold leaves the pair unpaused
    /// — the exact signature the audit layer's Xoff check looks for.
    #[test]
    fn buggified_pfc_off_by_one_is_caught(payloads in proptest::collection::vec(64u32..1501, 30..80)) {
        // With a 20 kB buffer, 0.125 * free < 3000, so the pause threshold
        // sits at its 3 kB floor; 30+ packets of >= 112 B wire size always
        // cross it and the off-by-one always misses the crossing packet.
        let mut s = mk_switch(true, 20_000, Some(Buggify::PfcPauseOffByOne));
        let mut arena = PacketArena::new();
        let mut violated = false;
        for (i, &payload) in payloads.iter().enumerate() {
            let mut pauses = Vec::new();
            let id = arena.alloc(data_pkt(0, payload, i as u64));
            s.admit(0, 1, id, 0, &mut arena, &mut pauses);
            if s.ingress_bytes[1][0] > s.pfc_pause_threshold(0) && !s.ingress_paused[1][0] {
                violated = true;
            }
        }
        prop_assert!(violated, "off-by-one fault was never observable");
    }

    /// Fault injection: the dequeue accounting leak must be visible as a
    /// recount mismatch after draining.
    #[test]
    fn buggified_dequeue_leak_is_caught(payloads in proptest::collection::vec(64u32..1501, 1..40)) {
        let mut s = mk_switch(true, 10_000_000, Some(Buggify::DequeueLeak));
        let mut arena = PacketArena::new();
        for (i, &payload) in payloads.iter().enumerate() {
            let mut pauses = Vec::new();
            let id = arena.alloc(data_pkt(0, payload, i as u64));
            s.admit(0, 1, id, 0, &mut arena, &mut pauses);
        }
        let mut resumes = Vec::new();
        while let Some(id) = s.ports[0].dequeue(&arena) {
            s.on_dequeue(arena.get(id), 0, &mut resumes);
            arena.release(id);
        }
        prop_assert!(
            recount_consistent(&s, &arena).is_err(),
            "leak must break the recount"
        );
        prop_assert!(s.total_buffered > 0, "leaked bytes must remain counted");
    }

    /// Fault injection: marking below `kmin` violates the ECN lower bound
    /// on the very first packet into an empty queue.
    #[test]
    fn buggified_ecn_below_kmin_is_caught(rng_seed in 0u64..1_000_000) {
        let s = mk_switch(true, 10_000_000, Some(Buggify::EcnMarkBelowKmin));
        let mut rng = SimRng::new(rng_seed);
        // Empty queue: 0 <= kmin, yet the buggified switch marks.
        prop_assert!(s.ecn_mark(0, 0, 0, 0, &mut rng), "buggify must force a mark");
        prop_assert!(s.ports[0].queued_bytes_q[0] <= s.cfg.ecn_kmin);
    }
}
