//! Deterministic event queue.
//!
//! A policy layer over a pluggable [`Scheduler`] backend keyed on
//! `(time, sequence)`: events scheduled for the same instant pop in
//! insertion order, which makes whole simulations reproducible bit-for-bit
//! across runs — and across backends, since every backend implements the
//! same stable `(time, seq)` min-order (see [`crate::sched`]). The backend
//! is chosen at construction ([`EventQueue::with_sched`]); the default is
//! the binary heap.
//!
//! Cancellation uses generation-stamped slots instead of a tombstone set:
//! [`schedule_cancellable`](EventQueue::schedule_cancellable) hands out a
//! [`ScheduledId`] naming a slot plus the generation it was issued under, and
//! the backend entry carries the slot index. The pop path checks cancellation
//! with one array index — no hashing, no allocation — and plain
//! [`schedule`](EventQueue::schedule) (the vast majority of traffic) carries
//! a sentinel slot and skips the bookkeeping entirely. A stale id (already
//! fired or already cancelled) fails the generation check and is a no-op, so
//! `len()` can never under-count and no tombstone can leak.
//!
//! Cancelled entries are retired *lazily*: they stay in the backend until
//! they reach the head, where [`pop`](EventQueue::pop) and
//! [`peek_time`](EventQueue::peek_time) discard them (see
//! [`drop_cancelled_heads`](EventQueue::drop_cancelled_heads)).

use crate::sched::{AnySched, Entry, SchedKind, Scheduler};
use crate::time::Time;

/// Handle to a cancellable scheduled event.
///
/// Ids are generation-stamped: once the event fires or is cancelled, the id
/// goes stale and later [`EventQueue::cancel`] calls with it are no-ops,
/// even if the underlying slot has been reused for a newer event.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ScheduledId {
    slot: u32,
    gen: u32,
}

/// Slot index carried by backend entries that were scheduled without a
/// cancellation handle.
const NO_SLOT: u32 = u32::MAX;

/// Per-slot cancellation state. `gen` advances every time the slot is
/// retired (fire or cancel), invalidating outstanding ids; `live` is false
/// while a cancelled entry is still sitting in the backend.
#[derive(Clone, Copy, Debug)]
struct Slot {
    gen: u32,
    live: bool,
}

/// A deterministic min-priority event queue.
pub struct EventQueue<E> {
    sched: AnySched<E>,
    next_seq: u64,
    slots: Vec<Slot>,
    free_slots: Vec<u32>,
    /// Entries still in the backend whose slot was cancelled.
    cancelled_in_heap: usize,
    now: Time,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue at time zero on the default backend
    /// ([`SchedKind::default`], the calendar queue).
    pub fn new() -> Self {
        Self::with_sched(SchedKind::default())
    }

    /// Create an empty queue at time zero on the given scheduler backend.
    /// Backend choice never changes pop order — only performance.
    pub fn with_sched(kind: SchedKind) -> Self {
        EventQueue {
            sched: AnySched::new(kind),
            next_seq: 0,
            slots: Vec::new(),
            free_slots: Vec::new(),
            cancelled_in_heap: 0,
            now: Time::ZERO,
            popped: 0,
        }
    }

    /// Which scheduler backend this queue runs on.
    pub fn sched_kind(&self) -> SchedKind {
        self.sched.kind()
    }

    /// Current simulated time: the timestamp of the last popped event.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of events popped so far (for progress reporting).
    #[inline]
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Number of pending (non-cancelled) events.
    #[inline]
    pub fn len(&self) -> usize {
        self.sched.len() - self.cancelled_in_heap
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn push_entry(&mut self, at: Time, slot: u32, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: {at} < now {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.sched.push(Entry {
            at,
            seq,
            slot,
            event,
        });
    }

    /// Schedule `event` at absolute time `at`. The event cannot be
    /// cancelled; use [`schedule_cancellable`](Self::schedule_cancellable)
    /// when a cancellation handle is needed.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current time: simulated causality
    /// must never run backwards.
    #[inline]
    pub fn schedule(&mut self, at: Time, event: E) {
        self.push_entry(at, NO_SLOT, event);
    }

    /// Schedule `event` `delay` after the current time. A zero delay is
    /// legal: the event fires at `now()`, after everything already scheduled
    /// for that instant (sequence order).
    #[inline]
    pub fn schedule_in(&mut self, delay: Time, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Schedule `event` at absolute time `at`, returning a handle that can
    /// cancel it until it fires.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current time.
    pub fn schedule_cancellable(&mut self, at: Time, event: E) -> ScheduledId {
        let slot = match self.free_slots.pop() {
            Some(s) => {
                self.slots[s as usize].live = true;
                s
            }
            None => {
                let s = self.slots.len();
                assert!(s < NO_SLOT as usize, "slot index space exhausted");
                self.slots.push(Slot { gen: 0, live: true });
                s as u32
            }
        };
        self.push_entry(at, slot, event);
        ScheduledId {
            slot,
            gen: self.slots[slot as usize].gen,
        }
    }

    /// Cancel a previously scheduled event. Cancelling an already-fired or
    /// already-cancelled event is a no-op (the stale id fails its generation
    /// check), so `len()` stays accurate.
    pub fn cancel(&mut self, id: ScheduledId) {
        if let Some(slot) = self.slots.get_mut(id.slot as usize) {
            if slot.gen == id.gen && slot.live {
                slot.live = false;
                // Invalidate the id immediately; the backend entry is
                // retired lazily on pop/peek, which recycles the slot.
                slot.gen = slot.gen.wrapping_add(1);
                self.cancelled_in_heap += 1;
            }
        }
    }

    /// Retire the slot of an entry leaving the backend. Returns true when
    /// the entry was live (should be delivered).
    #[inline]
    fn retire(&mut self, slot: u32) -> bool {
        if slot == NO_SLOT {
            return true;
        }
        let s = &mut self.slots[slot as usize];
        if s.live {
            // Fired: invalidate outstanding ids, then recycle.
            s.live = false;
            s.gen = s.gen.wrapping_add(1);
            self.free_slots.push(slot);
            true
        } else {
            // Cancelled earlier; gen was already bumped then.
            self.cancelled_in_heap -= 1;
            self.free_slots.push(slot);
            false
        }
    }

    /// The explicit lazy-skip step: discard cancelled entries sitting at the
    /// backend head, recycling their slots. After this, the head (if any) is
    /// live, so `peek_time` and `pop` necessarily agree on it. Amortized
    /// O(1): each cancelled entry is discarded exactly once.
    fn drop_cancelled_heads(&mut self) {
        while let Some(entry) = self.sched.peek_min() {
            let slot = entry.slot;
            if slot == NO_SLOT || self.slots[slot as usize].live {
                return;
            }
            self.sched.pop_min();
            self.retire(slot);
        }
    }

    /// Pop the next live event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.drop_cancelled_heads();
        let entry = self.sched.pop_min()?;
        debug_assert!(
            entry.slot == NO_SLOT || self.slots[entry.slot as usize].live,
            "head still cancelled after drop_cancelled_heads"
        );
        self.retire(entry.slot);
        debug_assert!(entry.at >= self.now);
        self.now = entry.at;
        self.popped += 1;
        Some((entry.at, entry.event))
    }

    /// Timestamp of the next live event without popping it.
    ///
    /// Takes `&mut self` only for the lazy-skip: cancelled entries at the
    /// head are discarded (via [`Self::drop_cancelled_heads`]) so the peek
    /// stays amortized O(1). The set of live events is unchanged.
    pub fn peek_time(&mut self) -> Option<Time> {
        self.drop_cancelled_heads();
        self.sched.peek_min().map(|e| e.at)
    }

    /// Visit every live (non-cancelled) pending event, in backend storage
    /// order (NOT time order). Used by audit layers that need to account for
    /// resources referenced by in-flight events; O(entries), so callers
    /// should rate-limit it.
    pub fn for_each_live(&self, f: &mut dyn FnMut(&E)) {
        self.sched.for_each(&mut |entry| {
            if entry.slot == NO_SLOT || self.slots[entry.slot as usize].live {
                f(&entry.event);
            }
        });
    }

    /// Verify the queue's internal bookkeeping. Used by the audit layer;
    /// O(entries + slots), so callers should rate-limit it.
    ///
    /// Checks: no live entry is scheduled before `now`, the count of dead
    /// backend entries matches `cancelled_in_heap` (so `len()` is exact),
    /// every live slot has exactly one backend entry referring to it, and
    /// the backend's own structural invariants hold
    /// ([`Scheduler::check_backend`]).
    pub fn check_invariants(&self) -> Result<(), String> {
        self.sched.check_backend()?;
        let mut dead = 0usize;
        let mut live_refs = vec![0u32; self.slots.len()];
        let mut err = None;
        self.sched.for_each(&mut |entry| {
            let slot_live = entry.slot == NO_SLOT || self.slots[entry.slot as usize].live;
            if slot_live {
                if entry.at < self.now && err.is_none() {
                    err = Some(format!(
                        "live event at {} is before now {}",
                        entry.at, self.now
                    ));
                }
            } else {
                dead += 1;
            }
            if entry.slot != NO_SLOT {
                live_refs[entry.slot as usize] += 1;
            }
        });
        if let Some(e) = err {
            return Err(e);
        }
        if dead != self.cancelled_in_heap {
            return Err(format!(
                "cancelled_in_heap {} but {dead} dead entries in backend",
                self.cancelled_in_heap
            ));
        }
        for (i, slot) in self.slots.iter().enumerate() {
            if slot.live && live_refs[i] != 1 {
                return Err(format!(
                    "live slot {i} referenced by {} backend entries (expected 1)",
                    live_refs[i]
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Run a test body against a fresh queue on every backend, so every
    /// scenario below pins identical behavior across all three.
    fn on_all_backends<E>(f: impl Fn(&mut EventQueue<E>, SchedKind)) {
        for kind in SchedKind::ALL {
            let mut q = EventQueue::with_sched(kind);
            assert_eq!(q.sched_kind(), kind);
            f(&mut q, kind);
        }
    }

    #[test]
    fn pops_in_time_order() {
        on_all_backends(|q, kind| {
            q.schedule(Time::from_us(3), "c");
            q.schedule(Time::from_us(1), "a");
            q.schedule(Time::from_us(2), "b");
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, vec!["a", "b", "c"], "{kind:?}");
        });
    }

    #[test]
    fn ties_break_by_insertion_order() {
        on_all_backends(|q, kind| {
            let t = Time::from_us(5);
            for i in 0..100 {
                q.schedule(t, i);
            }
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, (0..100).collect::<Vec<_>>(), "{kind:?}");
        });
    }

    #[test]
    fn mixed_cancellable_ties_break_by_insertion_order() {
        on_all_backends(|q, kind| {
            let t = Time::from_us(5);
            for i in 0..100 {
                if i % 3 == 0 {
                    let _ = q.schedule_cancellable(t, i);
                } else {
                    q.schedule(t, i);
                }
            }
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, (0..100).collect::<Vec<_>>(), "{kind:?}");
        });
    }

    #[test]
    fn clock_advances_monotonically() {
        on_all_backends(|q, _| {
            q.schedule(Time::from_us(10), ());
            q.schedule(Time::from_us(10), ());
            q.schedule(Time::from_us(20), ());
            let mut last = Time::ZERO;
            while let Some((t, ())) = q.pop() {
                assert!(t >= last);
                last = t;
                assert_eq!(q.now(), t);
            }
            assert_eq!(last, Time::from_us(20));
        });
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_us(10), ());
        q.pop();
        q.schedule(Time::from_us(5), ());
    }

    #[test]
    fn zero_delay_schedule_in_fires_at_now_after_existing_ties() {
        on_all_backends(|q, kind| {
            q.schedule(Time::from_us(10), 0);
            q.pop();
            // Zero delay: due at now() exactly, but after events already
            // scheduled for this instant (sequence order).
            q.schedule(q.now(), 1);
            q.schedule_in(Time::ZERO, 2);
            q.schedule_in(Time::from_us(1), 3);
            assert_eq!(q.peek_time(), Some(Time::from_us(10)), "{kind:?}");
            assert_eq!(q.pop(), Some((Time::from_us(10), 1)), "{kind:?}");
            assert_eq!(q.pop(), Some((Time::from_us(10), 2)), "{kind:?}");
            assert_eq!(q.pop(), Some((Time::from_us(11), 3)), "{kind:?}");
            assert_eq!(q.now(), Time::from_us(11));
        });
    }

    #[test]
    fn cancellation_skips_events() {
        on_all_backends(|q, kind| {
            let a = q.schedule_cancellable(Time::from_us(1), "a");
            q.schedule(Time::from_us(2), "b");
            q.cancel(a);
            assert_eq!(q.len(), 1, "{kind:?}");
            assert_eq!(q.pop().map(|(_, e)| e), Some("b"), "{kind:?}");
            assert!(q.pop().is_none(), "{kind:?}");
        });
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        on_all_backends(|q, _| {
            let a = q.schedule_cancellable(Time::from_us(1), "a");
            assert!(q.pop().is_some());
            q.cancel(a);
            q.schedule(Time::from_us(2), "b");
            assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
        });
    }

    /// Regression: the old tombstone-set design let `cancel()` on a fired id
    /// insert a never-matching tombstone, making `len()` under-report and
    /// underflow-panic once the heap drained below the tombstone count.
    #[test]
    fn cancel_after_fire_keeps_len_exact() {
        on_all_backends(|q, _| {
            let a = q.schedule_cancellable(Time::from_us(1), "a");
            q.pop();
            assert_eq!(q.len(), 0);
            q.cancel(a); // stale id: must not disturb the live count
            assert_eq!(q.len(), 0);
            assert!(q.is_empty());
            q.schedule(Time::from_us(2), "b");
            assert_eq!(q.len(), 1); // would panic on underflow before the fix
            q.cancel(a); // still a no-op, even with events pending
            assert_eq!(q.len(), 1);
            assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
            assert_eq!(q.len(), 0);
        });
    }

    /// Cancel with a stale id whose slot has been recycled by a *new*
    /// cancellable event after the original was popped: the generation check
    /// must protect the new occupant.
    #[test]
    fn cancel_on_popped_id_after_slot_reuse_is_noop() {
        on_all_backends(|q, kind| {
            let a = q.schedule_cancellable(Time::from_us(1), "a");
            assert_eq!(q.pop().map(|(_, e)| e), Some("a"));
            // Slot freed by the pop; this reuses it under a newer gen.
            let b = q.schedule_cancellable(Time::from_us(2), "b");
            q.cancel(a); // stale: must not kill "b"
            assert_eq!(q.len(), 1, "{kind:?}");
            assert_eq!(q.pop().map(|(_, e)| e), Some("b"), "{kind:?}");
            q.cancel(b); // also stale now (fired)
            assert!(q.is_empty());
            q.check_invariants().unwrap();
        });
    }

    #[test]
    fn double_cancel_is_noop() {
        on_all_backends(|q, _| {
            let a = q.schedule_cancellable(Time::from_us(1), "a");
            q.schedule(Time::from_us(2), "b");
            q.cancel(a);
            q.cancel(a);
            q.cancel(a);
            assert_eq!(q.len(), 1);
            assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
            assert!(q.pop().is_none());
            assert_eq!(q.len(), 0);
        });
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        on_all_backends(|q, _| {
            q.schedule(Time::from_us(10), 0);
            q.pop();
            q.schedule_in(Time::from_us(5), 1);
            assert_eq!(q.pop().map(|(t, _)| t), Some(Time::from_us(15)));
        });
    }

    #[test]
    fn peek_skips_cancelled() {
        on_all_backends(|q, kind| {
            let a = q.schedule_cancellable(Time::from_us(1), "a");
            q.schedule(Time::from_us(2), "b");
            q.cancel(a);
            assert_eq!(q.peek_time(), Some(Time::from_us(2)), "{kind:?}");
        });
    }

    /// Regression for the lazy-skip contract: when the head entry is
    /// cancelled *between* a peek and the next peek/pop, both must agree on
    /// the new head — the stale peeked time must never be delivered.
    #[test]
    fn peek_and_pop_agree_when_head_cancelled_between_calls() {
        on_all_backends(|q, kind| {
            let a = q.schedule_cancellable(Time::from_us(1), "a");
            q.schedule(Time::from_us(2), "b");
            assert_eq!(q.peek_time(), Some(Time::from_us(1)), "{kind:?}");
            q.cancel(a); // head dies after it was peeked
            let peeked = q.peek_time();
            assert_eq!(peeked, Some(Time::from_us(2)), "{kind:?}");
            let (t, e) = q.pop().unwrap();
            assert_eq!(Some(t), peeked, "{kind:?}: peek/pop disagree");
            assert_eq!(e, "b");
            // And with pop first (no intervening peek): same skip.
            let c = q.schedule_cancellable(Time::from_us(3), "c");
            q.schedule(Time::from_us(4), "d");
            q.cancel(c);
            assert_eq!(q.pop(), Some((Time::from_us(4), "d")), "{kind:?}");
            q.check_invariants().unwrap();
        });
    }

    #[test]
    fn cancel_interleaved_with_peek() {
        on_all_backends(|q, kind| {
            let a = q.schedule_cancellable(Time::from_us(1), 1);
            let b = q.schedule_cancellable(Time::from_us(2), 2);
            q.schedule(Time::from_us(3), 3);
            assert_eq!(q.peek_time(), Some(Time::from_us(1)), "{kind:?}");
            q.cancel(a);
            assert_eq!(q.peek_time(), Some(Time::from_us(2)), "{kind:?}");
            q.cancel(b);
            assert_eq!(q.peek_time(), Some(Time::from_us(3)), "{kind:?}");
            assert_eq!(q.len(), 1);
            assert_eq!(q.pop(), Some((Time::from_us(3), 3)));
            assert_eq!(q.peek_time(), None);
        });
    }

    #[test]
    fn mass_cancel_then_drain() {
        on_all_backends(|q, kind| {
            let ids: Vec<_> = (0..1000)
                .map(|i| q.schedule_cancellable(Time::from_us(i), i))
                .collect();
            // Keep every 10th event; cancel the rest in scattered order.
            for (i, id) in ids.iter().enumerate() {
                if i % 10 != 0 {
                    q.cancel(*id);
                }
            }
            assert_eq!(q.len(), 100, "{kind:?}");
            let survivors: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(survivors, (0..1000).step_by(10).collect::<Vec<_>>());
            assert_eq!(q.len(), 0);
            assert!(q.is_empty());
        });
    }

    #[test]
    fn invariants_hold_through_schedule_cancel_pop_cycles() {
        on_all_backends(|q, _| {
            q.check_invariants().unwrap();
            let mut ids = Vec::new();
            for i in 0..200u64 {
                if i % 2 == 0 {
                    ids.push(q.schedule_cancellable(Time::from_us(i + 1), i));
                } else {
                    q.schedule(Time::from_us(i + 1), i);
                }
                q.check_invariants().unwrap();
            }
            for (k, id) in ids.iter().enumerate() {
                if k % 3 == 0 {
                    q.cancel(*id);
                    q.check_invariants().unwrap();
                }
            }
            while q.pop().is_some() {
                q.check_invariants().unwrap();
            }
            assert!(q.is_empty());
            q.check_invariants().unwrap();
        });
    }

    #[test]
    fn slot_reuse_does_not_resurrect_old_ids() {
        on_all_backends(|q, _| {
            // Run many schedule/fire/cancel-stale cycles through the same
            // slot.
            let mut stale = Vec::new();
            for round in 0..50u64 {
                let id = q.schedule_cancellable(Time::from_us(round + 1), round);
                // Every stale id from prior rounds must be inert against the
                // recycled slot now hosting the current event.
                for old in &stale {
                    q.cancel(*old);
                }
                assert_eq!(q.len(), 1);
                assert_eq!(q.pop().map(|(_, e)| e), Some(round));
                stale.push(id);
            }
            assert!(q.is_empty());
        });
    }

    /// Calendar-specific end-to-end: growth/shrink resizes while pops cross
    /// bucket-day and year boundaries must preserve global order and the
    /// queue invariants.
    #[test]
    fn calendar_resize_across_day_boundaries_preserves_order() {
        let mut q: EventQueue<u64> = EventQueue::with_sched(SchedKind::Calendar);
        let mut x = 0x0123_4567_89AB_CDEFu64;
        let mut ids = Vec::new();
        for i in 0..600u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            // Spread across many microseconds so entries span several
            // calendar days/years at the initial 1 µs width.
            let at = q.now() + Time::from_ns(x % 50_000);
            if i % 4 == 0 {
                ids.push(q.schedule_cancellable(at, i));
            } else {
                q.schedule(at, i);
            }
            if i % 3 == 0 {
                q.pop();
            }
            if i % 7 == 0 {
                if let Some(id) = ids.pop() {
                    q.cancel(id);
                }
            }
            q.check_invariants().unwrap();
        }
        let mut last = q.now();
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
            q.check_invariants().unwrap();
        }
        assert!(q.is_empty());
    }
}
