//! Deterministic event queue.
//!
//! A policy layer over a pluggable [`Scheduler`] backend keyed on
//! `(time, sequence)`: events scheduled for the same instant pop in
//! insertion order, which makes whole simulations reproducible bit-for-bit
//! across runs — and across backends, since every backend implements the
//! same stable `(time, seq)` min-order (see [`crate::sched`]). The backend
//! is chosen at construction ([`EventQueue::with_sched`]); the default is
//! the binary heap.
//!
//! Cancellation uses generation-stamped slots instead of a tombstone set:
//! [`schedule_cancellable`](EventQueue::schedule_cancellable) hands out a
//! [`ScheduledId`] naming a slot plus the generation it was issued under, and
//! the backend entry carries the slot index. The pop path checks cancellation
//! with one array index — no hashing, no allocation — and plain
//! [`schedule`](EventQueue::schedule) (the vast majority of traffic) carries
//! a sentinel slot and skips the bookkeeping entirely. A stale id (already
//! fired or already cancelled) fails the generation check and is a no-op, so
//! `len()` can never under-count and no tombstone can leak.
//!
//! Cancelled entries are retired *lazily*: they stay in the backend until
//! they reach the head, where [`pop`](EventQueue::pop) and
//! [`peek_time`](EventQueue::peek_time) discard them (see
//! [`drop_cancelled_heads`](EventQueue::drop_cancelled_heads)).

use crate::sched::{AnySched, Entry, SchedKind, Scheduler};
use crate::time::Time;

/// Handle to a cancellable scheduled event.
///
/// Ids are generation-stamped: once the event fires or is cancelled, the id
/// goes stale and later [`EventQueue::cancel`] calls with it are no-ops,
/// even if the underlying slot has been reused for a newer event.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ScheduledId {
    slot: u32,
    gen: u32,
}

/// Slot index carried by backend entries that were scheduled without a
/// cancellation handle.
const NO_SLOT: u32 = u32::MAX;

/// Per-slot cancellation state. `gen` advances every time the slot is
/// retired (fire or cancel), invalidating outstanding ids; `live` is false
/// while a cancelled entry is still sitting in the backend.
#[derive(Clone, Copy, Debug)]
struct Slot {
    gen: u32,
    live: bool,
}

/// A deterministic min-priority event queue.
pub struct EventQueue<E> {
    sched: AnySched<E>,
    next_seq: u64,
    slots: Vec<Slot>,
    free_slots: Vec<u32>,
    /// Entries still in the backend whose slot was cancelled.
    cancelled_in_heap: usize,
    now: Time,
    popped: u64,
    /// Scheduler interactions: one per [`pop_batch`](Self::pop_batch) (or
    /// per backend pop on the sequential path). `popped / pops` is the
    /// average batch size.
    pops: u64,
    /// The pending same-timestamp batch, **in reverse `(at, seq)` order**
    /// so [`batch_next`](Self::batch_next) serves from the tail. Entries
    /// here have left the backend but are still logically queued: `len`,
    /// `for_each_live`, and the invariant check all account for them, and
    /// [`cancel`](Self::cancel) still works on them (liveness is re-checked
    /// at serve time).
    batch: Vec<Entry<E>>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue at time zero on the default backend
    /// ([`SchedKind::default`], the calendar queue).
    pub fn new() -> Self {
        Self::with_sched(SchedKind::default())
    }

    /// Create an empty queue at time zero on the given scheduler backend.
    /// Backend choice never changes pop order — only performance.
    pub fn with_sched(kind: SchedKind) -> Self {
        EventQueue {
            sched: AnySched::new(kind),
            next_seq: 0,
            slots: Vec::new(),
            free_slots: Vec::new(),
            cancelled_in_heap: 0,
            now: Time::ZERO,
            popped: 0,
            pops: 0,
            batch: Vec::new(),
        }
    }

    /// Which scheduler backend this queue runs on.
    pub fn sched_kind(&self) -> SchedKind {
        self.sched.kind()
    }

    /// Current simulated time: the timestamp of the last popped event.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of events popped so far (for progress reporting).
    #[inline]
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Number of scheduler interactions so far: one per
    /// [`pop_batch`](Self::pop_batch), one per sequential [`pop`](Self::pop)
    /// that reached the backend. `popped() / pops()` is the average number
    /// of events served per scheduler interaction.
    #[inline]
    pub fn pops(&self) -> u64 {
        self.pops
    }

    /// Number of pending (non-cancelled) events, including any entries of a
    /// partially served batch.
    #[inline]
    pub fn len(&self) -> usize {
        self.sched.len() + self.batch.len() - self.cancelled_in_heap
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn push_entry(&mut self, at: Time, slot: u32, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: {at} < now {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.sched.push(Entry {
            at,
            seq,
            slot,
            event,
        });
    }

    /// Schedule `event` at absolute time `at`. The event cannot be
    /// cancelled; use [`schedule_cancellable`](Self::schedule_cancellable)
    /// when a cancellation handle is needed.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current time: simulated causality
    /// must never run backwards.
    #[inline]
    pub fn schedule(&mut self, at: Time, event: E) {
        self.push_entry(at, NO_SLOT, event);
    }

    /// Schedule `event` `delay` after the current time. A zero delay is
    /// legal: the event fires at `now()`, after everything already scheduled
    /// for that instant (sequence order).
    #[inline]
    pub fn schedule_in(&mut self, delay: Time, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Schedule `event` at absolute time `at`, returning a handle that can
    /// cancel it until it fires.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current time.
    pub fn schedule_cancellable(&mut self, at: Time, event: E) -> ScheduledId {
        let slot = match self.free_slots.pop() {
            Some(s) => {
                self.slots[s as usize].live = true;
                s
            }
            None => {
                let s = self.slots.len();
                assert!(s < NO_SLOT as usize, "slot index space exhausted");
                self.slots.push(Slot { gen: 0, live: true });
                s as u32
            }
        };
        self.push_entry(at, slot, event);
        ScheduledId {
            slot,
            gen: self.slots[slot as usize].gen,
        }
    }

    /// Cancel a previously scheduled event. Cancelling an already-fired or
    /// already-cancelled event is a no-op (the stale id fails its generation
    /// check), so `len()` stays accurate.
    pub fn cancel(&mut self, id: ScheduledId) {
        if let Some(slot) = self.slots.get_mut(id.slot as usize) {
            if slot.gen == id.gen && slot.live {
                slot.live = false;
                // Invalidate the id immediately; the backend entry is
                // retired lazily on pop/peek, which recycles the slot.
                slot.gen = slot.gen.wrapping_add(1);
                self.cancelled_in_heap += 1;
            }
        }
    }

    /// Retire the slot of an entry leaving the backend. Returns true when
    /// the entry was live (should be delivered).
    #[inline]
    fn retire(&mut self, slot: u32) -> bool {
        if slot == NO_SLOT {
            return true;
        }
        let s = &mut self.slots[slot as usize];
        if s.live {
            // Fired: invalidate outstanding ids, then recycle.
            s.live = false;
            s.gen = s.gen.wrapping_add(1);
            self.free_slots.push(slot);
            true
        } else {
            // Cancelled earlier; gen was already bumped then.
            self.cancelled_in_heap -= 1;
            self.free_slots.push(slot);
            false
        }
    }

    /// The explicit lazy-skip step: discard cancelled entries sitting at the
    /// backend head, recycling their slots. After this, the head (if any) is
    /// live, so `peek_time` and `pop` necessarily agree on it. Amortized
    /// O(1): each cancelled entry is discarded exactly once.
    fn drop_cancelled_heads(&mut self) {
        while let Some(entry) = self.sched.peek_min() {
            let slot = entry.slot;
            if slot == NO_SLOT || self.slots[slot as usize].live {
                return;
            }
            self.sched.pop_min();
            self.retire(slot);
        }
    }

    /// Discard cancelled entries at the tail (= serving end) of the pending
    /// batch, recycling their slots. The mirror of
    /// [`Self::drop_cancelled_heads`] for the batch buffer.
    fn drop_cancelled_batch_tail(&mut self) {
        while let Some(entry) = self.batch.last() {
            let slot = entry.slot;
            if slot == NO_SLOT || self.slots[slot as usize].live {
                return;
            }
            self.batch.pop();
            self.retire(slot);
        }
    }

    /// Pop the next live event, advancing the clock to its timestamp.
    /// Serves any partially dispatched batch first, so sequential and
    /// batched consumption can be mixed freely without reordering.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        if let Some(event) = self.batch_next() {
            return Some((self.now, event));
        }
        self.drop_cancelled_heads();
        let entry = self.sched.pop_min()?;
        debug_assert!(
            entry.slot == NO_SLOT || self.slots[entry.slot as usize].live,
            "head still cancelled after drop_cancelled_heads"
        );
        self.retire(entry.slot);
        debug_assert!(entry.at >= self.now);
        self.now = entry.at;
        self.popped += 1;
        self.pops += 1;
        Some((entry.at, entry.event))
    }

    /// Remove the next live event *and every further event sharing its
    /// timestamp* from the backend in one scheduler interaction, advancing
    /// the clock once. Returns the batch timestamp; the events themselves
    /// are then served in `(at, seq)` order by
    /// [`batch_next`](Self::batch_next). Returns `None` when no live events
    /// remain.
    ///
    /// Dispatching via pop_batch/batch_next is observably identical to
    /// sequential [`pop`](Self::pop)s: in-batch order is the same `(at,
    /// seq)` order, and events cancelled *mid-batch* (by an earlier event of
    /// the same batch) are still skipped, because liveness is re-checked
    /// when each entry is served, not when the batch is formed.
    pub fn pop_batch(&mut self) -> Option<Time> {
        // Leftovers from a batch whose dispatch stopped early are served
        // before the backend is touched again.
        self.drop_cancelled_batch_tail();
        if let Some(entry) = self.batch.last() {
            return Some(entry.at);
        }
        self.drop_cancelled_heads();
        self.sched.pop_batch(&mut self.batch);
        // The backend appends in (at, seq) order; serve from the tail.
        self.batch.reverse();
        let at = self.batch.last()?.at;
        debug_assert!(at >= self.now);
        self.now = at;
        self.pops += 1;
        Some(at)
    }

    /// The next live event of the batch formed by the last
    /// [`pop_batch`](Self::pop_batch), or `None` when the batch is
    /// exhausted. Entries cancelled since the batch was formed are skipped
    /// and their slots recycled, exactly as the sequential pop path would.
    pub fn batch_next(&mut self) -> Option<E> {
        while let Some(entry) = self.batch.pop() {
            if self.retire(entry.slot) {
                self.popped += 1;
                return Some(entry.event);
            }
        }
        None
    }

    /// Timestamp of the next live event without popping it.
    ///
    /// Takes `&mut self` only for the lazy-skip: cancelled entries at the
    /// head are discarded (via [`Self::drop_cancelled_heads`]) so the peek
    /// stays amortized O(1). The set of live events is unchanged.
    pub fn peek_time(&mut self) -> Option<Time> {
        self.drop_cancelled_batch_tail();
        if let Some(entry) = self.batch.last() {
            return Some(entry.at);
        }
        self.drop_cancelled_heads();
        self.sched.peek_min().map(|e| e.at)
    }

    /// Visit every live (non-cancelled) pending event, in backend storage
    /// order (NOT time order). Used by audit layers that need to account for
    /// resources referenced by in-flight events; O(entries), so callers
    /// should rate-limit it.
    pub fn for_each_live(&self, f: &mut dyn FnMut(&E)) {
        // Entries of a partially served batch are still pending: anything
        // they reference (e.g. packet-arena slots) is still owned by the
        // queue, so audits must see them.
        for entry in &self.batch {
            if entry.slot == NO_SLOT || self.slots[entry.slot as usize].live {
                f(&entry.event);
            }
        }
        self.sched.for_each(&mut |entry| {
            if entry.slot == NO_SLOT || self.slots[entry.slot as usize].live {
                f(&entry.event);
            }
        });
    }

    /// Verify the queue's internal bookkeeping. Used by the audit layer;
    /// O(entries + slots), so callers should rate-limit it.
    ///
    /// Checks: no live entry is scheduled before `now`, the count of dead
    /// backend entries matches `cancelled_in_heap` (so `len()` is exact),
    /// every live slot has exactly one backend entry referring to it, and
    /// the backend's own structural invariants hold
    /// ([`Scheduler::check_backend`]).
    pub fn check_invariants(&self) -> Result<(), String> {
        self.sched.check_backend()?;
        let mut dead = 0usize;
        // simlint::allow(hot-path-alloc, audit-only scan, rate-limited by callers)
        let mut live_refs = vec![0u32; self.slots.len()];
        let mut err = None;
        let mut visit = |entry: &Entry<E>| {
            let slot_live = entry.slot == NO_SLOT || self.slots[entry.slot as usize].live;
            if slot_live {
                if entry.at < self.now && err.is_none() {
                    err = Some(format!(
                        "live event at {} is before now {}",
                        entry.at, self.now
                    ));
                }
            } else {
                dead += 1;
            }
            if entry.slot != NO_SLOT {
                live_refs[entry.slot as usize] += 1;
            }
        };
        for entry in &self.batch {
            visit(entry);
        }
        self.sched.for_each(&mut visit);
        if let Some(e) = err {
            return Err(e);
        }
        if dead != self.cancelled_in_heap {
            return Err(format!(
                "cancelled_in_heap {} but {dead} dead entries in backend",
                self.cancelled_in_heap
            ));
        }
        for (i, slot) in self.slots.iter().enumerate() {
            if slot.live && live_refs[i] != 1 {
                return Err(format!(
                    "live slot {i} referenced by {} backend entries (expected 1)",
                    live_refs[i]
                ));
            }
        }
        Ok(())
    }
}

impl<E: Clone> EventQueue<E> {
    /// Capture the queue's complete state into an owned
    /// [`QueueSnapshot`]. Entries (backend + any pending batch) are stored
    /// in canonical `(at, seq)` order, so two queues with the same live
    /// state produce identical snapshots regardless of backend internals.
    ///
    /// Cold path by design (clones every entry); used by simulation
    /// snapshot/warm-start, never per event.
    pub fn snapshot(&self) -> QueueSnapshot<E> {
        let mut entries: Vec<Entry<E>> = Vec::with_capacity(self.sched.len() + self.batch.len());
        // simlint::allow(hot-path-alloc, snapshot is an explicit cold path, never per event)
        self.sched.for_each(&mut |e| entries.push(e.clone()));
        for e in &self.batch {
            // simlint::allow(hot-path-alloc, snapshot is an explicit cold path, never per event)
            entries.push(e.clone());
        }
        entries.sort_by_key(Entry::key);
        QueueSnapshot {
            kind: self.sched.kind(),
            entries,
            // simlint::allow(hot-path-alloc, snapshot is an explicit cold path, never per event)
            slots: self.slots.clone(),
            // simlint::allow(hot-path-alloc, snapshot is an explicit cold path, never per event)
            free_slots: self.free_slots.clone(),
            cancelled_in_heap: self.cancelled_in_heap,
            now: self.now,
            popped: self.popped,
            pops: self.pops,
            next_seq: self.next_seq,
        }
    }

    /// Rebuild a queue from a [`QueueSnapshot`]. The slot table, free list,
    /// clock, and counters are restored verbatim — outstanding
    /// [`ScheduledId`]s taken before the snapshot remain valid against the
    /// restored queue — and every entry is re-inserted into a fresh backend
    /// of the snapshot's kind. The stable `(at, seq)` order contract makes
    /// the rebuilt backend's internal layout irrelevant: pop order is
    /// bit-identical to the original queue's.
    pub fn restore(snap: &QueueSnapshot<E>) -> EventQueue<E> {
        let mut q = EventQueue {
            sched: AnySched::new(snap.kind),
            next_seq: snap.next_seq,
            // simlint::allow(hot-path-alloc, snapshot restore is an explicit cold path, never per event)
            slots: snap.slots.clone(),
            // simlint::allow(hot-path-alloc, snapshot restore is an explicit cold path, never per event)
            free_slots: snap.free_slots.clone(),
            cancelled_in_heap: snap.cancelled_in_heap,
            now: snap.now,
            popped: snap.popped,
            pops: snap.pops,
            batch: Vec::new(),
        };
        for e in &snap.entries {
            // simlint::allow(hot-path-alloc, snapshot restore is an explicit cold path, never per event)
            q.sched.push(e.clone());
        }
        q
    }
}

/// Owned image of an [`EventQueue`]'s complete deterministic state:
/// canonically ordered entries plus the cancellation slot table, clock, and
/// counters. Produced by [`EventQueue::snapshot`], consumed by
/// [`EventQueue::restore`]. Entry order is `(at, seq)` — backend-layout
/// independent — so snapshots of equivalent queues compare equal
/// field-by-field and digest identically.
#[derive(Clone, Debug)]
pub struct QueueSnapshot<E> {
    kind: SchedKind,
    entries: Vec<Entry<E>>,
    slots: Vec<Slot>,
    free_slots: Vec<u32>,
    cancelled_in_heap: usize,
    now: Time,
    popped: u64,
    pops: u64,
    next_seq: u64,
}

impl<E> QueueSnapshot<E> {
    /// The captured entries in canonical `(at, seq)` order, cancelled ones
    /// included (their slots are dead in the captured slot table). Exposed
    /// so state digests can hash exactly what a restore would rebuild.
    pub fn entries(&self) -> &[Entry<E>] {
        &self.entries
    }

    /// The captured clock.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The captured pop counter.
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// The captured sequence counter (next `seq` to be assigned).
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Scheduler backend the snapshot was taken on (restores rebuild the
    /// same kind).
    pub fn kind(&self) -> SchedKind {
        self.kind
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Run a test body against a fresh queue on every backend, so every
    /// scenario below pins identical behavior across all three.
    fn on_all_backends<E>(f: impl Fn(&mut EventQueue<E>, SchedKind)) {
        for kind in SchedKind::ALL {
            let mut q = EventQueue::with_sched(kind);
            assert_eq!(q.sched_kind(), kind);
            f(&mut q, kind);
        }
    }

    #[test]
    fn pops_in_time_order() {
        on_all_backends(|q, kind| {
            q.schedule(Time::from_us(3), "c");
            q.schedule(Time::from_us(1), "a");
            q.schedule(Time::from_us(2), "b");
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, vec!["a", "b", "c"], "{kind:?}");
        });
    }

    #[test]
    fn ties_break_by_insertion_order() {
        on_all_backends(|q, kind| {
            let t = Time::from_us(5);
            for i in 0..100 {
                q.schedule(t, i);
            }
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, (0..100).collect::<Vec<_>>(), "{kind:?}");
        });
    }

    #[test]
    fn mixed_cancellable_ties_break_by_insertion_order() {
        on_all_backends(|q, kind| {
            let t = Time::from_us(5);
            for i in 0..100 {
                if i % 3 == 0 {
                    let _ = q.schedule_cancellable(t, i);
                } else {
                    q.schedule(t, i);
                }
            }
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, (0..100).collect::<Vec<_>>(), "{kind:?}");
        });
    }

    #[test]
    fn clock_advances_monotonically() {
        on_all_backends(|q, _| {
            q.schedule(Time::from_us(10), ());
            q.schedule(Time::from_us(10), ());
            q.schedule(Time::from_us(20), ());
            let mut last = Time::ZERO;
            while let Some((t, ())) = q.pop() {
                assert!(t >= last);
                last = t;
                assert_eq!(q.now(), t);
            }
            assert_eq!(last, Time::from_us(20));
        });
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_us(10), ());
        q.pop();
        q.schedule(Time::from_us(5), ());
    }

    #[test]
    fn zero_delay_schedule_in_fires_at_now_after_existing_ties() {
        on_all_backends(|q, kind| {
            q.schedule(Time::from_us(10), 0);
            q.pop();
            // Zero delay: due at now() exactly, but after events already
            // scheduled for this instant (sequence order).
            q.schedule(q.now(), 1);
            q.schedule_in(Time::ZERO, 2);
            q.schedule_in(Time::from_us(1), 3);
            assert_eq!(q.peek_time(), Some(Time::from_us(10)), "{kind:?}");
            assert_eq!(q.pop(), Some((Time::from_us(10), 1)), "{kind:?}");
            assert_eq!(q.pop(), Some((Time::from_us(10), 2)), "{kind:?}");
            assert_eq!(q.pop(), Some((Time::from_us(11), 3)), "{kind:?}");
            assert_eq!(q.now(), Time::from_us(11));
        });
    }

    #[test]
    fn cancellation_skips_events() {
        on_all_backends(|q, kind| {
            let a = q.schedule_cancellable(Time::from_us(1), "a");
            q.schedule(Time::from_us(2), "b");
            q.cancel(a);
            assert_eq!(q.len(), 1, "{kind:?}");
            assert_eq!(q.pop().map(|(_, e)| e), Some("b"), "{kind:?}");
            assert!(q.pop().is_none(), "{kind:?}");
        });
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        on_all_backends(|q, _| {
            let a = q.schedule_cancellable(Time::from_us(1), "a");
            assert!(q.pop().is_some());
            q.cancel(a);
            q.schedule(Time::from_us(2), "b");
            assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
        });
    }

    /// Regression: the old tombstone-set design let `cancel()` on a fired id
    /// insert a never-matching tombstone, making `len()` under-report and
    /// underflow-panic once the heap drained below the tombstone count.
    #[test]
    fn cancel_after_fire_keeps_len_exact() {
        on_all_backends(|q, _| {
            let a = q.schedule_cancellable(Time::from_us(1), "a");
            q.pop();
            assert_eq!(q.len(), 0);
            q.cancel(a); // stale id: must not disturb the live count
            assert_eq!(q.len(), 0);
            assert!(q.is_empty());
            q.schedule(Time::from_us(2), "b");
            assert_eq!(q.len(), 1); // would panic on underflow before the fix
            q.cancel(a); // still a no-op, even with events pending
            assert_eq!(q.len(), 1);
            assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
            assert_eq!(q.len(), 0);
        });
    }

    /// Cancel with a stale id whose slot has been recycled by a *new*
    /// cancellable event after the original was popped: the generation check
    /// must protect the new occupant.
    #[test]
    fn cancel_on_popped_id_after_slot_reuse_is_noop() {
        on_all_backends(|q, kind| {
            let a = q.schedule_cancellable(Time::from_us(1), "a");
            assert_eq!(q.pop().map(|(_, e)| e), Some("a"));
            // Slot freed by the pop; this reuses it under a newer gen.
            let b = q.schedule_cancellable(Time::from_us(2), "b");
            q.cancel(a); // stale: must not kill "b"
            assert_eq!(q.len(), 1, "{kind:?}");
            assert_eq!(q.pop().map(|(_, e)| e), Some("b"), "{kind:?}");
            q.cancel(b); // also stale now (fired)
            assert!(q.is_empty());
            q.check_invariants().unwrap();
        });
    }

    #[test]
    fn double_cancel_is_noop() {
        on_all_backends(|q, _| {
            let a = q.schedule_cancellable(Time::from_us(1), "a");
            q.schedule(Time::from_us(2), "b");
            q.cancel(a);
            q.cancel(a);
            q.cancel(a);
            assert_eq!(q.len(), 1);
            assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
            assert!(q.pop().is_none());
            assert_eq!(q.len(), 0);
        });
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        on_all_backends(|q, _| {
            q.schedule(Time::from_us(10), 0);
            q.pop();
            q.schedule_in(Time::from_us(5), 1);
            assert_eq!(q.pop().map(|(t, _)| t), Some(Time::from_us(15)));
        });
    }

    #[test]
    fn peek_skips_cancelled() {
        on_all_backends(|q, kind| {
            let a = q.schedule_cancellable(Time::from_us(1), "a");
            q.schedule(Time::from_us(2), "b");
            q.cancel(a);
            assert_eq!(q.peek_time(), Some(Time::from_us(2)), "{kind:?}");
        });
    }

    /// Regression for the lazy-skip contract: when the head entry is
    /// cancelled *between* a peek and the next peek/pop, both must agree on
    /// the new head — the stale peeked time must never be delivered.
    #[test]
    fn peek_and_pop_agree_when_head_cancelled_between_calls() {
        on_all_backends(|q, kind| {
            let a = q.schedule_cancellable(Time::from_us(1), "a");
            q.schedule(Time::from_us(2), "b");
            assert_eq!(q.peek_time(), Some(Time::from_us(1)), "{kind:?}");
            q.cancel(a); // head dies after it was peeked
            let peeked = q.peek_time();
            assert_eq!(peeked, Some(Time::from_us(2)), "{kind:?}");
            let (t, e) = q.pop().unwrap();
            assert_eq!(Some(t), peeked, "{kind:?}: peek/pop disagree");
            assert_eq!(e, "b");
            // And with pop first (no intervening peek): same skip.
            let c = q.schedule_cancellable(Time::from_us(3), "c");
            q.schedule(Time::from_us(4), "d");
            q.cancel(c);
            assert_eq!(q.pop(), Some((Time::from_us(4), "d")), "{kind:?}");
            q.check_invariants().unwrap();
        });
    }

    #[test]
    fn cancel_interleaved_with_peek() {
        on_all_backends(|q, kind| {
            let a = q.schedule_cancellable(Time::from_us(1), 1);
            let b = q.schedule_cancellable(Time::from_us(2), 2);
            q.schedule(Time::from_us(3), 3);
            assert_eq!(q.peek_time(), Some(Time::from_us(1)), "{kind:?}");
            q.cancel(a);
            assert_eq!(q.peek_time(), Some(Time::from_us(2)), "{kind:?}");
            q.cancel(b);
            assert_eq!(q.peek_time(), Some(Time::from_us(3)), "{kind:?}");
            assert_eq!(q.len(), 1);
            assert_eq!(q.pop(), Some((Time::from_us(3), 3)));
            assert_eq!(q.peek_time(), None);
        });
    }

    #[test]
    fn mass_cancel_then_drain() {
        on_all_backends(|q, kind| {
            let ids: Vec<_> = (0..1000)
                .map(|i| q.schedule_cancellable(Time::from_us(i), i))
                .collect();
            // Keep every 10th event; cancel the rest in scattered order.
            for (i, id) in ids.iter().enumerate() {
                if i % 10 != 0 {
                    q.cancel(*id);
                }
            }
            assert_eq!(q.len(), 100, "{kind:?}");
            let survivors: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(survivors, (0..1000).step_by(10).collect::<Vec<_>>());
            assert_eq!(q.len(), 0);
            assert!(q.is_empty());
        });
    }

    #[test]
    fn invariants_hold_through_schedule_cancel_pop_cycles() {
        on_all_backends(|q, _| {
            q.check_invariants().unwrap();
            let mut ids = Vec::new();
            for i in 0..200u64 {
                if i % 2 == 0 {
                    ids.push(q.schedule_cancellable(Time::from_us(i + 1), i));
                } else {
                    q.schedule(Time::from_us(i + 1), i);
                }
                q.check_invariants().unwrap();
            }
            for (k, id) in ids.iter().enumerate() {
                if k % 3 == 0 {
                    q.cancel(*id);
                    q.check_invariants().unwrap();
                }
            }
            while q.pop().is_some() {
                q.check_invariants().unwrap();
            }
            assert!(q.is_empty());
            q.check_invariants().unwrap();
        });
    }

    #[test]
    fn slot_reuse_does_not_resurrect_old_ids() {
        on_all_backends(|q, _| {
            // Run many schedule/fire/cancel-stale cycles through the same
            // slot.
            let mut stale = Vec::new();
            for round in 0..50u64 {
                let id = q.schedule_cancellable(Time::from_us(round + 1), round);
                // Every stale id from prior rounds must be inert against the
                // recycled slot now hosting the current event.
                for old in &stale {
                    q.cancel(*old);
                }
                assert_eq!(q.len(), 1);
                assert_eq!(q.pop().map(|(_, e)| e), Some(round));
                stale.push(id);
            }
            assert!(q.is_empty());
        });
    }

    /// Calendar-specific end-to-end: growth/shrink resizes while pops cross
    /// bucket-day and year boundaries must preserve global order and the
    /// queue invariants.
    #[test]
    fn calendar_resize_across_day_boundaries_preserves_order() {
        let mut q: EventQueue<u64> = EventQueue::with_sched(SchedKind::Calendar);
        let mut x = 0x0123_4567_89AB_CDEFu64;
        let mut ids = Vec::new();
        for i in 0..600u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            // Spread across many microseconds so entries span several
            // calendar days/years at the initial 1 µs width.
            let at = q.now() + Time::from_ns(x % 50_000);
            if i % 4 == 0 {
                ids.push(q.schedule_cancellable(at, i));
            } else {
                q.schedule(at, i);
            }
            if i % 3 == 0 {
                q.pop();
            }
            if i % 7 == 0 {
                if let Some(id) = ids.pop() {
                    q.cancel(id);
                }
            }
            q.check_invariants().unwrap();
        }
        let mut last = q.now();
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
            q.check_invariants().unwrap();
        }
        assert!(q.is_empty());
    }

    /// The headline batching contract: pop_batch/batch_next delivers the
    /// exact same (time, event) sequence as sequential pop, on every
    /// backend, with scattered cancellations in the mix.
    #[test]
    fn batched_dispatch_matches_sequential() {
        on_all_backends(|batched, kind| {
            let mut sequential = EventQueue::with_sched(kind);
            let mut x = 0x6C62272E07BB0142u64;
            let mut ids_b = Vec::new();
            let mut ids_s = Vec::new();
            for i in 0..2000u64 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                // Coarse grid => many same-timestamp collisions.
                let at = Time::from_ns((x % 64) * 100);
                if i % 4 == 0 {
                    ids_b.push(batched.schedule_cancellable(at, i));
                    ids_s.push(sequential.schedule_cancellable(at, i));
                } else {
                    batched.schedule(at, i);
                    sequential.schedule(at, i);
                }
            }
            for k in (0..ids_b.len()).step_by(3) {
                batched.cancel(ids_b[k]);
                sequential.cancel(ids_s[k]);
            }
            let mut got = Vec::new();
            while let Some(t) = batched.pop_batch() {
                assert_eq!(t, batched.now(), "{kind:?}");
                while let Some(e) = batched.batch_next() {
                    got.push((t, e));
                }
                batched.check_invariants().unwrap();
            }
            let mut want = Vec::new();
            while let Some(te) = sequential.pop() {
                want.push(te);
            }
            assert_eq!(got, want, "{kind:?}");
            assert_eq!(batched.popped(), sequential.popped(), "{kind:?}");
            assert!(
                batched.pops() < sequential.pops(),
                "{kind:?}: batching must reduce scheduler interactions \
                 ({} vs {})",
                batched.pops(),
                sequential.pops()
            );
        });
    }

    /// An event cancelled by an *earlier event of the same batch* must not
    /// be delivered — liveness is checked at serve time, exactly like the
    /// sequential path.
    #[test]
    fn mid_batch_cancellation_skips_event() {
        on_all_backends(|q, kind| {
            let t = Time::from_us(7);
            q.schedule(t, 0u64);
            let victim = q.schedule_cancellable(t, 1u64);
            q.schedule(t, 2u64);
            assert_eq!(q.pop_batch(), Some(t), "{kind:?}");
            assert_eq!(q.batch_next(), Some(0), "{kind:?}");
            // "Handler" of event 0 cancels event 1 mid-batch.
            q.cancel(victim);
            assert_eq!(q.batch_next(), Some(2), "{kind:?}");
            assert_eq!(q.batch_next(), None, "{kind:?}");
            assert!(q.is_empty(), "{kind:?}");
            q.check_invariants().unwrap();
        });
    }

    /// Mixing consumption styles: a partially served batch is drained by
    /// plain pop(), and peek_time/len stay exact throughout.
    #[test]
    fn partial_batch_interops_with_pop_peek_len() {
        on_all_backends(|q, kind| {
            let t = Time::from_us(3);
            for i in 0..4u64 {
                q.schedule(t, i);
            }
            q.schedule(Time::from_us(5), 99);
            assert_eq!(q.pop_batch(), Some(t), "{kind:?}");
            assert_eq!(q.batch_next(), Some(0));
            assert_eq!(q.len(), 4, "{kind:?}: 3 batch leftovers + 1 pending");
            assert_eq!(q.peek_time(), Some(t), "{kind:?}");
            assert_eq!(q.pop(), Some((t, 1)), "{kind:?}");
            q.check_invariants().unwrap();
            // A fresh pop_batch serves the leftovers before re-entering the
            // backend.
            assert_eq!(q.pop_batch(), Some(t), "{kind:?}");
            assert_eq!(q.batch_next(), Some(2));
            assert_eq!(q.batch_next(), Some(3));
            assert_eq!(q.batch_next(), None);
            assert_eq!(q.pop_batch(), Some(Time::from_us(5)), "{kind:?}");
            assert_eq!(q.batch_next(), Some(99));
            assert!(q.pop_batch().is_none(), "{kind:?}");
        });
    }

    /// Scheduling from inside a batch (zero-delay self-post) lands in the
    /// backend, not the current batch: it is served by the *next*
    /// pop_batch at the same timestamp — identical to what sequential pop
    /// order dictates (the new event's seq is larger than every already
    /// scheduled one).
    #[test]
    fn schedule_during_batch_defers_to_next_batch() {
        on_all_backends(|q, kind| {
            let t = Time::from_us(2);
            q.schedule(t, 0u64);
            q.schedule(t, 1u64);
            assert_eq!(q.pop_batch(), Some(t));
            assert_eq!(q.batch_next(), Some(0));
            q.schedule_in(Time::ZERO, 7u64); // handler posts at same instant
            assert_eq!(q.batch_next(), Some(1), "{kind:?}");
            assert_eq!(q.batch_next(), None, "{kind:?}");
            assert_eq!(q.pop_batch(), Some(t), "{kind:?}");
            assert_eq!(q.batch_next(), Some(7), "{kind:?}");
            assert!(q.is_empty());
        });
    }

    /// Snapshot/restore round-trip: the restored queue pops the exact same
    /// (time, event) stream, honors pre-snapshot ScheduledIds, and keeps
    /// counters — on every backend.
    #[test]
    fn snapshot_restore_preserves_stream_and_ids() {
        on_all_backends(|q, kind| {
            let mut ids = Vec::new();
            for i in 0..500u64 {
                let at = Time::from_ns((i * 37) % 900);
                if i % 5 == 0 {
                    ids.push(q.schedule_cancellable(at, i));
                } else {
                    q.schedule(at, i);
                }
            }
            // Burn some history so now/popped are non-trivial.
            for _ in 0..100 {
                q.pop();
            }
            q.cancel(ids[20]);
            let snap = q.snapshot();
            let mut restored = EventQueue::restore(&snap);
            assert_eq!(restored.sched_kind(), kind);
            assert_eq!(restored.now(), q.now());
            assert_eq!(restored.popped(), q.popped());
            assert_eq!(restored.len(), q.len());
            restored.check_invariants().unwrap();
            // A pre-snapshot id cancels the same event in both queues.
            q.cancel(ids[40]);
            restored.cancel(ids[40]);
            // Diverge identically: same schedules after the fork.
            q.schedule(q.now() + Time::from_ns(5), 9999);
            restored.schedule(restored.now() + Time::from_ns(5), 9999);
            loop {
                let a = q.pop();
                let b = restored.pop();
                assert_eq!(a, b, "{kind:?}");
                if a.is_none() {
                    break;
                }
            }
        });
    }

    /// Snapshotting mid-batch captures the unserved batch entries: the
    /// restored queue re-delivers exactly the remainder.
    #[test]
    fn snapshot_mid_batch_keeps_unserved_entries() {
        on_all_backends(|q, kind| {
            let t = Time::from_us(1);
            for i in 0..5u64 {
                q.schedule(t, i);
            }
            assert_eq!(q.pop_batch(), Some(t));
            assert_eq!(q.batch_next(), Some(0));
            assert_eq!(q.batch_next(), Some(1));
            let snap = q.snapshot();
            let mut restored = EventQueue::restore(&snap);
            assert_eq!(restored.len(), 3, "{kind:?}");
            let rest: Vec<_> = std::iter::from_fn(|| restored.pop()).collect();
            assert_eq!(
                rest,
                vec![(t, 2), (t, 3), (t, 4)],
                "{kind:?}"
            );
        });
    }
}
