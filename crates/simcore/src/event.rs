//! Deterministic event queue.
//!
//! A thin wrapper around a binary heap keyed on `(time, sequence)`: events
//! scheduled for the same instant pop in insertion order, which makes whole
//! simulations reproducible bit-for-bit across runs regardless of heap
//! internals. Events support O(log n) lazy cancellation via [`ScheduledId`].

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Time;

/// Handle to a scheduled event, usable for cancellation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ScheduledId(u64);

struct Entry<E> {
    at: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap; we want earliest (then lowest
        // sequence number) first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-priority event queue.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    cancelled: std::collections::HashSet<u64>,
    now: Time,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            cancelled: std::collections::HashSet::new(),
            now: Time::ZERO,
            popped: 0,
        }
    }

    /// Current simulated time: the timestamp of the last popped event.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of events popped so far (for progress reporting).
    #[inline]
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current time: simulated causality
    /// must never run backwards.
    pub fn schedule(&mut self, at: Time, event: E) -> ScheduledId {
        assert!(
            at >= self.now,
            "event scheduled in the past: {at} < now {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
        ScheduledId(seq)
    }

    /// Schedule `event` `delay` after the current time.
    pub fn schedule_in(&mut self, delay: Time, event: E) -> ScheduledId {
        self.schedule(self.now + delay, event)
    }

    /// Cancel a previously scheduled event. Cancelling an already-fired or
    /// already-cancelled event is a no-op.
    pub fn cancel(&mut self, id: ScheduledId) {
        self.cancelled.insert(id.0);
    }

    /// Pop the next live event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            debug_assert!(entry.at >= self.now);
            self.now = entry.at;
            self.popped += 1;
            return Some((entry.at, entry.event));
        }
        None
    }

    /// Timestamp of the next live event without popping it.
    pub fn peek_time(&mut self) -> Option<Time> {
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
                continue;
            }
            return Some(entry.at);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_us(3), "c");
        q.schedule(Time::from_us(1), "a");
        q.schedule(Time::from_us(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = Time::from_us(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_us(10), ());
        q.schedule(Time::from_us(10), ());
        q.schedule(Time::from_us(20), ());
        let mut last = Time::ZERO;
        while let Some((t, ())) = q.pop() {
            assert!(t >= last);
            last = t;
            assert_eq!(q.now(), t);
        }
        assert_eq!(last, Time::from_us(20));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_us(10), ());
        q.pop();
        q.schedule(Time::from_us(5), ());
    }

    #[test]
    fn cancellation_skips_events() {
        let mut q = EventQueue::new();
        let a = q.schedule(Time::from_us(1), "a");
        q.schedule(Time::from_us(2), "b");
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule(Time::from_us(1), "a");
        assert!(q.pop().is_some());
        q.cancel(a);
        q.schedule(Time::from_us(2), "b");
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_us(10), 0);
        q.pop();
        q.schedule_in(Time::from_us(5), 1);
        assert_eq!(q.pop().map(|(t, _)| t), Some(Time::from_us(15)));
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(Time::from_us(1), "a");
        q.schedule(Time::from_us(2), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(Time::from_us(2)));
    }
}
