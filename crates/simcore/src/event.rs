//! Deterministic event queue.
//!
//! A thin wrapper around a binary heap keyed on `(time, sequence)`: events
//! scheduled for the same instant pop in insertion order, which makes whole
//! simulations reproducible bit-for-bit across runs regardless of heap
//! internals.
//!
//! Cancellation uses generation-stamped slots instead of a tombstone set:
//! [`schedule_cancellable`](EventQueue::schedule_cancellable) hands out a
//! [`ScheduledId`] naming a slot plus the generation it was issued under, and
//! the heap entry carries the slot index. The pop path checks cancellation
//! with one array index — no hashing, no allocation — and plain
//! [`schedule`](EventQueue::schedule) (the vast majority of traffic) carries
//! a sentinel slot and skips the bookkeeping entirely. A stale id (already
//! fired or already cancelled) fails the generation check and is a no-op, so
//! `len()` can never under-count and no tombstone can leak.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Time;

/// Handle to a cancellable scheduled event.
///
/// Ids are generation-stamped: once the event fires or is cancelled, the id
/// goes stale and later [`EventQueue::cancel`] calls with it are no-ops,
/// even if the underlying slot has been reused for a newer event.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ScheduledId {
    slot: u32,
    gen: u32,
}

/// Slot index carried by heap entries that were scheduled without a
/// cancellation handle.
const NO_SLOT: u32 = u32::MAX;

/// Per-slot cancellation state. `gen` advances every time the slot is
/// retired (fire or cancel), invalidating outstanding ids; `live` is false
/// while a cancelled entry is still sitting in the heap.
#[derive(Clone, Copy, Debug)]
struct Slot {
    gen: u32,
    live: bool,
}

struct Entry<E> {
    at: Time,
    seq: u64,
    slot: u32,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap; we want earliest (then lowest
        // sequence number) first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-priority event queue.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    slots: Vec<Slot>,
    free_slots: Vec<u32>,
    /// Entries still in the heap whose slot was cancelled.
    cancelled_in_heap: usize,
    now: Time,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            slots: Vec::new(),
            free_slots: Vec::new(),
            cancelled_in_heap: 0,
            now: Time::ZERO,
            popped: 0,
        }
    }

    /// Current simulated time: the timestamp of the last popped event.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of events popped so far (for progress reporting).
    #[inline]
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Number of pending (non-cancelled) events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled_in_heap
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn push_entry(&mut self, at: Time, slot: u32, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: {at} < now {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            at,
            seq,
            slot,
            event,
        });
    }

    /// Schedule `event` at absolute time `at`. The event cannot be
    /// cancelled; use [`schedule_cancellable`](Self::schedule_cancellable)
    /// when a cancellation handle is needed.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current time: simulated causality
    /// must never run backwards.
    #[inline]
    pub fn schedule(&mut self, at: Time, event: E) {
        self.push_entry(at, NO_SLOT, event);
    }

    /// Schedule `event` `delay` after the current time.
    #[inline]
    pub fn schedule_in(&mut self, delay: Time, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Schedule `event` at absolute time `at`, returning a handle that can
    /// cancel it until it fires.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current time.
    pub fn schedule_cancellable(&mut self, at: Time, event: E) -> ScheduledId {
        let slot = match self.free_slots.pop() {
            Some(s) => {
                self.slots[s as usize].live = true;
                s
            }
            None => {
                let s = self.slots.len();
                assert!(s < NO_SLOT as usize, "slot index space exhausted");
                self.slots.push(Slot { gen: 0, live: true });
                s as u32
            }
        };
        self.push_entry(at, slot, event);
        ScheduledId {
            slot,
            gen: self.slots[slot as usize].gen,
        }
    }

    /// Cancel a previously scheduled event. Cancelling an already-fired or
    /// already-cancelled event is a no-op (the stale id fails its generation
    /// check), so `len()` stays accurate.
    pub fn cancel(&mut self, id: ScheduledId) {
        if let Some(slot) = self.slots.get_mut(id.slot as usize) {
            if slot.gen == id.gen && slot.live {
                slot.live = false;
                // Invalidate the id immediately; the heap entry is retired
                // lazily on pop/peek, which recycles the slot.
                slot.gen = slot.gen.wrapping_add(1);
                self.cancelled_in_heap += 1;
            }
        }
    }

    /// Retire the slot of an entry leaving the heap. Returns true when the
    /// entry was live (should be delivered).
    #[inline]
    fn retire(&mut self, slot: u32) -> bool {
        if slot == NO_SLOT {
            return true;
        }
        let s = &mut self.slots[slot as usize];
        if s.live {
            // Fired: invalidate outstanding ids, then recycle.
            s.live = false;
            s.gen = s.gen.wrapping_add(1);
            self.free_slots.push(slot);
            true
        } else {
            // Cancelled earlier; gen was already bumped then.
            self.cancelled_in_heap -= 1;
            self.free_slots.push(slot);
            false
        }
    }

    /// Pop the next live event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        while let Some(entry) = self.heap.pop() {
            if !self.retire(entry.slot) {
                continue;
            }
            debug_assert!(entry.at >= self.now);
            self.now = entry.at;
            self.popped += 1;
            return Some((entry.at, entry.event));
        }
        None
    }

    /// Verify the queue's internal bookkeeping. Used by the audit layer;
    /// O(heap + slots), so callers should rate-limit it.
    ///
    /// Checks: no live entry is scheduled before `now`, the count of dead
    /// heap entries matches `cancelled_in_heap` (so `len()` is exact), and
    /// every live slot has exactly one heap entry referring to it.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut dead = 0usize;
        let mut live_refs = vec![0u32; self.slots.len()];
        for entry in self.heap.iter() {
            let slot_live = entry.slot == NO_SLOT || self.slots[entry.slot as usize].live;
            if slot_live {
                if entry.at < self.now {
                    return Err(format!(
                        "live event at {} is before now {}",
                        entry.at, self.now
                    ));
                }
            } else {
                dead += 1;
            }
            if entry.slot != NO_SLOT {
                live_refs[entry.slot as usize] += 1;
            }
        }
        if dead != self.cancelled_in_heap {
            return Err(format!(
                "cancelled_in_heap {} but {dead} dead entries in heap",
                self.cancelled_in_heap
            ));
        }
        for (i, slot) in self.slots.iter().enumerate() {
            if slot.live && live_refs[i] != 1 {
                return Err(format!(
                    "live slot {i} referenced by {} heap entries (expected 1)",
                    live_refs[i]
                ));
            }
        }
        Ok(())
    }

    /// Timestamp of the next live event without popping it.
    pub fn peek_time(&mut self) -> Option<Time> {
        while let Some(entry) = self.heap.peek() {
            let (at, slot) = (entry.at, entry.slot);
            if slot == NO_SLOT || self.slots[slot as usize].live {
                return Some(at);
            }
            // Cancelled: drop it now so peek stays amortized O(1).
            self.heap.pop();
            self.retire(slot);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_us(3), "c");
        q.schedule(Time::from_us(1), "a");
        q.schedule(Time::from_us(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = Time::from_us(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn mixed_cancellable_ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = Time::from_us(5);
        for i in 0..100 {
            if i % 3 == 0 {
                let _ = q.schedule_cancellable(t, i);
            } else {
                q.schedule(t, i);
            }
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_us(10), ());
        q.schedule(Time::from_us(10), ());
        q.schedule(Time::from_us(20), ());
        let mut last = Time::ZERO;
        while let Some((t, ())) = q.pop() {
            assert!(t >= last);
            last = t;
            assert_eq!(q.now(), t);
        }
        assert_eq!(last, Time::from_us(20));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_us(10), ());
        q.pop();
        q.schedule(Time::from_us(5), ());
    }

    #[test]
    fn cancellation_skips_events() {
        let mut q = EventQueue::new();
        let a = q.schedule_cancellable(Time::from_us(1), "a");
        q.schedule(Time::from_us(2), "b");
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule_cancellable(Time::from_us(1), "a");
        assert!(q.pop().is_some());
        q.cancel(a);
        q.schedule(Time::from_us(2), "b");
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
    }

    /// Regression: the old tombstone-set design let `cancel()` on a fired id
    /// insert a never-matching tombstone, making `len()` under-report and
    /// underflow-panic once the heap drained below the tombstone count.
    #[test]
    fn cancel_after_fire_keeps_len_exact() {
        let mut q = EventQueue::new();
        let a = q.schedule_cancellable(Time::from_us(1), "a");
        q.pop();
        assert_eq!(q.len(), 0);
        q.cancel(a); // stale id: must not disturb the live count
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
        q.schedule(Time::from_us(2), "b");
        assert_eq!(q.len(), 1); // would panic on underflow before the fix
        q.cancel(a); // still a no-op, even with events pending
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn double_cancel_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule_cancellable(Time::from_us(1), "a");
        q.schedule(Time::from_us(2), "b");
        q.cancel(a);
        q.cancel(a);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
        assert!(q.pop().is_none());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_us(10), 0);
        q.pop();
        q.schedule_in(Time::from_us(5), 1);
        assert_eq!(q.pop().map(|(t, _)| t), Some(Time::from_us(15)));
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule_cancellable(Time::from_us(1), "a");
        q.schedule(Time::from_us(2), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(Time::from_us(2)));
    }

    #[test]
    fn cancel_then_reschedule_same_timestamp() {
        let mut q = EventQueue::new();
        let t = Time::from_us(7);
        let a = q.schedule_cancellable(t, "old");
        q.cancel(a);
        // Reschedule at the same instant; the cancelled entry's slot may be
        // recycled for the replacement, so the stale id must stay dead.
        let b = q.schedule_cancellable(t, "new");
        q.cancel(a); // stale: must not kill "new"
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().map(|(_, e)| e), Some("new"));
        assert!(q.pop().is_none());
        let _ = b;
    }

    #[test]
    fn cancel_interleaved_with_peek() {
        let mut q = EventQueue::new();
        let a = q.schedule_cancellable(Time::from_us(1), 1);
        let b = q.schedule_cancellable(Time::from_us(2), 2);
        q.schedule(Time::from_us(3), 3);
        assert_eq!(q.peek_time(), Some(Time::from_us(1)));
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(Time::from_us(2)));
        q.cancel(b);
        assert_eq!(q.peek_time(), Some(Time::from_us(3)));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((Time::from_us(3), 3)));
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn mass_cancel_then_drain() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..1000)
            .map(|i| q.schedule_cancellable(Time::from_us(i), i))
            .collect();
        // Keep every 10th event; cancel the rest in scattered order.
        for (i, id) in ids.iter().enumerate() {
            if i % 10 != 0 {
                q.cancel(*id);
            }
        }
        assert_eq!(q.len(), 100);
        let survivors: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(survivors, (0..1000).step_by(10).collect::<Vec<_>>());
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
    }

    #[test]
    fn invariants_hold_through_schedule_cancel_pop_cycles() {
        let mut q = EventQueue::new();
        q.check_invariants().unwrap();
        let mut ids = Vec::new();
        for i in 0..200u64 {
            if i % 2 == 0 {
                ids.push(q.schedule_cancellable(Time::from_us(i + 1), i));
            } else {
                q.schedule(Time::from_us(i + 1), i);
            }
            q.check_invariants().unwrap();
        }
        for (k, id) in ids.iter().enumerate() {
            if k % 3 == 0 {
                q.cancel(*id);
                q.check_invariants().unwrap();
            }
        }
        while q.pop().is_some() {
            q.check_invariants().unwrap();
        }
        assert!(q.is_empty());
        q.check_invariants().unwrap();
    }

    #[test]
    fn slot_reuse_does_not_resurrect_old_ids() {
        let mut q = EventQueue::new();
        // Run many schedule/fire/cancel-stale cycles through the same slot.
        let mut stale = Vec::new();
        for round in 0..50u64 {
            let id = q.schedule_cancellable(Time::from_us(round + 1), round);
            // Every stale id from prior rounds must be inert against the
            // recycled slot now hosting the current event.
            for old in &stale {
                q.cancel(*old);
            }
            assert_eq!(q.len(), 1);
            assert_eq!(q.pop().map(|(_, e)| e), Some(round));
            stale.push(id);
        }
        assert!(q.is_empty());
    }
}
