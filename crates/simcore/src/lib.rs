//! Foundation types for deterministic discrete-event network simulation.
//!
//! This crate provides the substrate that every other crate in the PrioPlus
//! reproduction builds on:
//!
//! - [`time`]: picosecond-resolution simulated [`time::Time`] and durations;
//! - [`rate`]: link rates ([`rate::Rate`]) and serialization-delay arithmetic;
//! - [`event`]: a deterministic event queue with stable tie-breaking;
//! - [`sched`]: pluggable scheduler backends for the event queue (binary
//!   heap, 4-ary heap, calendar queue) with identical pop order;
//! - [`rng`]: a small, seedable, splittable deterministic RNG;
//! - [`stats`]: summary statistics (mean, percentiles, CDFs, time series).
//!
//! Everything here is deliberately free of I/O and free of global state so
//! that a simulation run is a pure function of its configuration and seed.

#![forbid(unsafe_code)]

#![warn(missing_docs)]

pub mod event;
pub mod rate;
pub mod ringlog;
pub mod rng;
pub mod sched;
pub mod stats;
pub mod time;

pub use event::{EventQueue, QueueSnapshot, ScheduledId};
pub use sched::{Entry, SchedKind, Scheduler};
pub use rate::Rate;
pub use ringlog::RingLog;
pub use rng::SimRng;
pub use stats::QuantileSketch;
pub use time::{Time, TimeDelta};
