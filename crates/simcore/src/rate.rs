//! Link rates and serialization-delay arithmetic.

use core::fmt;


use crate::time::{Time, PS_PER_SEC};

/// A transmission rate in bits per second.
///
/// Serialization delays are computed exactly in picoseconds with `u128`
/// intermediates so that no rate/packet-size combination used in the paper
/// loses precision.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Rate(u64);

impl Rate {
    /// Zero rate (used to represent "not sending").
    pub const ZERO: Rate = Rate(0);

    /// Construct from bits per second.
    #[inline]
    pub const fn from_bps(bps: u64) -> Self {
        Rate(bps)
    }

    /// Construct from megabits per second.
    #[inline]
    pub const fn from_mbps(mbps: u64) -> Self {
        Rate(mbps * 1_000_000)
    }

    /// Construct from gigabits per second.
    #[inline]
    pub const fn from_gbps(gbps: u64) -> Self {
        Rate(gbps * 1_000_000_000)
    }

    /// Rate in bits per second.
    #[inline]
    pub const fn as_bps(self) -> u64 {
        self.0
    }

    /// Rate in fractional Gbit/s.
    #[inline]
    pub fn as_gbps_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time to serialize `bytes` bytes at this rate.
    ///
    /// # Panics
    /// Panics (debug) if the rate is zero.
    #[inline]
    pub fn serialize_time(self, bytes: u64) -> Time {
        debug_assert!(self.0 > 0, "serialize_time on zero rate");
        let ps = (bytes as u128 * 8 * PS_PER_SEC as u128) / self.0 as u128;
        Time::from_ps(ps as u64)
    }

    /// Number of whole bytes transmitted in `dur` at this rate.
    #[inline]
    pub fn bytes_in(self, dur: Time) -> u64 {
        ((self.0 as u128 * dur.as_ps() as u128) / (8 * PS_PER_SEC as u128)) as u64
    }

    /// Bandwidth-delay product in bytes for a given round-trip time.
    #[inline]
    pub fn bdp_bytes(self, rtt: Time) -> u64 {
        self.bytes_in(rtt)
    }

    /// Scale the rate by a dimensionless factor.
    #[inline]
    pub fn mul_f64(self, factor: f64) -> Rate {
        debug_assert!(factor >= 0.0);
        Rate((self.0 as f64 * factor).round() as u64)
    }
}

impl fmt::Debug for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.2}Gbps", self.as_gbps_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.2}Mbps", self.0 as f64 / 1e6)
        } else {
            write!(f, "{}bps", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_delay_exact_100g() {
        // 1000 B at 100 Gbps = 80 ns exactly.
        let r = Rate::from_gbps(100);
        assert_eq!(r.serialize_time(1000), Time::from_ns(80));
        // 64 B probe at 100 Gbps = 5.12 ns.
        assert_eq!(r.serialize_time(64).as_ps(), 5_120);
    }

    #[test]
    fn serialization_delay_exact_10g() {
        let r = Rate::from_gbps(10);
        assert_eq!(r.serialize_time(1500), Time::from_ns(1200));
    }

    #[test]
    fn bdp_matches_paper_environment() {
        // 100 Gbps x 12 us RTT = 150 KB BDP.
        let bdp = Rate::from_gbps(100).bdp_bytes(Time::from_us(12));
        assert_eq!(bdp, 150_000);
    }

    #[test]
    fn bytes_in_inverts_serialize() {
        let r = Rate::from_gbps(100);
        let t = r.serialize_time(123_456);
        assert_eq!(r.bytes_in(t), 123_456);
    }

    #[test]
    fn min_rate_probe_math_from_paper() {
        // Paper 4.2.1: one 64 B probe per 12 us base RTT ~= 42 Mbps.
        let bits: f64 = 64.0 * 8.0;
        let mbps: f64 = bits / 12e-6 / 1e6;
        assert!((mbps - 42.67).abs() < 0.1);
    }
}
