//! A fixed-capacity ring log.
//!
//! [`RingLog`] keeps the most recent `capacity` items pushed into it,
//! overwriting the oldest once full. The audit layer uses it to retain the
//! tail of the event stream so that a violation (or panic) can be reported
//! with the events that led up to it, without unbounded memory growth.

/// Fixed-capacity log retaining the most recent items.
#[derive(Clone, Debug)]
pub struct RingLog<T> {
    buf: Vec<T>,
    cap: usize,
    /// Index of the next write (== oldest element once the log wrapped).
    head: usize,
    /// Total items ever pushed (not capped).
    total: u64,
}

impl<T> RingLog<T> {
    /// New empty log holding at most `capacity` items.
    ///
    /// # Panics
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "RingLog capacity must be nonzero");
        RingLog {
            buf: Vec::with_capacity(capacity),
            cap: capacity,
            head: 0,
            total: 0,
        }
    }

    /// Append an item, evicting the oldest when full.
    pub fn push(&mut self, item: T) {
        if self.buf.len() < self.cap {
            self.buf.push(item);
        } else {
            self.buf[self.head] = item;
            self.head = (self.head + 1) % self.cap;
        }
        self.total += 1;
    }

    /// Number of retained items (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total items ever pushed, including evicted ones.
    pub fn total_pushed(&self) -> u64 {
        self.total
    }

    /// Retained items, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        let (older, newer) = self.buf.split_at(self.head);
        newer.iter().chain(older.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_everything_below_capacity() {
        let mut log = RingLog::new(8);
        for i in 0..5 {
            log.push(i);
        }
        assert_eq!(log.len(), 5);
        assert_eq!(log.total_pushed(), 5);
        assert_eq!(log.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn overwrites_oldest_when_full() {
        let mut log = RingLog::new(4);
        for i in 0..10 {
            log.push(i);
        }
        assert_eq!(log.len(), 4);
        assert_eq!(log.total_pushed(), 10);
        assert_eq!(log.iter().copied().collect::<Vec<_>>(), vec![6, 7, 8, 9]);
    }

    #[test]
    fn wrap_boundary_is_exact() {
        let mut log = RingLog::new(3);
        for i in 0..3 {
            log.push(i);
        }
        assert_eq!(log.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2]);
        log.push(3);
        assert_eq!(log.iter().copied().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_rejected() {
        let _ = RingLog::<u32>::new(0);
    }
}
