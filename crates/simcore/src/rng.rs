//! Deterministic, seedable random number generation.
//!
//! The simulator must be a pure function of `(config, seed)`. We use a
//! SplitMix64-seeded xoshiro256++-style generator implemented locally so the
//! stream is stable regardless of external RNG crate versions (and so the
//! workspace builds with no registry access at all).

/// A deterministic 64-bit PRNG (xoshiro256++), split-able into independent
/// substreams so that e.g. each flow's noise sampling is decoupled from the
/// arrival process.
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derive an independent substream labelled by `stream`.
    ///
    /// Substreams with different labels (or from generators with different
    /// seeds) are statistically independent.
    pub fn split(&self, stream: u64) -> SimRng {
        let mut sm = self.s[0] ^ stream.wrapping_mul(0xA076_1D64_78BD_642F);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Next raw 64-bit value.
    // Deliberately named like Iterator::next: this is the xoshiro output
    // function, and SimRng is not an Iterator (no termination semantics).
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn next(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform f64 in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Multiply-shift rejection-free mapping (Lemire); slight modulo bias
        // is irrelevant at simulation scales but we use the widening multiply
        // variant which is near-unbiased.
        ((self.next() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform f64 in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(hi >= lo);
        lo + self.f64() * (hi - lo)
    }

    /// Exponentially distributed sample with the given mean.
    #[inline]
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        let u = loop {
            let u = self.f64();
            if u > 0.0 {
                break u;
            }
        };
        -mean * u.ln()
    }

    /// Shuffle a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Pick a uniformly random element index for a non-empty slice.
    pub fn choose_index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }

    /// The raw generator state. Two generators with equal state produce
    /// identical streams; used by simulation snapshot digests to certify
    /// that a restored RNG is exactly where the original left off.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }
}

impl SimRng {
    /// Next 32-bit value (top half of the 64-bit stream).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    /// Fill a byte slice from the stream (little-endian word order).
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..100).filter(|_| a.next() == b.next()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn split_streams_are_independent_of_parent_consumption() {
        let parent = SimRng::new(7);
        let mut s1 = parent.split(3);
        let mut parent2 = SimRng::new(7);
        parent2.next();
        let s2 = parent2.split(3);
        // split depends only on the seed state at construction; we split from
        // the *initial* state both times in practice, so document the rule:
        // splitting after consumption yields a different stream.
        assert_eq!(SimRng::new(7).split(3).next(), s1.next());
        let _ = s2;
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(9);
        for _ in 0..10_000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn below_bounds() {
        let mut r = SimRng::new(11);
        for _ in 0..10_000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn exponential_mean_close() {
        let mut r = SimRng::new(13);
        let n = 200_000;
        let mean = 5.0;
        let sum: f64 = (0..n).map(|_| r.exponential(mean)).sum();
        let observed = sum / n as f64;
        assert!(
            (observed - mean).abs() < 0.05 * mean,
            "observed mean {observed}"
        );
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(17);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn uniform_below_is_roughly_uniform() {
        let mut r = SimRng::new(23);
        let mut counts = [0u32; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[r.below(10) as usize] += 1;
        }
        for &c in &counts {
            let expected = n as f64 / 10.0;
            assert!((c as f64 - expected).abs() < 0.05 * expected, "{counts:?}");
        }
    }
}
