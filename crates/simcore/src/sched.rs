//! Pluggable event-scheduler backends.
//!
//! [`EventQueue`](crate::EventQueue) separates *policy* — generation-slot
//! cancellation, the monotonic clock, sequence-number tie-breaking — from
//! the ordered container that actually holds pending entries. The container
//! side is the [`Scheduler`] trait, with three deterministic backends:
//!
//! - [`BinaryHeapSched`]: `std::collections::BinaryHeap` with reversed
//!   ordering — the reference backend;
//! - [`QuadHeapSched`]: an implicit 4-ary min-heap. Same asymptotics as the
//!   binary heap but half the tree depth, so sift-downs touch fewer cache
//!   lines when many events are pending;
//! - [`CalendarQueue`]: a bucketed calendar queue (Brown 1988) with
//!   automatic resize. O(1) amortized when pending-event spacing is roughly
//!   uniform — the dense-timer regime of large incasts, where millions of
//!   RTO/pacing timers share a common horizon. The default: fastest
//!   end-to-end on every simbench scenario post-arena (`event_queue` 247 ms
//!   vs 442 ms for the binary heap; `incast_prioplus` 135 ms vs 148 ms).
//!
//! # Contract
//!
//! Every backend must behave as a *stable min-queue over `(at, seq)`*:
//!
//! 1. `pop_min` returns the pending entry with the smallest `(at, seq)` key
//!    (keys are unique: the queue assigns strictly increasing `seq`);
//! 2. `peek_min` agrees with what `pop_min` would return next;
//! 3. pushes must accept any `entry.at`, including ones earlier than the
//!    last entry popped: the event queue enforces causality against its own
//!    clock, but it also retires *cancelled* heads early, and those can
//!    carry timestamps ahead of the clock.
//!
//! Rule 1 makes backend choice *unobservable*: any two backends driven with
//! the same pushes produce bit-identical pop sequences, which is what lets
//! `PRIOPLUS_SCHED` flip the backend without perturbing a single golden
//! trace. The differential property test (`simcore/tests/prop_sched.rs`)
//! checks all three against a naive sorted-`Vec` model, and the golden-trace
//! suite pins end-to-end digests per backend.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Time;

/// One pending event: absolute timestamp, tie-breaking sequence number, the
/// cancellation slot carried opaquely for [`crate::EventQueue`] (its
/// sentinel for "not cancellable" is `u32::MAX`), and the payload.
/// `Clone` (when `E: Clone`) exists for the queue's snapshot support — the
/// hot path only ever moves entries.
#[derive(Debug, Clone)]
pub struct Entry<E> {
    /// Absolute due time.
    pub at: Time,
    /// Strictly increasing insertion sequence; ties on `at` pop in `seq`
    /// order.
    pub seq: u64,
    /// Cancellation slot index (opaque to backends).
    pub slot: u32,
    /// The event payload.
    pub event: E,
}

impl<E> Entry<E> {
    /// The total-order key backends sort by.
    #[inline]
    pub fn key(&self) -> (Time, u64) {
        (self.at, self.seq)
    }
}

/// A deterministic stable min-queue over `(at, seq)` — the pluggable half
/// of [`crate::EventQueue`]. See the module docs for the exact contract.
pub trait Scheduler<E> {
    /// Insert an entry. `seq` values are unique and strictly increasing
    /// across pushes; `at` may be earlier than the last popped entry (see
    /// the module docs on cancelled-head retirement).
    fn push(&mut self, entry: Entry<E>);

    /// Remove and return the entry with the smallest `(at, seq)`.
    fn pop_min(&mut self) -> Option<Entry<E>>;

    /// The entry `pop_min` would return next, without removing it.
    fn peek_min(&self) -> Option<&Entry<E>>;

    /// Remove the minimum entry *and every further entry sharing its
    /// timestamp*, appending them to `out` in `(at, seq)` order. Appends
    /// nothing when empty. Equivalent to repeated `pop_min` while the head
    /// timestamp is unchanged — the default does exactly that — but
    /// backends can amortize the min search over the whole batch (the
    /// calendar queue locates the min bucket once and drains its tail).
    fn pop_batch(&mut self, out: &mut Vec<Entry<E>>) {
        let Some(first) = self.pop_min() else { return };
        let at = first.at;
        out.push(first);
        while self.peek_min().is_some_and(|e| e.at == at) {
            match self.pop_min() {
                Some(e) => out.push(e),
                None => break,
            }
        }
    }

    /// Number of stored entries (live and cancelled alike — cancellation is
    /// the queue's business, not the backend's).
    fn len(&self) -> usize;

    /// True when no entries are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Visit every stored entry in unspecified order (audit support).
    fn for_each(&self, f: &mut dyn FnMut(&Entry<E>));

    /// Verify backend-internal structure (heap shape, bucket sort order,
    /// counts). Used by the audit layer on top of the queue's own checks.
    fn check_backend(&self) -> Result<(), String> {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Backend selection
// ---------------------------------------------------------------------------

/// Which scheduler backend an [`crate::EventQueue`] uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SchedKind {
    /// `std` binary heap (the reference backend).
    Binary,
    /// Implicit 4-ary min-heap.
    Quad,
    /// Bucketed calendar queue with automatic resize (the default:
    /// fastest end-to-end on every simbench scenario).
    #[default]
    Calendar,
}

impl SchedKind {
    /// All backends, in a fixed order (test matrices iterate this).
    pub const ALL: [SchedKind; 3] = [SchedKind::Binary, SchedKind::Quad, SchedKind::Calendar];

    /// Canonical lowercase name (also what `PRIOPLUS_SCHED` accepts).
    pub fn name(self) -> &'static str {
        match self {
            SchedKind::Binary => "binary",
            SchedKind::Quad => "quad",
            SchedKind::Calendar => "calendar",
        }
    }

    /// Parse a backend name; `None` for anything unknown.
    pub fn parse(s: &str) -> Option<SchedKind> {
        match s.trim().to_ascii_lowercase().as_str() {
            "binary" | "heap" | "binaryheap" => Some(SchedKind::Binary),
            "quad" | "4ary" | "heap4" | "quadheap" => Some(SchedKind::Quad),
            "calendar" | "calq" | "calqueue" => Some(SchedKind::Calendar),
            _ => None,
        }
    }

    /// Resolve a `PRIOPLUS_SCHED` environment value (`None` = unset) to a
    /// backend: `Ok(Calendar)` when unset, `Ok(kind)` for a known name, and
    /// `Err(value)` for anything else. Pure so the env-var contract is unit
    /// testable without mutating process state ([`SchedKind::from_env`] and
    /// `scripts/ci.sh` both follow this table).
    pub fn from_env_value(v: Option<&str>) -> Result<SchedKind, String> {
        match v {
            None => Ok(SchedKind::default()),
            Some(s) => SchedKind::parse(s).ok_or_else(|| s.trim().to_string()),
        }
    }

    /// Backend selected by the `PRIOPLUS_SCHED` environment variable, or
    /// [`SchedKind::Calendar`] when unset. An unparsable value warns once on
    /// stderr and falls back to the default rather than aborting a run
    /// (`scripts/ci.sh` upgrades the same condition to a hard error before
    /// any test leg runs).
    pub fn from_env() -> SchedKind {
        let v = std::env::var("PRIOPLUS_SCHED").ok();
        Self::from_env_value(v.as_deref()).unwrap_or_else(|bad| {
            static WARNED: std::sync::Once = std::sync::Once::new();
            WARNED.call_once(|| {
                eprintln!(
                    "warning: PRIOPLUS_SCHED={bad:?} not one of \
                     binary|quad|calendar; using calendar"
                );
            });
            SchedKind::default()
        })
    }
}

/// Enum-dispatched backend: one concrete type the event queue can hold while
/// the kind is chosen at runtime, with static dispatch inside each arm.
#[derive(Debug)]
pub enum AnySched<E> {
    /// Binary-heap backend.
    Binary(BinaryHeapSched<E>),
    /// 4-ary-heap backend.
    Quad(QuadHeapSched<E>),
    /// Calendar-queue backend.
    Calendar(CalendarQueue<E>),
}

impl<E> AnySched<E> {
    /// Construct an empty backend of the given kind.
    pub fn new(kind: SchedKind) -> Self {
        match kind {
            SchedKind::Binary => AnySched::Binary(BinaryHeapSched::new()),
            SchedKind::Quad => AnySched::Quad(QuadHeapSched::new()),
            SchedKind::Calendar => AnySched::Calendar(CalendarQueue::new()),
        }
    }

    /// Which backend this is.
    pub fn kind(&self) -> SchedKind {
        match self {
            AnySched::Binary(_) => SchedKind::Binary,
            AnySched::Quad(_) => SchedKind::Quad,
            AnySched::Calendar(_) => SchedKind::Calendar,
        }
    }
}

macro_rules! dispatch {
    ($self:ident, $b:ident => $body:expr) => {
        match $self {
            AnySched::Binary($b) => $body,
            AnySched::Quad($b) => $body,
            AnySched::Calendar($b) => $body,
        }
    };
}

impl<E> Scheduler<E> for AnySched<E> {
    #[inline]
    fn push(&mut self, entry: Entry<E>) {
        dispatch!(self, b => b.push(entry))
    }
    #[inline]
    fn pop_min(&mut self) -> Option<Entry<E>> {
        dispatch!(self, b => b.pop_min())
    }
    #[inline]
    fn peek_min(&self) -> Option<&Entry<E>> {
        dispatch!(self, b => b.peek_min())
    }
    #[inline]
    fn pop_batch(&mut self, out: &mut Vec<Entry<E>>) {
        dispatch!(self, b => b.pop_batch(out))
    }
    #[inline]
    fn len(&self) -> usize {
        dispatch!(self, b => b.len())
    }
    fn for_each(&self, f: &mut dyn FnMut(&Entry<E>)) {
        dispatch!(self, b => b.for_each(f))
    }
    fn check_backend(&self) -> Result<(), String> {
        dispatch!(self, b => b.check_backend())
    }
}

// ---------------------------------------------------------------------------
// Binary heap backend
// ---------------------------------------------------------------------------

/// Reversed-order wrapper so the std max-heap pops the smallest key first.
#[derive(Debug)]
struct Rev<E>(Entry<E>);

impl<E> PartialEq for Rev<E> {
    fn eq(&self, other: &Self) -> bool {
        self.0.key() == other.0.key()
    }
}
impl<E> Eq for Rev<E> {}
impl<E> PartialOrd for Rev<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Rev<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other.0.key().cmp(&self.0.key())
    }
}

/// The reference backend: `std::collections::BinaryHeap` in min-order.
#[derive(Debug)]
pub struct BinaryHeapSched<E> {
    heap: BinaryHeap<Rev<E>>,
}

impl<E> BinaryHeapSched<E> {
    /// Empty backend.
    pub fn new() -> Self {
        BinaryHeapSched {
            heap: BinaryHeap::new(),
        }
    }
}

impl<E> Default for BinaryHeapSched<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> for BinaryHeapSched<E> {
    #[inline]
    fn push(&mut self, entry: Entry<E>) {
        self.heap.push(Rev(entry));
    }
    #[inline]
    fn pop_min(&mut self) -> Option<Entry<E>> {
        self.heap.pop().map(|r| r.0)
    }
    #[inline]
    fn peek_min(&self) -> Option<&Entry<E>> {
        self.heap.peek().map(|r| &r.0)
    }
    #[inline]
    fn len(&self) -> usize {
        self.heap.len()
    }
    fn for_each(&self, f: &mut dyn FnMut(&Entry<E>)) {
        for r in self.heap.iter() {
            f(&r.0);
        }
    }
}

// ---------------------------------------------------------------------------
// 4-ary heap backend
// ---------------------------------------------------------------------------

/// Implicit 4-ary min-heap in a `Vec`. Child `c` of node `i` is
/// `4*i + 1 + c`; parent of `i` is `(i - 1) / 4`. Depth is half a binary
/// heap's, trading slightly more comparisons per level for fewer levels —
/// the standard d-ary trade that favors sift-down-heavy workloads like an
/// event loop's pop-push cycle.
#[derive(Debug)]
pub struct QuadHeapSched<E> {
    v: Vec<Entry<E>>,
}

const ARITY: usize = 4;

impl<E> QuadHeapSched<E> {
    /// Empty backend.
    pub fn new() -> Self {
        QuadHeapSched { v: Vec::new() }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / ARITY;
            if self.v[i].key() < self.v[parent].key() {
                self.v.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let len = self.v.len();
        loop {
            let first = ARITY * i + 1;
            if first >= len {
                break;
            }
            let mut min = first;
            for c in first + 1..(first + ARITY).min(len) {
                if self.v[c].key() < self.v[min].key() {
                    min = c;
                }
            }
            if self.v[min].key() < self.v[i].key() {
                self.v.swap(i, min);
                i = min;
            } else {
                break;
            }
        }
    }
}

impl<E> Default for QuadHeapSched<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> for QuadHeapSched<E> {
    fn push(&mut self, entry: Entry<E>) {
        self.v.push(entry);
        self.sift_up(self.v.len() - 1);
    }

    fn pop_min(&mut self) -> Option<Entry<E>> {
        let last = self.v.pop()?;
        if self.v.is_empty() {
            return Some(last);
        }
        let min = std::mem::replace(&mut self.v[0], last);
        self.sift_down(0);
        Some(min)
    }

    #[inline]
    fn peek_min(&self) -> Option<&Entry<E>> {
        self.v.first()
    }

    #[inline]
    fn len(&self) -> usize {
        self.v.len()
    }

    fn for_each(&self, f: &mut dyn FnMut(&Entry<E>)) {
        for e in &self.v {
            f(e);
        }
    }

    fn check_backend(&self) -> Result<(), String> {
        for i in 1..self.v.len() {
            let parent = (i - 1) / ARITY;
            if self.v[i].key() < self.v[parent].key() {
                return Err(format!(
                    "quad-heap property violated at index {i} (parent {parent})"
                ));
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Calendar queue backend
// ---------------------------------------------------------------------------

/// Bucketed calendar queue (Brown 1988). Time is divided into fixed-width
/// "days"; day `d` hashes to bucket `d % nbuckets`, so each bucket holds
/// every `nbuckets`-th day ("one day per year"). A pop scans at most one
/// year of buckets starting from the current day and falls back to a direct
/// min search when the year is empty — O(1) amortized when event spacing is
/// near-uniform relative to the bucket width.
///
/// Buckets are kept sorted descending by `(at, seq)` (so the per-bucket
/// minimum is `last()`, poppable in O(1)), which preserves the stable-order
/// contract exactly: same-timestamp events always land in the same bucket
/// and pop in `seq` order.
///
/// The queue resizes when the entry count drifts outside `[nbuckets/4,
/// 2*nbuckets]`, re-deriving the bucket width from the current min→max event
/// span (≈3× the mean gap). Resize rebuilds in O(n).
#[derive(Debug)]
pub struct CalendarQueue<E> {
    /// Each bucket sorted descending by `(at, seq)`; `last()` is its min.
    buckets: Vec<Vec<Entry<E>>>,
    /// Power of two.
    nbuckets: usize,
    /// Bucket ("day") width in picoseconds, >= 1.
    width: u64,
    /// Timestamp (ps) of the last popped entry: the lower bound for every
    /// stored entry, and where the pop scan starts.
    last_ps: u64,
    count: usize,
}

/// Smallest bucket count; also the initial size.
const MIN_BUCKETS: usize = 4;
/// Initial day width: 1 µs in ps (immediately re-derived on first resize).
const INITIAL_WIDTH_PS: u64 = 1_000_000;

impl<E> CalendarQueue<E> {
    /// Empty backend.
    pub fn new() -> Self {
        CalendarQueue {
            buckets: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            nbuckets: MIN_BUCKETS,
            width: INITIAL_WIDTH_PS,
            last_ps: 0,
            count: 0,
        }
    }

    #[inline]
    fn bucket_of(&self, at_ps: u64) -> usize {
        ((at_ps / self.width) as usize) & (self.nbuckets - 1)
    }

    fn insert_sorted(bucket: &mut Vec<Entry<E>>, entry: Entry<E>) {
        // Descending by key: binary-search under the reversed comparator.
        // Keys are unique, so the search always lands on Err(pos).
        let pos = bucket
            .binary_search_by(|p| entry.key().cmp(&p.key()))
            .unwrap_err();
        bucket.insert(pos, entry);
    }

    /// Bucket index holding the entry `pop_min` must return, or `None` when
    /// empty. Scans one "year" starting at the current day, then falls back
    /// to a direct min search across all bucket heads.
    fn locate_min(&self) -> Option<usize> {
        if self.count == 0 {
            return None;
        }
        let day = self.last_ps / self.width;
        let mask = self.nbuckets as u64 - 1;
        for s in 0..self.nbuckets as u64 {
            let i = ((day + s) & mask) as usize;
            if let Some(e) = self.buckets[i].last() {
                // Is this bucket's min due within the bucket's current day?
                let day_end = (day + s + 1).saturating_mul(self.width);
                if e.at.as_ps() < day_end {
                    return Some(i);
                }
            }
        }
        // Sparse regime: nothing due this year. Direct search.
        let mut best: Option<(Time, u64, usize)> = None;
        for (i, b) in self.buckets.iter().enumerate() {
            if let Some(e) = b.last() {
                let k = (e.at, e.seq, i);
                if best.map_or(true, |(a, s, _)| (e.at, e.seq) < (a, s)) {
                    best = Some(k);
                }
            }
        }
        best.map(|(_, _, i)| i)
    }

    /// Rebuild with a bucket count proportional to the entry count and a
    /// day width of about 3× the mean inter-event gap.
    fn resize(&mut self) {
        let target = self
            .count
            .max(1)
            .next_power_of_two()
            .clamp(MIN_BUCKETS, 1 << 22);
        let mut all: Vec<Entry<E>> = Vec::with_capacity(self.count);
        for b in &mut self.buckets {
            all.append(b);
        }
        let (mut lo, mut hi) = (u64::MAX, 0u64);
        for e in &all {
            let ps = e.at.as_ps();
            lo = lo.min(ps);
            hi = hi.max(ps);
        }
        if all.len() >= 2 && hi > lo {
            self.width = (3 * ((hi - lo) / all.len() as u64)).max(1);
        }
        self.nbuckets = target;
        self.buckets = (0..target).map(|_| Vec::new()).collect();
        for e in all {
            let i = self.bucket_of(e.at.as_ps());
            Self::insert_sorted(&mut self.buckets[i], e);
        }
    }
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> for CalendarQueue<E> {
    fn push(&mut self, entry: Entry<E>) {
        // The queue may retire a *cancelled* head whose timestamp is ahead
        // of the simulation clock, then push an earlier (still causal)
        // event; rewind the scan start so `last_ps` stays a lower bound for
        // every pending entry.
        self.last_ps = self.last_ps.min(entry.at.as_ps());
        let i = self.bucket_of(entry.at.as_ps());
        Self::insert_sorted(&mut self.buckets[i], entry);
        self.count += 1;
        if self.count > 2 * self.nbuckets {
            self.resize();
        }
    }

    fn pop_min(&mut self) -> Option<Entry<E>> {
        let i = self.locate_min()?;
        // simlint::allow(hot-path-unwrap, locate_min only returns non-empty buckets)
        let e = self.buckets[i].pop().expect("locate_min found this bucket");
        self.count -= 1;
        self.last_ps = e.at.as_ps();
        if self.nbuckets > MIN_BUCKETS && 4 * self.count < self.nbuckets {
            self.resize();
        }
        Some(e)
    }

    fn peek_min(&self) -> Option<&Entry<E>> {
        self.locate_min()
            // simlint::allow(hot-path-unwrap, locate_min only returns non-empty buckets)
            .map(|i| self.buckets[i].last().expect("locate_min found this bucket"))
    }

    /// One `locate_min` amortized over the whole batch: same-timestamp
    /// entries always hash to the same bucket and sit contiguously at its
    /// tail (descending `(at, seq)` sort), so the batch is a straight run
    /// of tail pops with no re-scan per entry.
    fn pop_batch(&mut self, out: &mut Vec<Entry<E>>) {
        let Some(i) = self.locate_min() else { return };
        let bucket = &mut self.buckets[i];
        // simlint::allow(hot-path-unwrap, locate_min only returns non-empty buckets)
        let first = bucket.pop().expect("locate_min found this bucket");
        let at = first.at;
        out.push(first);
        let mut popped = 1usize;
        while bucket.last().is_some_and(|e| e.at == at) {
            match bucket.pop() {
                Some(e) => {
                    out.push(e);
                    popped += 1;
                }
                None => break,
            }
        }
        self.count -= popped;
        self.last_ps = at.as_ps();
        if self.nbuckets > MIN_BUCKETS && 4 * self.count < self.nbuckets {
            self.resize();
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.count
    }

    fn for_each(&self, f: &mut dyn FnMut(&Entry<E>)) {
        for b in &self.buckets {
            for e in b {
                f(e);
            }
        }
    }

    fn check_backend(&self) -> Result<(), String> {
        if !self.nbuckets.is_power_of_two() || self.buckets.len() != self.nbuckets {
            return Err(format!(
                "calendar shape: {} buckets, nbuckets {}",
                self.buckets.len(),
                self.nbuckets
            ));
        }
        if self.width == 0 {
            return Err("calendar width is zero".into());
        }
        let mut n = 0usize;
        for (i, b) in self.buckets.iter().enumerate() {
            n += b.len();
            for e in b {
                if self.bucket_of(e.at.as_ps()) != i {
                    return Err(format!(
                        "entry at {} (seq {}) misfiled in bucket {i}",
                        e.at, e.seq
                    ));
                }
                if e.at.as_ps() < self.last_ps {
                    return Err(format!(
                        "entry at {} before last popped {} ps",
                        e.at, self.last_ps
                    ));
                }
            }
            for w in b.windows(2) {
                if w[0].key() <= w[1].key() {
                    return Err(format!("bucket {i} not sorted descending"));
                }
            }
        }
        if n != self.count {
            return Err(format!("calendar count {} but {n} entries", self.count));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(at_ps: u64, seq: u64) -> Entry<u64> {
        Entry {
            at: Time::from_ps(at_ps),
            seq,
            slot: u32::MAX,
            event: seq,
        }
    }

    /// Every backend stores and moves whole `Entry`s during sift/percolate,
    /// so entry size is a direct hot-path cost. The header (at, seq, slot)
    /// is 24 bytes; an 8-byte payload must pack into 32 total. Downstream,
    /// `netsim` pins `Entry<Event>` ≤ 40 bytes for the same reason.
    #[test]
    fn entry_header_stays_small() {
        assert_eq!(std::mem::size_of::<Entry<u64>>(), 32);
    }

    /// Drain any backend and assert the pop order is sorted by (at, seq).
    fn drains_sorted(s: &mut dyn Scheduler<u64>) {
        let mut prev: Option<(Time, u64)> = None;
        while let Some(e) = s.pop_min() {
            if let Some(p) = prev {
                assert!(e.key() > p, "pop order regressed: {:?} after {:?}", e.key(), p);
            }
            prev = Some(e.key());
        }
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn env_value_parse_contract() {
        // Unset: the default backend, silently.
        assert_eq!(SchedKind::from_env_value(None), Ok(SchedKind::Calendar));
        // Every canonical name and alias resolves, case-insensitively and
        // whitespace-tolerantly.
        for kind in SchedKind::ALL {
            assert_eq!(SchedKind::from_env_value(Some(kind.name())), Ok(kind));
            let shouty = kind.name().to_ascii_uppercase();
            assert_eq!(SchedKind::from_env_value(Some(&shouty)), Ok(kind));
        }
        assert_eq!(
            SchedKind::from_env_value(Some("  calq ")),
            Ok(SchedKind::Calendar)
        );
        assert_eq!(
            SchedKind::from_env_value(Some("4ary")),
            Ok(SchedKind::Quad)
        );
        // Unknown values are an error carrying the offending (trimmed)
        // value — callers decide whether to warn (library) or abort (CI).
        assert_eq!(
            SchedKind::from_env_value(Some("fibheap")),
            Err("fibheap".to_string())
        );
        assert_eq!(
            SchedKind::from_env_value(Some(" bogus ")),
            Err("bogus".to_string())
        );
        assert_eq!(SchedKind::from_env_value(Some("")), Err(String::new()));
    }

    #[test]
    fn all_backends_sort_scattered_times() {
        for kind in SchedKind::ALL {
            let mut s = AnySched::new(kind);
            let mut x = 0x2545F4914F6CDD1Du64;
            for seq in 0..5000u64 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                s.push(entry(x % 1_000_000_000, seq));
            }
            s.check_backend().unwrap();
            drains_sorted(&mut s);
        }
    }

    #[test]
    fn all_backends_break_ties_by_seq() {
        for kind in SchedKind::ALL {
            let mut s = AnySched::new(kind);
            for seq in 0..100u64 {
                s.push(entry(42_000, seq));
            }
            for want in 0..100u64 {
                assert_eq!(s.peek_min().unwrap().seq, want, "{kind:?}");
                assert_eq!(s.pop_min().unwrap().seq, want, "{kind:?}");
            }
        }
    }

    #[test]
    fn quad_heap_property_holds_under_churn() {
        let mut s = QuadHeapSched::new();
        for seq in 0..500u64 {
            s.push(entry((seq * 7919) % 10_000, seq));
            if seq % 3 == 0 {
                s.pop_min();
            }
            s.check_backend().unwrap();
        }
    }

    #[test]
    fn calendar_grows_and_shrinks() {
        let mut s = CalendarQueue::new();
        for seq in 0..1000u64 {
            s.push(entry(seq * 300, seq));
        }
        assert!(s.nbuckets >= 512, "grew to {}", s.nbuckets);
        s.check_backend().unwrap();
        for _ in 0..995 {
            s.pop_min().unwrap();
        }
        assert!(s.nbuckets <= 16, "shrank to {}", s.nbuckets);
        s.check_backend().unwrap();
        drains_sorted(&mut s);
    }

    #[test]
    fn calendar_sparse_far_future_event_found_by_direct_search() {
        let mut s = CalendarQueue::new();
        // One event many "years" past the current day: the one-year scan
        // finds nothing and the direct search must locate it.
        s.push(entry(INITIAL_WIDTH_PS * MIN_BUCKETS as u64 * 1000 + 17, 0));
        assert_eq!(s.peek_min().unwrap().seq, 0);
        assert_eq!(s.pop_min().unwrap().seq, 0);
        assert!(s.pop_min().is_none());
    }

    #[test]
    fn batch_pop_matches_sequential_on_all_backends() {
        // Differential: pop_batch must yield exactly the entries repeated
        // pop_min would, grouped by timestamp, on every backend — including
        // across calendar resizes.
        for kind in SchedKind::ALL {
            let mut batched = AnySched::new(kind);
            let mut sequential = AnySched::new(kind);
            let mut x = 0xA3C59AC2F1039EB7u64;
            for seq in 0..3000u64 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                // Coarse timestamps force plenty of same-time collisions.
                let at = (x % 200) * 10_000;
                batched.push(entry(at, seq));
                sequential.push(entry(at, seq));
            }
            let mut out = Vec::new();
            while !batched.is_empty() {
                out.clear();
                batched.pop_batch(&mut out);
                assert!(!out.is_empty(), "{kind:?}: non-empty queue, empty batch");
                let at = out[0].at;
                for e in &out {
                    let want = sequential.pop_min().unwrap();
                    assert_eq!(e.key(), want.key(), "{kind:?}");
                    assert_eq!(e.at, at, "{kind:?}: mixed timestamps in batch");
                }
                // The batch must be exhaustive: the next head is strictly
                // later.
                if let Some(next) = batched.peek_min() {
                    assert!(next.at > at, "{kind:?}: batch left same-time entry");
                }
            }
            assert!(sequential.pop_min().is_none(), "{kind:?}");
        }
    }

    #[test]
    fn batch_pop_on_empty_appends_nothing() {
        for kind in SchedKind::ALL {
            let mut s: AnySched<u64> = AnySched::new(kind);
            let mut out = Vec::new();
            s.pop_batch(&mut out);
            assert!(out.is_empty(), "{kind:?}");
        }
    }

    #[test]
    fn calendar_batch_pop_keeps_structure_valid() {
        let mut s = CalendarQueue::new();
        let mut seq = 0u64;
        for round in 0..50u64 {
            for k in 0..40 {
                // Heavy ties: ten distinct timestamps per round.
                s.push(entry(round * INITIAL_WIDTH_PS + (k % 10) * 1000, seq));
                seq += 1;
            }
            let mut out = Vec::new();
            s.pop_batch(&mut out);
            assert!(!out.is_empty());
            s.check_backend().unwrap();
        }
        // Drain entirely by batches; shrink path must stay consistent.
        let mut prev: Option<(Time, u64)> = None;
        let mut out = Vec::new();
        while !s.is_empty() {
            out.clear();
            s.pop_batch(&mut out);
            for e in &out {
                if let Some(p) = prev {
                    assert!(e.key() > p);
                }
                prev = Some(e.key());
            }
            s.check_backend().unwrap();
        }
    }

    #[test]
    fn calendar_interleaves_push_pop_across_day_boundaries() {
        let mut s = CalendarQueue::new();
        let mut seq = 0u64;
        let mut now = 0u64;
        let mut prev: Option<(Time, u64)> = None;
        let mut x = 0x9E3779B97F4A7C15u64;
        for _ in 0..200 {
            // A burst spanning several days, then drain half.
            for _ in 0..20 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                s.push(entry(now + x % (INITIAL_WIDTH_PS * 3), seq));
                seq += 1;
            }
            for _ in 0..10 {
                let e = s.pop_min().unwrap();
                if let Some(p) = prev {
                    assert!(e.key() > p);
                }
                prev = Some(e.key());
                now = e.at.as_ps();
            }
            s.check_backend().unwrap();
        }
        drains_sorted(&mut s);
    }
}
