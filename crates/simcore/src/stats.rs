//! Summary statistics for experiment reporting.


use crate::time::Time;

/// Accumulates scalar samples and reports mean/percentiles.
///
/// Percentiles use the nearest-rank method on the sorted samples, matching
/// how datacenter transport papers report p99/p999 FCT slowdowns.
#[derive(Clone, Debug, Default)]
pub struct Summary {
    samples: Vec<f64>,
    sorted: bool,
}

impl Summary {
    /// Empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one sample.
    pub fn add(&mut self, v: f64) {
        debug_assert!(v.is_finite(), "non-finite sample {v}");
        self.samples.push(v);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        // simlint::allow(float-order, reporting edge: samples Vec iterated in recorded order, never fed back into sim state)
        Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
    }

    /// Minimum sample.
    pub fn min(&self) -> Option<f64> {
        self.samples.iter().copied().reduce(f64::min)
    }

    /// Maximum sample.
    pub fn max(&self) -> Option<f64> {
        self.samples.iter().copied().reduce(f64::max)
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                .sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite samples"));
            self.sorted = true;
        }
    }

    /// Nearest-rank percentile, `p` in `[0, 100]`.
    pub fn percentile(&mut self, p: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let n = self.samples.len();
        let rank = ((p / 100.0 * n as f64).ceil() as usize).clamp(1, n);
        Some(self.samples[rank - 1])
    }

    /// Median (p50).
    pub fn median(&mut self) -> Option<f64> {
        self.percentile(50.0)
    }

    /// p99.
    pub fn p99(&mut self) -> Option<f64> {
        self.percentile(99.0)
    }

    /// Consume and return the raw samples.
    pub fn into_samples(self) -> Vec<f64> {
        self.samples
    }

    /// Borrow the raw samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Empirical CDF as `(value, cumulative_fraction)` points.
    pub fn cdf_points(&mut self, max_points: usize) -> Vec<(f64, f64)> {
        if self.samples.is_empty() {
            return Vec::new();
        }
        self.ensure_sorted();
        let n = self.samples.len();
        let step = (n / max_points.max(1)).max(1);
        let mut pts = Vec::new();
        let mut i = step - 1;
        while i < n {
            pts.push((self.samples[i], (i + 1) as f64 / n as f64));
            i += step;
        }
        if pts.last().map(|&(_, f)| f) != Some(1.0) {
            pts.push((self.samples[n - 1], 1.0));
        }
        pts
    }
}

/// A time series sampled at fixed intervals, used by rate/delay-over-time
/// figures (Fig 3, 8, 9, 10).
#[derive(Clone, Debug, Default)]
pub struct TimeSeries {
    /// Sample timestamps in microseconds.
    pub t_us: Vec<f64>,
    /// Sample values (unit depends on the series).
    pub v: Vec<f64>,
}

impl TimeSeries {
    /// Empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a point.
    pub fn push(&mut self, t: Time, v: f64) {
        self.t_us.push(t.as_us_f64());
        self.v.push(v);
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.v.len()
    }

    /// True when no points recorded.
    pub fn is_empty(&self) -> bool {
        self.v.is_empty()
    }

    /// Mean of values within a time window `[from, to)` (in µs).
    pub fn window_mean(&self, from_us: f64, to_us: f64) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0usize;
        for (t, v) in self.t_us.iter().zip(&self.v) {
            if *t >= from_us && *t < to_us {
                sum += v;
                n += 1;
            }
        }
        if n == 0 {
            None
        } else {
            Some(sum / n as f64)
        }
    }

    /// Maximum value within a time window `[from, to)` (in µs).
    pub fn window_max(&self, from_us: f64, to_us: f64) -> Option<f64> {
        self.t_us
            .iter()
            .zip(&self.v)
            .filter(|(t, _)| **t >= from_us && **t < to_us)
            .map(|(_, v)| *v)
            .reduce(f64::max)
    }
}

/// Counts bytes observed over time to derive achieved throughput, bucketed
/// into fixed-width intervals.
#[derive(Clone, Debug)]
pub struct ThroughputMeter {
    bucket: Time,
    bytes: Vec<u64>,
}

impl ThroughputMeter {
    /// New meter with the given bucket width.
    pub fn new(bucket: Time) -> Self {
        assert!(bucket > Time::ZERO);
        ThroughputMeter {
            bucket,
            bytes: Vec::new(),
        }
    }

    /// Record `bytes` delivered at time `at`.
    pub fn record(&mut self, at: Time, bytes: u64) {
        let idx = (at.as_ps() / self.bucket.as_ps()) as usize;
        if idx >= self.bytes.len() {
            self.bytes.resize(idx + 1, 0);
        }
        self.bytes[idx] += bytes;
    }

    /// Produce a throughput time series in Gbit/s, one point per bucket
    /// (timestamped at the bucket midpoint).
    pub fn series_gbps(&self) -> TimeSeries {
        let mut s = TimeSeries::new();
        let bucket_s = self.bucket.as_secs_f64();
        for (i, &b) in self.bytes.iter().enumerate() {
            let mid = Time::from_ps(self.bucket.as_ps() * i as u64 + self.bucket.as_ps() / 2);
            s.push(mid, b as f64 * 8.0 / bucket_s / 1e9);
        }
        s
    }

    /// Total bytes recorded.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_percentiles() {
        let mut s = Summary::new();
        for i in 1..=100 {
            s.add(i as f64);
        }
        assert_eq!(s.mean(), Some(50.5));
        assert_eq!(s.percentile(50.0), Some(50.0));
        assert_eq!(s.p99(), Some(99.0));
        assert_eq!(s.percentile(100.0), Some(100.0));
        assert_eq!(s.percentile(1.0), Some(1.0));
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(100.0));
    }

    #[test]
    fn empty_summary_is_none() {
        let mut s = Summary::new();
        assert!(s.mean().is_none());
        assert!(s.percentile(99.0).is_none());
    }

    #[test]
    fn percentile_single_sample() {
        let mut s = Summary::new();
        s.add(7.0);
        assert_eq!(s.percentile(0.0), Some(7.0));
        assert_eq!(s.percentile(99.9), Some(7.0));
    }

    #[test]
    fn cdf_monotone_and_ends_at_one() {
        let mut s = Summary::new();
        for i in 0..1000 {
            s.add((i % 37) as f64);
        }
        let pts = s.cdf_points(50);
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    #[test]
    fn throughput_meter_buckets() {
        let mut m = ThroughputMeter::new(Time::from_us(10));
        // 12.5 KB in first 10us bucket = 10 Gbps.
        m.record(Time::from_us(1), 6_250);
        m.record(Time::from_us(9), 6_250);
        m.record(Time::from_us(15), 12_500);
        let s = m.series_gbps();
        assert_eq!(s.len(), 2);
        assert!((s.v[0] - 10.0).abs() < 1e-9);
        assert!((s.v[1] - 10.0).abs() < 1e-9);
        assert_eq!(m.total_bytes(), 25_000);
    }

    #[test]
    fn window_stats() {
        let mut ts = TimeSeries::new();
        ts.push(Time::from_us(1), 1.0);
        ts.push(Time::from_us(2), 3.0);
        ts.push(Time::from_us(10), 100.0);
        assert_eq!(ts.window_mean(0.0, 5.0), Some(2.0));
        assert_eq!(ts.window_max(0.0, 20.0), Some(100.0));
        assert_eq!(ts.window_mean(20.0, 30.0), None);
    }
}
