//! Summary statistics for experiment reporting.


use crate::time::Time;

/// Accumulates scalar samples and reports mean/percentiles.
///
/// Percentiles use the nearest-rank method on the sorted samples, matching
/// how datacenter transport papers report p99/p999 FCT slowdowns.
#[derive(Clone, Debug, Default)]
pub struct Summary {
    samples: Vec<f64>,
    sorted: bool,
}

impl Summary {
    /// Empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one sample.
    pub fn add(&mut self, v: f64) {
        debug_assert!(v.is_finite(), "non-finite sample {v}");
        self.samples.push(v);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        // simlint::allow(float-order, reporting edge: samples Vec iterated in recorded order, never fed back into sim state)
        Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
    }

    /// Minimum sample.
    pub fn min(&self) -> Option<f64> {
        self.samples.iter().copied().reduce(f64::min)
    }

    /// Maximum sample.
    pub fn max(&self) -> Option<f64> {
        self.samples.iter().copied().reduce(f64::max)
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                .sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite samples"));
            self.sorted = true;
        }
    }

    /// Nearest-rank percentile, `p` in `[0, 100]`.
    pub fn percentile(&mut self, p: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let n = self.samples.len();
        let rank = ((p / 100.0 * n as f64).ceil() as usize).clamp(1, n);
        Some(self.samples[rank - 1])
    }

    /// Median (p50).
    pub fn median(&mut self) -> Option<f64> {
        self.percentile(50.0)
    }

    /// p99.
    pub fn p99(&mut self) -> Option<f64> {
        self.percentile(99.0)
    }

    /// Consume and return the raw samples.
    pub fn into_samples(self) -> Vec<f64> {
        self.samples
    }

    /// Borrow the raw samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Empirical CDF as `(value, cumulative_fraction)` points.
    pub fn cdf_points(&mut self, max_points: usize) -> Vec<(f64, f64)> {
        if self.samples.is_empty() {
            return Vec::new();
        }
        self.ensure_sorted();
        let n = self.samples.len();
        let step = (n / max_points.max(1)).max(1);
        let mut pts = Vec::new();
        let mut i = step - 1;
        while i < n {
            pts.push((self.samples[i], (i + 1) as f64 / n as f64));
            i += step;
        }
        if pts.last().map(|&(_, f)| f) != Some(1.0) {
            pts.push((self.samples[n - 1], 1.0));
        }
        pts
    }
}

/// Streaming quantile sketch over non-negative integer samples.
///
/// A DDSketch-style log-bucketed histogram specialized for deterministic
/// simulation: samples are `u64` (picosecond FCTs, milli-unit slowdowns),
/// buckets are fixed by value alone (no collapsing, no adaptive layout),
/// and all state is integer counts. Insertion is commutative and
/// associative, so the sketch state is bit-identical regardless of sample
/// arrival order — and therefore across scheduler backends, which permute
/// only same-timestamp event order.
///
/// Layout: values below `2^m` (m = [`QuantileSketch::SUB_BITS`] = 7) get
/// one exact bucket each. A value `v >= 2^m` with bit length `e+1` lands in
/// the bucket keyed by its top `m+1` bits, which spans
/// `[(128+sub) << (e-m), (129+sub) << (e-m))` — width `2^(e-m)` at
/// magnitude `>= 128 * 2^(e-m)`, so reporting the bucket midpoint
/// guarantees relative error at most `1/256` ([`QuantileSketch::REL_ERROR_INV`]).
///
/// Quantiles use the same nearest-rank convention as [`Summary`]: the
/// reported value is the midpoint of the bucket containing the sample of
/// rank `clamp(ceil(p/100 * n), 1, n)`.
#[derive(Clone, Debug, Default)]
pub struct QuantileSketch {
    /// Bucket counts, indexed densely; grown on demand (max 7424 buckets
    /// for the full u64 range, ~58 KB).
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl QuantileSketch {
    /// Sub-bucket resolution bits: each power-of-two decade is split into
    /// `2^SUB_BITS` buckets.
    pub const SUB_BITS: u32 = 7;
    /// Guaranteed relative error bound, as an inverse: the reported
    /// quantile `q` satisfies `|q - exact| * REL_ERROR_INV <= exact`.
    pub const REL_ERROR_INV: u64 = 1 << (Self::SUB_BITS + 1);

    const SUBS: u64 = 1 << Self::SUB_BITS;

    /// Empty sketch.
    pub fn new() -> Self {
        Self {
            counts: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index for value `v`. Monotone in `v`.
    fn bucket(v: u64) -> usize {
        if v < Self::SUBS {
            return v as usize;
        }
        let e = 63 - v.leading_zeros() as u64; // >= SUB_BITS
        let shift = e - Self::SUB_BITS as u64;
        let sub = (v >> shift) & (Self::SUBS - 1);
        (Self::SUBS + shift * Self::SUBS + sub) as usize
    }

    /// Midpoint (representative value) of bucket `idx`.
    fn representative(idx: usize) -> u64 {
        let idx = idx as u64;
        if idx < Self::SUBS {
            return idx;
        }
        let b = idx - Self::SUBS;
        let shift = b / Self::SUBS;
        let sub = b % Self::SUBS;
        let lo = (Self::SUBS + sub) << shift;
        let width = 1u64 << shift;
        lo + width / 2
    }

    /// Add one sample.
    pub fn add(&mut self, v: u64) {
        let idx = Self::bucket(v);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact arithmetic mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        Some(self.sum as f64 / self.count as f64)
    }

    /// Exact minimum sample.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum sample.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Nearest-rank quantile, `p` in `[0, 100]`, within relative error
    /// `1 / REL_ERROR_INV` of the exact nearest-rank sample.
    pub fn quantile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let n = self.count;
        let rank = ((p / 100.0 * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::representative(idx));
            }
        }
        // Unreachable when counts/count are consistent; return the max
        // bucket to stay total.
        Some(Self::representative(self.counts.len().saturating_sub(1)))
    }

    /// Median (p50).
    pub fn median(&self) -> Option<u64> {
        self.quantile(50.0)
    }

    /// p99.
    pub fn p99(&self) -> Option<u64> {
        self.quantile(99.0)
    }

    /// Merge another sketch into this one; equivalent to having added all
    /// of `other`'s samples (commutative, associative).
    pub fn merge(&mut self, other: &QuantileSketch) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, &b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Order-independent fingerprint of the full sketch state, for
    /// bit-identity assertions across scheduler backends.
    pub fn fingerprint(&self) -> u64 {
        fn mix(mut x: u64) -> u64 {
            x ^= x >> 33;
            x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
            x ^= x >> 33;
            x = x.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
            x ^ (x >> 33)
        }
        let mut h = mix(self.count ^ 0x9E37_79B9_7F4A_7C15);
        h = mix(h ^ self.sum as u64);
        h = mix(h ^ (self.sum >> 64) as u64);
        h = mix(h ^ self.min.wrapping_add(1));
        h = mix(h ^ self.max);
        for (idx, &c) in self.counts.iter().enumerate() {
            if c != 0 {
                h = mix(h ^ (idx as u64) << 40 ^ c);
            }
        }
        h
    }

    /// Bucket counts (dense, index order), for differential tests.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }
}

/// A time series sampled at fixed intervals, used by rate/delay-over-time
/// figures (Fig 3, 8, 9, 10).
#[derive(Clone, Debug, Default)]
pub struct TimeSeries {
    /// Sample timestamps in microseconds.
    pub t_us: Vec<f64>,
    /// Sample values (unit depends on the series).
    pub v: Vec<f64>,
}

impl TimeSeries {
    /// Empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a point.
    pub fn push(&mut self, t: Time, v: f64) {
        self.t_us.push(t.as_us_f64());
        self.v.push(v);
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.v.len()
    }

    /// True when no points recorded.
    pub fn is_empty(&self) -> bool {
        self.v.is_empty()
    }

    /// Mean of values within a time window `[from, to)` (in µs).
    pub fn window_mean(&self, from_us: f64, to_us: f64) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0usize;
        for (t, v) in self.t_us.iter().zip(&self.v) {
            if *t >= from_us && *t < to_us {
                sum += v;
                n += 1;
            }
        }
        if n == 0 {
            None
        } else {
            Some(sum / n as f64)
        }
    }

    /// Maximum value within a time window `[from, to)` (in µs).
    pub fn window_max(&self, from_us: f64, to_us: f64) -> Option<f64> {
        self.t_us
            .iter()
            .zip(&self.v)
            .filter(|(t, _)| **t >= from_us && **t < to_us)
            .map(|(_, v)| *v)
            .reduce(f64::max)
    }
}

/// Counts bytes observed over time to derive achieved throughput, bucketed
/// into fixed-width intervals.
#[derive(Clone, Debug)]
pub struct ThroughputMeter {
    bucket: Time,
    bytes: Vec<u64>,
}

impl ThroughputMeter {
    /// New meter with the given bucket width.
    pub fn new(bucket: Time) -> Self {
        assert!(bucket > Time::ZERO);
        ThroughputMeter {
            bucket,
            bytes: Vec::new(),
        }
    }

    /// Record `bytes` delivered at time `at`.
    pub fn record(&mut self, at: Time, bytes: u64) {
        let idx = (at.as_ps() / self.bucket.as_ps()) as usize;
        if idx >= self.bytes.len() {
            self.bytes.resize(idx + 1, 0);
        }
        self.bytes[idx] += bytes;
    }

    /// Produce a throughput time series in Gbit/s, one point per bucket
    /// (timestamped at the bucket midpoint).
    pub fn series_gbps(&self) -> TimeSeries {
        let mut s = TimeSeries::new();
        let bucket_s = self.bucket.as_secs_f64();
        for (i, &b) in self.bytes.iter().enumerate() {
            let mid = Time::from_ps(self.bucket.as_ps() * i as u64 + self.bucket.as_ps() / 2);
            s.push(mid, b as f64 * 8.0 / bucket_s / 1e9);
        }
        s
    }

    /// Total bytes recorded.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_percentiles() {
        let mut s = Summary::new();
        for i in 1..=100 {
            s.add(i as f64);
        }
        assert_eq!(s.mean(), Some(50.5));
        assert_eq!(s.percentile(50.0), Some(50.0));
        assert_eq!(s.p99(), Some(99.0));
        assert_eq!(s.percentile(100.0), Some(100.0));
        assert_eq!(s.percentile(1.0), Some(1.0));
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(100.0));
    }

    #[test]
    fn empty_summary_is_none() {
        let mut s = Summary::new();
        assert!(s.mean().is_none());
        assert!(s.percentile(99.0).is_none());
    }

    #[test]
    fn percentile_single_sample() {
        let mut s = Summary::new();
        s.add(7.0);
        assert_eq!(s.percentile(0.0), Some(7.0));
        assert_eq!(s.percentile(99.9), Some(7.0));
    }

    #[test]
    fn cdf_monotone_and_ends_at_one() {
        let mut s = Summary::new();
        for i in 0..1000 {
            s.add((i % 37) as f64);
        }
        let pts = s.cdf_points(50);
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    #[test]
    fn throughput_meter_buckets() {
        let mut m = ThroughputMeter::new(Time::from_us(10));
        // 12.5 KB in first 10us bucket = 10 Gbps.
        m.record(Time::from_us(1), 6_250);
        m.record(Time::from_us(9), 6_250);
        m.record(Time::from_us(15), 12_500);
        let s = m.series_gbps();
        assert_eq!(s.len(), 2);
        assert!((s.v[0] - 10.0).abs() < 1e-9);
        assert!((s.v[1] - 10.0).abs() < 1e-9);
        assert_eq!(m.total_bytes(), 25_000);
    }

    #[test]
    fn sketch_exact_below_subs() {
        // Values below 2^SUB_BITS each get an exact bucket.
        let mut s = QuantileSketch::new();
        for v in 0..128u64 {
            s.add(v);
        }
        assert_eq!(s.count(), 128);
        assert_eq!(s.min(), Some(0));
        assert_eq!(s.max(), Some(127));
        assert_eq!(s.quantile(50.0), Some(63));
        assert_eq!(s.quantile(100.0), Some(127));
        assert_eq!(s.quantile(0.0), Some(0));
    }

    #[test]
    fn sketch_bucket_is_monotone_and_rep_in_range() {
        // Probe values across the full u64 range: the bucket index must be
        // monotone in the value, and the representative must sit within
        // the guaranteed relative-error band.
        let mut last_idx = 0usize;
        let mut v = 1u64;
        while v < u64::MAX / 3 {
            for probe in [v, v + v / 3, v.saturating_mul(2) - 1] {
                let idx = QuantileSketch::bucket(probe);
                assert!(idx >= last_idx || probe < v, "bucket not monotone");
                last_idx = last_idx.max(idx);
                let rep = QuantileSketch::representative(idx);
                let diff = rep.abs_diff(probe);
                assert!(
                    diff as u128 * QuantileSketch::REL_ERROR_INV as u128 <= probe as u128,
                    "rep {rep} too far from {probe}"
                );
            }
            v = v.saturating_mul(2);
        }
    }

    #[test]
    fn sketch_quantile_tracks_exact_oracle() {
        // Deterministic pseudo-random stream vs the exact sorted oracle.
        let mut s = QuantileSketch::new();
        let mut exact: Vec<u64> = Vec::new();
        let mut x = 0x1234_5678_9abc_def0u64;
        for _ in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let v = x % 1_000_000_007;
            s.add(v);
            exact.push(v);
        }
        exact.sort_unstable();
        for p in [1.0, 25.0, 50.0, 90.0, 99.0, 99.9] {
            let n = exact.len();
            let rank = ((p / 100.0 * n as f64).ceil() as usize).clamp(1, n);
            let want = exact[rank - 1];
            let got = s.quantile(p).unwrap();
            let diff = got.abs_diff(want);
            assert!(
                diff as u128 * QuantileSketch::REL_ERROR_INV as u128 <= want as u128,
                "p{p}: sketch {got} vs exact {want}"
            );
        }
    }

    #[test]
    fn sketch_merge_equals_combined_stream() {
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        let mut all = QuantileSketch::new();
        for i in 0..500u64 {
            let v = i * i + 17;
            if i % 2 == 0 {
                a.add(v);
            } else {
                b.add(v);
            }
            all.add(v);
        }
        a.merge(&b);
        assert_eq!(a.fingerprint(), all.fingerprint());
        assert_eq!(a.count(), all.count());
        assert_eq!(a.quantile(99.0), all.quantile(99.0));
    }

    #[test]
    fn sketch_fingerprint_is_order_independent() {
        let vals: Vec<u64> = (0..1000u64).map(|i| i.wrapping_mul(2654435761) % 77777).collect();
        let mut fwd = QuantileSketch::new();
        let mut rev = QuantileSketch::new();
        for &v in &vals {
            fwd.add(v);
        }
        for &v in vals.iter().rev() {
            rev.add(v);
        }
        assert_eq!(fwd.fingerprint(), rev.fingerprint());
        // And sensitive to content.
        let mut other = fwd.clone();
        other.add(1);
        assert_ne!(fwd.fingerprint(), other.fingerprint());
    }

    #[test]
    fn sketch_empty_is_none() {
        let s = QuantileSketch::new();
        assert!(s.quantile(50.0).is_none());
        assert!(s.mean().is_none());
        assert!(s.min().is_none());
        assert!(s.max().is_none());
        assert!(s.is_empty());
    }

    #[test]
    fn window_stats() {
        let mut ts = TimeSeries::new();
        ts.push(Time::from_us(1), 1.0);
        ts.push(Time::from_us(2), 3.0);
        ts.push(Time::from_us(10), 100.0);
        assert_eq!(ts.window_mean(0.0, 5.0), Some(2.0));
        assert_eq!(ts.window_max(0.0, 20.0), Some(100.0));
        assert_eq!(ts.window_mean(20.0, 30.0), None);
    }
}
