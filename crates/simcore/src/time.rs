//! Simulated time.
//!
//! Time is measured in integer **picoseconds** from the start of the
//! simulation. At 100 Gbps a single byte serializes in 80 ps, so picosecond
//! resolution keeps serialization arithmetic exact for every link rate used
//! in the paper (10/100/400 Gbps). A `u64` of picoseconds spans ~213 days of
//! simulated time, far beyond any experiment here.

use core::fmt;
use core::ops::{Add, AddAssign, Sub, SubAssign};


/// Picoseconds per nanosecond.
pub const PS_PER_NS: u64 = 1_000;
/// Picoseconds per microsecond.
pub const PS_PER_US: u64 = 1_000_000;
/// Picoseconds per millisecond.
pub const PS_PER_MS: u64 = 1_000_000_000;
/// Picoseconds per second.
pub const PS_PER_SEC: u64 = 1_000_000_000_000;

/// An instant in simulated time (picoseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

/// A signed span of simulated time, used for delay arithmetic that may be
/// transiently negative (e.g. `measured - target`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TimeDelta(i64);

impl Time {
    /// The simulation epoch.
    pub const ZERO: Time = Time(0);
    /// The greatest representable instant; used as "never".
    pub const MAX: Time = Time(u64::MAX);

    /// Construct from raw picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        Time(ps)
    }

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        Time(ns * PS_PER_NS)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        Time(us * PS_PER_US)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        Time(ms * PS_PER_MS)
    }

    /// Construct from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Time(s * PS_PER_SEC)
    }

    /// Construct from fractional microseconds (convenience for configs).
    #[inline]
    pub fn from_us_f64(us: f64) -> Self {
        debug_assert!(us >= 0.0);
        Time((us * PS_PER_US as f64).round() as u64)
    }

    /// Checked construction from a float picosecond count: truncates toward
    /// zero (identical to an `as u64` cast for every in-range value), and
    /// like Rust float casts saturates above the representable range while
    /// mapping negative and NaN inputs to [`Time::ZERO`]. The named helper
    /// callers should use instead of a bare `as u64` cast (simlint rule
    /// `lossy-time-cast`).
    #[inline]
    pub fn from_ps_f64(ps: f64) -> Self {
        debug_assert!(!ps.is_nan() && ps >= 0.0);
        Time(ps as u64)
    }

    /// Scale by a non-negative float factor, truncating to whole
    /// picoseconds (e.g. reduced-size workload runs scaling a compute
    /// interval).
    #[inline]
    pub fn scale_f64(self, factor: f64) -> Self {
        Time::from_ps_f64(self.0 as f64 * factor)
    }

    /// Raw picoseconds.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Value in nanoseconds (truncating).
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0 / PS_PER_NS
    }

    /// Value in fractional microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// Value in fractional milliseconds.
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / PS_PER_MS as f64
    }

    /// Value in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_SEC as f64
    }

    /// Saturating subtraction: `self - other`, clamped at zero.
    #[inline]
    pub fn saturating_sub(self, other: Time) -> Time {
        Time(self.0.saturating_sub(other.0))
    }

    /// Checked signed difference.
    #[inline]
    pub fn delta(self, other: Time) -> TimeDelta {
        TimeDelta(self.0 as i64 - other.0 as i64)
    }

    /// Scale this time span by a dimensionless factor (used e.g. for
    /// `rtt / cwnd` pacing computations).
    #[inline]
    pub fn mul_f64(self, factor: f64) -> Time {
        debug_assert!(factor >= 0.0);
        Time((self.0 as f64 * factor).round() as u64)
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        Time(self.0.min(other.0))
    }
}

impl TimeDelta {
    /// Zero span.
    pub const ZERO: TimeDelta = TimeDelta(0);

    /// Construct from raw picoseconds.
    #[inline]
    pub const fn from_ps(ps: i64) -> Self {
        TimeDelta(ps)
    }

    /// Raw picoseconds.
    #[inline]
    pub const fn as_ps(self) -> i64 {
        self.0
    }

    /// Value in fractional microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// True when the span is negative.
    #[inline]
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// Clamp a (possibly negative) span to a non-negative [`Time`].
    #[inline]
    pub fn clamp_non_negative(self) -> Time {
        Time(self.0.max(0) as u64)
    }
}

impl Add<Time> for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Time> for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub<Time> for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        debug_assert!(self.0 >= rhs.0, "Time subtraction underflow");
        Time(self.0 - rhs.0)
    }
}

impl SubAssign<Time> for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: Time) {
        debug_assert!(self.0 >= rhs.0, "Time subtraction underflow");
        self.0 -= rhs.0;
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps == u64::MAX {
            write!(f, "never")
        } else if ps >= PS_PER_MS {
            write!(f, "{:.3}ms", self.as_ms_f64())
        } else if ps >= PS_PER_US {
            write!(f, "{:.3}us", self.as_us_f64())
        } else {
            write!(f, "{}ns", ps as f64 / PS_PER_NS as f64)
        }
    }
}

impl fmt::Debug for TimeDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constructors_agree() {
        assert_eq!(Time::from_ns(1), Time::from_ps(1_000));
        assert_eq!(Time::from_us(1), Time::from_ns(1_000));
        assert_eq!(Time::from_ms(1), Time::from_us(1_000));
        assert_eq!(Time::from_secs(1), Time::from_ms(1_000));
    }

    #[test]
    fn float_ps_construction_truncates_and_scales() {
        assert_eq!(Time::from_ps_f64(1234.9), Time::from_ps(1234));
        assert_eq!(Time::from_ps_f64(0.0), Time::ZERO);
        assert_eq!(Time::from_us(10).scale_f64(0.5), Time::from_us(5));
        assert_eq!(Time::from_us(10).scale_f64(1.0), Time::from_us(10));
        // Truncation matches what an `as u64` cast produced before the
        // helper existed: same value for every in-range input.
        let x = 41_999_999.7f64;
        assert_eq!(Time::from_ps_f64(x).as_ps(), x as u64);
    }

    #[test]
    fn arithmetic_roundtrip() {
        let a = Time::from_us(12);
        let b = Time::from_us(5);
        assert_eq!((a + b).as_ps(), Time::from_us(17).as_ps());
        assert_eq!((a - b).as_ps(), Time::from_us(7).as_ps());
        assert_eq!(b.saturating_sub(a), Time::ZERO);
    }

    #[test]
    fn delta_signs() {
        let a = Time::from_us(3);
        let b = Time::from_us(7);
        assert!(a.delta(b).is_negative());
        assert!(!b.delta(a).is_negative());
        assert_eq!(a.delta(b).clamp_non_negative(), Time::ZERO);
        assert_eq!(b.delta(a).clamp_non_negative(), Time::from_us(4));
    }

    #[test]
    fn mul_f64_pacing() {
        // rtt / cwnd pacing with fractional cwnd 0.25 -> 4x rtt gap.
        let rtt = Time::from_us(12);
        assert_eq!(rtt.mul_f64(4.0), Time::from_us(48));
    }

    #[test]
    fn display_picks_scale() {
        assert_eq!(format!("{}", Time::from_ns(500)), "500ns");
        assert_eq!(format!("{}", Time::from_us(5)), "5.000us");
        assert_eq!(format!("{}", Time::from_ms(2)), "2.000ms");
    }

    #[test]
    fn from_us_f64_rounds() {
        assert_eq!(Time::from_us_f64(2.4), Time::from_ns(2400));
        assert_eq!(Time::from_us_f64(0.0005), Time::from_ps(500));
    }
}
