//! Differential property test for the scheduler backends.
//!
//! Random schedule / schedule_cancellable / cancel / pop / peek streams are
//! driven simultaneously through an [`EventQueue`] on each backend (binary
//! heap, 4-ary heap, calendar queue) *and* through a naive sorted-`Vec`
//! shadow model. At every step all four must agree on `len()` and
//! `peek_time()`, and every pop must return the identical
//! `(time, seq, event)` triple — the executable form of the backend
//! contract: scheduler choice is unobservable.

use proptest::prelude::*;
use simcore::{EventQueue, SchedKind, Time};

/// The obviously-correct reference: every scheduled event with an explicit
/// lifecycle state, popped by scanning for the live minimum.
struct Shadow {
    events: Vec<ShadowEv>,
    now: u64,
}

struct ShadowEv {
    at: u64,
    seq: u64,
    val: u64,
    state: State,
}

#[derive(PartialEq)]
enum State {
    Live,
    Cancelled,
    Popped,
}

impl Shadow {
    fn new() -> Self {
        Shadow {
            events: Vec::new(),
            now: 0,
        }
    }

    /// Schedule; returns the shadow id (index) for cancellation.
    fn schedule(&mut self, at: u64, val: u64) -> usize {
        assert!(at >= self.now);
        let seq = self.events.len() as u64;
        self.events.push(ShadowEv {
            at,
            seq,
            val,
            state: State::Live,
        });
        self.events.len() - 1
    }

    /// Cancel iff still live — popped/cancelled ids are stale no-ops,
    /// mirroring the generation-check semantics.
    fn cancel(&mut self, id: usize) {
        if self.events[id].state == State::Live {
            self.events[id].state = State::Cancelled;
        }
    }

    fn min_live(&self) -> Option<usize> {
        self.events
            .iter()
            .enumerate()
            .filter(|(_, e)| e.state == State::Live)
            .min_by_key(|(_, e)| (e.at, e.seq))
            .map(|(i, _)| i)
    }

    fn pop(&mut self) -> Option<(u64, u64)> {
        let i = self.min_live()?;
        self.events[i].state = State::Popped;
        self.now = self.events[i].at;
        Some((self.events[i].at, self.events[i].val))
    }

    fn peek(&self) -> Option<u64> {
        self.min_live().map(|i| self.events[i].at)
    }

    fn len(&self) -> usize {
        self.events
            .iter()
            .filter(|e| e.state == State::Live)
            .count()
    }
}

/// Decode a delay from an op word: a mix of zero delays (forcing same-time
/// seq ties), sub-µs jitter (dense calendar buckets), ~100 µs timer-like
/// horizons, and rare multi-ms jumps (sparse year-skips + resizes).
fn delay_ps(w: u64) -> u64 {
    match (w >> 3) & 3 {
        0 => 0,
        1 => (w >> 5) % 1_000_000,         // < 1 µs
        2 => (w >> 5) % 200_000_000,       // < 200 µs
        _ => (w >> 5) % 5_000_000_000,     // < 5 ms
    }
}

/// Drive one op stream through every backend plus the shadow, checking
/// agreement after each op.
fn run_differential(ops: &[u64]) -> Result<(), TestCaseError> {
    let mut queues: Vec<EventQueue<u64>> = SchedKind::ALL
        .iter()
        .map(|&k| EventQueue::with_sched(k))
        .collect();
    let mut shadow = Shadow::new();
    // Parallel id lists: entry j of each queue's list and of `shadow_ids`
    // name the same logical scheduled event.
    let mut ids: Vec<Vec<simcore::ScheduledId>> = vec![Vec::new(); queues.len()];
    let mut shadow_ids: Vec<usize> = Vec::new();

    for (step, &w) in ops.iter().enumerate() {
        let val = step as u64;
        match w & 7 {
            // Plain schedule (weighted heaviest, like real traffic).
            0..=2 => {
                let at = shadow.now + delay_ps(w);
                for q in queues.iter_mut() {
                    q.schedule(Time::from_ps(at), val);
                }
                shadow.schedule(at, val);
            }
            // Cancellable schedule.
            3 => {
                let at = shadow.now + delay_ps(w);
                for (q, idlist) in queues.iter_mut().zip(ids.iter_mut()) {
                    idlist.push(q.schedule_cancellable(Time::from_ps(at), val));
                }
                shadow_ids.push(shadow.schedule(at, val));
            }
            // Pop.
            4 | 5 => {
                let want = shadow.pop();
                for (q, k) in queues.iter_mut().zip(SchedKind::ALL) {
                    let got = q.pop().map(|(t, v)| (t.as_ps(), v));
                    prop_assert_eq!(
                        got, want,
                        "step {}: pop mismatch on {:?}", step, k
                    );
                }
            }
            // Cancel a previously issued id (possibly stale).
            6 => {
                if !shadow_ids.is_empty() {
                    let j = ((w >> 3) as usize) % shadow_ids.len();
                    for (q, idlist) in queues.iter_mut().zip(ids.iter()) {
                        q.cancel(idlist[j]);
                    }
                    shadow.cancel(shadow_ids[j]);
                }
            }
            // Peek.
            _ => {
                let want = shadow.peek();
                for (q, k) in queues.iter_mut().zip(SchedKind::ALL) {
                    prop_assert_eq!(
                        q.peek_time().map(|t| t.as_ps()),
                        want,
                        "step {}: peek mismatch on {:?}", step, k
                    );
                }
            }
        }
        let want_len = shadow.len();
        for (q, k) in queues.iter().zip(SchedKind::ALL) {
            prop_assert_eq!(q.len(), want_len, "step {}: len mismatch on {:?}", step, k);
            prop_assert_eq!(q.is_empty(), want_len == 0, "step {step}: {k:?}");
        }
        if step % 16 == 0 {
            for (q, k) in queues.iter().zip(SchedKind::ALL) {
                if let Err(e) = q.check_invariants() {
                    return Err(TestCaseError::fail(format!(
                        "step {step}: invariants broken on {k:?}: {e}"
                    )));
                }
            }
        }
    }

    // Drain: the full remaining pop sequences must be identical too.
    loop {
        let want = shadow.pop();
        for (q, k) in queues.iter_mut().zip(SchedKind::ALL) {
            let got = q.pop().map(|(t, v)| (t.as_ps(), v));
            prop_assert_eq!(got, want, "drain: pop mismatch on {:?}", k);
        }
        if want.is_none() {
            break;
        }
    }
    for q in &queues {
        prop_assert_eq!(q.len(), 0);
        if let Err(e) = q.check_invariants() {
            return Err(TestCaseError::fail(format!("post-drain: {e}")));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96 })]

    #[test]
    fn backends_agree_with_shadow_model(ops in proptest::collection::vec(0u64..u64::MAX, 0..400)) {
        run_differential(&ops)?;
    }
}

/// A directed stream that hammers the calendar queue's weak spots: long
/// same-timestamp tie runs, then a far-future jump (year skip + direct
/// search), then dense sub-width jitter forcing repeated resizes.
#[test]
fn directed_tie_and_jump_stream() {
    let mut ops = Vec::new();
    for i in 0..64u64 {
        ops.push(i << 5); // op 0 in the low bits: 64-way zero-delay tie
    }
    ops.extend(std::iter::repeat(4).take(32)); // pops through the tie run
    for i in 0..64u64 {
        ops.push((i << 5) | (3 << 3) | 3); // cancellable, multi-ms spread
    }
    for i in 0..48u64 {
        ops.push((i << 3) | 6); // scattered cancels
        ops.push(4);
        ops.push(7); // peeks interleaved
    }
    run_differential(&ops).unwrap();
}
