//! Property tests for `Time` / `Rate` arithmetic: rounding, overflow
//! avoidance, and bytes ↔ serialization-time round-trips.

use proptest::prelude::*;
use simcore::time::{PS_PER_MS, PS_PER_NS, PS_PER_SEC, PS_PER_US};
use simcore::{Rate, Time};

proptest! {
    #![proptest_config(ProptestConfig { cases: 256 })]

    #[test]
    fn time_add_sub_roundtrip(a in 0u64..PS_PER_SEC, b in 0u64..PS_PER_SEC) {
        let (ta, tb) = (Time::from_ps(a), Time::from_ps(b));
        let sum = ta + tb;
        prop_assert_eq!(sum.as_ps(), a + b);
        prop_assert_eq!(sum - tb, ta);
        prop_assert_eq!(sum - ta, tb);
        prop_assert_eq!(sum.saturating_sub(tb), ta);
    }

    #[test]
    fn saturating_sub_never_underflows(a in 0u64..PS_PER_SEC, b in 0u64..PS_PER_SEC) {
        let d = Time::from_ps(a).saturating_sub(Time::from_ps(b));
        if a >= b {
            prop_assert_eq!(d.as_ps(), a - b);
        } else {
            prop_assert_eq!(d, Time::ZERO);
        }
    }

    #[test]
    fn delta_clamp_matches_ordering(a in 0u64..PS_PER_SEC, b in 0u64..PS_PER_SEC) {
        let (ta, tb) = (Time::from_ps(a), Time::from_ps(b));
        let d = ta.delta(tb);
        prop_assert_eq!(d.is_negative(), a < b);
        prop_assert_eq!(d.clamp_non_negative(), ta.saturating_sub(tb));
        prop_assert_eq!(d.as_ps(), a as i64 - b as i64);
    }

    #[test]
    fn unit_constructors_are_consistent(us in 0u64..10_000_000) {
        prop_assert_eq!(Time::from_us(us).as_ps(), us * PS_PER_US);
        prop_assert_eq!(Time::from_us(us), Time::from_ns(us * 1000));
        if us % 1000 == 0 {
            prop_assert_eq!(Time::from_us(us), Time::from_ms(us / 1000));
        }
        // as_ns truncates toward zero.
        prop_assert_eq!(Time::from_us(us).as_ns(), us * PS_PER_US / PS_PER_NS);
    }

    #[test]
    fn from_us_f64_rounds_to_nearest_ps(us_tenths in 0u64..100_000_000) {
        // Exactly representable tenths-of-microsecond inputs round exactly.
        let t = Time::from_us_f64(us_tenths as f64 / 10.0);
        prop_assert_eq!(t.as_ps(), us_tenths * PS_PER_US / 10);
    }

    #[test]
    fn mul_f64_integer_factors_are_exact(ps in 0u64..PS_PER_MS, k in 0u64..1000) {
        prop_assert_eq!(
            Time::from_ps(ps).mul_f64(k as f64).as_ps(),
            ps * k
        );
    }

    // serialize_time uses u128 intermediates: even a whole-buffer burst at
    // the slowest rate must not overflow or lose precision.
    #[test]
    fn serialize_time_no_overflow(bytes in 1u64..1_000_000_000, gbps in 1u64..400) {
        let r = Rate::from_gbps(gbps);
        let t = r.serialize_time(bytes);
        let expect = (bytes as u128 * 8 * PS_PER_SEC as u128) / r.as_bps() as u128;
        prop_assert_eq!(t.as_ps() as u128, expect);
    }

    // When the Gbps value divides 8000 (= ps per byte at 1 Gbps), a byte
    // count serializes to an exact integer number of picoseconds, so the
    // round-trip bytes -> serialize_time -> bytes_in is the identity. This
    // covers every rate the paper uses (10 / 25 / 40 / 100 / 400 Gbps).
    #[test]
    fn bytes_time_roundtrip_exact_at_divisor_rates(bytes in 1u64..100_000_000, i in 0usize..12) {
        const DIVISOR_GBPS: [u64; 12] = [1, 2, 4, 5, 8, 10, 20, 25, 40, 100, 200, 400];
        let r = Rate::from_gbps(DIVISOR_GBPS[i]);
        prop_assert_eq!(r.bytes_in(r.serialize_time(bytes)), bytes);
    }

    // At arbitrary bps rates the serialization time truncates, so the
    // round-trip may lose at most one byte — never more, never gains.
    #[test]
    fn bytes_time_roundtrip_within_one_byte(bytes in 1u64..100_000_000, bps in 1_000u64..400_000_000_000) {
        let r = Rate::from_bps(bps);
        let back = r.bytes_in(r.serialize_time(bytes));
        prop_assert!(back <= bytes, "round-trip gained bytes: {back} > {bytes}");
        prop_assert!(back + 1 >= bytes, "round-trip lost >1 byte: {back} vs {bytes}");
    }

    #[test]
    fn bytes_in_is_monotone_in_time(ps_a in 0u64..PS_PER_MS, ps_b in 0u64..PS_PER_MS, gbps in 1u64..400) {
        let r = Rate::from_gbps(gbps);
        let (lo, hi) = (ps_a.min(ps_b), ps_a.max(ps_b));
        prop_assert!(r.bytes_in(Time::from_ps(lo)) <= r.bytes_in(Time::from_ps(hi)));
    }

    #[test]
    fn bdp_matches_bytes_in(us in 1u64..1000, gbps in 1u64..400) {
        let r = Rate::from_gbps(gbps);
        let rtt = Time::from_us(us);
        prop_assert_eq!(r.bdp_bytes(rtt), r.bytes_in(rtt));
        // BDP in bytes = gbps * us * 1000 / 8, exact at these granularities.
        prop_assert_eq!(r.bdp_bytes(rtt), gbps * us * 1000 / 8);
    }

    #[test]
    fn rate_mul_f64_integer_factors(mbps in 1u64..1_000_000, k in 0u64..1000) {
        let r = Rate::from_mbps(mbps);
        prop_assert_eq!(r.mul_f64(k as f64).as_bps(), r.as_bps() * k);
    }
}

#[test]
fn serialize_time_spans_paper_rates_exactly() {
    // The paper's rates: 10 / 100 / 400 Gbps, 1 KB MTU + 48 B header.
    for (gbps, wire, ns) in [(10u64, 1048u64, 838u64), (100, 1048, 83), (400, 1048, 20)] {
        let t = Rate::from_gbps(gbps).serialize_time(wire);
        assert_eq!(t.as_ps(), wire * 8 * 1000 / gbps);
        assert!(t.as_ns() >= ns && t.as_ns() <= ns + 1, "{gbps}G: {t}");
    }
}
