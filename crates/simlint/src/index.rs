//! Workspace symbol index: crate graph, module graphs, and the cross-file
//! semantic passes built on [`crate::parse`].
//!
//! This is the layer that certifies the PDES-safety preconditions (see
//! DESIGN.md § Static analysis): conservative sharding of a run is only
//! sound if simulation state flows one way through the crate DAG and
//! never loops between modules, so a future `partition` layer physically
//! cannot reach back into global `Sim` state.
//!
//! Two graphs are built:
//!
//! * **Crate graph** — edges from every `Cargo.toml`
//!   `[dependencies]`/`[dev-dependencies]` entry *and* from every resolved
//!   first-party `use`/path reference in source (dev-dependency cycles are
//!   legal to cargo, which is exactly why they must be linted). Each
//!   first-party crate has an explicit layer in [`LAYERS`]; an edge is
//!   legal only when it points strictly downward. Crates missing from the
//!   table (e.g. `simlint` itself, or a future crate someone forgot to
//!   place) are *isolated*: any first-party edge touching them is a
//!   finding, so new crates must be placed in the DAG deliberately.
//! * **Module graphs** — one per sim-state crate, nodes = file modules,
//!   edges = non-test `crate::x` / `super::x` references. Any cycle is a
//!   finding on every edge inside it.

use std::collections::{BTreeMap, BTreeSet};

use crate::parse::ParsedFile;
use crate::rules::{Finding, Rule};

/// The one-way crate DAG, as layers: an edge `A -> B` (A depends on B) is
/// legal iff `layer(A) > layer(B)`. `netsim` and `prioplus` share a layer
/// deliberately — the network model and the paper's algorithm stay
/// decoupled; `transport` is where they meet.
pub const LAYERS: &[(&str, i8)] = &[
    ("simcore", 0),
    ("prioplus", 1),
    ("netsim", 1),
    ("transport", 2),
    ("workloads", 3),
    ("experiments", 4),
    ("prioplus_bench", 5),
    ("prioplus_criterion_benches", 5),
];

/// Crate directories whose *module* graphs must stay acyclic (the crates
/// that hold simulation state; experiments/bench are driver code).
const MODULE_CYCLE_SCOPE: &[&str] = &[
    "crates/simcore",
    "crates/netsim",
    "crates/transport",
    "crates/workloads",
    "crates/core",
];

/// Path prefixes treated as non-module roots inside `src/` (separate
/// binary targets, not part of the library module tree).
const BIN_DIR: &str = "/src/bin/";

fn human_dag() -> &'static str {
    "simcore <- {netsim, prioplus} <- transport <- workloads <- experiments <- bench"
}

/// One first-party crate discovered from a `Cargo.toml`.
#[derive(Debug)]
pub struct CrateMeta {
    /// Package name with `-` mapped to `_` (the identifier used in paths).
    pub ident: String,
    /// Workspace-relative crate directory, e.g. `crates/netsim`.
    pub dir: String,
    /// Workspace-relative manifest path.
    pub manifest: String,
    /// Layer in [`LAYERS`]; `None` = isolated.
    pub rank: Option<i8>,
    /// First-party dependency idents with the manifest line they appear on
    /// (dev- and build-dependencies included).
    pub deps: Vec<(String, u32)>,
}

/// Minimal `Cargo.toml` reader: package name, dependency keys (with
/// lines), and `path = "..."` entries of `[[test]]`/`[[example]]`/
/// `[[bench]]`/`[[bin]]` targets (used to map out-of-tree test files to
/// their owning crate).
struct Manifest {
    name: Option<String>,
    deps: Vec<(String, u32)>,
    target_paths: Vec<String>,
}

fn parse_manifest(dir: &str, text: &str) -> Manifest {
    let mut m = Manifest {
        name: None,
        deps: Vec::new(),
        target_paths: Vec::new(),
    };
    let mut section = String::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = (idx + 1) as u32;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let inner = rest.trim_end_matches(']').trim_matches('[').trim();
            section = inner.to_string();
            // `[dependencies.foo]` declares dep `foo` on this very line.
            for deps_sec in ["dependencies.", "dev-dependencies.", "build-dependencies."] {
                if let Some(dep) = inner.strip_prefix(deps_sec) {
                    m.deps.push((dep.trim().replace('-', "_"), line_no));
                }
            }
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        let value = value.trim();
        match section.as_str() {
            "package" if key == "name" => {
                m.name = Some(value.trim_matches('"').to_string());
            }
            "dependencies" | "dev-dependencies" | "build-dependencies" => {
                m.deps.push((key.replace('-', "_"), line_no));
            }
            "test" | "example" | "bench" | "bin" if key == "path" => {
                m.target_paths
                    .push(normalize_path(dir, value.trim_matches('"')));
            }
            _ => {}
        }
    }
    m
}

/// Resolve `rel` against workspace-relative `dir`, folding `..`/`.`.
fn normalize_path(dir: &str, rel: &str) -> String {
    let mut parts: Vec<&str> = dir.split('/').filter(|s| !s.is_empty()).collect();
    for seg in rel.split('/') {
        match seg {
            "" | "." => {}
            ".." => {
                parts.pop();
            }
            s => parts.push(s),
        }
    }
    parts.join("/")
}

/// The workspace under analysis: every first-party `.rs` source and
/// `Cargo.toml`, added by path. Drives both the per-file rule families
/// and the cross-file semantic passes; [`Workspace::lint`] returns the
/// combined, allow-filtered, globally sorted report.
#[derive(Debug, Default)]
pub struct Workspace {
    sources: BTreeMap<String, String>,
    manifests: BTreeMap<String, String>,
}

impl Workspace {
    /// An empty workspace.
    pub fn new() -> Workspace {
        Workspace::default()
    }

    /// Add one file by workspace-relative path (forward slashes).
    /// `Cargo.toml` feeds the crate graph; `.rs` files feed everything.
    pub fn add(&mut self, path: &str, contents: &str) {
        if path.ends_with("Cargo.toml") {
            self.manifests.insert(path.to_string(), contents.to_string());
        } else if path.ends_with(".rs") {
            self.sources.insert(path.to_string(), contents.to_string());
        }
    }

    /// Number of `.rs` sources added.
    pub fn source_count(&self) -> usize {
        self.sources.len()
    }

    /// Run every pass; see [`crate::Report`].
    pub fn lint(&self) -> crate::Report {
        crate::lint_workspace_data(&self.sources, &self.manifests)
    }
}

/// Crates discovered from the added manifests.
pub(crate) fn discover_crates(manifests: &BTreeMap<String, String>) -> BTreeMap<String, CrateMeta> {
    let mut crates = BTreeMap::new();
    for (path, text) in manifests {
        let dir = match path.rfind('/') {
            Some(i) => &path[..i],
            None => continue, // workspace-root manifest: not a crate
        };
        let m = parse_manifest(dir, text);
        let Some(name) = m.name else { continue };
        let ident = name.replace('-', "_");
        let rank = LAYERS
            .iter()
            .find(|(n, _)| *n == ident)
            .map(|&(_, r)| r);
        crates.insert(
            ident.clone(),
            CrateMeta {
                ident,
                dir: dir.to_string(),
                manifest: path.clone(),
                rank,
                deps: m.deps,
            },
        );
    }
    crates
}

/// Map every source path to its owning crate ident: explicit target-path
/// entries win (they place `tests/e2e_*.rs` with `experiments` and
/// `tests/lint_clean.rs` with `simlint`), then the longest crate-dir
/// prefix.
pub(crate) fn crate_of_files(
    manifests: &BTreeMap<String, String>,
    crates: &BTreeMap<String, CrateMeta>,
    sources: &BTreeMap<String, String>,
) -> BTreeMap<String, String> {
    let mut target_owner: BTreeMap<String, String> = BTreeMap::new();
    for (path, text) in manifests {
        let dir = match path.rfind('/') {
            Some(i) => &path[..i],
            None => continue,
        };
        let m = parse_manifest(dir, text);
        if let Some(name) = m.name {
            let ident = name.replace('-', "_");
            for t in m.target_paths {
                target_owner.insert(t, ident.clone());
            }
        }
    }
    let mut out = BTreeMap::new();
    for path in sources.keys() {
        if let Some(owner) = target_owner.get(path) {
            out.insert(path.clone(), owner.clone());
            continue;
        }
        let mut best: Option<(&str, usize)> = None;
        for meta in crates.values() {
            let prefix = format!("{}/", meta.dir);
            if path.starts_with(&prefix)
                && best.map_or(true, |(_, len)| prefix.len() > len)
            {
                best = Some((&meta.ident, prefix.len()));
            }
        }
        if let Some((ident, _)) = best {
            out.insert(path.clone(), ident.to_string());
        }
    }
    out
}

fn rank_violation(
    crates: &BTreeMap<String, CrateMeta>,
    from: &str,
    to: &str,
) -> Option<String> {
    let (fr, tr) = (crates.get(from)?.rank, crates.get(to)?.rank);
    match (fr, tr) {
        (Some(f), Some(t)) if f > t => None,
        (Some(f), Some(t)) => Some(format!(
            "layering violation: {from} (layer {f}) must not depend on {to} (layer {t}); \
             the crate DAG is one-way: {}",
            human_dag()
        )),
        _ => {
            let unplaced = if fr.is_none() { from } else { to };
            Some(format!(
                "{unplaced} has no layer in simlint's crate DAG ({}); place new crates \
                 in index::LAYERS deliberately before wiring first-party dependencies",
                human_dag()
            ))
        }
    }
}

/// R9a: check every crate-level dependency edge (manifest + source refs)
/// against the layer table.
pub(crate) fn crate_edge_findings(
    crates: &BTreeMap<String, CrateMeta>,
    crate_of: &BTreeMap<String, String>,
    parsed: &BTreeMap<String, ParsedFile>,
) -> Vec<(String, Finding)> {
    let mut findings = Vec::new();
    // Manifest edges.
    for meta in crates.values() {
        for (dep, line) in &meta.deps {
            if dep == &meta.ident || !crates.contains_key(dep) {
                continue;
            }
            if let Some(msg) = rank_violation(crates, &meta.ident, dep) {
                findings.push((
                    meta.manifest.clone(),
                    Finding {
                        rule: Rule::Layering,
                        line: *line,
                        col: 1,
                        message: format!("dependency on {dep}: {msg}"),
                        allowed: None,
                    },
                ));
            }
        }
    }
    // Source-reference edges: first line per (file, target crate). Test
    // regions are NOT exempt — a dev-dependency back-edge is still a
    // layering leak (cargo permits dev-dep cycles; the DAG must not).
    for (path, pf) in parsed {
        let Some(from) = crate_of.get(path) else {
            continue;
        };
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut refs: Vec<(&str, u32)> = Vec::new();
        for u in &pf.uses {
            if let Some(head) = u.segs.first() {
                refs.push((head.as_str(), u.line));
            }
        }
        for r in &pf.path_refs {
            refs.push((r.head.as_str(), r.line));
        }
        refs.sort_by_key(|&(_, line)| line);
        for (head, line) in refs {
            if head == from || !crates.contains_key(head) || !seen.insert(head) {
                continue;
            }
            if let Some(msg) = rank_violation(crates, from, head) {
                findings.push((
                    path.clone(),
                    Finding {
                        rule: Rule::Layering,
                        line,
                        col: 1,
                        message: format!("reference to {head}::...: {msg}"),
                        allowed: None,
                    },
                ));
            }
        }
    }
    findings
}

/// R9b: per sim-state crate, the file-module graph must be acyclic.
pub(crate) fn module_cycle_findings(
    crates: &BTreeMap<String, CrateMeta>,
    parsed: &BTreeMap<String, ParsedFile>,
) -> (Vec<(String, Finding)>, usize) {
    let mut findings = Vec::new();
    let mut modules_indexed = 0usize;
    for meta in crates.values() {
        if !MODULE_CYCLE_SCOPE.contains(&meta.dir.as_str()) {
            continue;
        }
        let src_prefix = format!("{}/src/", meta.dir);
        // File modules: `src/x.rs` -> module `x`; lib/main -> the root.
        let mut module_of: BTreeMap<String, String> = BTreeMap::new(); // path -> module
        let mut modules: BTreeSet<String> = BTreeSet::new();
        for path in parsed.keys() {
            let Some(rest) = path.strip_prefix(&src_prefix) else {
                continue;
            };
            if path.contains(BIN_DIR) || rest.contains('/') {
                continue;
            }
            let stem = rest.trim_end_matches(".rs");
            let module = if stem == "lib" || stem == "main" {
                "(root)".to_string()
            } else {
                stem.to_string()
            };
            modules.insert(module.clone());
            module_of.insert(path.clone(), module);
        }
        modules_indexed += modules.len();
        // Edges from non-test `crate::x` / `super::x` references.
        let mut edges: BTreeMap<(String, String), (String, u32)> = BTreeMap::new();
        for (path, module) in &module_of {
            let pf = &parsed[path];
            let mut add = |target: &str, line: u32| {
                if target != module && modules.contains(target) {
                    edges
                        .entry((module.clone(), target.to_string()))
                        .or_insert((path.clone(), line));
                }
            };
            for u in &pf.uses {
                if u.in_test || u.segs.len() < 2 {
                    continue;
                }
                match u.segs[0].as_str() {
                    "crate" => add(&u.segs[1], u.line),
                    // Every file module sits directly under the root, so
                    // `super::x` in one resolves to sibling module `x`.
                    "super" if module != "(root)" => add(&u.segs[1], u.line),
                    _ => {}
                }
            }
            for r in &pf.path_refs {
                if r.in_test {
                    continue;
                }
                let second = match &r.second {
                    Some(s) => s.as_str(),
                    None => continue,
                };
                match r.head.as_str() {
                    "crate" => add(second, r.line),
                    "super" if module != "(root)" => add(second, r.line),
                    _ => {}
                }
            }
        }
        // For each edge a->b, a path b ->* a means the edge closes a cycle.
        let adj: BTreeMap<&str, Vec<&str>> = {
            let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
            for (a, b) in edges.keys() {
                adj.entry(a.as_str()).or_default().push(b.as_str());
            }
            adj
        };
        for ((a, b), (path, line)) in &edges {
            if let Some(back) = find_path(&adj, b, a) {
                let mut cycle = vec![a.as_str()];
                cycle.extend(back.iter().copied());
                let cycle = cycle.join(" -> ");
                findings.push((
                    path.clone(),
                    Finding {
                        rule: Rule::Layering,
                        line: *line,
                        col: 1,
                        message: format!(
                            "module cycle in crate {}: {cycle}; sim state must flow one \
                             way between modules (split the shared type into its own \
                             module, as netsim::event does for Event)",
                            meta.ident
                        ),
                        allowed: None,
                    },
                ));
            }
        }
    }
    (findings, modules_indexed)
}

/// DFS path from `from` to `to` over `adj` (deterministic: neighbors are
/// sorted by construction). Returns the node sequence `from ..= to`.
fn find_path<'a>(
    adj: &BTreeMap<&'a str, Vec<&'a str>>,
    from: &'a str,
    to: &'a str,
) -> Option<Vec<&'a str>> {
    let mut stack = vec![vec![from]];
    let mut visited: BTreeSet<&str> = BTreeSet::new();
    while let Some(path) = stack.pop() {
        let node = *path.last().expect("paths are never empty");
        if node == to {
            return Some(path);
        }
        if !visited.insert(node) {
            continue;
        }
        if let Some(next) = adj.get(node) {
            // Push in reverse so the lexicographically first neighbor is
            // explored first (deterministic shortest-ish path).
            for n in next.iter().rev() {
                if !visited.contains(n) {
                    let mut p = path.clone();
                    p.push(n);
                    stack.push(p);
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_parser_reads_names_deps_and_target_paths() {
        let m = parse_manifest(
            "crates/experiments",
            r#"
[package]
name = "experiments"
version = "0.1.0"

[dependencies]
simcore = { workspace = true }
netsim = { workspace = true }

[dev-dependencies]
proptest = { workspace = true }

[dependencies.prioplus-core]
workspace = true

[[test]]
name = "e2e_basic"
path = "../../tests/e2e_basic.rs"
"#,
        );
        assert_eq!(m.name.as_deref(), Some("experiments"));
        let deps: Vec<&str> = m.deps.iter().map(|(d, _)| d.as_str()).collect();
        assert_eq!(deps, vec!["simcore", "netsim", "proptest", "prioplus_core"]);
        assert_eq!(m.target_paths, vec!["tests/e2e_basic.rs"]);
    }

    #[test]
    fn normalize_path_folds_dotdot() {
        assert_eq!(
            normalize_path("crates/experiments", "../../tests/x.rs"),
            "tests/x.rs"
        );
        assert_eq!(normalize_path("crates/netsim", "./src/lib.rs"), "crates/netsim/src/lib.rs");
    }

    #[test]
    fn rank_violation_directions() {
        let mut manifests = BTreeMap::new();
        for (name, dir) in [
            ("netsim", "crates/netsim"),
            ("experiments", "crates/experiments"),
            ("simlint", "crates/simlint"),
        ] {
            manifests.insert(
                format!("{dir}/Cargo.toml"),
                format!("[package]\nname = \"{name}\"\n"),
            );
        }
        let crates = discover_crates(&manifests);
        assert!(rank_violation(&crates, "experiments", "netsim").is_none());
        assert!(rank_violation(&crates, "netsim", "experiments")
            .unwrap()
            .contains("layering violation"));
        assert!(rank_violation(&crates, "netsim", "simlint")
            .unwrap()
            .contains("no layer"));
    }

    #[test]
    fn find_path_is_deterministic() {
        let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        adj.insert("a", vec!["b", "c"]);
        adj.insert("b", vec!["d"]);
        adj.insert("c", vec!["d"]);
        assert_eq!(find_path(&adj, "a", "d"), Some(vec!["a", "b", "d"]));
        assert_eq!(find_path(&adj, "d", "a"), None);
    }
}
