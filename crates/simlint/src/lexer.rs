//! A minimal, dependency-free Rust lexer.
//!
//! Just enough tokenization for [`crate::rules`]: identifiers, numbers,
//! lifetimes, and single-character punctuation, with string literals
//! (including raw and byte strings), char literals, and comments stripped
//! out of the token stream. Comments are kept on the side because the
//! `simlint::allow(...)` annotation grammar and rule R6's reason-comment
//! requirement both read them.
//!
//! This is deliberately not a full Rust lexer — no float/suffix fidelity,
//! no multi-character operators — because the rules only ever match
//! identifier sequences and bracket structure. Where the real grammar is
//! ambiguous at this fidelity (lifetime vs. char literal), the resolution
//! below matches what rustc does for every construct that appears in this
//! workspace.

/// What kind of token this is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`HashMap`, `as`, `fn`, ...).
    Ident,
    /// Numeric literal (lexed as one blob, suffix included).
    Num,
    /// A lifetime such as `'a` (quote included in the text).
    Lifetime,
    /// Any other single character: `{`, `(`, `:`, `#`, `.`, ...
    Punct,
}

/// One token with its source position (1-based line and column).
#[derive(Clone, Debug)]
pub struct Tok {
    /// Kind of token.
    pub kind: TokKind,
    /// Source text of the token.
    pub text: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (in characters).
    pub col: u32,
}

/// A comment (line or block), with the `//` / `/*` markers stripped.
#[derive(Clone, Debug)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Comment body without the comment markers.
    pub text: String,
}

/// Output of [`lex`].
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens, in source order.
    pub toks: Vec<Tok>,
    /// Comments, in source order.
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            chars: src.chars().peekable(),
            line: 1,
            col: 1,
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenize `src`, separating code tokens from comments.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor::new(src);
    let mut out = Lexed::default();
    while let Some(c) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        match c {
            c if c.is_whitespace() => {
                cur.bump();
            }
            '/' => {
                cur.bump();
                match cur.peek() {
                    Some('/') => {
                        cur.bump();
                        let mut text = String::new();
                        while let Some(c) = cur.peek() {
                            if c == '\n' {
                                break;
                            }
                            text.push(c);
                            cur.bump();
                        }
                        out.comments.push(Comment { line, text });
                    }
                    Some('*') => {
                        cur.bump();
                        let mut depth = 1u32;
                        let mut text = String::new();
                        while depth > 0 {
                            match cur.bump() {
                                Some('*') if cur.peek() == Some('/') => {
                                    cur.bump();
                                    depth -= 1;
                                    if depth > 0 {
                                        text.push_str("*/");
                                    }
                                }
                                Some('/') if cur.peek() == Some('*') => {
                                    cur.bump();
                                    depth += 1;
                                    text.push_str("/*");
                                }
                                Some(c) => text.push(c),
                                None => break,
                            }
                        }
                        out.comments.push(Comment { line, text });
                    }
                    _ => out.toks.push(Tok {
                        kind: TokKind::Punct,
                        text: "/".into(),
                        line,
                        col,
                    }),
                }
            }
            '"' => {
                cur.bump();
                skip_string_body(&mut cur);
            }
            'r' | 'b' => {
                // Possible raw/byte string prefix; otherwise an identifier.
                let mut ident = String::new();
                ident.push(c);
                cur.bump();
                // `r"`, `r#"`, `b"`, `br"`, `br#"`; `rb` is not a thing.
                if (ident == "b" && cur.peek() == Some('r')) || ident == "r" {
                    let mut saw_r = ident == "r";
                    if !saw_r && cur.peek() == Some('r') {
                        // peek past the `r` of `br` only if a raw string follows
                        let mut clone = cur.chars.clone();
                        clone.next(); // the `r`
                        while clone.peek() == Some(&'#') {
                            clone.next();
                        }
                        if clone.peek() == Some(&'"') {
                            cur.bump(); // consume `r`
                            ident.push('r');
                            saw_r = true;
                        }
                    }
                    if saw_r {
                        let mut clone = cur.chars.clone();
                        let mut h = 0usize;
                        while clone.peek() == Some(&'#') {
                            clone.next();
                            h += 1;
                        }
                        if clone.peek() == Some(&'"') {
                            for _ in 0..h {
                                cur.bump();
                            }
                            cur.bump(); // opening quote
                            skip_raw_string_body(&mut cur, h);
                            continue;
                        }
                    }
                }
                if ident == "b" && cur.peek() == Some('"') {
                    cur.bump();
                    skip_string_body(&mut cur);
                    continue;
                }
                if ident == "b" && cur.peek() == Some('\'') {
                    cur.bump();
                    skip_char_body(&mut cur);
                    continue;
                }
                while let Some(c) = cur.peek() {
                    if is_ident_continue(c) {
                        ident.push(c);
                        cur.bump();
                    } else {
                        break;
                    }
                }
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text: ident,
                    line,
                    col,
                });
            }
            '\'' => {
                cur.bump();
                // Lifetime (`'a`) vs char literal (`'a'`): a lifetime is a
                // quote followed by an identifier NOT closed by another
                // quote; `'\...'` is always a char literal.
                let mut clone = cur.chars.clone();
                let first = clone.peek().copied();
                let is_lifetime = match first {
                    Some(f) if is_ident_start(f) => {
                        let mut n = 0usize;
                        while let Some(&c) = clone.peek() {
                            if is_ident_continue(c) {
                                clone.next();
                                n += 1;
                            } else {
                                break;
                            }
                        }
                        // `'a'` is a char; `'a` / `'static` are lifetimes.
                        !(n == 1 && clone.peek() == Some(&'\''))
                    }
                    _ => false,
                };
                if is_lifetime {
                    let mut text = String::from("'");
                    while let Some(c) = cur.peek() {
                        if is_ident_continue(c) {
                            text.push(c);
                            cur.bump();
                        } else {
                            break;
                        }
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text,
                        line,
                        col,
                    });
                } else {
                    skip_char_body(&mut cur);
                }
            }
            c if is_ident_start(c) => {
                let mut text = String::new();
                while let Some(c) = cur.peek() {
                    if is_ident_continue(c) {
                        text.push(c);
                        cur.bump();
                    } else {
                        break;
                    }
                }
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text,
                    line,
                    col,
                });
            }
            c if c.is_ascii_digit() => {
                let mut text = String::new();
                while let Some(c) = cur.peek() {
                    // One blob: digits, `_`, type suffixes, hex chars, `.`
                    // in floats. `0..10` range edges are handled by not
                    // consuming a second consecutive dot.
                    if c.is_alphanumeric() || c == '_' {
                        text.push(c);
                        cur.bump();
                    } else if c == '.' {
                        let mut clone = cur.chars.clone();
                        clone.next();
                        if clone.peek() == Some(&'.') {
                            break; // `..` range, not a float dot
                        }
                        match clone.peek() {
                            Some(&d) if d.is_ascii_digit() => {
                                text.push('.');
                                cur.bump();
                            }
                            _ => break,
                        }
                    } else {
                        break;
                    }
                }
                out.toks.push(Tok {
                    kind: TokKind::Num,
                    text,
                    line,
                    col,
                });
            }
            other => {
                cur.bump();
                out.toks.push(Tok {
                    kind: TokKind::Punct,
                    text: other.to_string(),
                    line,
                    col,
                });
            }
        }
    }
    out
}

fn skip_string_body(cur: &mut Cursor<'_>) {
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump();
            }
            '"' => break,
            _ => {}
        }
    }
}

fn skip_raw_string_body(cur: &mut Cursor<'_>, hashes: usize) {
    while let Some(c) = cur.bump() {
        if c == '"' {
            let mut clone = cur.chars.clone();
            let mut h = 0usize;
            while h < hashes && clone.peek() == Some(&'#') {
                clone.next();
                h += 1;
            }
            if h == hashes {
                for _ in 0..hashes {
                    cur.bump();
                }
                break;
            }
        }
    }
}

fn skip_char_body(cur: &mut Cursor<'_>) {
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump();
            }
            '\'' => break,
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_are_stripped() {
        let src = r##"
            // HashMap in a comment
            /* Instant in /* a nested */ block */
            let s = "thread_rng inside a string";
            let r = r#"raw HashMap"# ;
            let c = 'x';
            let b = b"bytes SystemTime";
            use std::collections::BTreeMap;
        "##;
        let ids = idents(src);
        assert!(!ids.iter().any(|i| i == "HashMap"));
        assert!(!ids.iter().any(|i| i == "Instant"));
        assert!(!ids.iter().any(|i| i == "thread_rng"));
        assert!(!ids.iter().any(|i| i == "SystemTime"));
        assert!(ids.iter().any(|i| i == "BTreeMap"));
        let lx = lex(src);
        assert_eq!(lx.comments.len(), 2);
        assert!(lx.comments[0].text.contains("HashMap"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let ids = idents("fn f<'a>(x: &'a str) { let c = 'q'; let l: &'static u8; }");
        assert!(!ids.iter().any(|i| i == "q"));
        let lx = lex("&'static str");
        assert!(lx
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "'static"));
    }

    #[test]
    fn positions_are_one_based() {
        let lx = lex("ab\n  cd");
        assert_eq!((lx.toks[0].line, lx.toks[0].col), (1, 1));
        assert_eq!((lx.toks[1].line, lx.toks[1].col), (2, 3));
    }

    #[test]
    fn numbers_lex_as_single_blobs() {
        let lx = lex("let x = 1_000u64; let y = 1.5e9; for i in 0..10 {}");
        let nums: Vec<_> = lx
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(nums, vec!["1_000u64", "1.5e9", "0", "10"]);
    }

    #[test]
    fn byte_char_and_raw_byte_strings() {
        let ids = idents(r##"let a = b'x'; let s = br#"HashMap"#; let t = rand;"##);
        assert!(!ids.iter().any(|i| i == "HashMap"));
        assert!(ids.iter().any(|i| i == "rand"));
    }
}
