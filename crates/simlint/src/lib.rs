//! `simlint` — workspace static analysis for determinism invariants.
//!
//! Every figure this repro produces depends on bit-identical deterministic
//! replay. The runtime audit (`netsim::audit`) and the differential
//! scheduler tests catch violations *dynamically*; simlint refuses them at
//! build time. It walks every first-party Rust source in the workspace
//! with a small hand-rolled lexer (no `syn` — the workspace builds
//! offline) and applies the eight rules documented in [`rules`].
//!
//! Used three ways:
//!
//! * `cargo run -p simlint` — the CI gate (`scripts/ci.sh` leg 1);
//! * `tests/lint_clean.rs` — runs [`lint_workspace`] inside `cargo test`
//!   so a regression fails the test suite, not just the CI script;
//! * `cargo run -p simlint -- --fix-allowlist` — writes a baseline file so
//!   the pass can land green on a dirty tree and ratchet down.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod rules;

pub use rules::{Finding, Rule};

use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};

/// Lint one source file. `path` is the workspace-relative path (forward
/// slashes) and selects which rules apply; `src` is the file contents.
pub fn lint_source(path: &str, src: &str) -> Vec<Finding> {
    rules::check(path, &lexer::lex(src))
}

/// A ratchet baseline: findings recorded by `--fix-allowlist` that are
/// tolerated (reported but non-fatal) until fixed and re-ratcheted.
#[derive(Debug, Default)]
pub struct Baseline {
    entries: BTreeSet<(String, String, u32)>, // (rule, path, line)
}

impl Baseline {
    /// Parse the `rule\tpath\tline` format written by [`Baseline::format`].
    /// Blank lines and `#` comments are skipped.
    pub fn parse(text: &str) -> Baseline {
        let mut entries = BTreeSet::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split('\t');
            if let (Some(rule), Some(path), Some(ln)) = (parts.next(), parts.next(), parts.next())
            {
                if let Ok(ln) = ln.parse::<u32>() {
                    entries.insert((rule.to_string(), path.to_string(), ln));
                }
            }
        }
        Baseline { entries }
    }

    /// Whether a finding is covered by the baseline.
    pub fn covers(&self, path: &str, f: &Finding) -> bool {
        self.entries
            .contains(&(f.rule.name().to_string(), path.to_string(), f.line))
    }

    /// Number of baseline entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the baseline has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serialize findings into baseline format (sorted, stable).
    pub fn format(findings: &[(String, Finding)]) -> String {
        let mut lines: BTreeSet<String> = BTreeSet::new();
        for (path, f) in findings {
            lines.insert(format!("{}\t{}\t{}", f.rule.name(), path, f.line));
        }
        let mut out = String::from(
            "# simlint baseline: tolerated findings (rule<TAB>path<TAB>line).\n\
             # Regenerate with `cargo run -p simlint -- --fix-allowlist`; the goal\n\
             # is to ratchet this file down to empty.\n",
        );
        for l in lines {
            out.push_str(&l);
            out.push('\n');
        }
        out
    }
}

/// One diagnosed file plus everything found in it.
#[derive(Debug)]
pub struct Report {
    /// `(workspace-relative path, finding)` for every finding, allowed or
    /// not, in deterministic path order.
    pub findings: Vec<(String, Finding)>,
    /// Files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Findings neither allow-annotated nor baselined: these fail the run.
    pub fn unallowed<'a>(&'a self, baseline: &'a Baseline) -> impl Iterator<Item = &'a (String, Finding)> {
        self.findings
            .iter()
            .filter(move |(p, f)| f.allowed.is_none() && !baseline.covers(p, f))
    }

    /// Count of findings silenced by in-source allow annotations.
    pub fn allowed_count(&self) -> usize {
        self.findings.iter().filter(|(_, f)| f.allowed.is_some()).count()
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (path, finding) in &self.findings {
            writeln!(
                f,
                "{}:{}:{}: [{}] {}",
                path,
                finding.line,
                finding.col,
                finding.rule.name(),
                finding.message
            )?;
        }
        Ok(())
    }
}

/// Directories under the workspace root that are scanned for `.rs` files.
const SCAN_ROOTS: [&str; 3] = ["crates", "tests", "examples"];

/// Path fragments that are never scanned: third-party code, build output,
/// and simlint's own rule-violation fixtures.
fn skip(path: &Path) -> bool {
    let s = path.to_string_lossy().replace('\\', "/");
    s.contains("/target/")
        || s.contains("vendor/")
        || s.contains("crates/simlint/tests/fixtures")
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    // Sort directory entries so diagnostics and baselines are stable across
    // filesystems (read_dir order is arbitrary).
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if skip(&path) {
            continue;
        }
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Find the workspace root by walking up from `start` until a `Cargo.toml`
/// containing `[workspace]` appears.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Lint every first-party source file under `root`.
pub fn lint_workspace(root: &Path) -> std::io::Result<Report> {
    let mut files = Vec::new();
    for sub in SCAN_ROOTS {
        let dir = root.join(sub);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    let mut findings = Vec::new();
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(file)?;
        for f in lint_source(&rel, &src) {
            findings.push((rel.clone(), f));
        }
    }
    Ok(Report {
        findings,
        files_scanned: files.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_round_trip() {
        let f = Finding {
            rule: Rule::NondeterministicMap,
            line: 12,
            col: 5,
            message: "m".into(),
            allowed: None,
        };
        let findings = vec![("crates/netsim/src/sim.rs".to_string(), f.clone())];
        let text = Baseline::format(&findings);
        let b = Baseline::parse(&text);
        assert_eq!(b.len(), 1);
        assert!(b.covers("crates/netsim/src/sim.rs", &f));
        let other = Finding { line: 13, ..f };
        assert!(!b.covers("crates/netsim/src/sim.rs", &other));
    }

    #[test]
    fn baseline_ignores_comments_and_junk() {
        let b = Baseline::parse("# comment\n\nnot-a-valid-line\nwall-clock\tsrc/x.rs\tnope\n");
        assert!(b.is_empty());
    }

    #[test]
    fn lint_source_end_to_end() {
        let src = "use std::collections::HashMap;\n";
        let fs = lint_source("crates/netsim/src/x.rs", src);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].rule, Rule::NondeterministicMap);
        // Same source outside a simulation-state crate: clean.
        assert!(lint_source("crates/experiments/src/x.rs", src).is_empty());
    }
}
