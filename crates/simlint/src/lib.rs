//! `simlint` — workspace static analysis for determinism invariants.
//!
//! Every figure this repro produces depends on bit-identical deterministic
//! replay. The runtime audit (`netsim::audit`) and the differential
//! scheduler tests catch violations *dynamically*; simlint refuses them at
//! build time. Two analysis layers, both dependency-free (no `syn` — the
//! workspace builds offline):
//!
//! * **token rules** ([`rules`] R1–R8) over the hand-rolled [`lexer`];
//! * **semantic passes** (R9–R11) over an item-level [`parse`] of every
//!   file plus the workspace-wide crate/module graphs in [`index`], which
//!   certify the PDES-sharding preconditions: one-way layering, no
//!   interior-mutability side channels, no silently-ignored event
//!   variants.
//!
//! Used three ways:
//!
//! * `cargo run -p simlint` — the CI gate (`scripts/ci.sh` leg 1), with
//!   `--json FILE` for the machine-readable artifact;
//! * `tests/lint_clean.rs` — runs [`lint_workspace`] inside `cargo test`
//!   so a regression fails the test suite, not just the CI script;
//! * `cargo run -p simlint -- --fix-allowlist` — writes a baseline file so
//!   the pass can land green on a dirty tree and ratchet down.

#![forbid(unsafe_code)]

pub mod index;
pub mod lexer;
pub mod parse;
pub mod rules;

pub use index::Workspace;
pub use rules::{Finding, Rule};

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};

/// Lint one source file. `path` is the workspace-relative path (forward
/// slashes) and selects which rules apply; `src` is the file contents.
/// Covers every single-file rule (R1–R8, R10, R11); the cross-file half
/// of R9 needs a [`Workspace`].
pub fn lint_source(path: &str, src: &str) -> Vec<Finding> {
    rules::check(path, &lexer::lex(src))
}

/// A ratchet baseline: findings recorded by `--fix-allowlist` that are
/// tolerated (reported but non-fatal) until fixed and re-ratcheted.
#[derive(Debug, Default)]
pub struct Baseline {
    entries: BTreeSet<(String, String, u32)>, // (rule, path, line)
}

impl Baseline {
    /// Parse the `rule\tpath\tline` format written by [`Baseline::format`].
    /// Blank lines and `#` comments are skipped.
    pub fn parse(text: &str) -> Baseline {
        let mut entries = BTreeSet::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split('\t');
            if let (Some(rule), Some(path), Some(ln)) = (parts.next(), parts.next(), parts.next())
            {
                if let Ok(ln) = ln.parse::<u32>() {
                    entries.insert((rule.to_string(), path.to_string(), ln));
                }
            }
        }
        Baseline { entries }
    }

    /// Whether a finding is covered by the baseline.
    pub fn covers(&self, path: &str, f: &Finding) -> bool {
        self.entries
            .contains(&(f.rule.name().to_string(), path.to_string(), f.line))
    }

    /// Number of baseline entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the baseline has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serialize findings into baseline format (sorted, stable).
    pub fn format(findings: &[(String, Finding)]) -> String {
        let mut lines: BTreeSet<String> = BTreeSet::new();
        for (path, f) in findings {
            lines.insert(format!("{}\t{}\t{}", f.rule.name(), path, f.line));
        }
        let mut out = String::from(
            "# simlint baseline: tolerated findings (rule<TAB>path<TAB>line).\n\
             # Regenerate with `cargo run -p simlint -- --fix-allowlist`; the goal\n\
             # is to ratchet this file down to empty.\n",
        );
        for l in lines {
            out.push_str(&l);
            out.push('\n');
        }
        out
    }
}

/// One diagnosed file plus everything found in it.
#[derive(Debug)]
pub struct Report {
    /// `(workspace-relative path, finding)` for every finding, allowed or
    /// not, globally sorted by `(path, line, col, rule)`.
    pub findings: Vec<(String, Finding)>,
    /// Files scanned.
    pub files_scanned: usize,
    /// First-party crates discovered from manifests (0 for single-file
    /// lints: the crate graph needs a [`Workspace`]).
    pub crates_indexed: usize,
    /// File modules indexed across the module-cycle scope.
    pub modules_indexed: usize,
    /// Match expressions indexed across all parsed files.
    pub matches_indexed: usize,
}

impl Report {
    /// Findings neither allow-annotated nor baselined: these fail the run.
    pub fn unallowed<'a>(&'a self, baseline: &'a Baseline) -> impl Iterator<Item = &'a (String, Finding)> {
        self.findings
            .iter()
            .filter(move |(p, f)| f.allowed.is_none() && !baseline.covers(p, f))
    }

    /// Count of findings silenced by in-source allow annotations.
    pub fn allowed_count(&self) -> usize {
        self.findings.iter().filter(|(_, f)| f.allowed.is_some()).count()
    }

    /// Machine-readable report: one JSON object with the findings in the
    /// same deterministic order as the text output, plus summary counts.
    /// Hand-emitted (no serde) and covered by an ordering regression test.
    pub fn to_json(&self, baseline: &Baseline) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"crates_indexed\": {},\n", self.crates_indexed));
        out.push_str(&format!("  \"modules_indexed\": {},\n", self.modules_indexed));
        out.push_str(&format!("  \"matches_indexed\": {},\n", self.matches_indexed));
        out.push_str("  \"findings\": [");
        let mut fatal = 0usize;
        let mut baselined = 0usize;
        for (i, (path, f)) in self.findings.iter().enumerate() {
            let covered = baseline.covers(path, f);
            if covered {
                baselined += 1;
            } else if f.allowed.is_none() {
                fatal += 1;
            }
            let allowed = match &f.allowed {
                Some(reason) => format!("\"{}\"", json_escape(reason)),
                None => "null".into(),
            };
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{\"path\": \"{}\", \"line\": {}, \"col\": {}, \"rule\": \"{}\", \
                 \"message\": \"{}\", \"allowed\": {}, \"baselined\": {}}}",
                json_escape(path),
                f.line,
                f.col,
                f.rule.name(),
                json_escape(&f.message),
                allowed,
                covered
            ));
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        out.push_str(&format!(
            "  \"summary\": {{\"total\": {}, \"fatal\": {}, \"allowed\": {}, \"baselined\": {}}}\n",
            self.findings.len(),
            fatal,
            self.allowed_count(),
            baselined
        ));
        out.push_str("}\n");
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (path, finding) in &self.findings {
            writeln!(
                f,
                "{}:{}:{}: [{}] {}",
                path,
                finding.line,
                finding.col,
                finding.rule.name(),
                finding.message
            )?;
        }
        Ok(())
    }
}

/// Directories under the workspace root that are scanned for `.rs` files.
const SCAN_ROOTS: [&str; 3] = ["crates", "tests", "examples"];

/// Path fragments that are never scanned: third-party code, build output,
/// and simlint's own rule-violation fixtures.
fn skip(path: &Path) -> bool {
    let s = path.to_string_lossy().replace('\\', "/");
    s.contains("/target/")
        || s.contains("vendor/")
        || s.contains("crates/simlint/tests/fixtures")
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    // Sort directory entries so diagnostics and baselines are stable across
    // filesystems (read_dir order is arbitrary).
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if skip(&path) {
            continue;
        }
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs")
            || path.file_name().is_some_and(|n| n == "Cargo.toml")
        {
            out.push(path);
        }
    }
    Ok(())
}

/// Find the workspace root by walking up from `start` until a `Cargo.toml`
/// containing `[workspace]` appears.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Lint every first-party source file under `root`: all single-file rules
/// plus the workspace-wide crate/module graph passes.
pub fn lint_workspace(root: &Path) -> std::io::Result<Report> {
    let mut files = Vec::new();
    for sub in SCAN_ROOTS {
        let dir = root.join(sub);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    let mut ws = Workspace::new();
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        ws.add(&rel, &std::fs::read_to_string(file)?);
    }
    Ok(ws.lint())
}

/// The full workspace pass over in-memory sources and manifests: per-file
/// rules (allow annotations deferred), then the cross-file R9 passes, then
/// allows applied to everything so a `simlint::allow(layering, ...)` on a
/// flagged `use` works exactly like the token rules.
pub(crate) fn lint_workspace_data(
    sources: &BTreeMap<String, String>,
    manifests: &BTreeMap<String, String>,
) -> Report {
    let mut parsed: BTreeMap<String, parse::ParsedFile> = BTreeMap::new();
    let mut allows: BTreeMap<String, Vec<rules::Allow>> = BTreeMap::new();
    let mut findings: Vec<(String, Finding)> = Vec::new();
    let mut matches_indexed = 0usize;
    for (path, src) in sources {
        let lexed = lexer::lex(src);
        let pf = parse::parse(&lexed);
        let (file_allows, mut fs) = rules::collect_allows(&lexed);
        fs.retain(|_| Rule::AllowWithoutReason.applies_to(path));
        let regions = rules::effective_regions(path, &pf);
        fs.extend(rules::token_findings(path, &lexed, &regions));
        fs.extend(rules::file_semantic_findings(path, &pf, &regions));
        findings.extend(fs.into_iter().map(|f| (path.clone(), f)));
        matches_indexed += pf.matches.len();
        parsed.insert(path.clone(), pf);
        allows.insert(path.clone(), file_allows);
    }

    let crates = index::discover_crates(manifests);
    let crate_of = index::crate_of_files(manifests, &crates, sources);
    findings.extend(index::crate_edge_findings(&crates, &crate_of, &parsed));
    let (module_findings, modules_indexed) = index::module_cycle_findings(&crates, &parsed);
    findings.extend(module_findings);

    // Apply allow annotations per file (manifest findings have no comment
    // tokens, so layering violations in Cargo.toml can only be fixed, not
    // annotated — deliberate).
    let mut by_path: BTreeMap<&str, Vec<&mut Finding>> = BTreeMap::new();
    for (path, f) in &mut findings {
        by_path.entry(path.as_str()).or_default().push(f);
    }
    for (path, fs) in by_path {
        if let Some(file_allows) = allows.get(path) {
            for f in fs {
                if f.allowed.is_none() {
                    if let Some(a) = file_allows
                        .iter()
                        .find(|a| a.rule == f.rule && (a.line == f.line || a.line + 1 == f.line))
                    {
                        f.allowed = Some(a.reason.clone());
                    }
                }
            }
        }
    }

    findings.sort_by(|(pa, fa), (pb, fb)| {
        (pa, fa.line, fa.col, fa.rule).cmp(&(pb, fb.line, fb.col, fb.rule))
    });
    Report {
        findings,
        files_scanned: sources.len(),
        crates_indexed: crates.len(),
        modules_indexed,
        matches_indexed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_round_trip() {
        let f = Finding {
            rule: Rule::NondeterministicMap,
            line: 12,
            col: 5,
            message: "m".into(),
            allowed: None,
        };
        let findings = vec![("crates/netsim/src/sim.rs".to_string(), f.clone())];
        let text = Baseline::format(&findings);
        let b = Baseline::parse(&text);
        assert_eq!(b.len(), 1);
        assert!(b.covers("crates/netsim/src/sim.rs", &f));
        let other = Finding { line: 13, ..f };
        assert!(!b.covers("crates/netsim/src/sim.rs", &other));
    }

    #[test]
    fn baseline_ignores_comments_and_junk() {
        let b = Baseline::parse("# comment\n\nnot-a-valid-line\nwall-clock\tsrc/x.rs\tnope\n");
        assert!(b.is_empty());
    }

    #[test]
    fn lint_source_end_to_end() {
        let src = "use std::collections::HashMap;\n";
        let fs = lint_source("crates/netsim/src/x.rs", src);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].rule, Rule::NondeterministicMap);
        // Same source outside a simulation-state crate: clean.
        assert!(lint_source("crates/experiments/src/x.rs", src).is_empty());
    }
}
