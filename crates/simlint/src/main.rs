//! CLI for the simlint static-analysis pass.
//!
//! ```text
//! cargo run -p simlint                       # lint the workspace, exit 1 on findings
//! cargo run -p simlint -- --fix-allowlist    # write simlint.baseline and exit 0
//! cargo run -p simlint -- --root DIR         # lint a different workspace
//! ```
//!
//! Exit codes: 0 clean (or everything baselined/allowed), 1 unallowed
//! findings, 2 usage or I/O error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use simlint::{find_workspace_root, lint_workspace, Baseline};

const BASELINE_FILE: &str = "simlint.baseline";

struct Args {
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    fix_allowlist: bool,
    quiet: bool,
}

fn usage() -> &'static str {
    "usage: simlint [--root DIR] [--baseline FILE] [--fix-allowlist] [--quiet]\n\
     \n\
     Walks the workspace and enforces the determinism/time-unit/RNG rule set\n\
     (see crates/simlint/src/rules.rs). Exit 1 on any finding that is neither\n\
     annotated with // simlint::allow(rule, reason) nor listed in the baseline.\n\
     --fix-allowlist rewrites the baseline to tolerate the current findings."
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        baseline: None,
        fix_allowlist: false,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                args.root = Some(PathBuf::from(
                    it.next().ok_or("--root requires a directory")?,
                ))
            }
            "--baseline" => {
                args.baseline = Some(PathBuf::from(
                    it.next().ok_or("--baseline requires a file path")?,
                ))
            }
            "--fix-allowlist" => args.fix_allowlist = true,
            "--quiet" | "-q" => args.quiet = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            if !e.is_empty() {
                eprintln!("simlint: {e}");
            }
            eprintln!("{}", usage());
            return ExitCode::from(2);
        }
    };

    let root = match args.root.clone().or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("simlint: could not locate a workspace root (try --root)");
            return ExitCode::from(2);
        }
    };

    let report = match lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("simlint: {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    let baseline_path = args.baseline.unwrap_or_else(|| root.join(BASELINE_FILE));

    if args.fix_allowlist {
        let unallowed: Vec<_> = report
            .unallowed(&Baseline::default())
            .cloned()
            .collect();
        if unallowed.is_empty() {
            // A clean tree ratchets the baseline away entirely.
            if baseline_path.exists() {
                if let Err(e) = std::fs::remove_file(&baseline_path) {
                    eprintln!("simlint: removing {}: {e}", baseline_path.display());
                    return ExitCode::from(2);
                }
                println!("simlint: tree is clean; removed {}", baseline_path.display());
            } else {
                println!("simlint: tree is clean; no baseline needed");
            }
            return ExitCode::SUCCESS;
        }
        let text = Baseline::format(&unallowed);
        if let Err(e) = std::fs::write(&baseline_path, text) {
            eprintln!("simlint: writing {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "simlint: wrote {} entries to {}; ratchet this file down to empty",
            unallowed.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = if baseline_path.is_file() {
        match std::fs::read_to_string(&baseline_path) {
            Ok(t) => Baseline::parse(&t),
            Err(e) => {
                eprintln!("simlint: reading {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        }
    } else {
        Baseline::default()
    };

    let mut fatal = 0usize;
    let mut baselined = 0usize;
    for (path, f) in report.findings.iter() {
        if f.allowed.is_some() {
            continue;
        }
        if baseline.covers(path, f) {
            baselined += 1;
            continue;
        }
        fatal += 1;
        println!(
            "{}:{}:{}: [{}] {}",
            path,
            f.line,
            f.col,
            f.rule.name(),
            f.message
        );
    }
    if !args.quiet {
        eprintln!(
            "simlint: {} files, {} finding(s): {} fatal, {} baselined, {} allowed by annotation",
            report.files_scanned,
            report.findings.len(),
            fatal,
            baselined,
            report.allowed_count()
        );
    }
    if fatal > 0 {
        eprintln!(
            "simlint: FAILED — fix the sites above, annotate them with \
             // simlint::allow(rule, reason), or ratchet with --fix-allowlist"
        );
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
