//! CLI for the simlint static-analysis pass.
//!
//! ```text
//! cargo run -p simlint                       # lint the workspace, exit 1 on findings
//! cargo run -p simlint -- --fix-allowlist    # write simlint.baseline and exit 0
//! cargo run -p simlint -- --root DIR         # lint a different workspace
//! cargo run -p simlint -- --json FILE        # also write the JSON report to FILE
//! ```
//!
//! Exit codes: 0 clean (or everything baselined/allowed), 1 unallowed
//! findings or a stale baseline, 2 usage or I/O error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use simlint::{find_workspace_root, lint_workspace, Baseline};

const BASELINE_FILE: &str = "simlint.baseline";

struct Args {
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    json: Option<PathBuf>,
    fix_allowlist: bool,
    quiet: bool,
}

fn usage() -> &'static str {
    "usage: simlint [--root DIR] [--baseline FILE] [--json FILE] [--fix-allowlist] [--quiet]\n\
     \n\
     Walks the workspace and enforces the determinism/layering/shared-state\n\
     rule set (see crates/simlint/src/rules.rs). Exit 1 on any finding that is\n\
     neither annotated with // simlint::allow(rule, reason) nor listed in the\n\
     baseline, and on a stale baseline (file present but tree clean).\n\
     --fix-allowlist rewrites the baseline to tolerate the current findings;\n\
     --json also writes the machine-readable report to FILE."
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        baseline: None,
        json: None,
        fix_allowlist: false,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                args.root = Some(PathBuf::from(
                    it.next().ok_or("--root requires a directory")?,
                ))
            }
            "--baseline" => {
                args.baseline = Some(PathBuf::from(
                    it.next().ok_or("--baseline requires a file path")?,
                ))
            }
            "--json" => {
                args.json = Some(PathBuf::from(
                    it.next().ok_or("--json requires a file path")?,
                ))
            }
            "--fix-allowlist" => args.fix_allowlist = true,
            "--quiet" | "-q" => args.quiet = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            if !e.is_empty() {
                eprintln!("simlint: {e}");
            }
            eprintln!("{}", usage());
            return ExitCode::from(2);
        }
    };

    let root = match args.root.clone().or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("simlint: could not locate a workspace root (try --root)");
            return ExitCode::from(2);
        }
    };

    let report = match lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("simlint: {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    let baseline_path = args.baseline.unwrap_or_else(|| root.join(BASELINE_FILE));

    if args.fix_allowlist {
        let unallowed: Vec<_> = report
            .unallowed(&Baseline::default())
            .cloned()
            .collect();
        if unallowed.is_empty() {
            // A clean tree ratchets the baseline away entirely.
            if baseline_path.exists() {
                if let Err(e) = std::fs::remove_file(&baseline_path) {
                    eprintln!("simlint: removing {}: {e}", baseline_path.display());
                    return ExitCode::from(2);
                }
                println!("simlint: tree is clean; removed {}", baseline_path.display());
            } else {
                println!("simlint: tree is clean; no baseline needed");
            }
            return ExitCode::SUCCESS;
        }
        let text = Baseline::format(&unallowed);
        if let Err(e) = std::fs::write(&baseline_path, text) {
            eprintln!("simlint: writing {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "simlint: wrote {} entries to {}; ratchet this file down to empty",
            unallowed.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = if baseline_path.is_file() {
        match std::fs::read_to_string(&baseline_path) {
            Ok(t) => Baseline::parse(&t),
            Err(e) => {
                eprintln!("simlint: reading {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        }
    } else {
        Baseline::default()
    };

    // Stale-ratchet guard: a baseline that tolerates nothing left to
    // tolerate would silently mask the next regression (each entry pins a
    // rule+path+line, and lines drift). Clean trees must not carry one.
    if baseline_path.is_file() && report.unallowed(&Baseline::default()).count() == 0 {
        eprintln!(
            "simlint: STALE BASELINE — the workspace scan is clean, but {} still \
             exists and would mask the next regression at its recorded lines; \
             delete it (or run --fix-allowlist, which removes it when clean)",
            baseline_path.display()
        );
        return ExitCode::FAILURE;
    }

    if let Some(json_path) = &args.json {
        if let Some(dir) = json_path.parent() {
            if !dir.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(dir) {
                    eprintln!("simlint: creating {}: {e}", dir.display());
                    return ExitCode::from(2);
                }
            }
        }
        if let Err(e) = std::fs::write(json_path, report.to_json(&baseline)) {
            eprintln!("simlint: writing {}: {e}", json_path.display());
            return ExitCode::from(2);
        }
    }

    let mut fatal = 0usize;
    let mut baselined = 0usize;
    for (path, f) in report.findings.iter() {
        if f.allowed.is_some() {
            continue;
        }
        if baseline.covers(path, f) {
            baselined += 1;
            continue;
        }
        fatal += 1;
        println!(
            "{}:{}:{}: [{}] {}",
            path,
            f.line,
            f.col,
            f.rule.name(),
            f.message
        );
    }
    if !args.quiet {
        eprintln!(
            "simlint: {} files, {} crates, {} modules, {} matches; {} finding(s): \
             {} fatal, {} baselined, {} allowed by annotation",
            report.files_scanned,
            report.crates_indexed,
            report.modules_indexed,
            report.matches_indexed,
            report.findings.len(),
            fatal,
            baselined,
            report.allowed_count()
        );
    }
    if fatal > 0 {
        eprintln!(
            "simlint: FAILED — fix the sites above, annotate them with \
             // simlint::allow(rule, reason), or ratchet with --fix-allowlist"
        );
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
