//! Item-level parsing: the second analysis layer on top of [`crate::lexer`].
//!
//! The lexer gives a flat token stream; this module recovers just enough
//! *structure* for the semantic rule families (R9 layering, R10
//! shared-state, R11 event-exhaustiveness): module declarations, fully
//! expanded `use` trees (groups, globs, renames), item declarations
//! (`fn`/`struct`/`enum`/`impl`), `match` expressions with per-arm
//! patterns, and every `Head::...` path reference. It is still not a Rust
//! parser — no expressions, no types, no precedence — because the rules
//! only need names, edges, and arm shapes. `cfg`-gated items are indexed
//! unconditionally: the lint must see every configuration at once.
//!
//! Everything here is resilient by construction: on malformed input the
//! scans simply record less, they never error — the compiler is the
//! authority on well-formedness, simlint only looks for hazards.

use crate::lexer::{Lexed, Tok, TokKind};

/// One expanded `use` leaf: `use a::{b, c::*};` yields `[a, b]` and
/// `[a, c]` (the latter with [`UseDecl::glob`] set).
#[derive(Clone, Debug)]
pub struct UseDecl {
    /// Path segments, with leading `crate`/`super`/`self` kept verbatim.
    pub segs: Vec<String>,
    /// True for a `::*` leaf.
    pub glob: bool,
    /// 1-based line of the `use` keyword.
    pub line: u32,
    /// Whether the declaration sits inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

/// A `mod` declaration, file-backed (`mod x;`) or inline (`mod x { .. }`).
#[derive(Clone, Debug)]
pub struct ModDecl {
    /// Module name.
    pub name: String,
    /// 1-based line.
    pub line: u32,
    /// True for `mod x { .. }`, false for `mod x;`.
    pub inline: bool,
    /// Names of the enclosing inline modules, outermost first.
    pub parents: Vec<String>,
}

/// A named item (`fn`/`struct`) — name and position only.
#[derive(Clone, Debug)]
pub struct ItemDecl {
    /// Item name.
    pub name: String,
    /// 1-based line.
    pub line: u32,
}

/// An `enum` declaration with its variant names.
#[derive(Clone, Debug)]
pub struct EnumDecl {
    /// Enum name.
    pub name: String,
    /// 1-based line.
    pub line: u32,
    /// Variant names in declaration order.
    pub variants: Vec<String>,
}

/// An `impl` block header: `impl Type` or `impl Trait for Type`.
#[derive(Clone, Debug)]
pub struct ImplDecl {
    /// The implementing type's leading identifier.
    pub type_name: String,
    /// The trait's trailing identifier for `impl Trait for Type`.
    pub trait_name: Option<String>,
    /// 1-based line.
    pub line: u32,
}

/// One arm of a `match` expression.
#[derive(Clone, Debug)]
pub struct MatchArm {
    /// 1-based line of the arm's first pattern token.
    pub line: u32,
    /// True when the pattern is exactly `_` (no guard): the arm swallows
    /// every variant unconditionally.
    pub wildcard: bool,
    /// True when the arm carries an `if` guard.
    pub guarded: bool,
    /// For each `A::B` path in the pattern, the head identifier `A`
    /// (deduplicated, in first-seen order). `Event::Arrive { .. }`
    /// contributes `Event`.
    pub enum_heads: Vec<String>,
}

/// A `match` expression with its parsed arms.
#[derive(Clone, Debug)]
pub struct MatchExpr {
    /// 1-based line of the `match` keyword.
    pub line: u32,
    /// Whether the expression sits inside a `#[cfg(test)]` region.
    pub in_test: bool,
    /// The arms, in source order.
    pub arms: Vec<MatchArm>,
}

/// A `Head::second::...` path reference anywhere in code (use lines
/// included). The head is never preceded by `::` or `.`, so turbofish
/// method calls and nested path segments don't produce spurious heads.
#[derive(Clone, Debug)]
pub struct PathRef {
    /// Leading identifier (`crate`, `super`, a crate name, a module, ...).
    pub head: String,
    /// The segment after the first `::`, when it is an identifier.
    pub second: Option<String>,
    /// 1-based line.
    pub line: u32,
    /// Whether the reference sits inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

/// Everything the item-level parser recovers from one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// `mod` declarations.
    pub mods: Vec<ModDecl>,
    /// Expanded `use` leaves.
    pub uses: Vec<UseDecl>,
    /// `fn` items (all nesting levels, trait/impl fns included).
    pub fns: Vec<ItemDecl>,
    /// `struct` items.
    pub structs: Vec<ItemDecl>,
    /// `enum` items with variants.
    pub enums: Vec<EnumDecl>,
    /// `impl` block headers.
    pub impls: Vec<ImplDecl>,
    /// `match` expressions with parsed arms.
    pub matches: Vec<MatchExpr>,
    /// All `Head::...` path references.
    pub path_refs: Vec<PathRef>,
    /// Line ranges (inclusive) of `#[cfg(test)]` modules / `#[test]` fns.
    pub test_regions: Vec<(u32, u32)>,
}

/// Line ranges (inclusive) of `#[cfg(test)]` modules and `#[test]`
/// functions. Shared by the token rules (R5/R7/R8) and the semantic
/// passes.
pub fn test_regions(toks: &[Tok]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let t = |i: usize| -> &str { &toks[i].text };
    let mut i = 0usize;
    while i < toks.len() {
        let is_cfg_test = i + 4 < toks.len()
            && t(i) == "#"
            && t(i + 1) == "["
            && t(i + 2) == "cfg"
            && t(i + 3) == "("
            && t(i + 4) == "test";
        let is_test_attr = i + 3 < toks.len()
            && t(i) == "#"
            && t(i + 1) == "["
            && t(i + 2) == "test"
            && t(i + 3) == "]";
        if is_cfg_test || is_test_attr {
            // The region is the brace-block of the item the attribute
            // decorates: skip to the first `{` after the attribute, then
            // find its matching `}`.
            let mut j = i + 3;
            while j < toks.len() && t(j) != "{" {
                j += 1;
            }
            if j < toks.len() {
                let start = toks[i].line;
                let mut depth = 1i32;
                let mut k = j + 1;
                while k < toks.len() && depth > 0 {
                    match t(k) {
                        "{" => depth += 1,
                        "}" => depth -= 1,
                        _ => {}
                    }
                    k += 1;
                }
                let end = if k > 0 && k <= toks.len() {
                    toks[k - 1].line
                } else {
                    u32::MAX
                };
                regions.push((start, end));
                i = j + 1;
                continue;
            }
        }
        i += 1;
    }
    regions
}

/// Whether `line` falls inside any of the given test regions.
pub fn in_test_region(regions: &[(u32, u32)], line: u32) -> bool {
    regions.iter().any(|&(a, b)| line >= a && line <= b)
}

/// Parse one lexed file into its item-level structure.
pub fn parse(lexed: &Lexed) -> ParsedFile {
    let toks = &lexed.toks;
    let regions = test_regions(toks);
    let mut pf = ParsedFile::default();
    let t = |i: usize| -> &str { &toks[i].text };

    // Inline-module nesting: (name, brace depth at which the body opened).
    let mut mod_stack: Vec<(String, i32)> = Vec::new();
    let mut depth = 0i32;
    let mut i = 0usize;
    while i < toks.len() {
        let tok = &toks[i];
        match tok.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                while mod_stack.last().is_some_and(|&(_, d)| d > depth) {
                    mod_stack.pop();
                }
            }
            _ => {}
        }
        if tok.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let in_test = in_test_region(&regions, tok.line);
        match tok.text.as_str() {
            "use" => {
                // `use` is also the closing keyword of nothing else; paths
                // inside the tree are recorded by the path_refs scan too,
                // but only the tree expansion sees group leaves.
                let mut segs = Vec::new();
                parse_use_tree(toks, i + 1, &mut segs, &mut pf.uses, tok.line, in_test);
            }
            "mod" if i + 1 < toks.len() && toks[i + 1].kind == TokKind::Ident => {
                let name = t(i + 1).to_string();
                // Distinguish `mod x;` / `mod x { .. }`; anything else
                // (e.g. the path segment in `mod` attrs) is skipped.
                let mut j = i + 2;
                while j < toks.len() && t(j) != ";" && t(j) != "{" {
                    j += 1;
                }
                if j < toks.len() {
                    let inline = t(j) == "{";
                    pf.mods.push(ModDecl {
                        name: name.clone(),
                        line: tok.line,
                        inline,
                        parents: mod_stack.iter().map(|(n, _)| n.clone()).collect(),
                    });
                    if inline {
                        // The `{` itself is processed on a later loop turn;
                        // record the depth it will open at.
                        mod_stack.push((name, depth + 1));
                    }
                }
            }
            "fn" if i + 1 < toks.len() && toks[i + 1].kind == TokKind::Ident => {
                pf.fns.push(ItemDecl {
                    name: t(i + 1).to_string(),
                    line: tok.line,
                });
            }
            "struct" if i + 1 < toks.len() && toks[i + 1].kind == TokKind::Ident => {
                pf.structs.push(ItemDecl {
                    name: t(i + 1).to_string(),
                    line: tok.line,
                });
            }
            "enum" if i + 1 < toks.len() && toks[i + 1].kind == TokKind::Ident => {
                pf.enums.push(parse_enum(toks, i));
            }
            "impl" => {
                if let Some(decl) = parse_impl_header(toks, i) {
                    pf.impls.push(decl);
                }
            }
            "match" => {
                if let Some(m) = parse_match(toks, i, in_test) {
                    pf.matches.push(m);
                }
            }
            _ => {}
        }
        // Path-reference scan: `Head::...` where Head is not itself a
        // path segment (`a::Head::`) or a method turbofish (`.head::<`).
        if i + 2 < toks.len()
            && t(i + 1) == ":"
            && t(i + 2) == ":"
            && (i == 0 || (t(i - 1) != ":" && t(i - 1) != "."))
        {
            let second = if i + 3 < toks.len() && toks[i + 3].kind == TokKind::Ident {
                Some(t(i + 3).to_string())
            } else {
                None
            };
            pf.path_refs.push(PathRef {
                head: tok.text.clone(),
                second,
                line: tok.line,
                in_test,
            });
        }
        i += 1;
    }
    pf.test_regions = regions;
    pf
}

/// Recursively expand a `use` tree starting at token `i` (just past `use`
/// or just past a group comma), appending leaves to `out`. Returns the
/// index one past the subtree.
fn parse_use_tree(
    toks: &[Tok],
    mut i: usize,
    prefix: &mut Vec<String>,
    out: &mut Vec<UseDecl>,
    line: u32,
    in_test: bool,
) -> usize {
    let t = |i: usize| -> &str { &toks[i].text };
    let base_len = prefix.len();
    // Set once a glob or group already emitted this subtree's leaves, so
    // the terminator doesn't emit a duplicate plain leaf.
    let mut emitted = false;
    while i < toks.len() {
        match toks[i].kind {
            TokKind::Ident => {
                if t(i) == "as" {
                    // Rename: consume the alias; the leaf keeps its path.
                    i += 1;
                    if i < toks.len() && toks[i].kind == TokKind::Ident {
                        i += 1;
                    }
                    continue;
                }
                prefix.push(t(i).to_string());
                i += 1;
            }
            TokKind::Punct => match t(i) {
                ":" => {
                    // `::` — two punct tokens; skip both.
                    i += 1;
                    if i < toks.len() && t(i) == ":" {
                        i += 1;
                    }
                }
                "*" => {
                    out.push(UseDecl {
                        segs: prefix.clone(),
                        glob: true,
                        line,
                        in_test,
                    });
                    emitted = true;
                    i += 1;
                }
                "{" => {
                    i += 1;
                    // Comma-separated subtrees until the matching `}`.
                    loop {
                        let before = prefix.len();
                        i = parse_use_tree(toks, i, prefix, out, line, in_test);
                        prefix.truncate(before);
                        if i >= toks.len() {
                            return i;
                        }
                        match t(i) {
                            "," => i += 1,
                            "}" => {
                                i += 1;
                                break;
                            }
                            // `;` inside a group is malformed; bail.
                            _ => return i,
                        }
                    }
                    // A group always terminates its branch of the tree.
                    prefix.truncate(base_len);
                    return i;
                }
                "," | "}" | ";" => {
                    // End of this subtree: emit the accumulated path as a
                    // plain leaf if this branch added segments and nothing
                    // (glob) emitted for it yet. An empty branch (e.g. a
                    // trailing comma before `}`) emits nothing.
                    if !emitted && prefix.len() > base_len {
                        out.push(UseDecl {
                            segs: prefix.clone(),
                            glob: false,
                            line,
                            in_test,
                        });
                    }
                    return i;
                }
                _ => return i,
            },
            _ => return i,
        }
    }
    i
}

/// Parse `enum Name { Variant, ... }` starting at the `enum` keyword.
fn parse_enum(toks: &[Tok], i: usize) -> EnumDecl {
    let t = |i: usize| -> &str { &toks[i].text };
    let name = t(i + 1).to_string();
    let line = toks[i].line;
    let mut variants = Vec::new();
    // Find the body `{` (generics/where clauses for enums in this
    // workspace contain no braces).
    let mut j = i + 2;
    while j < toks.len() && t(j) != "{" && t(j) != ";" {
        j += 1;
    }
    if j >= toks.len() || t(j) != "{" {
        return EnumDecl { name, line, variants };
    }
    // Variants: the identifier opening each arm at depth 1, skipping
    // attributes; payloads `(..)` / `{..}` and discriminants are skipped
    // by depth/comma tracking.
    let mut depth = 1i32;
    let mut expect_variant = true;
    j += 1;
    while j < toks.len() && depth > 0 {
        match t(j) {
            "{" | "(" | "[" => depth += 1,
            "}" | ")" | "]" => depth -= 1,
            "#" if depth == 1 && expect_variant => {
                // Attribute: skip the bracketed group.
                if j + 1 < toks.len() && t(j + 1) == "[" {
                    let mut d = 1i32;
                    j += 2;
                    while j < toks.len() && d > 0 {
                        match t(j) {
                            "[" => d += 1,
                            "]" => d -= 1,
                            _ => {}
                        }
                        j += 1;
                    }
                    continue;
                }
            }
            "," if depth == 1 => expect_variant = true,
            _ => {
                if depth == 1 && expect_variant && toks[j].kind == TokKind::Ident {
                    variants.push(t(j).to_string());
                    expect_variant = false;
                }
            }
        }
        j += 1;
    }
    EnumDecl { name, line, variants }
}

/// Parse an `impl` header: tokens between `impl` and the body `{`.
fn parse_impl_header(toks: &[Tok], i: usize) -> Option<ImplDecl> {
    let t = |i: usize| -> &str { &toks[i].text };
    let line = toks[i].line;
    let mut j = i + 1;
    // Skip the generic parameter list, if any (angle brackets may nest).
    if j < toks.len() && t(j) == "<" {
        let mut d = 1i32;
        j += 1;
        while j < toks.len() && d > 0 {
            match t(j) {
                "<" => d += 1,
                ">" => d -= 1,
                _ => {}
            }
            j += 1;
        }
    }
    // Collect idents until the body `{`, noting a top-level `for`.
    let mut before_for: Vec<String> = Vec::new();
    let mut after_for: Vec<String> = Vec::new();
    let mut saw_for = false;
    let mut angle = 0i32;
    while j < toks.len() && t(j) != "{" && t(j) != ";" {
        match t(j) {
            "<" => angle += 1,
            ">" => angle -= 1,
            "for" if angle == 0 => saw_for = true,
            _ if toks[j].kind == TokKind::Ident && angle == 0 => {
                if saw_for {
                    after_for.push(t(j).to_string());
                } else {
                    before_for.push(t(j).to_string());
                }
            }
            _ => {}
        }
        j += 1;
    }
    if saw_for {
        Some(ImplDecl {
            type_name: after_for.first()?.clone(),
            trait_name: before_for.last().cloned(),
            line,
        })
    } else {
        Some(ImplDecl {
            type_name: before_for.first()?.clone(),
            trait_name: None,
            line,
        })
    }
}

/// Parse a `match` expression starting at the `match` keyword: find the
/// body brace past the scrutinee (struct literals are not legal there, so
/// the first `{` at bracket-depth 0 opens the body), then split the body
/// into arms at `=>` / `,` boundaries.
fn parse_match(toks: &[Tok], i: usize, in_test: bool) -> Option<MatchExpr> {
    let t = |i: usize| -> &str { &toks[i].text };
    let line = toks[i].line;
    // Scrutinee: scan to the body `{`.
    let mut j = i + 1;
    let mut depth = 0i32;
    loop {
        if j >= toks.len() {
            return None;
        }
        match t(j) {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" if depth == 0 => break,
            "{" => depth += 1,
            "}" => depth -= 1,
            ";" if depth == 0 => return None,
            _ => {}
        }
        j += 1;
    }
    // Arms.
    let mut arms = Vec::new();
    let mut k = j + 1;
    'arms: while k < toks.len() && t(k) != "}" {
        // --- pattern (and optional guard) up to `=>` ---
        let arm_line = toks[k].line;
        let mut pat_toks = 0usize;
        let mut only_underscore = true;
        let mut guarded = false;
        let mut heads: Vec<String> = Vec::new();
        let mut d = 0i32;
        while k < toks.len() {
            if d == 0 && t(k) == "=" && k + 1 < toks.len() && t(k + 1) == ">" {
                k += 2;
                break;
            }
            match t(k) {
                "(" | "[" | "{" => d += 1,
                ")" | "]" | "}" => {
                    d -= 1;
                    if d < 0 {
                        // Ran past the match body's closing brace —
                        // malformed arm; stop.
                        break 'arms;
                    }
                }
                "if" if d == 0 => guarded = true,
                _ => {}
            }
            // Any segment followed by `::` counts as a head, so a
            // fully-qualified `crate::event::Event::End` pattern still
            // records `Event` (unlike the file-level path_refs scan,
            // patterns contain no turbofish to misread).
            if toks[k].kind == TokKind::Ident
                && k + 2 < toks.len()
                && t(k + 1) == ":"
                && t(k + 2) == ":"
            {
                let h = t(k).to_string();
                if !heads.contains(&h) {
                    heads.push(h);
                }
            }
            if !guarded {
                pat_toks += 1;
                if t(k) != "_" {
                    only_underscore = false;
                }
            }
            k += 1;
        }
        arms.push(MatchArm {
            line: arm_line,
            wildcard: pat_toks == 1 && only_underscore && !guarded,
            guarded,
            enum_heads: heads,
        });
        // --- arm body ---
        if k >= toks.len() {
            break;
        }
        if t(k) == "{" {
            let mut d = 1i32;
            k += 1;
            while k < toks.len() && d > 0 {
                match t(k) {
                    "{" | "(" | "[" => d += 1,
                    "}" | ")" | "]" => d -= 1,
                    _ => {}
                }
                k += 1;
            }
            if k < toks.len() && t(k) == "," {
                k += 1;
            }
        } else {
            let mut d = 0i32;
            while k < toks.len() {
                match t(k) {
                    "(" | "[" | "{" => d += 1,
                    ")" | "]" | "}" => {
                        if d == 0 && t(k) == "}" {
                            // Match body closes; leave `}` for the outer
                            // loop condition.
                            continue 'arms;
                        }
                        d -= 1;
                    }
                    "," if d == 0 => {
                        k += 1;
                        continue 'arms;
                    }
                    _ => {}
                }
                k += 1;
            }
        }
    }
    Some(MatchExpr { line, in_test, arms })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> ParsedFile {
        parse(&lex(src))
    }

    #[test]
    fn use_groups_globs_and_renames_expand() {
        let pf = parse_src(
            "use std::collections::{BTreeMap, btree_map::Entry};\n\
             use crate::packet::*;\n\
             use super::node as n;\n\
             pub use simcore::{Time, sched::{Entry as E, Scheduler}};\n",
        );
        let paths: Vec<String> = pf.uses.iter().map(|u| u.segs.join("::")).collect();
        assert_eq!(
            paths,
            vec![
                "std::collections::BTreeMap",
                "std::collections::btree_map::Entry",
                "crate::packet",
                "super::node",
                "simcore::Time",
                "simcore::sched::Entry",
                "simcore::sched::Scheduler",
            ]
        );
        assert!(pf.uses[2].glob, "`crate::packet::*` is a glob leaf");
        assert!(!pf.uses[0].glob);
    }

    #[test]
    fn nested_mods_record_parents() {
        let pf = parse_src(
            "mod outer {\n\
                 mod inner {\n\
                     mod leaf;\n\
                 }\n\
                 mod sibling { }\n\
             }\n\
             mod top;\n",
        );
        let by_name: Vec<(&str, bool, Vec<String>)> = pf
            .mods
            .iter()
            .map(|m| (m.name.as_str(), m.inline, m.parents.clone()))
            .collect();
        assert_eq!(
            by_name,
            vec![
                ("outer", true, vec![]),
                ("inner", true, vec!["outer".into()]),
                ("leaf", false, vec!["outer".into(), "inner".into()]),
                ("sibling", true, vec!["outer".into()]),
                ("top", false, vec![]),
            ]
        );
    }

    #[test]
    fn cfg_gated_items_are_indexed() {
        let pf = parse_src(
            "#[cfg(feature = \"audit\")]\n\
             pub mod audit;\n\
             #[cfg(feature = \"audit\")]\n\
             use crate::audit::Audit;\n\
             #[cfg(not(feature = \"audit\"))]\n\
             fn no_audit() {}\n",
        );
        assert_eq!(pf.mods.len(), 1);
        assert_eq!(pf.mods[0].name, "audit");
        assert_eq!(pf.uses.len(), 1);
        assert_eq!(pf.uses[0].segs, vec!["crate", "audit", "Audit"]);
        assert_eq!(pf.fns.len(), 1);
        assert_eq!(pf.fns[0].name, "no_audit");
    }

    #[test]
    fn enums_collect_variants_past_attributes_and_payloads() {
        let pf = parse_src(
            "pub enum Event {\n\
                 Arrive { node: u32, pkt: u64 },\n\
                 #[cfg(feature = \"x\")]\n\
                 Gated(u8),\n\
                 End,\n\
             }\n\
             enum E2 { A = 1, B = 2 }\n",
        );
        assert_eq!(pf.enums.len(), 2);
        assert_eq!(pf.enums[0].name, "Event");
        assert_eq!(pf.enums[0].variants, vec!["Arrive", "Gated", "End"]);
        assert_eq!(pf.enums[1].variants, vec!["A", "B"]);
    }

    #[test]
    fn impl_headers_parse_trait_and_type() {
        let pf = parse_src(
            "impl Foo { fn a() {} }\n\
             impl fmt::Display for Report { }\n\
             impl<T: Scheduler> Backend for Heap<T> { }\n",
        );
        assert_eq!(pf.impls.len(), 3);
        assert_eq!(pf.impls[0].type_name, "Foo");
        assert_eq!(pf.impls[0].trait_name, None);
        assert_eq!(pf.impls[1].type_name, "Report");
        assert_eq!(pf.impls[1].trait_name.as_deref(), Some("Display"));
        assert_eq!(pf.impls[2].type_name, "Heap");
        assert_eq!(pf.impls[2].trait_name.as_deref(), Some("Backend"));
    }

    #[test]
    fn match_arms_record_wildcards_guards_and_heads() {
        let pf = parse_src(
            "fn f(e: Event) {\n\
                 match e {\n\
                     Event::Arrive { node, .. } => handle(node),\n\
                     Event::End => {}\n\
                     _ if ready() => retry(),\n\
                     _ => {}\n\
                 }\n\
             }\n",
        );
        assert_eq!(pf.matches.len(), 1);
        let m = &pf.matches[0];
        assert_eq!(m.arms.len(), 4);
        assert_eq!(m.arms[0].enum_heads, vec!["Event"]);
        assert!(!m.arms[0].wildcard);
        assert!(m.arms[2].guarded && !m.arms[2].wildcard);
        assert!(m.arms[3].wildcard && !m.arms[3].guarded);
    }

    #[test]
    fn nested_matches_are_both_indexed() {
        let pf = parse_src(
            "fn f(a: K, b: K) -> u32 {\n\
                 match a {\n\
                     K::X => match b {\n\
                         K::Y => 1,\n\
                         _ => 2,\n\
                     },\n\
                     _ => 3,\n\
                 }\n\
             }\n",
        );
        assert_eq!(pf.matches.len(), 2);
        // Outer match sees its own wildcard; inner sees its own.
        assert!(pf.matches.iter().all(|m| m.arms.iter().any(|a| a.wildcard)));
    }

    #[test]
    fn scrutinee_with_calls_and_closures_finds_the_body() {
        let pf = parse_src(
            "fn f(v: &[u32]) {\n\
                 match v.iter().map(|x| { x + 1 }).sum::<u32>() {\n\
                     0 => {}\n\
                     n => use_it(n),\n\
                 }\n\
             }\n",
        );
        assert_eq!(pf.matches.len(), 1);
        assert_eq!(pf.matches[0].arms.len(), 2);
        assert!(!pf.matches[0].arms.iter().any(|a| a.wildcard));
    }

    #[test]
    fn path_refs_skip_turbofish_and_nested_segments() {
        let pf = parse_src(
            "fn f() {\n\
                 let a = netsim::sim::Event::End;\n\
                 let b = x.parse::<u64>();\n\
                 let c = crate::packet::PacketId(0);\n\
             }\n",
        );
        let heads: Vec<&str> = pf.path_refs.iter().map(|p| p.head.as_str()).collect();
        assert!(heads.contains(&"netsim"));
        assert!(heads.contains(&"crate"));
        assert!(!heads.contains(&"sim"), "nested segment is not a head");
        assert!(!heads.contains(&"parse"), "turbofish is not a head");
        let netsim_ref = pf.path_refs.iter().find(|p| p.head == "netsim").unwrap();
        assert_eq!(netsim_ref.second.as_deref(), Some("sim"));
    }

    #[test]
    fn test_region_flags_propagate_to_uses_and_matches() {
        let pf = parse_src(
            "use crate::a::X;\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 use crate::b::Y;\n\
                 #[test]\n\
                 fn t() { match K::A { K::A => {}, _ => {} } }\n\
             }\n",
        );
        assert!(!pf.uses[0].in_test);
        assert!(pf.uses[1].in_test);
        assert!(pf.matches[0].in_test);
    }
}
