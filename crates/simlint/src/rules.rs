//! The simlint rule set.
//!
//! Eleven rules, each guarding an invariant that the runtime audit (PR 2)
//! and the differential scheduler tests (PR 3) can only check
//! *dynamically*. R1–R8 are token-level; R9–R11 are semantic passes built
//! on [`crate::parse`] and [`crate::index`] and exist to certify the
//! PDES-sharding preconditions (see DESIGN.md § Static analysis):
//!
//! | rule                   | guards against                                      |
//! |------------------------|-----------------------------------------------------|
//! | `nondeterministic-map` | `HashMap`/`HashSet` iteration order in sim state    |
//! | `wall-clock`           | `Instant`/`SystemTime`/`thread::sleep` in sim code  |
//! | `unseeded-rng`         | `rand::thread_rng()`/`random()` bypassing the seed  |
//! | `lossy-time-cast`      | bare `as u64`/`as i64` on `Time`/`Rate` values      |
//! | `hot-path-unwrap`      | `unwrap()`/`expect()` in scheduler/sim hot paths    |
//! | `allow-without-reason` | `#[allow(...)]` with no justifying comment          |
//! | `hot-path-alloc`       | `Box::new`/`vec![`/`.to_vec()`/`.clone()` per event |
//! | `float-order`          | f64/f32 accumulation over iterated collections      |
//! | `layering`             | upward crate edges / module cycles in the sim DAG   |
//! | `shared-state`         | interior mutability & globals in sim-state crates   |
//! | `event-exhaustiveness` | `_ =>` arms over sim-critical enums                 |
//!
//! Any finding can be silenced in place with an annotation comment:
//!
//! ```text
//! // simlint::allow(rule-name, why this site is safe)
//! ```
//!
//! on the same line as the finding or the line immediately above it. The
//! reason is mandatory; `simlint::allow(rule)` without one is itself
//! reported under `allow-without-reason`.

use crate::lexer::{Lexed, Tok, TokKind};
use crate::parse::{in_test_region, ParsedFile};

/// One of the eleven lint rules.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// R1: no `HashMap`/`HashSet` in simulation-state crates.
    NondeterministicMap,
    /// R2: no `Instant`/`SystemTime`/`thread::sleep` outside bench code.
    WallClock,
    /// R3: no `rand::thread_rng()`/`random()`; randomness flows through the
    /// seeded `simcore` RNG.
    UnseededRng,
    /// R4: no bare `as u64`/`as i64` casts on `Time`/`Rate` expressions.
    LossyTimeCast,
    /// R5: no `unwrap()`/`expect()` in non-test hot-path code.
    HotPathUnwrap,
    /// R6: no `#[allow(...)]` without a reason comment.
    AllowWithoutReason,
    /// R7: no `Box::new`/`vec![`/`.to_vec()`/`.clone()` in non-test
    /// hot-path code — per-event heap traffic belongs in the packet arena
    /// or a setup path.
    HotPathAlloc,
    /// R8: no `f64`/`f32` accumulation over iterated collections
    /// (`.sum::<f64>()`, float-typed `.sum()`/`.product()`, float-seeded
    /// `.fold(...)`) in simulation-state crates — float addition is not
    /// associative, so any refactor that reorders the iteration silently
    /// perturbs results. Accumulate in integer units (the fluid model's
    /// u128 byte-picoseconds, `u64` byte counters) and convert to float at
    /// the edge, or annotate why the ordering is pinned.
    FloatOrder,
    /// R9: the crate DAG is one-way (`simcore <- {netsim, prioplus} <-
    /// transport <- workloads <- experiments <- bench`) and module graphs
    /// inside sim-state crates are acyclic. Enforced from both `Cargo.toml`
    /// dependencies and resolved `use`/path references (dev-dependency
    /// cycles are legal to cargo; they are not legal here). A future
    /// `partition` layer must be physically unable to reach back into
    /// global `Sim` state.
    Layering,
    /// R10: no interior mutability (`RefCell`/`Cell`/`Mutex`/`RwLock`/
    /// atomics), `static mut`, or `thread_local!` in sim-state crates —
    /// all mutation goes through the `&mut` the event loop hands out, so
    /// a partitioned run cannot race through a side channel. The driver
    /// crates (`experiments`, `bench`) stay free to use them.
    SharedState,
    /// R11: no wildcard `_ =>` arm in a match over a sim-critical enum
    /// (`Event`, `ViolationKind`, `Buggify`, `FaultKind`) in sim-state
    /// crates — adding a variant (e.g. `Event::NullMessage` for PDES)
    /// must force every dispatch site to handle it explicitly.
    EventExhaustiveness,
}

impl Rule {
    /// Every rule, in diagnostic order.
    pub const ALL: [Rule; 11] = [
        Rule::NondeterministicMap,
        Rule::WallClock,
        Rule::UnseededRng,
        Rule::LossyTimeCast,
        Rule::HotPathUnwrap,
        Rule::AllowWithoutReason,
        Rule::HotPathAlloc,
        Rule::FloatOrder,
        Rule::Layering,
        Rule::SharedState,
        Rule::EventExhaustiveness,
    ];

    /// The kebab-case name used in diagnostics and `simlint::allow(...)`.
    pub fn name(self) -> &'static str {
        match self {
            Rule::NondeterministicMap => "nondeterministic-map",
            Rule::WallClock => "wall-clock",
            Rule::UnseededRng => "unseeded-rng",
            Rule::LossyTimeCast => "lossy-time-cast",
            Rule::HotPathUnwrap => "hot-path-unwrap",
            Rule::AllowWithoutReason => "allow-without-reason",
            Rule::HotPathAlloc => "hot-path-alloc",
            Rule::FloatOrder => "float-order",
            Rule::Layering => "layering",
            Rule::SharedState => "shared-state",
            Rule::EventExhaustiveness => "event-exhaustiveness",
        }
    }

    /// Parse a rule name as written in an allow annotation.
    pub fn parse(s: &str) -> Option<Rule> {
        Rule::ALL.iter().copied().find(|r| r.name() == s)
    }

    /// Whether this rule applies to the file at workspace-relative `path`
    /// (forward slashes).
    pub fn applies_to(self, path: &str) -> bool {
        match self {
            // Simulation-state crates: anything whose in-memory collections
            // feed the event loop or the recorded results.
            Rule::NondeterministicMap => [
                "crates/simcore/",
                "crates/netsim/",
                "crates/transport/",
                "crates/workloads/",
            ]
            .iter()
            .any(|p| path.starts_with(p)),
            // Benchmarks legitimately measure wall-clock time.
            Rule::WallClock => !path.starts_with("crates/bench/"),
            Rule::UnseededRng => true,
            Rule::LossyTimeCast => true,
            // The two hottest files named by the rule.
            Rule::HotPathUnwrap => {
                path == "crates/simcore/src/sched.rs" || path == "crates/netsim/src/sim.rs"
            }
            Rule::AllowWithoutReason => true,
            // The per-event files: scheduler sift, event loop (including
            // the `pop_batch` queue front-end in event.rs), switch model,
            // and the snapshot/restore path (cold by contract — every
            // allocation there must carry an explicit cold-path allow, so
            // hot-loop code can never quietly migrate in).
            Rule::HotPathAlloc => {
                path == "crates/simcore/src/sched.rs"
                    || path == "crates/simcore/src/event.rs"
                    || path == "crates/netsim/src/sim.rs"
                    || path == "crates/netsim/src/node.rs"
                    || path == "crates/netsim/src/snapshot.rs"
            }
            // Same scope as R1: the crates whose values feed simulation
            // state or recorded results.
            Rule::FloatOrder => [
                "crates/simcore/",
                "crates/netsim/",
                "crates/transport/",
                "crates/workloads/",
            ]
            .iter()
            .any(|p| path.starts_with(p)),
            // Layering applies everywhere: the crate DAG covers the whole
            // workspace and the module-cycle scope is narrowed in
            // `crate::index` itself.
            Rule::Layering => true,
            // The PDES-state crates: everything that holds or mutates
            // simulation state, including the paper's algorithm crate
            // (`crates/core` = prioplus). Driver crates stay free.
            Rule::SharedState | Rule::EventExhaustiveness => PDES_STATE_CRATES
                .iter()
                .any(|p| path.starts_with(p)),
        }
    }
}

/// Crates whose state a sharded (PDES) run would partition: interior
/// mutability and silently-ignored event variants are banned here.
const PDES_STATE_CRATES: [&str; 5] = [
    "crates/simcore/",
    "crates/netsim/",
    "crates/transport/",
    "crates/workloads/",
    "crates/core/",
];

/// Interior-mutability / shared-state type names banned by R10.
const SHARED_STATE_TYPES: [&str; 10] = [
    "RefCell", "Cell", "UnsafeCell", "OnceCell", "LazyCell", "Mutex", "RwLock", "OnceLock",
    "LazyLock", "Condvar",
];

/// Enums whose dispatch sites must stay exhaustive under R11.
pub(crate) const CRITICAL_ENUMS: [&str; 4] = ["Event", "ViolationKind", "Buggify", "FaultKind"];

/// A single diagnostic.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Which rule fired.
    pub rule: Rule,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable explanation.
    pub message: String,
    /// `Some(reason)` when a `simlint::allow` annotation covers this site.
    pub allowed: Option<String>,
}

/// A parsed `simlint::allow(rule, reason)` annotation.
pub(crate) struct Allow {
    pub(crate) line: u32,
    pub(crate) rule: Rule,
    pub(crate) reason: String,
}

/// Scan comments for allow annotations. Malformed annotations (unknown rule
/// or missing reason) are returned as findings instead of silently ignored.
pub(crate) fn collect_allows(lexed: &Lexed) -> (Vec<Allow>, Vec<Finding>) {
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    for c in &lexed.comments {
        // Annotations are only valid in plain `//` comments: doc comments
        // (`///`, `//!` — text starting with `/` or `!` after the marker)
        // merely *describe* the grammar and must not activate it.
        if c.text.starts_with('/') || c.text.starts_with('!') {
            continue;
        }
        let mut rest = c.text.as_str();
        while let Some(pos) = rest.find("simlint::allow(") {
            rest = &rest[pos + "simlint::allow(".len()..];
            let close = match rest.find(')') {
                Some(i) => i,
                None => {
                    bad.push(Finding {
                        rule: Rule::AllowWithoutReason,
                        line: c.line,
                        col: 1,
                        message: "unterminated simlint::allow annotation".into(),
                        allowed: None,
                    });
                    break;
                }
            };
            let body = &rest[..close];
            rest = &rest[close + 1..];
            let (name, reason) = match body.split_once(',') {
                Some((n, r)) => (n.trim(), r.trim()),
                None => (body.trim(), ""),
            };
            let rule = Rule::parse(name);
            match (rule, reason.is_empty()) {
                (Some(rule), false) => allows.push(Allow {
                    line: c.line,
                    rule,
                    reason: reason.to_string(),
                }),
                (Some(_), true) => bad.push(Finding {
                    rule: Rule::AllowWithoutReason,
                    line: c.line,
                    col: 1,
                    message: format!(
                        "simlint::allow({name}) is missing a reason; \
                         write simlint::allow({name}, why-this-is-safe)"
                    ),
                    allowed: None,
                }),
                (None, _) => bad.push(Finding {
                    rule: Rule::AllowWithoutReason,
                    line: c.line,
                    col: 1,
                    message: format!("simlint::allow names unknown rule {name:?}"),
                    allowed: None,
                }),
            }
        }
    }
    (allows, bad)
}

/// Whether the whole file is test code (integration tests, e2e drivers):
/// these directories are compiled only under `cargo test`.
pub(crate) fn whole_file_is_test(path: &str) -> bool {
    path.starts_with("tests/") || path.contains("/tests/")
}

/// The test regions to exempt for `path`: the whole file for test
/// directories, else the parsed `#[cfg(test)]`/`#[test]` regions.
pub(crate) fn effective_regions(path: &str, parsed: &ParsedFile) -> Vec<(u32, u32)> {
    if whole_file_is_test(path) {
        vec![(0, u32::MAX)]
    } else {
        parsed.test_regions.clone()
    }
}

/// Unit accessors on `Time`/`Rate` whose result must not be cast with a
/// bare `as u64`/`as i64` (truncating float getters and sign-crossing
/// integer getters alike).
const UNIT_ACCESSORS: [&str; 7] = [
    "as_ps",
    "as_ns",
    "as_bps",
    "as_us_f64",
    "as_ms_f64",
    "as_secs_f64",
    "as_gbps_f64",
];

/// Walk the postfix-expression chain ending at token index `end`
/// (exclusive: `end` is the index of the `as` keyword) and collect the
/// identifiers it mentions. Handles `recv.method(args).method2(args)` and
/// `Type::assoc(args)` chains; stops at any other operator.
fn cast_operand_idents(toks: &[Tok], end: usize) -> Vec<String> {
    let mut ids = Vec::new();
    if end == 0 {
        return ids;
    }
    let mut j = end - 1;
    loop {
        match toks[j].text.as_str() {
            ")" | "]" => {
                let open = if toks[j].text == ")" { "(" } else { "[" };
                let close = toks[j].text.clone();
                let mut depth = 1i32;
                while depth > 0 && j > 0 {
                    j -= 1;
                    if toks[j].text == close {
                        depth += 1;
                    } else if toks[j].text == open {
                        depth -= 1;
                    } else if toks[j].kind == TokKind::Ident {
                        ids.push(toks[j].text.clone());
                    }
                }
                if depth > 0 || j == 0 {
                    break;
                }
                j -= 1;
                // A call: the ident before `(` is part of the chain and is
                // handled by the next loop turn.
            }
            _ if toks[j].kind == TokKind::Ident || toks[j].kind == TokKind::Num => {
                if toks[j].kind == TokKind::Ident {
                    ids.push(toks[j].text.clone());
                }
                if j == 0 {
                    break;
                }
                // Continue only across `.` or `::` connectors.
                if toks[j - 1].text == "." {
                    if j < 2 {
                        break;
                    }
                    j -= 2;
                    continue;
                }
                if j >= 2 && toks[j - 1].text == ":" && toks[j - 2].text == ":" {
                    if j < 3 {
                        break;
                    }
                    j -= 3;
                    continue;
                }
                break;
            }
            _ => break,
        }
        // After skipping a bracket group, continue the chain walk.
        if toks[j].kind != TokKind::Ident && toks[j].kind != TokKind::Num {
            match toks[j].text.as_str() {
                ")" | "]" => continue,
                _ => break,
            }
        }
    }
    ids
}

/// Run every applicable rule over one lexed file. `path` is
/// workspace-relative with forward slashes; it selects which rules apply.
/// The cross-file half of R9 needs the whole workspace and lives in
/// [`crate::index`]; this entry point covers everything single-file.
pub fn check(path: &str, lexed: &Lexed) -> Vec<Finding> {
    let parsed = crate::parse::parse(lexed);
    check_parsed(path, lexed, &parsed)
}

/// [`check`] with the parse already done (the workspace pass parses once
/// and shares the [`ParsedFile`] with the cross-file passes).
pub(crate) fn check_parsed(path: &str, lexed: &Lexed, parsed: &ParsedFile) -> Vec<Finding> {
    let (allows, mut findings) = collect_allows(lexed);
    // allow-without-reason findings from malformed annotations only matter
    // where R6 applies (everywhere, in practice).
    findings.retain(|_| Rule::AllowWithoutReason.applies_to(path));
    let regions = effective_regions(path, parsed);
    findings.extend(token_findings(path, lexed, &regions));
    findings.extend(file_semantic_findings(path, parsed, &regions));
    apply_allows(&allows, &mut findings);
    findings.sort_by_key(|f| (f.line, f.col, f.rule));
    findings
}

/// Apply allow annotations: an allow on line L covers findings for its
/// rule on L (trailing comment) and L+1 (comment on its own line above).
pub(crate) fn apply_allows(allows: &[Allow], findings: &mut [Finding]) {
    for f in findings {
        if let Some(a) = allows
            .iter()
            .find(|a| a.rule == f.rule && (a.line == f.line || a.line + 1 == f.line))
        {
            f.allowed = Some(a.reason.clone());
        }
    }
}

/// R10 (glob imports) + R11: the single-file semantic rules, driven by the
/// item-level parse rather than raw tokens.
pub(crate) fn file_semantic_findings(
    path: &str,
    parsed: &ParsedFile,
    regions: &[(u32, u32)],
) -> Vec<Finding> {
    let mut findings = Vec::new();
    // R10: a glob import of std::cell / std::sync smuggles every banned
    // type in under its bare name; the token pass can't see it.
    if Rule::SharedState.applies_to(path) {
        for u in &parsed.uses {
            if !u.glob || in_test_region(regions, u.line) {
                continue;
            }
            let segs: Vec<&str> = u.segs.iter().map(|s| s.as_str()).collect();
            if matches!(segs.as_slice(), ["std" | "core", "cell" | "sync", ..]) {
                findings.push(Finding {
                    rule: Rule::SharedState,
                    line: u.line,
                    col: 1,
                    message: format!(
                        "glob import of {}::{}::* pulls interior-mutability types into a \
                         sim-state crate; import the specific items needed",
                        segs[0], segs[1]
                    ),
                    allowed: None,
                });
            }
        }
    }
    // R11: wildcard arms over sim-critical enums.
    if Rule::EventExhaustiveness.applies_to(path) {
        for m in &parsed.matches {
            if in_test_region(regions, m.line) {
                continue;
            }
            let mut heads: Vec<&str> = m
                .arms
                .iter()
                .flat_map(|a| a.enum_heads.iter().map(|h| h.as_str()))
                .filter(|h| CRITICAL_ENUMS.contains(h))
                .collect();
            heads.sort_unstable();
            heads.dedup();
            if heads.is_empty() {
                continue;
            }
            for arm in &m.arms {
                // A guarded `_ if cond =>` arm is a deliberate catch-some,
                // not a catch-all; only the bare wildcard is flagged.
                if arm.wildcard && !arm.guarded {
                    findings.push(Finding {
                        rule: Rule::EventExhaustiveness,
                        line: arm.line,
                        col: 1,
                        message: format!(
                            "wildcard `_ =>` arm in a match dispatching {}: adding a \
                             variant (e.g. Event::NullMessage for PDES) must force every \
                             dispatch site to handle it; list the remaining variants \
                             explicitly",
                            heads.join("/")
                        ),
                        allowed: None,
                    });
                }
            }
        }
    }
    findings
}

/// The token-level rules (R1–R8 plus R10's named types), one linear scan.
pub(crate) fn token_findings(path: &str, lexed: &Lexed, regions: &[(u32, u32)]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let toks = &lexed.toks;
    let t = |i: usize| -> &str { &toks[i].text };
    for i in 0..toks.len() {
        let tok = &toks[i];
        if tok.kind != TokKind::Ident {
            // R6: `#[allow(...)]` / `#![allow(...)]` attributes.
            if tok.text == "#" && Rule::AllowWithoutReason.applies_to(path) {
                let j = if i + 1 < toks.len() && t(i + 1) == "!" { i + 2 } else { i + 1 };
                if j + 1 < toks.len() && t(j) == "[" && t(j + 1) == "allow" {
                    let has_reason = lexed
                        .comments
                        .iter()
                        .any(|c| c.line == tok.line || c.line + 1 == tok.line);
                    if !has_reason {
                        findings.push(Finding {
                            rule: Rule::AllowWithoutReason,
                            line: tok.line,
                            col: tok.col,
                            message: "#[allow(...)] without a reason comment on the same \
                                      or preceding line"
                                .into(),
                            allowed: None,
                        });
                    }
                }
            }
            continue;
        }
        match tok.text.as_str() {
            // R1
            "HashMap" | "HashSet" if Rule::NondeterministicMap.applies_to(path) => {
                findings.push(Finding {
                    rule: Rule::NondeterministicMap,
                    line: tok.line,
                    col: tok.col,
                    message: format!(
                        "{} iteration order is nondeterministic and breaks replay; \
                         use BTreeMap/BTreeSet or sorted iteration",
                        tok.text
                    ),
                    allowed: None,
                });
            }
            // R2
            "Instant" | "SystemTime" if Rule::WallClock.applies_to(path) => {
                findings.push(Finding {
                    rule: Rule::WallClock,
                    line: tok.line,
                    col: tok.col,
                    message: format!(
                        "{} reads the wall clock; simulation code must use simcore::Time",
                        tok.text
                    ),
                    allowed: None,
                });
            }
            "sleep"
                if Rule::WallClock.applies_to(path)
                    && i >= 3
                    && t(i - 1) == ":"
                    && t(i - 2) == ":"
                    && t(i - 3) == "thread" =>
            {
                findings.push(Finding {
                    rule: Rule::WallClock,
                    line: tok.line,
                    col: tok.col,
                    message: "thread::sleep blocks on wall-clock time; schedule a \
                              simulated event instead"
                        .into(),
                    allowed: None,
                });
            }
            // R3
            "thread_rng" if Rule::UnseededRng.applies_to(path) => {
                findings.push(Finding {
                    rule: Rule::UnseededRng,
                    line: tok.line,
                    col: tok.col,
                    message: "thread_rng() is unseeded; all randomness must flow through \
                              simcore's seeded RNG"
                        .into(),
                    allowed: None,
                });
            }
            // A free-function call `random(...)` (not a method or an fn
            // definition), or any `rand::random` path (covers turbofish).
            "random"
                if Rule::UnseededRng.applies_to(path)
                    && ((i + 1 < toks.len()
                        && t(i + 1) == "("
                        && (i == 0 || (t(i - 1) != "." && t(i - 1) != "fn")))
                        || (i >= 3
                            && t(i - 1) == ":"
                            && t(i - 2) == ":"
                            && t(i - 3) == "rand")) =>
            {
                findings.push(Finding {
                    rule: Rule::UnseededRng,
                    line: tok.line,
                    col: tok.col,
                    message: "random() is unseeded; all randomness must flow through \
                              simcore's seeded RNG"
                        .into(),
                    allowed: None,
                });
            }
            // R4
            "as" if Rule::LossyTimeCast.applies_to(path)
                && i + 1 < toks.len()
                && (t(i + 1) == "u64" || t(i + 1) == "i64") =>
            {
                let ids = cast_operand_idents(toks, i);
                let mentions_type = ids
                    .iter()
                    .any(|id| id == "Time" || id == "Rate" || id == "TimeDelta");
                let unit_getter = ids
                    .first()
                    .map(|id| UNIT_ACCESSORS.contains(&id.as_str()))
                    .unwrap_or(false);
                if mentions_type || unit_getter {
                    findings.push(Finding {
                        rule: Rule::LossyTimeCast,
                        line: tok.line,
                        col: tok.col,
                        message: format!(
                            "bare `as {}` on a Time/Rate-derived value can silently \
                             truncate or wrap; use a checked conversion",
                            t(i + 1)
                        ),
                        allowed: None,
                    });
                }
            }
            // R7: constructor allocations.
            "Box"
                if Rule::HotPathAlloc.applies_to(path)
                    && i + 3 < toks.len()
                    && t(i + 1) == ":"
                    && t(i + 2) == ":"
                    && t(i + 3) == "new"
                    && !in_test_region(regions, tok.line) =>
            {
                findings.push(Finding {
                    rule: Rule::HotPathAlloc,
                    line: tok.line,
                    col: tok.col,
                    message: "Box::new in a hot path heap-allocates per event; pool the \
                              allocation (packet arena / recycle stack) or move it to setup"
                        .into(),
                    allowed: None,
                });
            }
            // R7: `vec![...]` literal.
            "vec"
                if Rule::HotPathAlloc.applies_to(path)
                    && i + 1 < toks.len()
                    && t(i + 1) == "!"
                    && !in_test_region(regions, tok.line) =>
            {
                findings.push(Finding {
                    rule: Rule::HotPathAlloc,
                    line: tok.line,
                    col: tok.col,
                    message: "vec![] in a hot path heap-allocates per event; reuse a \
                              buffer or move the allocation to setup"
                        .into(),
                    allowed: None,
                });
            }
            // R7: copying method calls.
            "to_vec" | "clone"
                if Rule::HotPathAlloc.applies_to(path)
                    && i + 1 < toks.len()
                    && t(i + 1) == "("
                    && i >= 1
                    && t(i - 1) == "."
                    && !in_test_region(regions, tok.line) =>
            {
                findings.push(Finding {
                    rule: Rule::HotPathAlloc,
                    line: tok.line,
                    col: tok.col,
                    message: format!(
                        "{}() in a hot path copies the container per event; borrow it or \
                         move the copy off the per-event path",
                        tok.text
                    ),
                    allowed: None,
                });
            }
            // R8: float accumulation over an iterated collection. Three
            // lexical shapes cover the std reduction entry points:
            //   .sum::<f64>() / .product::<f32>()   — turbofish-typed
            //   let x: f64 = it.sum();              — statement mentions f64
            //   it.fold(0.0, ..)                    — float-seeded fold
            "sum" | "product"
                if Rule::FloatOrder.applies_to(path)
                    && i >= 1
                    && t(i - 1) == "."
                    && !in_test_region(regions, tok.line)
                    && {
                        let turbofish_float = i + 4 < toks.len()
                            && t(i + 1) == ":"
                            && t(i + 2) == ":"
                            && t(i + 3) == "<"
                            && (t(i + 4) == "f64" || t(i + 4) == "f32");
                        // For an untyped `.sum()`, look back through the
                        // enclosing statement for a float type ascription.
                        let stmt_mentions_float = t(i + 1) == "(" && {
                            let mut j = i;
                            let mut hit = false;
                            while j > 0 {
                                j -= 1;
                                match t(j) {
                                    ";" | "{" | "}" => break,
                                    "f64" | "f32" => {
                                        hit = true;
                                        break;
                                    }
                                    _ => {}
                                }
                            }
                            hit
                        };
                        turbofish_float || stmt_mentions_float
                    } =>
            {
                findings.push(Finding {
                    rule: Rule::FloatOrder,
                    line: tok.line,
                    col: tok.col,
                    message: format!(
                        "float {}() over an iterated collection: f64 addition is not \
                         associative, so reordering the iteration perturbs results; \
                         accumulate in integer units or annotate why the order is pinned",
                        tok.text
                    ),
                    allowed: None,
                });
            }
            "fold"
                if Rule::FloatOrder.applies_to(path)
                    && i >= 1
                    && t(i - 1) == "."
                    && i + 2 < toks.len()
                    && t(i + 1) == "("
                    && toks[i + 2].kind == TokKind::Num
                    && (t(i + 2).contains('.')
                        || t(i + 2).ends_with("f64")
                        || t(i + 2).ends_with("f32"))
                    && !in_test_region(regions, tok.line) =>
            {
                findings.push(Finding {
                    rule: Rule::FloatOrder,
                    line: tok.line,
                    col: tok.col,
                    message: "float-seeded fold() over an iterated collection: f64 \
                              addition is not associative, so reordering the iteration \
                              perturbs results; accumulate in integer units or annotate \
                              why the order is pinned"
                        .into(),
                    allowed: None,
                });
            }
            // R5
            "unwrap" | "expect"
                if Rule::HotPathUnwrap.applies_to(path)
                    && i + 1 < toks.len()
                    && t(i + 1) == "("
                    && i >= 1
                    && t(i - 1) == "."
                    && !in_test_region(regions, tok.line) =>
            {
                findings.push(Finding {
                    rule: Rule::HotPathUnwrap,
                    line: tok.line,
                    col: tok.col,
                    message: format!(
                        "{}() in a hot path can abort a run mid-simulation; handle the \
                         None/Err case or annotate why it is unreachable",
                        tok.text
                    ),
                    allowed: None,
                });
            }
            // R10: named interior-mutability / shared-state types, plus
            // the macro and keyword forms.
            name if Rule::SharedState.applies_to(path)
                && !in_test_region(regions, tok.line)
                && (SHARED_STATE_TYPES.contains(&name) || name.starts_with("Atomic")) =>
            {
                findings.push(Finding {
                    rule: Rule::SharedState,
                    line: tok.line,
                    col: tok.col,
                    message: format!(
                        "{name} is interior-mutability shared state; sim-state crates \
                         route all mutation through the &mut the event loop hands out \
                         so a partitioned run cannot race through a side channel",
                    ),
                    allowed: None,
                });
            }
            "thread_local"
                if Rule::SharedState.applies_to(path)
                    && !in_test_region(regions, tok.line) =>
            {
                findings.push(Finding {
                    rule: Rule::SharedState,
                    line: tok.line,
                    col: tok.col,
                    message: "thread_local! storage bypasses the event loop's ownership \
                              of sim state and desynchronizes partitioned runs"
                        .into(),
                    allowed: None,
                });
            }
            "static"
                if Rule::SharedState.applies_to(path)
                    && i + 1 < toks.len()
                    && t(i + 1) == "mut"
                    && !in_test_region(regions, tok.line) =>
            {
                findings.push(Finding {
                    rule: Rule::SharedState,
                    line: tok.line,
                    col: tok.col,
                    message: "static mut is global shared state; sim state lives in Sim \
                              and is mutated only through the event loop's &mut"
                        .into(),
                    allowed: None,
                });
            }
            _ => {}
        }
    }
    findings
}
